# Empty compiler generated dependencies file for liquid_structure.
# This may be replaced when dependencies are built.
