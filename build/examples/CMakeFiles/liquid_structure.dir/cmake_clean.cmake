file(REMOVE_RECURSE
  "CMakeFiles/liquid_structure.dir/liquid_structure.cpp.o"
  "CMakeFiles/liquid_structure.dir/liquid_structure.cpp.o.d"
  "liquid_structure"
  "liquid_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
