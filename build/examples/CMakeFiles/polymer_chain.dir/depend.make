# Empty dependencies file for polymer_chain.
# This may be replaced when dependencies are built.
