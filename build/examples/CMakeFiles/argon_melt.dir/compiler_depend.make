# Empty compiler generated dependencies file for argon_melt.
# This may be replaced when dependencies are built.
