file(REMOVE_RECURSE
  "CMakeFiles/argon_melt.dir/argon_melt.cpp.o"
  "CMakeFiles/argon_melt.dir/argon_melt.cpp.o.d"
  "argon_melt"
  "argon_melt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argon_melt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
