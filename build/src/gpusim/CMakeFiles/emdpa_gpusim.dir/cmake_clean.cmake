file(REMOVE_RECURSE
  "CMakeFiles/emdpa_gpusim.dir/branch_model.cpp.o"
  "CMakeFiles/emdpa_gpusim.dir/branch_model.cpp.o.d"
  "CMakeFiles/emdpa_gpusim.dir/gpu_backend.cpp.o"
  "CMakeFiles/emdpa_gpusim.dir/gpu_backend.cpp.o.d"
  "CMakeFiles/emdpa_gpusim.dir/gpu_device.cpp.o"
  "CMakeFiles/emdpa_gpusim.dir/gpu_device.cpp.o.d"
  "CMakeFiles/emdpa_gpusim.dir/md_shader.cpp.o"
  "CMakeFiles/emdpa_gpusim.dir/md_shader.cpp.o.d"
  "CMakeFiles/emdpa_gpusim.dir/reduction.cpp.o"
  "CMakeFiles/emdpa_gpusim.dir/reduction.cpp.o.d"
  "CMakeFiles/emdpa_gpusim.dir/shader_compiler.cpp.o"
  "CMakeFiles/emdpa_gpusim.dir/shader_compiler.cpp.o.d"
  "CMakeFiles/emdpa_gpusim.dir/texture.cpp.o"
  "CMakeFiles/emdpa_gpusim.dir/texture.cpp.o.d"
  "libemdpa_gpusim.a"
  "libemdpa_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
