
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/branch_model.cpp" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/branch_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/branch_model.cpp.o.d"
  "/root/repo/src/gpusim/gpu_backend.cpp" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/gpu_backend.cpp.o" "gcc" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/gpu_backend.cpp.o.d"
  "/root/repo/src/gpusim/gpu_device.cpp" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/gpu_device.cpp.o" "gcc" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/gpu_device.cpp.o.d"
  "/root/repo/src/gpusim/md_shader.cpp" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/md_shader.cpp.o" "gcc" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/md_shader.cpp.o.d"
  "/root/repo/src/gpusim/reduction.cpp" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/reduction.cpp.o" "gcc" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/reduction.cpp.o.d"
  "/root/repo/src/gpusim/shader_compiler.cpp" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/shader_compiler.cpp.o" "gcc" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/shader_compiler.cpp.o.d"
  "/root/repo/src/gpusim/texture.cpp" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/texture.cpp.o" "gcc" "src/gpusim/CMakeFiles/emdpa_gpusim.dir/texture.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/emdpa_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emdpa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
