file(REMOVE_RECURSE
  "libemdpa_gpusim.a"
)
