# Empty dependencies file for emdpa_gpusim.
# This may be replaced when dependencies are built.
