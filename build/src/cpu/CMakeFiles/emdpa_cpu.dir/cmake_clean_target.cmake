file(REMOVE_RECURSE
  "libemdpa_cpu.a"
)
