# Empty compiler generated dependencies file for emdpa_cpu.
# This may be replaced when dependencies are built.
