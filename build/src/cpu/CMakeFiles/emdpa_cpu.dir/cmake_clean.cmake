file(REMOVE_RECURSE
  "CMakeFiles/emdpa_cpu.dir/cache_model.cpp.o"
  "CMakeFiles/emdpa_cpu.dir/cache_model.cpp.o.d"
  "CMakeFiles/emdpa_cpu.dir/opteron_backend.cpp.o"
  "CMakeFiles/emdpa_cpu.dir/opteron_backend.cpp.o.d"
  "CMakeFiles/emdpa_cpu.dir/opteron_model.cpp.o"
  "CMakeFiles/emdpa_cpu.dir/opteron_model.cpp.o.d"
  "libemdpa_cpu.a"
  "libemdpa_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
