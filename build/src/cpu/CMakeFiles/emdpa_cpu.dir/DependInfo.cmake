
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cache_model.cpp" "src/cpu/CMakeFiles/emdpa_cpu.dir/cache_model.cpp.o" "gcc" "src/cpu/CMakeFiles/emdpa_cpu.dir/cache_model.cpp.o.d"
  "/root/repo/src/cpu/opteron_backend.cpp" "src/cpu/CMakeFiles/emdpa_cpu.dir/opteron_backend.cpp.o" "gcc" "src/cpu/CMakeFiles/emdpa_cpu.dir/opteron_backend.cpp.o.d"
  "/root/repo/src/cpu/opteron_model.cpp" "src/cpu/CMakeFiles/emdpa_cpu.dir/opteron_model.cpp.o" "gcc" "src/cpu/CMakeFiles/emdpa_cpu.dir/opteron_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/emdpa_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emdpa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
