
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/analysis.cpp" "src/md/CMakeFiles/emdpa_md.dir/analysis.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/analysis.cpp.o.d"
  "/root/repo/src/md/angles.cpp" "src/md/CMakeFiles/emdpa_md.dir/angles.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/angles.cpp.o.d"
  "/root/repo/src/md/backend.cpp" "src/md/CMakeFiles/emdpa_md.dir/backend.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/backend.cpp.o.d"
  "/root/repo/src/md/bonded.cpp" "src/md/CMakeFiles/emdpa_md.dir/bonded.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/bonded.cpp.o.d"
  "/root/repo/src/md/cell_list_kernel.cpp" "src/md/CMakeFiles/emdpa_md.dir/cell_list_kernel.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/cell_list_kernel.cpp.o.d"
  "/root/repo/src/md/checkpoint.cpp" "src/md/CMakeFiles/emdpa_md.dir/checkpoint.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/checkpoint.cpp.o.d"
  "/root/repo/src/md/host_backend.cpp" "src/md/CMakeFiles/emdpa_md.dir/host_backend.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/host_backend.cpp.o.d"
  "/root/repo/src/md/integrator.cpp" "src/md/CMakeFiles/emdpa_md.dir/integrator.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/integrator.cpp.o.d"
  "/root/repo/src/md/langevin.cpp" "src/md/CMakeFiles/emdpa_md.dir/langevin.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/langevin.cpp.o.d"
  "/root/repo/src/md/minimize.cpp" "src/md/CMakeFiles/emdpa_md.dir/minimize.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/minimize.cpp.o.d"
  "/root/repo/src/md/observables.cpp" "src/md/CMakeFiles/emdpa_md.dir/observables.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/observables.cpp.o.d"
  "/root/repo/src/md/particle_system.cpp" "src/md/CMakeFiles/emdpa_md.dir/particle_system.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/particle_system.cpp.o.d"
  "/root/repo/src/md/reference_kernel.cpp" "src/md/CMakeFiles/emdpa_md.dir/reference_kernel.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/reference_kernel.cpp.o.d"
  "/root/repo/src/md/simulation.cpp" "src/md/CMakeFiles/emdpa_md.dir/simulation.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/simulation.cpp.o.d"
  "/root/repo/src/md/thermostat.cpp" "src/md/CMakeFiles/emdpa_md.dir/thermostat.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/thermostat.cpp.o.d"
  "/root/repo/src/md/verlet_list_kernel.cpp" "src/md/CMakeFiles/emdpa_md.dir/verlet_list_kernel.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/verlet_list_kernel.cpp.o.d"
  "/root/repo/src/md/workload.cpp" "src/md/CMakeFiles/emdpa_md.dir/workload.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/workload.cpp.o.d"
  "/root/repo/src/md/xyz_writer.cpp" "src/md/CMakeFiles/emdpa_md.dir/xyz_writer.cpp.o" "gcc" "src/md/CMakeFiles/emdpa_md.dir/xyz_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/emdpa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
