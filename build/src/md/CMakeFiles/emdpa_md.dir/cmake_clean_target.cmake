file(REMOVE_RECURSE
  "libemdpa_md.a"
)
