# Empty compiler generated dependencies file for emdpa_md.
# This may be replaced when dependencies are built.
