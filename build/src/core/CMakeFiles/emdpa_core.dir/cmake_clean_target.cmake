file(REMOVE_RECURSE
  "libemdpa_core.a"
)
