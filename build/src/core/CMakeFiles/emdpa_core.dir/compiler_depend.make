# Empty compiler generated dependencies file for emdpa_core.
# This may be replaced when dependencies are built.
