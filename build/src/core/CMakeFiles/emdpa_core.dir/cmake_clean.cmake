file(REMOVE_RECURSE
  "CMakeFiles/emdpa_core.dir/csv.cpp.o"
  "CMakeFiles/emdpa_core.dir/csv.cpp.o.d"
  "CMakeFiles/emdpa_core.dir/op_counter.cpp.o"
  "CMakeFiles/emdpa_core.dir/op_counter.cpp.o.d"
  "CMakeFiles/emdpa_core.dir/random.cpp.o"
  "CMakeFiles/emdpa_core.dir/random.cpp.o.d"
  "CMakeFiles/emdpa_core.dir/string_util.cpp.o"
  "CMakeFiles/emdpa_core.dir/string_util.cpp.o.d"
  "CMakeFiles/emdpa_core.dir/table.cpp.o"
  "CMakeFiles/emdpa_core.dir/table.cpp.o.d"
  "libemdpa_core.a"
  "libemdpa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
