# Empty compiler generated dependencies file for emdpa_cellsim.
# This may be replaced when dependencies are built.
