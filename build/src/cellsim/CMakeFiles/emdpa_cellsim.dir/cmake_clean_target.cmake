file(REMOVE_RECURSE
  "libemdpa_cellsim.a"
)
