file(REMOVE_RECURSE
  "CMakeFiles/emdpa_cellsim.dir/cell_cluster.cpp.o"
  "CMakeFiles/emdpa_cellsim.dir/cell_cluster.cpp.o.d"
  "CMakeFiles/emdpa_cellsim.dir/cell_dp.cpp.o"
  "CMakeFiles/emdpa_cellsim.dir/cell_dp.cpp.o.d"
  "CMakeFiles/emdpa_cellsim.dir/cell_md_app.cpp.o"
  "CMakeFiles/emdpa_cellsim.dir/cell_md_app.cpp.o.d"
  "CMakeFiles/emdpa_cellsim.dir/dma.cpp.o"
  "CMakeFiles/emdpa_cellsim.dir/dma.cpp.o.d"
  "CMakeFiles/emdpa_cellsim.dir/local_store.cpp.o"
  "CMakeFiles/emdpa_cellsim.dir/local_store.cpp.o.d"
  "CMakeFiles/emdpa_cellsim.dir/ppe_kernel.cpp.o"
  "CMakeFiles/emdpa_cellsim.dir/ppe_kernel.cpp.o.d"
  "CMakeFiles/emdpa_cellsim.dir/spe_kernel.cpp.o"
  "CMakeFiles/emdpa_cellsim.dir/spe_kernel.cpp.o.d"
  "libemdpa_cellsim.a"
  "libemdpa_cellsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_cellsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
