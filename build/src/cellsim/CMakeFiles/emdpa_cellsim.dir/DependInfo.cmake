
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellsim/cell_cluster.cpp" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/cell_cluster.cpp.o" "gcc" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/cell_cluster.cpp.o.d"
  "/root/repo/src/cellsim/cell_dp.cpp" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/cell_dp.cpp.o" "gcc" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/cell_dp.cpp.o.d"
  "/root/repo/src/cellsim/cell_md_app.cpp" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/cell_md_app.cpp.o" "gcc" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/cell_md_app.cpp.o.d"
  "/root/repo/src/cellsim/dma.cpp" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/dma.cpp.o" "gcc" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/dma.cpp.o.d"
  "/root/repo/src/cellsim/local_store.cpp" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/local_store.cpp.o" "gcc" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/local_store.cpp.o.d"
  "/root/repo/src/cellsim/ppe_kernel.cpp" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/ppe_kernel.cpp.o" "gcc" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/ppe_kernel.cpp.o.d"
  "/root/repo/src/cellsim/spe_kernel.cpp" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/spe_kernel.cpp.o" "gcc" "src/cellsim/CMakeFiles/emdpa_cellsim.dir/spe_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/emdpa_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emdpa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
