file(REMOVE_RECURSE
  "CMakeFiles/emdpa_mtasim.dir/mta_backend.cpp.o"
  "CMakeFiles/emdpa_mtasim.dir/mta_backend.cpp.o.d"
  "CMakeFiles/emdpa_mtasim.dir/parallel_loop.cpp.o"
  "CMakeFiles/emdpa_mtasim.dir/parallel_loop.cpp.o.d"
  "CMakeFiles/emdpa_mtasim.dir/stream_machine.cpp.o"
  "CMakeFiles/emdpa_mtasim.dir/stream_machine.cpp.o.d"
  "CMakeFiles/emdpa_mtasim.dir/xmt_backend.cpp.o"
  "CMakeFiles/emdpa_mtasim.dir/xmt_backend.cpp.o.d"
  "libemdpa_mtasim.a"
  "libemdpa_mtasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_mtasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
