# Empty compiler generated dependencies file for emdpa_mtasim.
# This may be replaced when dependencies are built.
