
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mtasim/mta_backend.cpp" "src/mtasim/CMakeFiles/emdpa_mtasim.dir/mta_backend.cpp.o" "gcc" "src/mtasim/CMakeFiles/emdpa_mtasim.dir/mta_backend.cpp.o.d"
  "/root/repo/src/mtasim/parallel_loop.cpp" "src/mtasim/CMakeFiles/emdpa_mtasim.dir/parallel_loop.cpp.o" "gcc" "src/mtasim/CMakeFiles/emdpa_mtasim.dir/parallel_loop.cpp.o.d"
  "/root/repo/src/mtasim/stream_machine.cpp" "src/mtasim/CMakeFiles/emdpa_mtasim.dir/stream_machine.cpp.o" "gcc" "src/mtasim/CMakeFiles/emdpa_mtasim.dir/stream_machine.cpp.o.d"
  "/root/repo/src/mtasim/xmt_backend.cpp" "src/mtasim/CMakeFiles/emdpa_mtasim.dir/xmt_backend.cpp.o" "gcc" "src/mtasim/CMakeFiles/emdpa_mtasim.dir/xmt_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/emdpa_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emdpa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
