file(REMOVE_RECURSE
  "libemdpa_mtasim.a"
)
