# Empty compiler generated dependencies file for emdpa_driver.
# This may be replaced when dependencies are built.
