file(REMOVE_RECURSE
  "CMakeFiles/emdpa_driver.dir/backend_factory.cpp.o"
  "CMakeFiles/emdpa_driver.dir/backend_factory.cpp.o.d"
  "CMakeFiles/emdpa_driver.dir/cli_options.cpp.o"
  "CMakeFiles/emdpa_driver.dir/cli_options.cpp.o.d"
  "CMakeFiles/emdpa_driver.dir/report.cpp.o"
  "CMakeFiles/emdpa_driver.dir/report.cpp.o.d"
  "libemdpa_driver.a"
  "libemdpa_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
