file(REMOVE_RECURSE
  "libemdpa_driver.a"
)
