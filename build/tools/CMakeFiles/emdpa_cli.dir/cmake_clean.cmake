file(REMOVE_RECURSE
  "CMakeFiles/emdpa_cli.dir/emdpa_cli.cpp.o"
  "CMakeFiles/emdpa_cli.dir/emdpa_cli.cpp.o.d"
  "emdpa"
  "emdpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
