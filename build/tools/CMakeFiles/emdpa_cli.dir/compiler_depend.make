# Empty compiler generated dependencies file for emdpa_cli.
# This may be replaced when dependencies are built.
