# Empty dependencies file for fig9_scaling_vs_256.
# This may be replaced when dependencies are built.
