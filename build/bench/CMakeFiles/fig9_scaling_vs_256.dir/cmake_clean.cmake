file(REMOVE_RECURSE
  "CMakeFiles/fig9_scaling_vs_256.dir/fig9_scaling_vs_256.cpp.o"
  "CMakeFiles/fig9_scaling_vs_256.dir/fig9_scaling_vs_256.cpp.o.d"
  "fig9_scaling_vs_256"
  "fig9_scaling_vs_256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_scaling_vs_256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
