file(REMOVE_RECURSE
  "CMakeFiles/ablation_gpu_reduction.dir/ablation_gpu_reduction.cpp.o"
  "CMakeFiles/ablation_gpu_reduction.dir/ablation_gpu_reduction.cpp.o.d"
  "ablation_gpu_reduction"
  "ablation_gpu_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gpu_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
