# Empty dependencies file for ablation_gpu_reduction.
# This may be replaced when dependencies are built.
