file(REMOVE_RECURSE
  "CMakeFiles/ablation_xmt_projection.dir/ablation_xmt_projection.cpp.o"
  "CMakeFiles/ablation_xmt_projection.dir/ablation_xmt_projection.cpp.o.d"
  "ablation_xmt_projection"
  "ablation_xmt_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xmt_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
