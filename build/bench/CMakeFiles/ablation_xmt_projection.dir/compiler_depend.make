# Empty compiler generated dependencies file for ablation_xmt_projection.
# This may be replaced when dependencies are built.
