file(REMOVE_RECURSE
  "CMakeFiles/table1_device_comparison.dir/table1_device_comparison.cpp.o"
  "CMakeFiles/table1_device_comparison.dir/table1_device_comparison.cpp.o.d"
  "table1_device_comparison"
  "table1_device_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_device_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
