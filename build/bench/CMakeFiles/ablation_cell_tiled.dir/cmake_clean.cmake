file(REMOVE_RECURSE
  "CMakeFiles/ablation_cell_tiled.dir/ablation_cell_tiled.cpp.o"
  "CMakeFiles/ablation_cell_tiled.dir/ablation_cell_tiled.cpp.o.d"
  "ablation_cell_tiled"
  "ablation_cell_tiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cell_tiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
