# Empty compiler generated dependencies file for ablation_cell_tiled.
# This may be replaced when dependencies are built.
