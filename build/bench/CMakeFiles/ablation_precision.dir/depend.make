# Empty dependencies file for ablation_precision.
# This may be replaced when dependencies are built.
