file(REMOVE_RECURSE
  "CMakeFiles/ablation_gpu_branching.dir/ablation_gpu_branching.cpp.o"
  "CMakeFiles/ablation_gpu_branching.dir/ablation_gpu_branching.cpp.o.d"
  "ablation_gpu_branching"
  "ablation_gpu_branching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gpu_branching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
