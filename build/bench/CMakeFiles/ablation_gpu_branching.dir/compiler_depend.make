# Empty compiler generated dependencies file for ablation_gpu_branching.
# This may be replaced when dependencies are built.
