file(REMOVE_RECURSE
  "CMakeFiles/fig5_simd_staircase.dir/fig5_simd_staircase.cpp.o"
  "CMakeFiles/fig5_simd_staircase.dir/fig5_simd_staircase.cpp.o.d"
  "fig5_simd_staircase"
  "fig5_simd_staircase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_simd_staircase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
