# Empty compiler generated dependencies file for fig5_simd_staircase.
# This may be replaced when dependencies are built.
