file(REMOVE_RECURSE
  "CMakeFiles/fig7_gpu_vs_cpu.dir/fig7_gpu_vs_cpu.cpp.o"
  "CMakeFiles/fig7_gpu_vs_cpu.dir/fig7_gpu_vs_cpu.cpp.o.d"
  "fig7_gpu_vs_cpu"
  "fig7_gpu_vs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gpu_vs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
