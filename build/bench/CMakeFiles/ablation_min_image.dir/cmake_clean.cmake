file(REMOVE_RECURSE
  "CMakeFiles/ablation_min_image.dir/ablation_min_image.cpp.o"
  "CMakeFiles/ablation_min_image.dir/ablation_min_image.cpp.o.d"
  "ablation_min_image"
  "ablation_min_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_min_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
