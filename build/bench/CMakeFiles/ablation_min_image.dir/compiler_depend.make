# Empty compiler generated dependencies file for ablation_min_image.
# This may be replaced when dependencies are built.
