file(REMOVE_RECURSE
  "CMakeFiles/ablation_cluster_scaling.dir/ablation_cluster_scaling.cpp.o"
  "CMakeFiles/ablation_cluster_scaling.dir/ablation_cluster_scaling.cpp.o.d"
  "ablation_cluster_scaling"
  "ablation_cluster_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cluster_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
