file(REMOVE_RECURSE
  "CMakeFiles/fig6_spe_launch_overhead.dir/fig6_spe_launch_overhead.cpp.o"
  "CMakeFiles/fig6_spe_launch_overhead.dir/fig6_spe_launch_overhead.cpp.o.d"
  "fig6_spe_launch_overhead"
  "fig6_spe_launch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_spe_launch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
