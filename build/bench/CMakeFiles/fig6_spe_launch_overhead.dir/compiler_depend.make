# Empty compiler generated dependencies file for fig6_spe_launch_overhead.
# This may be replaced when dependencies are built.
