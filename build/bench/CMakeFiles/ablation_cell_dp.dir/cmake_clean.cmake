file(REMOVE_RECURSE
  "CMakeFiles/ablation_cell_dp.dir/ablation_cell_dp.cpp.o"
  "CMakeFiles/ablation_cell_dp.dir/ablation_cell_dp.cpp.o.d"
  "ablation_cell_dp"
  "ablation_cell_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cell_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
