# Empty dependencies file for ablation_cell_dp.
# This may be replaced when dependencies are built.
