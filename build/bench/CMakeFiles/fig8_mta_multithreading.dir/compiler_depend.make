# Empty compiler generated dependencies file for fig8_mta_multithreading.
# This may be replaced when dependencies are built.
