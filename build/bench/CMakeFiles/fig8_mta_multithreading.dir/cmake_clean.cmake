file(REMOVE_RECURSE
  "CMakeFiles/fig8_mta_multithreading.dir/fig8_mta_multithreading.cpp.o"
  "CMakeFiles/fig8_mta_multithreading.dir/fig8_mta_multithreading.cpp.o.d"
  "fig8_mta_multithreading"
  "fig8_mta_multithreading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mta_multithreading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
