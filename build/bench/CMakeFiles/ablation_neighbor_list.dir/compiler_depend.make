# Empty compiler generated dependencies file for ablation_neighbor_list.
# This may be replaced when dependencies are built.
