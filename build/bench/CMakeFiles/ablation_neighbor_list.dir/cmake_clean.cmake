file(REMOVE_RECURSE
  "CMakeFiles/ablation_neighbor_list.dir/ablation_neighbor_list.cpp.o"
  "CMakeFiles/ablation_neighbor_list.dir/ablation_neighbor_list.cpp.o.d"
  "ablation_neighbor_list"
  "ablation_neighbor_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_neighbor_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
