# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/emdpa_core_tests[1]_include.cmake")
include("/root/repo/build/tests/emdpa_md_tests[1]_include.cmake")
include("/root/repo/build/tests/emdpa_cpu_tests[1]_include.cmake")
include("/root/repo/build/tests/emdpa_cell_tests[1]_include.cmake")
include("/root/repo/build/tests/emdpa_gpu_tests[1]_include.cmake")
include("/root/repo/build/tests/emdpa_mta_tests[1]_include.cmake")
include("/root/repo/build/tests/emdpa_driver_tests[1]_include.cmake")
include("/root/repo/build/tests/emdpa_integration_tests[1]_include.cmake")
