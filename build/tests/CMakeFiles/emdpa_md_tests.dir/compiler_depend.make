# Empty compiler generated dependencies file for emdpa_md_tests.
# This may be replaced when dependencies are built.
