
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/md/analysis_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/analysis_test.cpp.o.d"
  "/root/repo/tests/md/angles_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/angles_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/angles_test.cpp.o.d"
  "/root/repo/tests/md/bonded_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/bonded_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/bonded_test.cpp.o.d"
  "/root/repo/tests/md/box_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/box_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/box_test.cpp.o.d"
  "/root/repo/tests/md/cell_list_kernel_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/cell_list_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/cell_list_kernel_test.cpp.o.d"
  "/root/repo/tests/md/checkpoint_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/checkpoint_test.cpp.o.d"
  "/root/repo/tests/md/integrator_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/integrator_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/integrator_test.cpp.o.d"
  "/root/repo/tests/md/langevin_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/langevin_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/langevin_test.cpp.o.d"
  "/root/repo/tests/md/lj_potential_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/lj_potential_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/lj_potential_test.cpp.o.d"
  "/root/repo/tests/md/minimize_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/minimize_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/minimize_test.cpp.o.d"
  "/root/repo/tests/md/observables_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/observables_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/observables_test.cpp.o.d"
  "/root/repo/tests/md/particle_system_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/particle_system_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/particle_system_test.cpp.o.d"
  "/root/repo/tests/md/pressure_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/pressure_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/pressure_test.cpp.o.d"
  "/root/repo/tests/md/reference_kernel_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/reference_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/reference_kernel_test.cpp.o.d"
  "/root/repo/tests/md/simulation_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/simulation_test.cpp.o.d"
  "/root/repo/tests/md/thermostat_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/thermostat_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/thermostat_test.cpp.o.d"
  "/root/repo/tests/md/units_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/units_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/units_test.cpp.o.d"
  "/root/repo/tests/md/verlet_list_kernel_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/verlet_list_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/verlet_list_kernel_test.cpp.o.d"
  "/root/repo/tests/md/workload_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/workload_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/workload_test.cpp.o.d"
  "/root/repo/tests/md/xyz_writer_test.cpp" "tests/CMakeFiles/emdpa_md_tests.dir/md/xyz_writer_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_md_tests.dir/md/xyz_writer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellsim/CMakeFiles/emdpa_cellsim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/emdpa_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/mtasim/CMakeFiles/emdpa_mtasim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/emdpa_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/emdpa_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emdpa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
