# Empty dependencies file for emdpa_cpu_tests.
# This may be replaced when dependencies are built.
