file(REMOVE_RECURSE
  "CMakeFiles/emdpa_cpu_tests.dir/cpu/cache_model_test.cpp.o"
  "CMakeFiles/emdpa_cpu_tests.dir/cpu/cache_model_test.cpp.o.d"
  "CMakeFiles/emdpa_cpu_tests.dir/cpu/opteron_backend_test.cpp.o"
  "CMakeFiles/emdpa_cpu_tests.dir/cpu/opteron_backend_test.cpp.o.d"
  "CMakeFiles/emdpa_cpu_tests.dir/cpu/opteron_model_test.cpp.o"
  "CMakeFiles/emdpa_cpu_tests.dir/cpu/opteron_model_test.cpp.o.d"
  "emdpa_cpu_tests"
  "emdpa_cpu_tests.pdb"
  "emdpa_cpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_cpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
