# Empty dependencies file for emdpa_mta_tests.
# This may be replaced when dependencies are built.
