file(REMOVE_RECURSE
  "CMakeFiles/emdpa_mta_tests.dir/mtasim/full_empty_test.cpp.o"
  "CMakeFiles/emdpa_mta_tests.dir/mtasim/full_empty_test.cpp.o.d"
  "CMakeFiles/emdpa_mta_tests.dir/mtasim/mta_backend_test.cpp.o"
  "CMakeFiles/emdpa_mta_tests.dir/mtasim/mta_backend_test.cpp.o.d"
  "CMakeFiles/emdpa_mta_tests.dir/mtasim/parallel_loop_test.cpp.o"
  "CMakeFiles/emdpa_mta_tests.dir/mtasim/parallel_loop_test.cpp.o.d"
  "CMakeFiles/emdpa_mta_tests.dir/mtasim/stream_machine_test.cpp.o"
  "CMakeFiles/emdpa_mta_tests.dir/mtasim/stream_machine_test.cpp.o.d"
  "CMakeFiles/emdpa_mta_tests.dir/mtasim/xmt_backend_test.cpp.o"
  "CMakeFiles/emdpa_mta_tests.dir/mtasim/xmt_backend_test.cpp.o.d"
  "emdpa_mta_tests"
  "emdpa_mta_tests.pdb"
  "emdpa_mta_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_mta_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
