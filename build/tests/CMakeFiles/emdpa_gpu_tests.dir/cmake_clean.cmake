file(REMOVE_RECURSE
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/branch_model_test.cpp.o"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/branch_model_test.cpp.o.d"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/gpu_backend_test.cpp.o"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/gpu_backend_test.cpp.o.d"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/gpu_device_test.cpp.o"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/gpu_device_test.cpp.o.d"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/reduction_test.cpp.o"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/reduction_test.cpp.o.d"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/shader_compiler_test.cpp.o"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/shader_compiler_test.cpp.o.d"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/shader_test.cpp.o"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/shader_test.cpp.o.d"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/texture_test.cpp.o"
  "CMakeFiles/emdpa_gpu_tests.dir/gpusim/texture_test.cpp.o.d"
  "emdpa_gpu_tests"
  "emdpa_gpu_tests.pdb"
  "emdpa_gpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_gpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
