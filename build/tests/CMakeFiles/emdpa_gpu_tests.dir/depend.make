# Empty dependencies file for emdpa_gpu_tests.
# This may be replaced when dependencies are built.
