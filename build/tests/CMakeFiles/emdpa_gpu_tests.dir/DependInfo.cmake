
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gpusim/branch_model_test.cpp" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/branch_model_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/branch_model_test.cpp.o.d"
  "/root/repo/tests/gpusim/gpu_backend_test.cpp" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/gpu_backend_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/gpu_backend_test.cpp.o.d"
  "/root/repo/tests/gpusim/gpu_device_test.cpp" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/gpu_device_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/gpu_device_test.cpp.o.d"
  "/root/repo/tests/gpusim/reduction_test.cpp" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/reduction_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/reduction_test.cpp.o.d"
  "/root/repo/tests/gpusim/shader_compiler_test.cpp" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/shader_compiler_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/shader_compiler_test.cpp.o.d"
  "/root/repo/tests/gpusim/shader_test.cpp" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/shader_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/shader_test.cpp.o.d"
  "/root/repo/tests/gpusim/texture_test.cpp" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/texture_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_gpu_tests.dir/gpusim/texture_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellsim/CMakeFiles/emdpa_cellsim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/emdpa_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/mtasim/CMakeFiles/emdpa_mtasim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/emdpa_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/emdpa_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emdpa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
