file(REMOVE_RECURSE
  "CMakeFiles/emdpa_integration_tests.dir/integration/cross_backend_test.cpp.o"
  "CMakeFiles/emdpa_integration_tests.dir/integration/cross_backend_test.cpp.o.d"
  "CMakeFiles/emdpa_integration_tests.dir/integration/paper_claims_test.cpp.o"
  "CMakeFiles/emdpa_integration_tests.dir/integration/paper_claims_test.cpp.o.d"
  "CMakeFiles/emdpa_integration_tests.dir/integration/physics_properties_test.cpp.o"
  "CMakeFiles/emdpa_integration_tests.dir/integration/physics_properties_test.cpp.o.d"
  "emdpa_integration_tests"
  "emdpa_integration_tests.pdb"
  "emdpa_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
