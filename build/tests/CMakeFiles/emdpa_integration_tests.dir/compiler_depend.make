# Empty compiler generated dependencies file for emdpa_integration_tests.
# This may be replaced when dependencies are built.
