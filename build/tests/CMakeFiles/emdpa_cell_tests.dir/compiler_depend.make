# Empty compiler generated dependencies file for emdpa_cell_tests.
# This may be replaced when dependencies are built.
