file(REMOVE_RECURSE
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/cell_backend_test.cpp.o"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/cell_backend_test.cpp.o.d"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/cell_cluster_test.cpp.o"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/cell_cluster_test.cpp.o.d"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/cell_dp_test.cpp.o"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/cell_dp_test.cpp.o.d"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/dma_test.cpp.o"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/dma_test.cpp.o.d"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/local_store_test.cpp.o"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/local_store_test.cpp.o.d"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/mailbox_test.cpp.o"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/mailbox_test.cpp.o.d"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/spe_kernel_test.cpp.o"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/spe_kernel_test.cpp.o.d"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/spe_simd_test.cpp.o"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/spe_simd_test.cpp.o.d"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/tiled_kernel_test.cpp.o"
  "CMakeFiles/emdpa_cell_tests.dir/cellsim/tiled_kernel_test.cpp.o.d"
  "emdpa_cell_tests"
  "emdpa_cell_tests.pdb"
  "emdpa_cell_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_cell_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
