
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/aligned_buffer_test.cpp" "tests/CMakeFiles/emdpa_core_tests.dir/core/aligned_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_core_tests.dir/core/aligned_buffer_test.cpp.o.d"
  "/root/repo/tests/core/csv_test.cpp" "tests/CMakeFiles/emdpa_core_tests.dir/core/csv_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_core_tests.dir/core/csv_test.cpp.o.d"
  "/root/repo/tests/core/error_test.cpp" "tests/CMakeFiles/emdpa_core_tests.dir/core/error_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_core_tests.dir/core/error_test.cpp.o.d"
  "/root/repo/tests/core/op_counter_test.cpp" "tests/CMakeFiles/emdpa_core_tests.dir/core/op_counter_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_core_tests.dir/core/op_counter_test.cpp.o.d"
  "/root/repo/tests/core/random_test.cpp" "tests/CMakeFiles/emdpa_core_tests.dir/core/random_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_core_tests.dir/core/random_test.cpp.o.d"
  "/root/repo/tests/core/string_util_test.cpp" "tests/CMakeFiles/emdpa_core_tests.dir/core/string_util_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_core_tests.dir/core/string_util_test.cpp.o.d"
  "/root/repo/tests/core/table_test.cpp" "tests/CMakeFiles/emdpa_core_tests.dir/core/table_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_core_tests.dir/core/table_test.cpp.o.d"
  "/root/repo/tests/core/time_model_test.cpp" "tests/CMakeFiles/emdpa_core_tests.dir/core/time_model_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_core_tests.dir/core/time_model_test.cpp.o.d"
  "/root/repo/tests/core/vec_test.cpp" "tests/CMakeFiles/emdpa_core_tests.dir/core/vec_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_core_tests.dir/core/vec_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellsim/CMakeFiles/emdpa_cellsim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/emdpa_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/mtasim/CMakeFiles/emdpa_mtasim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/emdpa_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/emdpa_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emdpa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
