# Empty dependencies file for emdpa_core_tests.
# This may be replaced when dependencies are built.
