file(REMOVE_RECURSE
  "CMakeFiles/emdpa_core_tests.dir/core/aligned_buffer_test.cpp.o"
  "CMakeFiles/emdpa_core_tests.dir/core/aligned_buffer_test.cpp.o.d"
  "CMakeFiles/emdpa_core_tests.dir/core/csv_test.cpp.o"
  "CMakeFiles/emdpa_core_tests.dir/core/csv_test.cpp.o.d"
  "CMakeFiles/emdpa_core_tests.dir/core/error_test.cpp.o"
  "CMakeFiles/emdpa_core_tests.dir/core/error_test.cpp.o.d"
  "CMakeFiles/emdpa_core_tests.dir/core/op_counter_test.cpp.o"
  "CMakeFiles/emdpa_core_tests.dir/core/op_counter_test.cpp.o.d"
  "CMakeFiles/emdpa_core_tests.dir/core/random_test.cpp.o"
  "CMakeFiles/emdpa_core_tests.dir/core/random_test.cpp.o.d"
  "CMakeFiles/emdpa_core_tests.dir/core/string_util_test.cpp.o"
  "CMakeFiles/emdpa_core_tests.dir/core/string_util_test.cpp.o.d"
  "CMakeFiles/emdpa_core_tests.dir/core/table_test.cpp.o"
  "CMakeFiles/emdpa_core_tests.dir/core/table_test.cpp.o.d"
  "CMakeFiles/emdpa_core_tests.dir/core/time_model_test.cpp.o"
  "CMakeFiles/emdpa_core_tests.dir/core/time_model_test.cpp.o.d"
  "CMakeFiles/emdpa_core_tests.dir/core/vec_test.cpp.o"
  "CMakeFiles/emdpa_core_tests.dir/core/vec_test.cpp.o.d"
  "emdpa_core_tests"
  "emdpa_core_tests.pdb"
  "emdpa_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
