# Empty compiler generated dependencies file for emdpa_driver_tests.
# This may be replaced when dependencies are built.
