
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/driver/backend_factory_test.cpp" "tests/CMakeFiles/emdpa_driver_tests.dir/driver/backend_factory_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_driver_tests.dir/driver/backend_factory_test.cpp.o.d"
  "/root/repo/tests/driver/cli_options_test.cpp" "tests/CMakeFiles/emdpa_driver_tests.dir/driver/cli_options_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_driver_tests.dir/driver/cli_options_test.cpp.o.d"
  "/root/repo/tests/driver/report_test.cpp" "tests/CMakeFiles/emdpa_driver_tests.dir/driver/report_test.cpp.o" "gcc" "tests/CMakeFiles/emdpa_driver_tests.dir/driver/report_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellsim/CMakeFiles/emdpa_cellsim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/emdpa_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/mtasim/CMakeFiles/emdpa_mtasim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/emdpa_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/emdpa_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emdpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/emdpa_driver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
