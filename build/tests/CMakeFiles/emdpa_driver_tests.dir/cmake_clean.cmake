file(REMOVE_RECURSE
  "CMakeFiles/emdpa_driver_tests.dir/driver/backend_factory_test.cpp.o"
  "CMakeFiles/emdpa_driver_tests.dir/driver/backend_factory_test.cpp.o.d"
  "CMakeFiles/emdpa_driver_tests.dir/driver/cli_options_test.cpp.o"
  "CMakeFiles/emdpa_driver_tests.dir/driver/cli_options_test.cpp.o.d"
  "CMakeFiles/emdpa_driver_tests.dir/driver/report_test.cpp.o"
  "CMakeFiles/emdpa_driver_tests.dir/driver/report_test.cpp.o.d"
  "emdpa_driver_tests"
  "emdpa_driver_tests.pdb"
  "emdpa_driver_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdpa_driver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
