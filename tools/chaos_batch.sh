#!/usr/bin/env bash
# Kill-loop chaos harness for the supervised batch runtime.
#
# Proves the ISSUE's headline invariant end to end: SIGKILL `emdpa batch` at
# random times, as many times as it takes, and the batch still converges to
# the SAME final state an uninterrupted run produces — every job completed,
# every per-job final checkpoint bitwise identical to the reference run's.
# The write-ahead journal carries the supervision state across each death;
# the checkpoint seam carries the physics.
#
# Usage: chaos_batch.sh <path-to-emdpa-cli>
# Exit 0 on success; non-zero with a diagnostic on any violated invariant.
set -u

CLI="${1:?usage: chaos_batch.sh <path-to-emdpa-cli>}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

JOBS="a b c d e f g h"
MANIFEST="$WORK/manifest.txt"
{
  echo "# chaos harness: 8 jobs, mixed priorities/seeds"
  i=0
  for job in $JOBS; do
    i=$((i + 1))
    echo "chaos-$job atoms=256 steps=2000 seed=$i priority=$((i % 3))"
  done
} > "$MANIFEST"

run_batch() {
  dir="$1"
  shift
  "$CLI" batch --manifest "$MANIFEST" --checkpoint-dir "$dir" \
    --slice 100 --threads 2 --csv "$@"
}

# ---- Reference: one uninterrupted run.
REF="$WORK/ref"
if ! run_batch "$REF" > "$WORK/ref.csv"; then
  echo "chaos: FAIL - reference batch did not complete cleanly"
  exit 1
fi

# ---- Kill loop: fixed pseudo-random kill schedule (deterministic harness,
# random-looking kill points across the batch's lifetime).
CHAOS="$WORK/chaos"
kills=0
finished_early=0
for delay_ms in 130 270 90 410 60 330 180 240 450 110 370 200 80 300 500 150; do
  # Background the CLI binary directly — NOT via the run_batch function — so
  # $! is the emdpa pid itself.  Backgrounding a shell function forks a
  # subshell, and SIGKILLing that subshell orphans the still-running batch:
  # the next iteration would then race a second writer over the same
  # checkpoint directory, which is precisely the corruption this harness
  # exists to rule out.
  "$CLI" batch --manifest "$MANIFEST" --checkpoint-dir "$CHAOS" \
    --slice 100 --threads 2 --csv > /dev/null 2>&1 &
  pid=$!
  sleep "0.$(printf '%03d' "$delay_ms")"
  if ! kill -9 "$pid" 2>/dev/null; then
    # The batch beat the kill: it already converged.
    wait "$pid"
    status=$?
    if [ "$status" -ne 0 ]; then
      echo "chaos: FAIL - batch exited $status before the kill"
      exit 1
    fi
    finished_early=1
    break
  fi
  wait "$pid" 2>/dev/null
  kills=$((kills + 1))
done

# ---- Convergence: one clean rerun must finish whatever survived the kills.
if ! run_batch "$CHAOS" > "$WORK/chaos.csv"; then
  echo "chaos: FAIL - resume after $kills kills did not complete cleanly"
  cat "$WORK/chaos.csv"
  exit 1
fi

completed=$(awk -F, 'NR>1 && $3=="completed"' "$WORK/chaos.csv" | wc -l)
if [ "$completed" -ne 8 ]; then
  echo "chaos: FAIL - expected 8 completed jobs after $kills kills, got $completed"
  cat "$WORK/chaos.csv"
  exit 1
fi

# ---- The journal survived every kill: it must replay (the resumed runs
# already proved that implicitly) and record every job's completion.
for job in $JOBS; do
  if ! grep -q "done chaos-$job " "$CHAOS/batch.wal"; then
    echo "chaos: FAIL - journal has no completion record for chaos-$job"
    exit 1
  fi
done

# ---- The headline invariant: final checkpoints bitwise identical to the
# uninterrupted reference run.
for job in $JOBS; do
  if ! cmp -s "$REF/chaos-$job.ckpt" "$CHAOS/chaos-$job.ckpt"; then
    echo "chaos: FAIL - chaos-$job final checkpoint diverged from reference"
    exit 1
  fi
done

echo "chaos: PASS - $kills SIGKILLs (finished_early=$finished_early), 8/8 completed, checkpoints bitwise identical"
