// emdpa command-line driver: run any modelled architecture on any workload
// from the shell.
//
//   $ emdpa list
//   $ emdpa run --backend cell-8spe --atoms 2048 --steps 10
//   $ emdpa compare --atoms 1024 --csv
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>

#include "core/error.h"
#include "core/interrupt.h"
#include "core/string_util.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "driver/backend_factory.h"
#include "driver/bisect.h"
#include "driver/cli_options.h"
#include "driver/manifest.h"
#include "driver/report.h"
#include "md/job_scheduler.h"

namespace {

using namespace emdpa;

int run_one(const driver::CliOptions& options) {
  auto backend = driver::make_backend(options.backend);
  md::RunConfig config = options.run_config;
  if (!config.watch.empty()) config.watch_stream = &std::cout;
  const md::RunResult result = backend->run(config);
  std::cout << (options.csv ? driver::render_run_csv(result, config)
                            : driver::render_run_report(result, config));
  return 0;
}

int run_bisect(const driver::CliOptions& options) {
  driver::BisectOptions bisect;
  bisect.store_dir = options.run_config.store_dir;
  const auto make_side = [&](const driver::CliBisectSide& overrides,
                             const char* label) {
    driver::BisectSide side;
    side.config = options.run_config;
    side.config.store_dir.clear();  // run_bisect derives <store_dir>/<label>
    if (!side.config.watch.empty()) side.config.watch_stream = &std::cout;
    if (overrides.kernel) side.config.host_kernel = *overrides.kernel;
    if (overrides.precision) side.config.precision = *overrides.precision;
    if (overrides.simd_isa) side.config.simd_isa = overrides.simd_isa;
    side.threads = overrides.threads != 0 ? overrides.threads : options.threads;
    side.faults = overrides.faults;
    side.label = label;
    return side;
  };
  bisect.a = make_side(options.bisect_a, "a");
  bisect.b = make_side(options.bisect_b, "b");
  const driver::BisectReport report = driver::run_bisect(bisect);
  std::cout << driver::render_bisect_report(report);
  return 0;  // a located divergence is a successful bisection, not an error
}

int run_compare(const driver::CliOptions& options) {
  // Host rows execute for real (device_time is zero there): report their
  // wall clock and which kernel the simulation seam selected, so the
  // parallel path is visible next to the modelled devices.
  Table table({"backend", "precision", "model time (s)", "wall (s)", "kernel",
               "final total E"});
  std::vector<std::string> csv_lines = {
      "backend,precision,model_seconds,wall_seconds,host_kernel,final_total_e"};

  for (const auto& info : driver::available_backends()) {
    auto backend = driver::make_backend(info.key);
    std::string time_cell, wall_cell = "-", kernel_cell = "-", energy_cell;
    std::string precision_cell = backend->precision();
    try {
      const md::RunResult result = backend->run(options.run_config);
      time_cell = format_auto(result.device_time.to_seconds());
      energy_cell = format_fixed(result.energies.back().total(), 4);
      // Host rows report the precision mode the run actually used (dp, sp,
      // mixed) rather than the backend's static default.
      const auto precision = result.labels.find("precision");
      if (precision != result.labels.end()) {
        precision_cell = precision->second;
      }
      const auto wall = result.breakdown.find("host_wall");
      if (wall != result.breakdown.end()) {
        wall_cell = format_auto(wall->second.to_seconds());
      }
      const auto kernel_list = result.metadata.find("kernel_list");
      if (kernel_list != result.metadata.end()) {
        kernel_cell = kernel_list->second != 0.0 ? "list" : "n2";
        const auto threads = result.metadata.find("threads");
        if (threads != result.metadata.end()) {
          kernel_cell +=
              "@" + std::to_string(static_cast<long>(threads->second)) + "t";
        }
        const auto rebuilds = result.metadata.find("list_rebuilds");
        if (rebuilds != result.metadata.end()) {
          kernel_cell += "," +
                         std::to_string(static_cast<long>(rebuilds->second)) +
                         "rb";
        }
      }
    } catch (const std::exception& e) {
      time_cell = "error";
      energy_cell = e.what();
      if (energy_cell.size() > 40) energy_cell.resize(40);
    }
    table.add_row({info.key, precision_cell, time_cell, wall_cell,
                   kernel_cell, energy_cell});
    csv_lines.push_back(info.key + "," + precision_cell + "," + time_cell +
                        "," + wall_cell + "," + kernel_cell + "," +
                        energy_cell);
  }

  if (options.csv) {
    for (const auto& line : csv_lines) std::cout << line << "\n";
  } else {
    std::cout << table.to_string();
  }
  return 0;
}

int run_batch(const driver::CliOptions& options) {
  std::vector<md::JobSpec> jobs = driver::load_manifest(options.manifest_path);

  md::SchedulerOptions scheduler_options;
  scheduler_options.slice_steps = options.slice_steps;
  scheduler_options.max_in_flight = options.max_in_flight;
  scheduler_options.checkpoint_dir = options.checkpoint_dir;
  scheduler_options.retry.max_retries = options.max_retries;
  scheduler_options.retry.deadline_wall_seconds = options.job_deadline;
  scheduler_options.retry.slice_budget = options.job_slice_budget;
  scheduler_options.journal_path = options.journal_path;
  scheduler_options.pool = &ThreadPool::global();
  // SIGINT/SIGTERM latch (armed in main); polled between time slices, so a
  // signal drains the batch at the next slice boundary — every resident
  // job's suspend checkpoint is already on disk by then.
  scheduler_options.stop_requested = [] { return interrupt_requested(); };

  md::JobScheduler scheduler(std::move(jobs), scheduler_options);
  const md::BatchResult batch = scheduler.run();

  std::cout << (options.csv ? driver::render_batch_csv(batch)
                            : driver::render_batch_report(batch));

  if (batch.interrupted) {
    std::fprintf(stderr,
                 "emdpa: batch interrupted by %s; rerun the same command to "
                 "resume from the per-job checkpoints in %s\n",
                 interrupt_signal_name(interrupt_signal()),
                 options.checkpoint_dir.c_str());
    return 4;
  }
  // Quarantine means "this job could not be saved by its retry budget" —
  // operationally the same verdict as an isolated failure.
  return batch.count(md::JobStatus::kFailed) +
                 batch.count(md::JobStatus::kQuarantined) >
                 0
             ? 3
             : 0;
}

/// "emdpa: <what> [step 412, kernel neighbor-list, backend host-parallel]" —
/// the structured context layers attached while the failure unwound, when
/// there is any.
void print_failure(const char* prefix, const std::exception& e) {
  const ErrorContext* ctx = error_context(e);
  if (ctx != nullptr) {
    std::fprintf(stderr, "emdpa: %s%s [%s]\n", prefix, e.what(),
                 ctx->to_string().c_str());
  } else {
    std::fprintf(stderr, "emdpa: %s%s\n", prefix, e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string checkpoint_path;  // for the abort-path hint
  // Trap SIGINT/SIGTERM into the cooperative latch before any run starts:
  // runs and batches drain at the next step/slice boundary with their state
  // checkpointed, instead of dying mid-write (exit code 4, resumable).
  arm_interrupt_handlers();
  try {
    const driver::CliOptions options = driver::parse_cli(args);
    checkpoint_path = options.run_config.checkpoint_path;
    if (options.threads > 0 &&
        !ThreadPool::configure_global(options.threads)) {
      // Fail loudly if anything constructed the global pool before we got
      // here (e.g. a future static initializer) instead of silently running
      // with the wrong thread count.
      std::fprintf(stderr,
                   "emdpa: --threads ignored: the global thread pool was "
                   "already created\n");
      return 1;
    }
    switch (options.command) {
      case driver::CliCommand::kHelp:
        std::cout << driver::cli_usage();
        return 0;
      case driver::CliCommand::kList:
        for (const auto& info : driver::available_backends()) {
          std::printf("%-18s %s\n", info.key.c_str(), info.description.c_str());
        }
        return 0;
      case driver::CliCommand::kRun:
        return run_one(options);
      case driver::CliCommand::kCompare:
        return run_compare(options);
      case driver::CliCommand::kBatch:
        return run_batch(options);
      case driver::CliCommand::kBisect:
        return run_bisect(options);
    }
  } catch (const Interrupted& e) {
    // The backend checkpointed before unwinding (when a --checkpoint path
    // was configured); exit code 4 tells orchestrators "stopped on request,
    // resumable" — distinct from a crash (1) or bad physics (3).
    print_failure("", e);
    if (!checkpoint_path.empty()) {
      std::fprintf(stderr,
                   "emdpa: resume with --resume %s\n", checkpoint_path.c_str());
    }
    return 4;
  } catch (const NumericalFailure& e) {
    // The backend already attempted an emergency checkpoint (when a
    // --checkpoint path was configured and the state was still finite);
    // exit code 3 distinguishes "the physics went bad" from usage errors.
    print_failure("numerical failure: ", e);
    if (!checkpoint_path.empty()) {
      std::fprintf(stderr,
                   "emdpa: resume from the last good checkpoint with "
                   "--resume %s\n",
                   checkpoint_path.c_str());
    }
    return 3;
  } catch (const std::exception& e) {
    print_failure("", e);
    return 1;
  }
  return 0;
}
