// Quickstart: the smallest complete use of the library's public API.
//
// Builds a 256-atom Lennard-Jones fluid, integrates it with velocity Verlet
// using the reference N^2 force kernel, and prints the energy ledger —
// kinetic, potential and total — every few steps.  This is the paper's MD
// kernel (Figure 4) end to end.
//
//   $ ./quickstart
#include <cstdio>

#include "md/integrator.h"
#include "md/observables.h"
#include "md/reference_kernel.h"
#include "md/workload.h"

int main() {
  using namespace emdpa;

  // 1. Describe the workload: 256 atoms of LJ fluid at liquid density,
  //    thermal velocities at T* = 1.44 (all reduced units).
  md::WorkloadSpec spec;
  spec.n_atoms = 256;
  spec.density = 0.8442;
  spec.temperature = 1.44;

  md::Workload workload = md::make_lattice_workload(spec);
  std::printf("System: %zu atoms in a %.3f^3 box (reduced units)\n",
              workload.system.size(), workload.box.edge());

  // 2. Pick the interaction and the integrator.
  md::LjParams lj;     // epsilon = sigma = 1, cutoff = 2.5
  md::ReferenceKernel kernel;
  md::VelocityVerlet integrator(0.005);

  // 3. Prime (initial forces), then step, watching the energies.
  auto energies = integrator.prime(workload.system, workload.box, lj, kernel);
  std::printf("\n%6s  %12s  %12s  %12s  %10s\n", "step", "kinetic",
              "potential", "total", "temp");
  std::printf("%6d  %12.4f  %12.4f  %12.4f  %10.4f\n", 0, energies.kinetic,
              energies.potential, energies.total(),
              md::temperature_of(workload.system));

  for (int step = 1; step <= 50; ++step) {
    energies = integrator.step(workload.system, workload.box, lj, kernel);
    if (step % 10 == 0) {
      std::printf("%6d  %12.4f  %12.4f  %12.4f  %10.4f\n", step,
                  energies.kinetic, energies.potential, energies.total(),
                  md::temperature_of(workload.system));
    }
  }

  const Vec3d momentum = md::total_momentum_of(workload.system);
  std::printf("\nTotal momentum after 50 steps: (%.2e, %.2e, %.2e)"
              " — conserved.\n", momentum.x, momentum.y, momentum.z);
  return 0;
}
