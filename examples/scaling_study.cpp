// Workload-scaling scenario in the spirit of the paper's Figures 7-9: sweep
// the atom count and watch how each architecture model's runtime grows —
// the GPU amortising its per-step transfer costs, the Cell amortising its
// thread launches, the MTA tracking pure FLOP growth, and the Opteron
// bending upward as arrays spill out of cache.
//
//   $ ./scaling_study
#include <cstdio>
#include <vector>

#include "cellsim/cell_md_app.h"
#include "core/string_util.h"
#include "core/table.h"
#include "cpu/opteron_backend.h"
#include "gpusim/gpu_backend.h"
#include "md/backend.h"
#include "mtasim/mta_backend.h"

namespace {

// Steady-state per-step time: skip the first step, which carries one-time
// costs (the Cell's persistent-mode thread launches land there).
double per_step_seconds(const emdpa::md::RunResult& r) {
  emdpa::ModelTime sum;
  for (std::size_t s = 1; s < r.step_times.size(); ++s) sum += r.step_times[s];
  return sum.to_seconds() / static_cast<double>(r.step_times.size() - 1);
}

}  // namespace

int main() {
  using namespace emdpa;

  // The Cell column stops at 4096 atoms: beyond that, two full quadword
  // arrays no longer fit one SPE's 256 KB local store next to the program
  // image — the genuine porting limit of the paper's data layout.
  const std::vector<std::size_t> atom_counts = {256, 512, 1024, 2048, 4096};

  std::printf("Per-step model time (ms) across architectures\n\n");
  Table table({"atoms", "Opteron", "Cell 8 SPE", "GPU", "MTA-2"});

  for (const std::size_t n : atom_counts) {
    md::RunConfig cfg;
    cfg.workload.n_atoms = n;
    cfg.steps = 2;

    const double cpu = per_step_seconds(opteron::OpteronBackend().run(cfg));
    const double cell8 = per_step_seconds(cell::CellBackend().run(cfg));
    const double gpu = per_step_seconds(gpu::GpuBackend().run(cfg));
    const double mta = per_step_seconds(mta::MtaBackend().run(cfg));

    table.add_row({std::to_string(n), format_fixed(cpu * 1e3, 2),
                   format_fixed(cell8 * 1e3, 2), format_fixed(gpu * 1e3, 2),
                   format_fixed(mta * 1e3, 2)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Readings:\n"
      "  - GPU per-step time is nearly flat at small N (dispatch + PCIe\n"
      "    round-trip dominate) and quadratic at large N.\n"
      "  - The Cell column excludes thread launches (persistent mode after\n"
      "    the first step); it scales with N^2/8 plus a per-step PPE cost.\n"
      "  - The MTA is the slowest in absolute terms (200 MHz) but its\n"
      "    growth is exactly the pair-work growth — no cache cliffs.\n");
  return 0;
}
