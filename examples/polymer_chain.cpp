// Coarse-grained polymer in an LJ solvent — the bio-molecular flavour the
// paper's introduction motivates (bonded + non-bonded interactions), built
// on the high-level Simulation API with bonds, minimisation and analysis.
//
// A 32-bead harmonic chain is embedded in a solvent of free LJ atoms.  The
// initial random solvent packing is relaxed with the energy minimiser, then
// the system is thermalised and we track the polymer's end-to-end distance
// and radius of gyration — the classic chain observables.
//
//   $ ./polymer_chain
#include <cmath>
#include <cstdio>

#include "md/analysis.h"
#include "md/observables.h"
#include "md/simulation.h"

namespace {

using namespace emdpa;

double end_to_end(const md::ParticleSystem& system, const md::PeriodicBox& box,
                  std::size_t chain_beads) {
  // Walk the chain accumulating minimum-image bond vectors (the chain may
  // wrap around the box).
  Vec3d r{};
  for (std::size_t b = 0; b + 1 < chain_beads; ++b) {
    r += box.min_image(system.positions()[b + 1] - system.positions()[b]);
  }
  return length(r);
}

double radius_of_gyration(const md::ParticleSystem& system,
                          const md::PeriodicBox& box, std::size_t chain_beads) {
  // Unwrap the chain relative to bead 0, then the usual Rg.
  std::vector<Vec3d> unwrapped(chain_beads);
  unwrapped[0] = system.positions()[0];
  for (std::size_t b = 1; b < chain_beads; ++b) {
    unwrapped[b] = unwrapped[b - 1] +
                   box.min_image(system.positions()[b] -
                                 system.positions()[b - 1]);
  }
  Vec3d com{};
  for (const auto& p : unwrapped) com += p;
  com /= static_cast<double>(chain_beads);
  double sum = 0;
  for (const auto& p : unwrapped) sum += length_squared(p - com);
  return std::sqrt(sum / static_cast<double>(chain_beads));
}

}  // namespace

int main() {
  constexpr std::size_t kChainBeads = 32;

  md::Simulation::Options options;
  options.workload.n_atoms = 343;        // chain beads + solvent
  options.workload.density = 0.7;
  options.workload.temperature = 0.8;
  options.dt = 0.003;

  md::Simulation sim(options);

  // Re-thread the first kChainBeads atoms along a serpentine path through
  // the lattice (a permutation of their own sites, so no overlap with the
  // solvent): consecutive beads end up one lattice spacing apart, close to
  // the 0.97-sigma bond rest length of the usual bead-spring model.
  {
    const double spacing = sim.box().edge() / 7.0;  // 343 = 7^3 lattice
    for (std::size_t b = 0; b < kChainBeads; ++b) {
      const std::size_t iy = b / 7;
      const std::size_t iz = (iy % 2 == 0) ? b % 7 : 6 - (b % 7);
      sim.system().positions()[b] = {0.5 * spacing,
                                     (static_cast<double>(iy) + 0.5) * spacing,
                                     (static_cast<double>(iz) + 0.5) * spacing};
    }
  }

  md::BondTopology chain = md::BondTopology::linear_chain(kChainBeads,
                                                          /*stiffness=*/400.0,
                                                          /*rest_length=*/0.97);
  sim.set_bonds(chain);  // re-primes forces for the re-threaded positions

  // Mild backbone stiffness: angle terms preferring straight triples give
  // the chain a persistence length of a few beads.
  sim.set_angles(md::AngleTopology::chain_angles(kChainBeads,
                                                 /*stiffness=*/2.0,
                                                 /*rest_angle=*/3.14159265));

  // Relax the construction strain (stretched bonds: the lattice spacing is
  // 1.13 sigma vs the 0.97 rest length) with the full force field before
  // dynamics.
  {
    md::MinimizeOptions mo;
    mo.max_iterations = 200;
    mo.force_tolerance = 1.0;
    const auto r = sim.minimize(mo);
    std::printf("Minimisation: E %.1f -> %.1f in %d iterations\n",
                r.initial_energy, r.final_energy, r.iterations);
  }

  sim.set_thermostat(md::BerendsenThermostat(0.8, 0.1));

  std::printf("\n%8s  %8s  %12s  %12s  %10s\n", "step", "T*", "end-to-end",
              "Rg", "E total");
  for (int block = 0; block <= 10; ++block) {
    if (block > 0) sim.run(80);
    std::printf("%8ld  %8.3f  %12.3f  %12.3f  %10.2f\n", sim.current_step(),
                md::temperature_of(sim.system()),
                end_to_end(sim.system(), sim.box(), kChainBeads),
                radius_of_gyration(sim.system(), sim.box(), kChainBeads),
                sim.last_energies().total());
  }

  const double ree = end_to_end(sim.system(), sim.box(), kChainBeads);
  const double rg = radius_of_gyration(sim.system(), sim.box(), kChainBeads);
  std::printf("\nFinal chain: end-to-end %.2f sigma, Rg %.2f sigma "
              "(contour length %.1f)\n", ree, rg, (kChainBeads - 1) * 0.97);
  std::printf("A collapsed/ideal chain has Ree/contour << 1: %s.\n",
              ree / ((kChainBeads - 1) * 0.97) < 0.6 ? "as observed"
                                                     : "chain is stretched");
  return 0;
}
