// Liquid-structure analysis: validate that the simulated physics is a real
// Lennard-Jones liquid, using the high-level Simulation API plus the
// analysis and checkpoint modules.
//
//  1. Equilibrate a 512-atom LJ liquid at T* = 1.0 with a thermostat.
//  2. Accumulate the radial distribution function g(r) over production
//     snapshots — the first peak must sit near the LJ potential minimum
//     (2^(1/6) ~ 1.12 sigma).
//  3. Track the mean-squared displacement — a liquid diffuses, so MSD grows
//     roughly linearly in time.
//  4. Checkpoint mid-run and prove the resumed simulation continues
//     bit-identically.
//
//   $ ./liquid_structure
#include <cmath>
#include <cstdio>
#include <sstream>

#include "md/analysis.h"
#include "md/simulation.h"

int main() {
  using namespace emdpa;

  md::Simulation::Options options;
  options.workload.n_atoms = 512;
  options.workload.density = 0.8442;
  options.workload.temperature = 1.0;
  options.dt = 0.004;

  md::Simulation sim(options);
  sim.set_thermostat(md::BerendsenThermostat(1.0, 0.1));

  std::printf("Equilibrating 512-atom LJ liquid at T* = 1.0 ...\n");
  sim.run(300);
  sim.clear_thermostat();  // production in NVE

  // Production: g(r) + MSD + velocity autocorrelation.
  md::RadialDistribution rdf(200, sim.box().half_edge());
  md::MeanSquaredDisplacement msd(sim.system().positions(), sim.box());
  const std::vector<Vec3d> v0 = sim.system().velocities();

  std::printf("\n%8s  %10s  %10s  %12s\n", "step", "MSD", "VACF", "E total");
  const int production = 400;
  for (int s = 1; s <= production; ++s) {
    const auto e = sim.step();
    msd.update(sim.system());
    if (s % 10 == 0) rdf.accumulate(sim.system(), sim.box());
    if (s % 100 == 0) {
      std::printf("%8ld  %10.4f  %10.4f  %12.4f\n", sim.current_step(),
                  msd.value(), md::velocity_autocorrelation(v0, sim.system()),
                  e.total());
    }
  }

  const double peak = rdf.peak_location();
  std::printf("\ng(r) first peak at r = %.3f sigma (LJ minimum at %.3f)\n",
              peak, std::pow(2.0, 1.0 / 6.0));
  // Einstein relation: D = MSD / 6t.  A caged (solid) atom plateaus at the
  // vibration amplitude (~0.05 sigma^2); a liquid keeps diffusing.
  const double elapsed = production * options.dt;
  std::printf("MSD after %d production steps: %.3f sigma^2 "
              "(D* ~ %.4f) -> the system %s\n",
              production, msd.value(), msd.value() / (6.0 * elapsed),
              msd.value() > 0.15 ? "diffuses (liquid)" : "is frozen (solid)");

  // Checkpoint round trip: continue two copies and compare.
  std::stringstream checkpoint;
  sim.save(checkpoint);
  md::Simulation resumed = md::Simulation::resume(checkpoint, options);

  sim.run(10);
  resumed.run(10);
  double max_delta = 0.0;
  for (std::size_t i = 0; i < sim.system().size(); ++i) {
    max_delta = std::max(max_delta,
                         length(sim.system().positions()[i] -
                                resumed.system().positions()[i]));
  }
  std::printf("\nCheckpoint resume: max position deviation after 10 more "
              "steps = %.1e %s\n", max_delta,
              max_delta == 0.0 ? "(bit-identical)" : "");
  return 0;
}
