// Domain scenario: melting an argon crystal.
//
// A cold FCC-ish argon lattice is heated through its melting point with a
// Berendsen thermostat while we track temperature, energies and a simple
// structural order parameter (fraction of atoms still near their lattice
// sites).  The trajectory is written in XYZ format for visualisation.
// Demonstrates: workloads, the integrator, the thermostat extension,
// observables, unit conversion and trajectory output.
//
//   $ ./argon_melt [trajectory.xyz]
#include <cmath>
#include <cstdio>
#include <fstream>

#include "md/integrator.h"
#include "md/observables.h"
#include "md/reference_kernel.h"
#include "md/thermostat.h"
#include "md/units.h"
#include "md/workload.h"
#include "md/xyz_writer.h"

namespace {

/// Fraction of atoms within half a lattice spacing of their original site.
double crystalline_fraction(const emdpa::md::ParticleSystem& system,
                            const std::vector<emdpa::Vec3d>& sites,
                            const emdpa::md::PeriodicBox& box,
                            double half_spacing) {
  std::size_t ordered = 0;
  for (std::size_t i = 0; i < system.size(); ++i) {
    const emdpa::Vec3d dr = box.min_image(system.positions()[i] - sites[i]);
    if (length(dr) < half_spacing) ++ordered;
  }
  return static_cast<double>(ordered) / static_cast<double>(system.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace emdpa;
  using md::ArgonUnits;

  // Solid argon: cold and slightly denser than the liquid benchmark state.
  md::WorkloadSpec spec;
  spec.n_atoms = 343;  // 7^3 lattice, fully filled
  spec.density = 1.0;
  spec.temperature = 0.2;  // ~24 K
  md::Workload w = md::make_lattice_workload(spec);
  const std::vector<Vec3d> lattice_sites = w.system.positions();
  const double spacing = w.box.edge() / 7.0;

  md::LjParams lj;
  md::ReferenceKernel kernel;
  md::VelocityVerlet integrator(0.004);

  std::ofstream xyz_file(argc > 1 ? argv[1] : "argon_melt.xyz");
  md::XyzWriter trajectory(xyz_file, "Ar");

  std::printf("Melting a %zu-atom argon crystal (box %.2f sigma = %.1f A)\n\n",
              w.system.size(), w.box.edge(),
              ArgonUnits::length_to_angstrom(w.box.edge()));
  std::printf("%8s  %8s  %10s  %12s  %10s\n", "step", "T*", "T (K)",
              "E total", "crystal %");

  integrator.prime(w.system, w.box, lj, kernel);

  // Ramp the thermostat target from deep solid to well past melting
  // (argon melts at 83.8 K ~ T* = 0.7).
  const int total_steps = 600;
  for (int step = 0; step <= total_steps; ++step) {
    const double target = 0.2 + 1.0 * step / total_steps;  // T* 0.2 -> 1.2
    md::BerendsenThermostat thermostat(target, 0.05);
    const auto e = integrator.step(w.system, w.box, lj, kernel);
    thermostat.apply(w.system);

    if (step % 60 == 0) {
      const double t_star = md::temperature_of(w.system);
      const double order =
          crystalline_fraction(w.system, lattice_sites, w.box, 0.5 * spacing);
      std::printf("%8d  %8.3f  %10.1f  %12.3f  %9.1f%%\n", step, t_star,
                  ArgonUnits::temperature_to_kelvin(t_star), e.total(),
                  100.0 * order);
      trajectory.write_frame(
          w.system, "step " + std::to_string(step) + " T*=" +
                        std::to_string(t_star));
    }
  }

  const double final_order =
      crystalline_fraction(w.system, lattice_sites, w.box, 0.5 * spacing);
  std::printf("\nFinal crystalline fraction: %.0f%% — the lattice has %s.\n",
              100.0 * final_order, final_order < 0.5 ? "melted" : "survived");
  std::printf("Trajectory: %zu frames written.\n", trajectory.frames_written());
  return 0;
}
