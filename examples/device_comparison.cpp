// Device comparison: run one MD workload on every modelled architecture and
// print a Table-1-style summary — modelled runtime, time breakdown, and the
// physics agreement against the double-precision host reference.
//
//   $ ./device_comparison [n_atoms] [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "cellsim/cell_md_app.h"
#include "core/string_util.h"
#include "core/table.h"
#include "cpu/opteron_backend.h"
#include "gpusim/gpu_backend.h"
#include "md/backend.h"
#include "mtasim/mta_backend.h"
#include "mtasim/xmt_backend.h"

int main(int argc, char** argv) {
  using namespace emdpa;

  md::RunConfig cfg;
  cfg.workload.n_atoms = (argc > 1) ? std::strtoul(argv[1], nullptr, 10) : 1024;
  cfg.steps = (argc > 2) ? std::atoi(argv[2]) : 10;

  std::printf("Workload: %zu atoms, %d steps, LJ cutoff %.1f\n\n",
              cfg.workload.n_atoms, cfg.steps, cfg.lj.cutoff);

  // The golden run everything is compared against.
  const md::RunResult reference = md::HostReferenceBackend().run(cfg);

  std::vector<std::unique_ptr<md::MdBackend>> backends;
  backends.push_back(std::make_unique<opteron::OpteronBackend>());
  {
    cell::CellRunOptions one;
    one.n_spes = 1;
    backends.push_back(std::make_unique<cell::CellBackend>(one));
  }
  backends.push_back(std::make_unique<cell::CellBackend>());  // 8 SPEs
  {
    cell::CellRunOptions ppe;
    ppe.n_spes = 0;
    backends.push_back(std::make_unique<cell::CellBackend>(ppe));
  }
  backends.push_back(std::make_unique<gpu::GpuBackend>());
  backends.push_back(std::make_unique<mta::MtaBackend>());
  backends.push_back(std::make_unique<mta::MtaBackend>(
      mta::ThreadingMode::kPartiallyMultithreaded));
  backends.push_back(std::make_unique<mta::XmtBackend>());

  Table table({"backend", "precision", "model time (s)", "vs Opteron",
               "final |dE/E|"});

  double opteron_seconds = 0.0;
  for (const auto& backend : backends) {
    const md::RunResult r = backend->run(cfg);
    if (opteron_seconds == 0.0) opteron_seconds = r.device_time.to_seconds();

    const double e_ref = reference.energies.back().total();
    const double rel_err =
        std::fabs(r.energies.back().total() - e_ref) / std::fabs(e_ref);

    table.add_row({backend->name(), backend->precision(),
                   format_fixed(r.device_time.to_seconds(), 3),
                   format_fixed(opteron_seconds / r.device_time.to_seconds(), 2) + "x",
                   format_auto(rel_err)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Every backend integrates the identical initial condition; single-\n"
      "precision devices (Cell, GPU) agree with the double-precision\n"
      "reference to float accuracy, as the last column shows.\n");
  return 0;
}
