// The GPU device: parallel pixel pipelines executing a shader pass.
//
// Modelled part: NVIDIA GeForce 7900GTX (the paper's card) — 24 pixel
// pipelines at 650 MHz.  A pass executes the shader once per render-target
// texel; instances are spread across the pipelines, so pass compute time is
// total work cycles / pipelines / clock, plus a fixed per-pass dispatch
// overhead (API validation, state setup, rasteriser spin-up).
//
// Per-op effective cycle costs are calibrated: 2006 fragment programs on
// dependent-math gather loops reached a fraction of peak issue rate (long
// latency chains, un-coalesced dependent fetches), and the calibration
// (DESIGN.md §6) reproduces the paper's "almost 6x faster than the CPU at
// 2048 atoms" with the crossover at small N.
#pragma once

#include <vector>

#include "core/op_counter.h"
#include "core/time_model.h"
#include "gpusim/shader.h"
#include "gpusim/shader_compiler.h"

namespace emdpa::gpu {

struct GpuDeviceConfig {
  double clock_hz = 650.0e6;  ///< 7900GTX core clock
  int pixel_pipelines = 24;   ///< 7900GTX fragment pipes
  double cycles_per_vec4_op = 7.5;   ///< effective, dependent-chain code
  double cycles_per_scalar_op = 2.5; ///< co-issued half-rate
  double cycles_per_fetch = 40.0;    ///< dependent texture fetch, unhidden part
  ModelTime pass_dispatch_overhead = ModelTime::milliseconds(2.0);
};

struct PassResult {
  ModelTime compute_time;  ///< shader execution (excl. dispatch overhead)
  ModelTime dispatch_time; ///< fixed per-pass cost
  GpuWork work;            ///< dynamic op counts across all instances
  ModelTime total() const { return compute_time + dispatch_time; }
};

class GpuDevice {
 public:
  explicit GpuDevice(const GpuDeviceConfig& config = {},
                     const ShaderLimits& limits = {});

  const GpuDeviceConfig& config() const { return config_; }
  ShaderCompiler& compiler() { return compiler_; }

  /// Execute `shader` once per texel of `target` (first `instances` texels),
  /// gathering from `inputs`.  Binds/unbinds the textures around the pass so
  /// the stream restrictions are enforced.
  PassResult run_pass(const CompiledShader& shader,
                      const std::vector<Texture2D*>& inputs, Texture2D& target,
                      std::size_t instances);

 private:
  GpuDeviceConfig config_;
  ShaderCompiler compiler_;
};

}  // namespace emdpa::gpu
