#include "gpusim/branch_model.h"

#include <cmath>

#include "core/error.h"

namespace emdpa::gpu {

BranchingWorkEstimate estimate_branching_pass_work(
    const std::vector<emdpa::Vec4f>& positions, const md::PeriodicBoxF& box,
    const md::LjParamsT<float>& lj, std::size_t batch_size,
    const MdShaderOpSplit& split) {
  EMDPA_REQUIRE(batch_size > 0, "batch size must be positive");
  const std::size_t n = positions.size();
  const float cutoff_sq = lj.cutoff_squared();

  BranchingWorkEstimate est;

  for (std::size_t batch_start = 0; batch_start < n; batch_start += batch_size) {
    const std::size_t batch_end = std::min(n, batch_start + batch_size);
    const std::size_t in_batch = batch_end - batch_start;

    for (std::size_t j = 0; j < n; ++j) {
      // Prologue + branch overhead: every fragment, every iteration.
      est.work.fetches += in_batch;
      est.work.alu_vec4 += in_batch * split.prologue_vec4;
      est.work.alu_scalar +=
          in_batch * (split.prologue_scalar + split.branch_overhead_scalar);
      ++est.batch_iterations;

      // Does any fragment in the batch interact with atom j?
      bool any = false;
      for (std::size_t i = batch_start; i < batch_end && !any; ++i) {
        if (i == j) continue;
        const emdpa::Vec3f dr =
            box.min_image(positions[i].xyz() - positions[j].xyz());
        const float r2 = length_squared(dr);
        any = (r2 < cutoff_sq);
      }
      if (any) {
        // Lock-step: the whole batch executes the LJ block.
        est.work.alu_vec4 += in_batch * split.lj_vec4;
        est.work.alu_scalar += in_batch * split.lj_scalar;
        ++est.lj_blocks_executed;
      }
    }
  }
  return est;
}

}  // namespace emdpa::gpu
