#include "gpusim/texture.h"

#include <cmath>

namespace emdpa::gpu {

Texture2D::Texture2D(std::size_t width, std::size_t height, std::string name)
    : width_(width), height_(height), name_(std::move(name)),
      texels_(width * height) {
  EMDPA_REQUIRE(width > 0 && height > 0, "texture dimensions must be positive");
}

Texture2D Texture2D::for_elements(std::size_t count, std::string name) {
  EMDPA_REQUIRE(count > 0, "texture must hold at least one element");
  std::size_t w = 1;
  while (w * w < count) ++w;
  const std::size_t h = (count + w - 1) / w;
  return Texture2D(w, h, std::move(name));
}

std::vector<emdpa::Vec4f>& Texture2D::host_data() {
  EMDPA_REQUIRE(binding_ == TextureBinding::kUnbound,
                "host access to texture '" + name_ + "' while bound");
  return texels_;
}

const std::vector<emdpa::Vec4f>& Texture2D::host_data() const {
  EMDPA_REQUIRE(binding_ == TextureBinding::kUnbound,
                "host access to texture '" + name_ + "' while bound");
  return texels_;
}

void Texture2D::bind(TextureBinding binding) {
  EMDPA_REQUIRE(binding != TextureBinding::kUnbound, "use unbind()");
  EMDPA_REQUIRE(binding_ == TextureBinding::kUnbound,
                "texture '" + name_ + "' is already bound; an array cannot be "
                "both input and output of a shader pass");
  binding_ = binding;
}

const emdpa::Vec4f& Texture2D::sample(std::size_t texel) const {
  EMDPA_REQUIRE(binding_ == TextureBinding::kInput,
                "sampling texture '" + name_ + "' which is not bound as input");
  EMDPA_REQUIRE(texel < texels_.size(), "texture sample out of range");
  return texels_[texel];
}

void Texture2D::write(std::size_t texel, const emdpa::Vec4f& value) {
  EMDPA_REQUIRE(binding_ == TextureBinding::kRenderTarget,
                "writing texture '" + name_ + "' which is not the render target");
  EMDPA_REQUIRE(texel < texels_.size(), "render-target write out of range");
  texels_[texel] = value;
}

}  // namespace emdpa::gpu
