// Multi-pass GPU reduction — the alternative PE-summing strategy the paper
// evaluates and rejects ("this method introduces significant overheads").
//
// Because shader instances cannot communicate, summing N values on the GPU
// requires O(log N) gather passes: each pass sums blocks of 4 texels into
// one, ping-ponging between two textures, and every pass pays the fixed
// dispatch overhead.  The ablation bench (A1) quantifies exactly why the
// paper's readback-in-w trick wins.
#pragma once

#include "core/time_model.h"
#include "gpusim/gpu_device.h"
#include "gpusim/pcie.h"

namespace emdpa::gpu {

struct ReductionOutcome {
  float sum = 0;          ///< the reduced value (w channel)
  ModelTime gpu_time;     ///< all reduction passes (compute + dispatch)
  ModelTime readback_time;///< final 1-texel readback
  int passes = 0;
};

/// Sum the w component of the first `count` texels of `values` on the GPU
/// via 4:1 reduction passes, then read the single result back over PCIe.
/// `values` must be unbound.
ReductionOutcome reduce_w_on_gpu(GpuDevice& device, PcieBus& pcie,
                                 const Texture2D& values, std::size_t count);

}  // namespace emdpa::gpu
