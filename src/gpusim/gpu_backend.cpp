#include "gpusim/gpu_backend.h"

#include "gpusim/md_shader.h"
#include "gpusim/reduction.h"
#include "md/observables.h"

namespace emdpa::gpu {

const char* to_string(PeStrategy s) {
  switch (s) {
    case PeStrategy::kReadbackInW: return "pe-readback-in-w";
    case PeStrategy::kGpuReduction: return "pe-gpu-reduction";
  }
  return "unknown";
}

GpuBackend::GpuBackend(const GpuRunOptions& options,
                       const GpuDeviceConfig& device, const PcieConfig& pcie)
    : options_(options), device_config_(device), pcie_config_(pcie) {}

std::string GpuBackend::name() const {
  std::string n = "gpu-7900gtx";
  if (options_.pe_strategy == PeStrategy::kGpuReduction) n += "[reduction]";
  return n;
}

md::RunResult GpuBackend::run(const md::RunConfig& run_config) {
  EMDPA_REQUIRE(!run_config.lj.shifted,
                "the GPU port implements the paper's truncated LJ only");

  md::Workload workload = md::make_lattice_workload(run_config.workload);
  md::ParticleSystemF system = workload.system.cast<float>();
  const md::PeriodicBoxF box(static_cast<float>(workload.box.edge()));
  const auto lj = run_config.lj.cast<float>();
  const std::size_t n = system.size();
  const float dt = static_cast<float>(run_config.dt);
  const float half_dt = 0.5f * dt;

  for (auto& p : system.positions()) p = box.wrap(p);

  GpuDevice device(device_config_);
  PcieBus pcie(pcie_config_);
  const ClockDomain host_clock(host_.clock_hz);

  // One-time startup: GPU context + JIT compile with the constants baked in.
  MdShaderConstants constants;
  constants.box_edge = box.edge();
  constants.cutoff_sq = lj.cutoff_squared();
  constants.epsilon = lj.epsilon;
  constants.sigma = lj.sigma;
  constants.inv_mass = 1.0f / system.mass();
  constants.n_atoms = static_cast<std::uint32_t>(n);

  MdAccelShader shader(constants);
  const CompiledShader compiled =
      device.compiler().compile(shader, shader.static_instruction_estimate());
  const ModelTime startup =
      ModelTime::milliseconds(300.0) + compiled.compile_time;  // context + JIT

  Texture2D positions = Texture2D::for_elements(n, "positions");
  Texture2D accelerations = Texture2D::for_elements(n, "accelerations");

  md::RunResult result;
  result.backend_name = name();
  ModelTime t_upload, t_pass, t_readback, t_host, t_reduction;

  auto host_integration_time = [&]() {
    return host_clock.to_time(CycleCount(static_cast<double>(n) *
                                         host_.integration_flops_per_atom *
                                         host_.cpi));
  };

  // One acceleration evaluation at current positions; returns (PE, time).
  auto evaluate = [&]() -> std::pair<float, ModelTime> {
    ModelTime elapsed;

    // Upload positions.
    {
      auto& tex = positions.host_data();
      for (std::size_t i = 0; i < n; ++i) {
        tex[i] = emdpa::Vec4f(system.positions()[i], 0.0f);
      }
      const ModelTime t = pcie.upload(n * sizeof(emdpa::Vec4f));
      t_upload += t;
      elapsed += t;
    }

    // The acceleration pass.
    {
      const PassResult pass = device.run_pass(compiled, {&positions},
                                              accelerations, n);
      t_pass += pass.total();
      elapsed += pass.total();
      result.ops.add("gpu.fetches", pass.work.fetches);
      result.ops.add("gpu.alu_vec4", pass.work.alu_vec4);
      result.ops.add("gpu.passes");
    }

    float pe = 0.0f;

    if (options_.pe_strategy == PeStrategy::kGpuReduction) {
      // Rejected alternative: sum PE on the GPU first (extra passes), then
      // read back both the scalar and the accelerations.
      const ReductionOutcome red = reduce_w_on_gpu(device, pcie, accelerations, n);
      t_reduction += red.gpu_time + red.readback_time;
      elapsed += red.gpu_time + red.readback_time;
      result.ops.add("gpu.reduction_passes",
                     static_cast<std::uint64_t>(red.passes));
      pe = red.sum;
    }

    // Read the accelerations back (needed by the CPU integrator either way).
    {
      const ModelTime t = pcie.readback(n * sizeof(emdpa::Vec4f));
      t_readback += t;
      elapsed += t;
      const auto& tex = accelerations.host_data();
      for (std::size_t i = 0; i < n; ++i) {
        system.accelerations()[i] = tex[i].xyz();
      }
      if (options_.pe_strategy == PeStrategy::kReadbackInW) {
        // The free ride: PE contributions arrive in w; the CPU sums them in
        // linear time (it is "well suited to this scalar task").
        pe = 0.0f;
        for (std::size_t i = 0; i < n; ++i) pe += tex[i].w;
        const ModelTime t_sum = host_clock.to_time(CycleCount(
            static_cast<double>(n) * host_.pe_sum_flops_per_atom * host_.cpi));
        t_host += t_sum;
        elapsed += t_sum;
      }
    }

    return {pe, elapsed};
  };

  // Prime (untimed, as in the other backends).
  {
    auto [pe, ignored] = evaluate();
    (void)ignored;
    t_upload = t_pass = t_readback = t_host = t_reduction = ModelTime::zero();
    result.energies.push_back({md::kinetic_energy_of(system), pe});
  }

  ModelTime total;
  for (int step = 0; step < run_config.steps; ++step) {
    ModelTime step_time;

    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    for (std::size_t i = 0; i < n; ++i) {
      system.positions()[i] =
          box.wrap(system.positions()[i] + system.velocities()[i] * dt);
    }
    const ModelTime t_int = host_integration_time();
    t_host += t_int;
    step_time += t_int;

    auto [pe, accel_time] = evaluate();
    step_time += accel_time;

    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    result.energies.push_back({md::kinetic_energy_of(system), pe});

    result.step_times.push_back(step_time);
    total += step_time;
  }

  result.device_time = total;
  result.breakdown["startup"] = startup;  // excluded from device_time (paper)
  result.breakdown["pcie_upload"] = t_upload;
  result.breakdown["gpu_pass"] = t_pass;
  result.breakdown["pcie_readback"] = t_readback;
  result.breakdown["host"] = t_host;
  if (options_.pe_strategy == PeStrategy::kGpuReduction) {
    result.breakdown["pe_reduction"] = t_reduction;
  }
  result.ops.add("pcie.bytes_up", pcie.bytes_uploaded());
  result.ops.add("pcie.bytes_down", pcie.bytes_read_back());
  result.final_state = system.cast<double>();
  return result;
}

}  // namespace emdpa::gpu
