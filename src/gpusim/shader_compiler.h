// Shader "JIT compiler" model.
//
// The paper compiles its Cg shader at program initialisation, baking the
// simulation constants into the program source ("the constants were compiled
// into the shader program source using the provided JIT compiler").  We
// model the interface contract of that step: resource-limit validation
// (input samplers, render targets, instruction count) against the
// Shader-Model-3.0 limits of the target part, and a one-time compilation
// cost that the backend reports as startup (excluded from per-step timing,
// as in the paper).
#pragma once

#include <cstdint>
#include <string>

#include "core/time_model.h"
#include "gpusim/shader.h"

namespace emdpa::gpu {

/// Shader-Model-3.0 resource limits (GeForce 6/7 class hardware).
struct ShaderLimits {
  std::size_t max_input_textures = 16;
  std::size_t max_render_targets = 4;
  std::uint64_t max_static_instructions = 512;  ///< PS3.0 static program size
  /// Per-instance dynamic instruction limit.  PS3.0 guarantees 65535; the
  /// GeForce 7 series executes far longer loops in practice, which the
  /// paper's full-N gather loop relies on.
  std::uint64_t max_executed_instructions = 1u << 24;
};

/// What the driver hands back after compiling.
struct CompiledShader {
  ShaderProgram* program = nullptr;  ///< non-owning
  std::uint64_t static_instructions = 0;
  ModelTime compile_time;
};

class ShaderCompiler {
 public:
  explicit ShaderCompiler(const ShaderLimits& limits = {}) : limits_(limits) {}

  const ShaderLimits& limits() const { return limits_; }

  /// Validate and "compile" a program whose emitted static body is
  /// `static_instructions` long.  Throws ContractViolation when the program
  /// exceeds the part's limits (the real driver refuses such shaders).
  CompiledShader compile(ShaderProgram& program,
                         std::uint64_t static_instructions) const;

  /// Check a pass's dynamic per-instance work against the execution limit
  /// (older parts kill shaders that run too long).
  void check_dynamic_limit(std::uint64_t executed_instructions) const;

 private:
  ShaderLimits limits_;
};

}  // namespace emdpa::gpu
