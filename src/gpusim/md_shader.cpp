#include "gpusim/md_shader.h"

#include <algorithm>
#include <cmath>

namespace emdpa::gpu {

namespace {

/// Closest periodic image of one displacement component, in the same
/// select-based form and candidate order as the Cell kernels (so results are
/// bit-identical across the two device models).
inline float closest_image(float d, float edge) {
  float best = d;
  float best_abs = std::fabs(d);
  for (const float shift : {edge, -edge}) {
    const float cand = d + shift;
    const float cand_abs = std::fabs(cand);
    const bool closer = cand_abs < best_abs;
    best = closer ? cand : best;
    best_abs = closer ? cand_abs : best_abs;
  }
  return best;
}

}  // namespace

MdAccelShader::MdAccelShader(const MdShaderConstants& constants) : c_(constants) {}

emdpa::Vec4f MdAccelShader::execute(ShaderContext& ctx) {
  const std::size_t i = ctx.output_texel();
  const emdpa::Vec4f pi = ctx.fetch(0, i);

  const float sigma2 = c_.sigma * c_.sigma;
  const float eps24 = 24.0f * c_.epsilon;
  const float eps2 = 2.0f * c_.epsilon;

  float acc_x = 0, acc_y = 0, acc_z = 0, pe = 0;

  for (std::uint32_t j = 0; j < c_.n_atoms; ++j) {
    const emdpa::Vec4f pj = ctx.fetch(0, j);  // gather: any input location

    // Direction + minimum image (select form, three axes vectorised).
    const float dx = closest_image(pi.x - pj.x, c_.box_edge);
    const float dy = closest_image(pi.y - pj.y, c_.box_edge);
    const float dz = closest_image(pi.z - pj.z, c_.box_edge);
    ctx.count_vec4(1 + 11);  // subtract + image search (abs/cmp/sel ladder)

    const float r2 = dx * dx + dy * dy + dz * dz;
    ctx.count_vec4(2);  // mul + dp3-style reduction

    // Predication mask: in cutoff AND not the self-pair (r2 == 0).
    const float mask = (r2 < c_.cutoff_sq && r2 > 0.0f) ? 1.0f : 0.0f;
    ctx.count_scalar(2);

    // LJ contribution, computed unconditionally (predicated execution).
    // Masked-out lanes substitute a benign separation so the polynomial
    // stays finite (otherwise inf * 0 would poison the accumulator with
    // NaN — the standard fencing in real shaders).
    const float r2_safe = (mask != 0.0f) ? r2 : 1.0f;
    const float inv_r2 = 1.0f / r2_safe;
    const float s2 = sigma2 * inv_r2;
    const float s6 = s2 * s2 * s2;
    const float f_over_r = eps24 * inv_r2 * s6 * (2.0f * s6 - 1.0f);
    ctx.count_vec4(8);
    ctx.count_scalar(3);

    acc_x += f_over_r * dx * mask;
    acc_y += f_over_r * dy * mask;
    acc_z += f_over_r * dz * mask;
    pe += eps2 * s6 * (s6 - 1.0f) * mask;  // half pair energy
    ctx.count_vec4(1);   // mad into the acceleration accumulator
    ctx.count_scalar(2); // pe mad + loop bookkeeping
  }

  return {acc_x * c_.inv_mass, acc_y * c_.inv_mass, acc_z * c_.inv_mass, pe};
}

}  // namespace emdpa::gpu
