// Analytic 7900GTX price of the section-3.4 pairlist trade-off.
//
// The 2006 GPU port's strength is exactly what a pairlist takes away: the
// N^2 shader reads neighbour positions in the same order from every
// fragment, so the texture cache broadcasts each texel and the fetch cost
// is mostly hidden.  A pairlist shader must first fetch its list texel and
// then fetch the position it points at — two *dependent*, un-coalesced
// fetches per entry at the full unhidden latency — and the list texture has
// to come across PCIe after every CPU-side rebuild.  On top of the per-step
// PCIe floor (positions up, accelerations back, pass dispatch) that makes
// the GPU the architecture with the least to gain from the list.
//
// Modelled shape (per directed event):
//  * N^2 candidate: 6 vec4 ops + 1 coherent fetch at 25% of
//    cycles_per_fetch (broadcast across the pipelines' shared cache).
//  * pairlist entry: 6 vec4 ops + 2 dependent fetches at cycles_per_fetch.
//  * both: one pass dispatch, position upload and acceleration readback
//    per step (16 bytes/atom each way, the RGBA32F texel).
//  * pairlist: amortised CPU rebuild (31 host ops per cell-grid test at
//    ~1 ns each) and list upload per rebuild.
#pragma once

#include "core/time_model.h"
#include "gpusim/gpu_device.h"
#include "gpusim/pcie.h"
#include "md/pairlist_cost.h"

namespace emdpa::gpu {

/// One force evaluation of the on-the-fly N^2 shader, PCIe round trip
/// included.
ModelTime gpu_n2_step_time(const GpuDeviceConfig& device,
                           const PcieConfig& pcie,
                           const md::PairlistStepWork& work);

/// The same evaluation through a pairlist shader (dependent gather), CPU
/// rebuild and list upload amortised.
ModelTime gpu_pairlist_step_time(const GpuDeviceConfig& device,
                                 const PcieConfig& pcie,
                                 const md::PairlistStepWork& work);

}  // namespace emdpa::gpu
