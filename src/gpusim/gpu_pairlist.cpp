#include "gpusim/gpu_pairlist.h"

namespace emdpa::gpu {

namespace {

constexpr double kBytesPerTexel = 16.0;     // RGBA32F
constexpr double kBytesPerListEntry = 4.0;  // index texel component

constexpr double kVec4OpsPerCandidate = 6.0;
constexpr double kCoherentFetchFraction = 0.25;  // broadcast-cached N^2 fetch
constexpr double kDependentFetchesPerEntry = 2.0;

// CPU-side list rebuild: ~31 host ops per cell-grid distance test at a
// 2006-class core's effective throughput.
constexpr double kHostSecondsPerBuildTest = 31.0 / 2.2e9;

ModelTime shader_time(const GpuDeviceConfig& device, double cycles) {
  return ModelTime::seconds(
      cycles / (device.clock_hz * static_cast<double>(device.pixel_pipelines)));
}

ModelTime step_pcie(const PcieConfig& pcie, std::size_t n_atoms) {
  PcieBus bus(pcie);
  const auto bytes = static_cast<std::size_t>(
      static_cast<double>(n_atoms) * kBytesPerTexel);
  return bus.upload(bytes) + bus.readback(bytes);
}

}  // namespace

ModelTime gpu_n2_step_time(const GpuDeviceConfig& device,
                           const PcieConfig& pcie,
                           const md::PairlistStepWork& work) {
  const double per_candidate =
      kVec4OpsPerCandidate * device.cycles_per_vec4_op +
      kCoherentFetchFraction * device.cycles_per_fetch;
  ModelTime time =
      shader_time(device, per_candidate * work.candidates_directed);
  time += device.pass_dispatch_overhead;
  time += step_pcie(pcie, work.n_atoms);
  return time;
}

ModelTime gpu_pairlist_step_time(const GpuDeviceConfig& device,
                                 const PcieConfig& pcie,
                                 const md::PairlistStepWork& work) {
  const double per_entry =
      kVec4OpsPerCandidate * device.cycles_per_vec4_op +
      kDependentFetchesPerEntry * device.cycles_per_fetch;
  ModelTime time =
      shader_time(device, per_entry * work.list_entries_directed);
  time += device.pass_dispatch_overhead;
  time += step_pcie(pcie, work.n_atoms);

  // Amortised CPU rebuild + list texture upload.
  PcieBus bus(pcie);
  ModelTime rebuild = ModelTime::seconds(kHostSecondsPerBuildTest *
                                         work.build_tests_directed);
  rebuild += bus.upload(static_cast<std::size_t>(work.list_entries_directed *
                                                 kBytesPerListEntry));
  time += rebuild * (1.0 / work.rebuild_period_steps);
  return time;
}

}  // namespace emdpa::gpu
