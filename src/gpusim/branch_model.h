// Dynamic-branching cost model for the MD shader (ablation support).
//
// Shader Model 3.0 introduced real data-dependent branching, but on the
// GeForce 6/7 fragment pipelines branches are only profitable when *whole
// batches* of fragments take the same path: the hardware evaluates a batch
// in lock-step, and if any fragment in the batch needs the taken path, the
// entire batch executes it.  For the MD gather loop the candidate test is
// per-(atom, j) and interacting pairs are scattered, so for realistic batch
// sizes some fragment nearly always interacts and the "skipped" LJ math is
// executed anyway — plus the per-iteration branch overhead.  This module
// computes the batch-coherent work counts exactly from the positions, which
// the ablation bench compares against the predicated shader the paper
// (implicitly, as all 2006 GPGPU codes did) uses.
#pragma once

#include <cstddef>
#include <vector>

#include "core/vec4.h"
#include "gpusim/shader.h"
#include "md/box.h"
#include "md/lj_potential.h"

namespace emdpa::gpu {

struct BranchingWorkEstimate {
  GpuWork work;
  std::uint64_t batch_iterations = 0;      ///< batches x loop trips
  std::uint64_t lj_blocks_executed = 0;    ///< of those, LJ path taken
  double taken_fraction() const {
    return batch_iterations == 0
               ? 0.0
               : static_cast<double>(lj_blocks_executed) /
                     static_cast<double>(batch_iterations);
  }
};

/// Per-candidate op counts of the MD shader split into the always-executed
/// prologue (fetch, direction, image search, length, cutoff test) and the
/// branch-guarded LJ block, matching MdAccelShader's counts.
struct MdShaderOpSplit {
  std::uint64_t prologue_vec4 = 14;   // direction + image search + length
  std::uint64_t prologue_scalar = 2;  // mask computation
  /// Per-iteration cost of the branch itself: condition evaluation plus the
  /// divergence bookkeeping the fragment scheduler performs per batch
  /// iteration (G7x dynamic branching was never free).
  std::uint64_t branch_overhead_scalar = 6;
  std::uint64_t lj_vec4 = 9;          // LJ polynomial + accumulate
  std::uint64_t lj_scalar = 5;
};

/// Compute the exact work of a dynamic-branching acceleration pass over
/// `positions` with fragment batches of `batch_size` consecutive atoms:
/// iteration j of a batch executes the LJ block iff any atom in the batch
/// has atom j inside the cutoff.
BranchingWorkEstimate estimate_branching_pass_work(
    const std::vector<emdpa::Vec4f>& positions, const md::PeriodicBoxF& box,
    const md::LjParamsT<float>& lj, std::size_t batch_size,
    const MdShaderOpSplit& split = {});

}  // namespace emdpa::gpu
