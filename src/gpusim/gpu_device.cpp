#include "gpusim/gpu_device.h"

#include <cmath>

namespace emdpa::gpu {

GpuDevice::GpuDevice(const GpuDeviceConfig& config, const ShaderLimits& limits)
    : config_(config), compiler_(limits) {
  EMDPA_REQUIRE(config.pixel_pipelines > 0, "device needs at least one pipeline");
}

PassResult GpuDevice::run_pass(const CompiledShader& shader,
                               const std::vector<Texture2D*>& inputs,
                               Texture2D& target, std::size_t instances) {
  EMDPA_REQUIRE(shader.program != nullptr, "shader was not compiled");
  EMDPA_REQUIRE(instances <= target.texel_count(),
                "more instances than render-target texels");
  EMDPA_REQUIRE(inputs.size() == shader.program->input_count(),
                "bound input count does not match the shader's samplers");

  for (Texture2D* tex : inputs) tex->bind(TextureBinding::kInput);
  target.bind(TextureBinding::kRenderTarget);

  std::vector<const Texture2D*> input_view(inputs.begin(), inputs.end());

  PassResult result;
  std::uint64_t max_instance_instr = 0;
  for (std::size_t texel = 0; texel < instances; ++texel) {
    GpuWork instance_work;
    ShaderContext ctx(input_view, texel, instance_work);
    const emdpa::Vec4f out = shader.program->execute(ctx);
    target.write(texel, out);

    const std::uint64_t executed =
        instance_work.alu_vec4 + instance_work.alu_scalar + instance_work.fetches;
    max_instance_instr = std::max(max_instance_instr, executed);
    result.work += instance_work;
  }
  compiler_.check_dynamic_limit(max_instance_instr);

  for (Texture2D* tex : inputs) tex->unbind();
  target.unbind();

  const double total_cycles =
      static_cast<double>(result.work.alu_vec4) * config_.cycles_per_vec4_op +
      static_cast<double>(result.work.alu_scalar) * config_.cycles_per_scalar_op +
      static_cast<double>(result.work.fetches) * config_.cycles_per_fetch;
  result.compute_time = ClockDomain(config_.clock_hz)
                            .to_time(CycleCount(total_cycles /
                                                static_cast<double>(
                                                    config_.pixel_pipelines)));
  result.dispatch_time = config_.pass_dispatch_overhead;
  return result;
}

}  // namespace emdpa::gpu
