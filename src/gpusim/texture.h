// GPU texture model.
//
// 2006-era GPGPU stores arrays as 2D RGBA float textures.  A texture bound
// as a shader input is read-only; a texture bound as the render target is
// write-only, and each shader instance may write only its own designated
// texel.  Those stream restrictions ("arrays must be designated as either
// input or output, but not both") are enforced structurally by the binding
// state here: binding a texture both ways, or writing through an input
// binding, throws.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/vec4.h"

namespace emdpa::gpu {

enum class TextureBinding { kUnbound, kInput, kRenderTarget };

class Texture2D {
 public:
  /// Create a width x height RGBA32F texture, zero-initialised.
  Texture2D(std::size_t width, std::size_t height, std::string name);

  /// Smallest square-ish texture holding `count` texels (GPGPU layout).
  static Texture2D for_elements(std::size_t count, std::string name);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t texel_count() const { return texels_.size(); }
  std::size_t bytes() const { return texels_.size() * sizeof(emdpa::Vec4f); }
  const std::string& name() const { return name_; }

  TextureBinding binding() const { return binding_; }

  /// Host-side access (CPU upload/download paths only — a texture must be
  /// unbound, as the driver requires).
  std::vector<emdpa::Vec4f>& host_data();
  const std::vector<emdpa::Vec4f>& host_data() const;

  // Binding state transitions (performed by the device at pass setup).
  void bind(TextureBinding binding);
  void unbind() { binding_ = TextureBinding::kUnbound; }

  /// Device-side sampled read; texture must be bound as an input.
  const emdpa::Vec4f& sample(std::size_t texel) const;

  /// Device-side render-target write; texture must be bound as the target.
  void write(std::size_t texel, const emdpa::Vec4f& value);

 private:
  std::size_t width_;
  std::size_t height_;
  std::string name_;
  std::vector<emdpa::Vec4f> texels_;
  TextureBinding binding_ = TextureBinding::kUnbound;
};

}  // namespace emdpa::gpu
