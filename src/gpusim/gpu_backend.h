// MdBackend implementation for the GPU-accelerated system (section 5.2).
//
// The CPU (the paper's 2.2 GHz Opteron host) runs the integrator in single
// precision; step 2 is offloaded to the GPU: upload positions, one shader
// pass computing accelerations (+ per-atom PE in w), read the texture back,
// sum PE linearly on the CPU.  The one-time startup (context + shader JIT)
// is reported in the breakdown but excluded from device_time, exactly as
// the paper excludes it from Fig 7.
#pragma once

#include "gpusim/gpu_device.h"
#include "gpusim/pcie.h"
#include "md/backend.h"

namespace emdpa::gpu {

/// How the per-step potential-energy sum reaches the host.
enum class PeStrategy {
  kReadbackInW,   ///< the paper's choice: free ride in the acceleration w
  kGpuReduction,  ///< the rejected alternative: log4(N) extra GPU passes
};

const char* to_string(PeStrategy s);

struct GpuRunOptions {
  PeStrategy pe_strategy = PeStrategy::kReadbackInW;
};

/// Host-CPU cost constants for the integration phases (same 2.2 GHz Opteron
/// as the reference platform; kept local to avoid modelling a full cache
/// hierarchy for the O(N) host work, which is cycle-trivial next to the
/// transfers).
struct GpuHostCostModel {
  double clock_hz = 2.2e9;
  double cpi = 0.85;
  double integration_flops_per_atom = 34 + 8;  ///< kicks/drift/wrap + marshal
  double pe_sum_flops_per_atom = 1;
};

class GpuBackend final : public md::MdBackend {
 public:
  explicit GpuBackend(const GpuRunOptions& options = {},
                      const GpuDeviceConfig& device = {},
                      const PcieConfig& pcie = {});

  std::string name() const override;
  std::string precision() const override { return "single"; }
  md::RunResult run(const md::RunConfig& run_config) override;

 private:
  GpuRunOptions options_;
  GpuDeviceConfig device_config_;
  PcieConfig pcie_config_;
  GpuHostCostModel host_;
};

}  // namespace emdpa::gpu
