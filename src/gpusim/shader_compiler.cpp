#include "gpusim/shader_compiler.h"

namespace emdpa::gpu {

CompiledShader ShaderCompiler::compile(ShaderProgram& program,
                                       std::uint64_t static_instructions) const {
  EMDPA_REQUIRE(program.input_count() <= limits_.max_input_textures,
                "shader '" + program.name() + "' samples too many textures");
  EMDPA_REQUIRE(static_instructions <= limits_.max_static_instructions,
                "shader '" + program.name() + "' exceeds the static program size");

  CompiledShader compiled;
  compiled.program = &program;
  compiled.static_instructions = static_instructions;
  // Driver JIT of a Cg program: tens of milliseconds in the 2006 toolchain.
  compiled.compile_time = ModelTime::milliseconds(40.0) +
                          ModelTime::microseconds(
                              static_cast<double>(static_instructions) * 50.0);
  return compiled;
}

void ShaderCompiler::check_dynamic_limit(
    std::uint64_t executed_instructions) const {
  EMDPA_REQUIRE(executed_instructions <= limits_.max_executed_instructions,
                "shader instance exceeded the dynamic instruction limit (" +
                    std::to_string(executed_instructions) + " > " +
                    std::to_string(limits_.max_executed_instructions) + ")");
}

}  // namespace emdpa::gpu
