// The MD acceleration shader (the paper's section 5.2 port).
//
// One input array (positions), one output array (accelerations).  Each
// instance owns one atom: it scans the entire position texture for atoms
// within the cutoff and accumulates their force contributions into a single
// acceleration value.  Because shader instances cannot communicate, the
// per-atom potential-energy contribution cannot be summed on the GPU in the
// same pass; it rides home "for free" in the otherwise-padding fourth
// component of the acceleration texel, and the CPU adds the N values in
// linear time.
//
// Flow control: contributions are predicated (computed unconditionally and
// multiplied by the in-cutoff mask) — the idiomatic and fast form on 2006
// fragment pipelines, where data-dependent branches serialised badly.  The
// arithmetic (candidate order, comparison sense) matches the Cell kernels,
// so GPU and Cell runs produce identical single-precision physics.
#pragma once

#include "gpusim/shader.h"

namespace emdpa::gpu {

struct MdShaderConstants {
  float box_edge = 0;
  float cutoff_sq = 0;
  float epsilon = 1;
  float sigma = 1;
  float inv_mass = 1;
  std::uint32_t n_atoms = 0;
};

class MdAccelShader final : public ShaderProgram {
 public:
  /// Constants are baked in at construction — the JIT-compile step.
  explicit MdAccelShader(const MdShaderConstants& constants);

  std::string name() const override { return "md-accel"; }
  std::size_t input_count() const override { return 1; }  // positions

  /// Static body length of the emitted fragment program, for the compiler's
  /// resource check (counted from the op mix below: the gather loop body is
  /// ~34 instructions plus prologue/epilogue).
  std::uint64_t static_instruction_estimate() const { return 48; }

  emdpa::Vec4f execute(ShaderContext& ctx) override;

 private:
  MdShaderConstants c_;
};

}  // namespace emdpa::gpu
