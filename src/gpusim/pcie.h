// Host <-> GPU transfer model.
//
// The paper's per-step costs "include sending the position array and
// reading the acceleration array across the PCIe bus every time step", and
// it is exactly these O(N) + constant costs that make the GPU slower than
// the CPU at small atom counts (Fig 7).  2006 OpenGL transfer paths were
// asymmetric: uploads (glTexSubImage) streamed reasonably; readbacks
// (glReadPixels) stalled the pipeline and ran much slower.
#pragma once

#include <cstdint>

#include "core/time_model.h"

namespace emdpa::gpu {

struct PcieConfig {
  double upload_bytes_per_s = 2.0e9;    ///< effective host->GPU
  double readback_bytes_per_s = 0.9e9;  ///< effective GPU->host (glReadPixels)
  ModelTime upload_latency = ModelTime::microseconds(250);
  /// Readback forces a pipeline flush + synchronisation before data flows —
  /// the dominant fixed cost of the per-step round trip.  Calibrated with
  /// the dispatch overhead against Fig 7's small-N behaviour.
  ModelTime readback_sync = ModelTime::milliseconds(3.0);
};

class PcieBus {
 public:
  explicit PcieBus(const PcieConfig& config = {}) : config_(config) {}

  const PcieConfig& config() const { return config_; }

  ModelTime upload(std::size_t bytes) {
    bytes_up_ += bytes;
    ++uploads_;
    return config_.upload_latency +
           ModelTime::seconds(static_cast<double>(bytes) /
                              config_.upload_bytes_per_s);
  }

  ModelTime readback(std::size_t bytes) {
    bytes_down_ += bytes;
    ++readbacks_;
    return config_.readback_sync +
           ModelTime::seconds(static_cast<double>(bytes) /
                              config_.readback_bytes_per_s);
  }

  std::uint64_t bytes_uploaded() const { return bytes_up_; }
  std::uint64_t bytes_read_back() const { return bytes_down_; }
  std::uint64_t uploads() const { return uploads_; }
  std::uint64_t readbacks() const { return readbacks_; }

 private:
  PcieConfig config_;
  std::uint64_t bytes_up_ = 0;
  std::uint64_t bytes_down_ = 0;
  std::uint64_t uploads_ = 0;
  std::uint64_t readbacks_ = 0;
};

}  // namespace emdpa::gpu
