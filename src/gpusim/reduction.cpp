#include "gpusim/reduction.h"

#include <algorithm>

namespace emdpa::gpu {

namespace {

/// 4:1 sum shader: instance k fetches input texels 4k..4k+3 and writes their
/// component-wise sum.
class Reduce4Shader final : public ShaderProgram {
 public:
  Reduce4Shader(std::size_t input_count_texels)
      : input_texels_(input_count_texels) {}

  std::string name() const override { return "reduce4-sum"; }
  std::size_t input_count() const override { return 1; }

  emdpa::Vec4f execute(ShaderContext& ctx) override {
    const std::size_t base = ctx.output_texel() * 4;
    emdpa::Vec4f sum{};
    for (std::size_t k = 0; k < 4; ++k) {
      const std::size_t idx = base + k;
      if (idx < input_texels_) {
        sum += ctx.fetch(0, idx);
        ctx.count_vec4(1);
      }
    }
    ctx.count_scalar(2);  // addressing
    return sum;
  }

 private:
  std::size_t input_texels_;
};

}  // namespace

ReductionOutcome reduce_w_on_gpu(GpuDevice& device, PcieBus& pcie,
                                 const Texture2D& values, std::size_t count) {
  EMDPA_REQUIRE(count > 0 && count <= values.texel_count(),
                "reduction count out of range");

  // Ping-pong temporaries.  Seed ping with the source values (on hardware
  // the first pass would sample `values` directly; copying keeps `values`
  // const for the caller at identical modelled cost).
  Texture2D ping = Texture2D::for_elements(count, "reduce-ping");
  Texture2D pong = Texture2D::for_elements(std::max<std::size_t>(1, (count + 3) / 4),
                                           "reduce-pong");
  {
    const auto& src = values.host_data();
    auto& dst = ping.host_data();
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(count),
              dst.begin());
  }

  ReductionOutcome outcome;
  Texture2D* in = &ping;
  Texture2D* out = &pong;
  std::size_t remaining = count;

  while (remaining > 1) {
    const std::size_t out_count = (remaining + 3) / 4;
    Reduce4Shader shader(remaining);
    const CompiledShader compiled = device.compiler().compile(shader, 24);
    const PassResult pass = device.run_pass(compiled, {in}, *out, out_count);
    outcome.gpu_time += pass.total();
    ++outcome.passes;
    std::swap(in, out);
    remaining = out_count;
  }

  outcome.readback_time = pcie.readback(sizeof(emdpa::Vec4f));
  outcome.sum = in->host_data()[0].w;
  return outcome;
}

}  // namespace emdpa::gpu
