// Shader program abstraction.
//
// A shader program runs once per texel of the render target.  The execution
// model is gather-based: an instance may *read* any location of any bound
// input texture, but it has exactly one output location — its own texel —
// fixed before execution and expressed here by the shader returning its
// output value.  Instances cannot communicate (the paper: "there is no
// communication between the executing instances of the shader programs"),
// which is what makes an on-GPU sum impossible in a single pass and
// motivates the PE-in-w readback trick.
//
// Shaders count the work they issue (vec4 ALU ops, scalar ops, texture
// fetches) through the ShaderContext; the device prices those counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/vec4.h"
#include "gpusim/texture.h"

namespace emdpa::gpu {

/// Dynamic work counters for one shader pass.
struct GpuWork {
  std::uint64_t alu_vec4 = 0;   ///< 4-wide ALU ops (add/mul/mad/cmp/sel/rcp...)
  std::uint64_t alu_scalar = 0; ///< scalar/co-issue ops
  std::uint64_t fetches = 0;    ///< texture fetches

  GpuWork& operator+=(const GpuWork& o) {
    alu_vec4 += o.alu_vec4;
    alu_scalar += o.alu_scalar;
    fetches += o.fetches;
    return *this;
  }
};

/// Per-instance execution context handed to the shader.
class ShaderContext {
 public:
  ShaderContext(const std::vector<const Texture2D*>& inputs,
                std::size_t output_texel, GpuWork& work)
      : inputs_(inputs), output_texel_(output_texel), work_(work) {}

  /// Gather read: any texel of any bound input.
  const emdpa::Vec4f& fetch(std::size_t input_slot, std::size_t texel) {
    EMDPA_REQUIRE(input_slot < inputs_.size(), "input slot out of range");
    ++work_.fetches;
    return inputs_[input_slot]->sample(texel);
  }

  /// The texel index this instance writes (its designated output location).
  std::size_t output_texel() const { return output_texel_; }

  // Work accounting the shader calls alongside its arithmetic.
  void count_vec4(std::uint64_t n) { work_.alu_vec4 += n; }
  void count_scalar(std::uint64_t n) { work_.alu_scalar += n; }

 private:
  const std::vector<const Texture2D*>& inputs_;
  std::size_t output_texel_;
  GpuWork& work_;
};

/// A shader program: pure per-instance function from gathered inputs to the
/// single output value.
class ShaderProgram {
 public:
  virtual ~ShaderProgram() = default;

  virtual std::string name() const = 0;

  /// Number of input textures the program samples.
  virtual std::size_t input_count() const = 0;

  /// Run one instance; the return value is written to the instance's texel.
  virtual emdpa::Vec4f execute(ShaderContext& ctx) = 0;
};

}  // namespace emdpa::gpu
