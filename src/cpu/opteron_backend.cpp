#include "cpu/opteron_backend.h"

#include "md/observables.h"

namespace emdpa::opteron {

OpteronBackend::OpteronBackend(const OpteronConfig& config) : config_(config) {}

md::RunResult OpteronBackend::run(const md::RunConfig& config) {
  md::Workload workload = md::make_lattice_workload(config.workload);
  md::ParticleSystem& system = workload.system;
  const md::PeriodicBox& box = workload.box;
  const std::size_t n = system.size();

  OpteronMachine machine(config_);
  md::RunResult result;
  result.backend_name = name();

  const double half_dt = 0.5 * config.dt;

  // Prime: initial forces (the paper's timed region covers the steps; the
  // priming force evaluation happens before t=0 in their harness too, so we
  // time it separately and exclude it from device_time, mirroring how the
  // paper reports per-run numbers from a warmed start).
  {
    auto forces = machine.compute_forces(system.positions(), box, config.lj,
                                         system.mass());
    system.accelerations() = std::move(forces.accelerations);
    result.energies.push_back(
        {md::kinetic_energy_of(system), forces.potential_energy});
    machine.reset();
  }

  for (int s = 0; s < config.steps; ++s) {
    const ModelTime before = machine.elapsed();

    // 1. advance velocities (half kick).
    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    // 3/4. move atoms, wrap positions.
    for (std::size_t i = 0; i < n; ++i) {
      system.positions()[i] =
          box.wrap(system.positions()[i] + system.velocities()[i] * config.dt);
    }
    machine.charge_integration_step(n);

    // 2. forces (the timed N^2 phase).
    auto forces = machine.compute_forces(system.positions(), box, config.lj,
                                         system.mass());
    system.accelerations() = std::move(forces.accelerations);

    // 1'. second half kick; 5. energies.
    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    result.energies.push_back(
        {md::kinetic_energy_of(system), forces.potential_energy});

    result.step_times.push_back(machine.elapsed() - before);
  }

  result.device_time = machine.elapsed();
  result.breakdown["compute"] = machine.elapsed();
  result.ops = machine.ops();
  result.ops.add("opteron.l1_misses", machine.memory().l1_misses());
  result.ops.add("opteron.l2_misses", machine.memory().l2_misses());
  result.final_state = std::move(system);
  return result;
}

}  // namespace emdpa::opteron
