#include "cpu/opteron_model.h"

namespace emdpa::opteron {

namespace {

// Synthetic address space for the trace: the three state arrays live at
// well-separated bases, Vec3d elements are 24 bytes.
constexpr std::uint64_t kPosBase = 0x1000'0000ull;
constexpr std::uint64_t kVelBase = 0x2000'0000ull;
constexpr std::uint64_t kAccBase = 0x3000'0000ull;
constexpr std::size_t kVecBytes = sizeof(double) * 3;

constexpr std::uint64_t pos_addr(std::size_t i) { return kPosBase + i * kVecBytes; }
constexpr std::uint64_t vel_addr(std::size_t i) { return kVelBase + i * kVecBytes; }
constexpr std::uint64_t acc_addr(std::size_t i) { return kAccBase + i * kVecBytes; }

// Flops charged per interacting pair, all strategies (the LJ evaluation):
//   inv_r2 (the divide, charged separately), s2 (1 mul), s6 (2 mul),
//   force_over_r (4), force vector (3 mul + 3 add), pair energy (5),
//   PE accumulate (1)  =>  19 flops + 1 divide.
constexpr double kInteractionFlops = 19.0;

// Per-atom flops of the integration phases of one step: two half-kicks
// (6 + 6), drift (6), wrap (9), kinetic-energy term (7)  =>  34.
constexpr double kIntegrationFlopsPerAtom = 34.0;

}  // namespace

PairInstructionProfile profile_for(md::MinImageStrategy strategy) {
  // Counted from the kernel code shape.  Every candidate pair pays:
  //   dr = pi - pj                      3 flops
  //   <minimum image, by strategy>      see below
  //   r^2 = dot(dr, dr)                 5 flops (folded into search27)
  //   cutoff compare                    1
  //   loop index + address arithmetic   4
  switch (strategy) {
    case md::MinImageStrategy::kSearch27:
      // 27 images x (3 shifted coords + 5 for r^2 + 1 compare/select) = 243;
      // the search already yields the best r^2, so no separate dot product.
      return {.per_candidate = 3 + 243 + 1 + 4, .per_interaction = kInteractionFlops};
    case md::MinImageStrategy::kBranchy:
      // Per axis: |d| vs half-edge compare (2).  Reflection adds are dynamic
      // events (counted by the kernel) as are their branch mispredictions.
      return {.per_candidate = 3 + 6 + 5 + 1 + 4, .per_interaction = kInteractionFlops};
    case md::MinImageStrategy::kCopysign:
      // Per axis: fabs + compare-to-mask + copysign + multiply-subtract = 3.
      return {.per_candidate = 3 + 9 + 5 + 1 + 4, .per_interaction = kInteractionFlops};
    case md::MinImageStrategy::kRound:
      // Per axis: scaled round + multiply + subtract = 4.
      return {.per_candidate = 3 + 12 + 5 + 1 + 4, .per_interaction = kInteractionFlops};
  }
  return {};
}

OpteronMachine::OpteronMachine(const OpteronConfig& config)
    : config_(config), memory_(config.l1, config.l2) {}

void OpteronMachine::charge_flops(double flops) {
  cycles_ += CycleCount(flops * config_.cpi);
  ops_.add("opteron.flops", static_cast<std::uint64_t>(flops));
}

void OpteronMachine::charge_divs(double divs) {
  cycles_ += CycleCount(divs * config_.div_cycles);
  ops_.add("opteron.divides", static_cast<std::uint64_t>(divs));
}

void OpteronMachine::charge_access(std::uint64_t addr, std::size_t bytes) {
  memory_.access(addr, bytes);
  const std::uint64_t l1_delta = memory_.l1_misses() - l1_misses_seen_;
  const std::uint64_t l2_delta = memory_.l2_misses() - l2_misses_seen_;
  l1_misses_seen_ = memory_.l1_misses();
  l2_misses_seen_ = memory_.l2_misses();
  cycles_ += CycleCount(static_cast<double>(l1_delta) * config_.l1_miss_cycles +
                        static_cast<double>(l2_delta) * config_.l2_miss_cycles);
}

md::ForceResult OpteronMachine::compute_forces(
    const std::vector<emdpa::Vec3d>& positions, const md::PeriodicBox& box,
    const md::LjParams& lj, double mass) {
  const std::size_t n = positions.size();
  const PairInstructionProfile profile = profile_for(config_.strategy);
  const double cutoff_sq = lj.cutoff_squared();
  const double inv_mass = 1.0 / mass;
  const double half = box.half_edge();
  const double edge = box.edge();

  md::ForceResult result;
  result.accelerations.assign(n, {});

  std::uint64_t reflections = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const emdpa::Vec3d pi = positions[i];
    charge_access(pos_addr(i), kVecBytes);
    emdpa::Vec3d force{};
    double pe = 0.0;

    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      charge_access(pos_addr(j), kVecBytes);
      emdpa::Vec3d dr = pi - positions[j];

      // All four strategies compute the identical minimum image (a property
      // the unit tests assert on PeriodicBox); the machine evaluates the
      // cheapest equivalent form and *prices* the configured strategy via
      // its instruction profile.  Reflection events are counted for the
      // branchy profile's dynamic costs.
      if (config_.strategy == md::MinImageStrategy::kBranchy) {
        for (double* d : {&dr.x, &dr.y, &dr.z}) {
          if (*d > half) {
            *d -= edge;
            ++reflections;
          } else if (*d < -half) {
            *d += edge;
            ++reflections;
          }
        }
      } else {
        dr = box.min_image(dr);
      }

      const double r2 = length_squared(dr);
      ++result.stats.candidates;
      if (r2 < cutoff_sq) {
        ++result.stats.interacting;
        force += dr * lj.pair_force_over_r(r2);
        pe += 0.5 * lj.pair_energy(r2);
      }
    }

    result.accelerations[i] = force * inv_mass;
    result.potential_energy += pe;
    charge_access(acc_addr(i), kVecBytes);
  }

  // The i/j loop above visited every pair from both ends; price that
  // directed work, then report unordered pairs (the PairStats contract).
  const auto candidates = static_cast<double>(result.stats.candidates);
  const auto interacting = static_cast<double>(result.stats.interacting);
  charge_flops(candidates * profile.per_candidate +
               interacting * profile.per_interaction +
               static_cast<double>(reflections));
  charge_divs(interacting * profile.divs_per_interaction);
  result.stats.candidates /= 2;
  result.stats.interacting /= 2;

  if (config_.strategy == md::MinImageStrategy::kBranchy && reflections > 0) {
    // A reflection branch is data-dependent and mispredicts about half the
    // time on K8's bimodal predictor.
    const double mispredicts = 0.5 * static_cast<double>(reflections);
    cycles_ += CycleCount(mispredicts * config_.mispredict_cycles);
    ops_.add("opteron.mispredicts", static_cast<std::uint64_t>(mispredicts));
  }

  ops_.add("opteron.pair_candidates", result.stats.candidates);
  ops_.add("opteron.pair_interactions", result.stats.interacting);
  return result;
}

void OpteronMachine::charge_integration_step(std::size_t n) {
  charge_flops(static_cast<double>(n) * kIntegrationFlopsPerAtom);
  for (std::size_t i = 0; i < n; ++i) {
    charge_access(pos_addr(i), kVecBytes);  // read-modify-write positions
    charge_access(vel_addr(i), kVecBytes);  // read-modify-write velocities
    charge_access(acc_addr(i), kVecBytes);  // read accelerations
  }
}

ModelTime OpteronMachine::elapsed() const {
  return ClockDomain(config_.clock_hz).to_time(cycles_);
}

void OpteronMachine::reset() {
  cycles_ = CycleCount();
  ops_.clear();
  memory_.reset_stats();
  memory_.invalidate_all();
  l1_misses_seen_ = 0;
  l2_misses_seen_ = 0;
}

}  // namespace emdpa::opteron
