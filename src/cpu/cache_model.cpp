#include "cpu/cache_model.h"

namespace emdpa::opteron {

namespace {
bool is_power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::size_t log2_floor(std::size_t v) {
  std::size_t shift = 0;
  while (v > 1) {
    v >>= 1;
    ++shift;
  }
  return shift;
}
}  // namespace

CacheLevel::CacheLevel(const CacheConfig& config) : config_(config) {
  EMDPA_REQUIRE(is_power_of_two(config.line_bytes), "line size must be a power of two");
  EMDPA_REQUIRE(config.associativity > 0, "associativity must be positive");
  EMDPA_REQUIRE(config.size_bytes % (config.line_bytes * config.associativity) == 0,
                "cache size must be divisible by line_bytes * associativity");
  n_sets_ = config.size_bytes / (config.line_bytes * config.associativity);
  EMDPA_REQUIRE(is_power_of_two(n_sets_), "set count must be a power of two");
  line_shift_ = log2_floor(config.line_bytes);
  ways_.assign(n_sets_ * config.associativity, Way{});
}

bool CacheLevel::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line) & (n_sets_ - 1);
  const std::uint64_t tag = line >> log2_floor(n_sets_);

  Way* base = &ways_[set * config_.associativity];
  ++stamp_;

  Way* lru = base;
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru_stamp = stamp_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      lru = &way;  // prefer an invalid way for fills
    } else if (lru->valid && way.lru_stamp < lru->lru_stamp) {
      lru = &way;
    }
  }

  ++misses_;
  lru->valid = true;
  lru->tag = tag;
  lru->lru_stamp = stamp_;
  return false;
}

void CacheLevel::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

void CacheLevel::invalidate_all() {
  for (auto& way : ways_) way = Way{};
  stamp_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const CacheConfig& l1, const CacheConfig& l2)
    : l1_(l1), l2_(l2) {}

void MemoryHierarchy::access(std::uint64_t addr, std::size_t bytes) {
  EMDPA_REQUIRE(bytes > 0, "access must touch at least one byte");
  const std::size_t line = l1_.config().line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + bytes - 1) / line;
  for (std::uint64_t l = first; l <= last; ++l) {
    ++accesses_;
    const std::uint64_t line_addr = l * line;
    if (!l1_.access(line_addr)) {
      l2_.access(line_addr);
    }
  }
}

void MemoryHierarchy::reset_stats() {
  l1_.reset_stats();
  l2_.reset_stats();
  accesses_ = 0;
}

void MemoryHierarchy::invalidate_all() {
  l1_.invalidate_all();
  l2_.invalidate_all();
}

}  // namespace emdpa::opteron
