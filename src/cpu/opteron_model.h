// Timing model of the paper's reference platform: a 2.2 GHz AMD Opteron
// (K8) running the double-precision N^2 MD kernel with the 27-image
// minimum-image search.
//
// Methodology: the machine executes the real physics while (a) counting the
// floating-point work of each kernel phase and (b) driving a two-level cache
// simulator with the kernel's address trace.  Modelled cycles are
//
//   cycles = flops*cpi + divides*div_cycles + mispredicts*mispredict_cycles
//          + L1_misses*l1_miss_cycles + L2_misses*l2_miss_cycles
//
// Constants come from K8 documentation (FDIV ~20 cycles, L2 ~12-20 cycles,
// memory ~150-200 cycles); the effective CPI (0.85) is the one calibrated
// constant, chosen so the 2048-atom/10-step run lands at the paper's 4.084 s
// (Table 1).  See DESIGN.md §6.
#pragma once

#include <cstdint>

#include "core/op_counter.h"
#include "core/time_model.h"
#include "cpu/cache_model.h"
#include "md/force_kernel.h"
#include "md/particle_system.h"
#include "md/reference_kernel.h"

namespace emdpa::opteron {

struct OpteronConfig {
  double clock_hz = 2.2e9;

  /// Effective cycles per (non-divide) floating-point/ALU operation of this
  /// kernel on K8 with GCC-era code generation.  Calibrated (see above).
  double cpi = 0.85;

  double div_cycles = 20.0;         ///< K8 FDIV latency
  double mispredict_cycles = 12.0;  ///< K8 branch mispredict penalty
  double l1_miss_cycles = 20.0;     ///< L1D miss, L2 load-to-use
  double l2_miss_cycles = 180.0;    ///< L2 miss to DRAM

  CacheConfig l1{64 * 1024, 64, 2};        ///< K8 L1D: 64 KB, 2-way
  CacheConfig l2{1024 * 1024, 64, 16};     ///< K8 L2: 1 MB, 16-way

  /// Minimum-image strategy of the reference kernel (the paper's baseline
  /// uses the 27-image search; other strategies are exposed for bench A4).
  md::MinImageStrategy strategy = md::MinImageStrategy::kSearch27;
};

/// Static per-event instruction counts for the scalar kernel, by strategy.
/// These are counted from the kernel's code shape (see the .cpp for the
/// per-line breakdown).
struct PairInstructionProfile {
  double per_candidate = 0;    ///< flops/ALU ops per distance test
  double per_interaction = 0;  ///< additional flops per within-cutoff pair
  double divs_per_interaction = 1;  ///< 1/r^2
};

PairInstructionProfile profile_for(md::MinImageStrategy strategy);

/// The timed Opteron machine: executes MD phases, accumulating model cycles
/// and cache statistics.
class OpteronMachine {
 public:
  explicit OpteronMachine(const OpteronConfig& config = {});

  const OpteronConfig& config() const { return config_; }

  /// Timed force evaluation (step 2 of the kernel).  Runs the real physics
  /// at double precision with the configured minimum-image strategy.
  md::ForceResult compute_forces(const std::vector<emdpa::Vec3d>& positions,
                                 const md::PeriodicBox& box,
                                 const md::LjParams& lj, double mass);

  /// Charge the per-atom integration phases of one velocity-Verlet step
  /// (half-kicks, drift, energy accumulation) for `n` atoms, including their
  /// streaming cache traffic.
  void charge_integration_step(std::size_t n);

  /// Total modelled time so far.
  ModelTime elapsed() const;

  CycleCount cycles() const { return cycles_; }
  const OpCounter& ops() const { return ops_; }
  const MemoryHierarchy& memory() const { return memory_; }

  void reset();

 private:
  void charge_flops(double flops);
  void charge_divs(double divs);
  void charge_access(std::uint64_t addr, std::size_t bytes);

  OpteronConfig config_;
  MemoryHierarchy memory_;
  CycleCount cycles_;
  OpCounter ops_;
  std::uint64_t l1_misses_seen_ = 0;
  std::uint64_t l2_misses_seen_ = 0;
};

}  // namespace emdpa::opteron
