// MdBackend implementation for the Opteron reference model.
#pragma once

#include "cpu/opteron_model.h"
#include "md/backend.h"

namespace emdpa::opteron {

class OpteronBackend final : public md::MdBackend {
 public:
  explicit OpteronBackend(const OpteronConfig& config = {});

  std::string name() const override { return "opteron-2.2ghz"; }
  std::string precision() const override { return "double"; }

  md::RunResult run(const md::RunConfig& config) override;

 private:
  OpteronConfig config_;
};

}  // namespace emdpa::opteron
