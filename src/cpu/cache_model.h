// Set-associative cache simulator for the Opteron reference model.
//
// Fig 9 of the paper attributes the Opteron's super-quadratic runtime growth
// to cache capacity: once the position arrays outgrow the caches, every
// sweep of the inner N^2 loop re-misses.  We model a two-level hierarchy
// (64 KB 2-way L1D, 1 MB 16-way L2, 64-byte lines — the Opteron K8 geometry)
// with true LRU replacement, driven by the address trace of the timed kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "core/error.h"

namespace emdpa::opteron {

struct CacheConfig {
  std::size_t size_bytes = 64 * 1024;
  std::size_t line_bytes = 64;
  std::size_t associativity = 2;
};

/// One cache level with LRU replacement.  Tracks hits and misses.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheConfig& config);

  /// Probe the line containing `addr`.  Returns true on hit; on miss the
  /// line is installed (evicting LRU).
  bool access(std::uint64_t addr);

  void reset_stats();
  void invalidate_all();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  const CacheConfig& config() const { return config_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;
    bool valid = false;
  };

  CacheConfig config_;
  std::size_t n_sets_;
  std::size_t line_shift_;
  std::vector<Way> ways_;  // n_sets * associativity, row-major by set
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Aggregated results of one memory access through the hierarchy.
struct AccessOutcome {
  bool l1_hit = false;
  bool l2_hit = false;  ///< meaningful only when !l1_hit
};

/// Two-level hierarchy: L1 miss probes L2; L2 miss goes to memory.
/// Inclusive enough for trace-driven miss counting (no writeback modelling —
/// the kernels are read-dominated and the timing model prices misses only).
class MemoryHierarchy {
 public:
  MemoryHierarchy(const CacheConfig& l1, const CacheConfig& l2);

  /// Touch `bytes` bytes starting at `addr` (every spanned line is probed).
  void access(std::uint64_t addr, std::size_t bytes);

  void reset_stats();
  void invalidate_all();

  std::uint64_t l1_misses() const { return l1_.misses(); }
  std::uint64_t l2_misses() const { return l2_.misses(); }
  std::uint64_t accesses() const { return accesses_; }

 private:
  CacheLevel l1_;
  CacheLevel l2_;
  std::uint64_t accesses_ = 0;
};

}  // namespace emdpa::opteron
