#include "cpu/opteron_pairlist.h"

#include <algorithm>

namespace emdpa::opteron {

namespace {

constexpr double kBytesPerPosition = 24.0;  // Vec3<double>
constexpr double kBytesPerListEntry = 4.0;  // uint32 index
constexpr double kLineBytes = 64.0;

constexpr double kPairlistEntryOps = 27.0;  // see opteron_pairlist.h
constexpr double kBuildTestOps = 31.0;      // entry ops + grid bookkeeping
constexpr double kBinOpsPerAtom = 12.0;
constexpr double kInteractionOps = 19.0;    // + 1 FDIV, charged separately

/// Fraction of a uniformly re-touched footprint that does NOT fit in a
/// cache of `capacity` bytes.
double miss_fraction(double footprint_bytes, std::size_t capacity) {
  if (footprint_bytes <= static_cast<double>(capacity)) return 0.0;
  return 1.0 - static_cast<double>(capacity) / footprint_bytes;
}

ModelTime cycles_to_time(const OpteronConfig& config, double cycles) {
  return ModelTime::seconds(cycles / config.clock_hz);
}

}  // namespace

ModelTime n2_step_time(const OpteronConfig& config,
                       const md::PairlistStepWork& work) {
  const PairInstructionProfile profile = profile_for(config.strategy);
  const double positions_bytes =
      static_cast<double>(work.n_atoms) * kBytesPerPosition;

  double cycles = (profile.per_candidate * work.candidates_directed +
                   profile.per_interaction * work.interacting_directed) *
                  config.cpi;
  cycles += work.interacting_directed * profile.divs_per_interaction *
            config.div_cycles;

  // Streaming inner loop: each candidate advances sequentially through the
  // position array, so misses occur at line granularity over whatever part
  // of the footprint each cache level cannot retain across outer iterations.
  const double lines_touched =
      work.candidates_directed * (kBytesPerPosition / kLineBytes);
  cycles += lines_touched * miss_fraction(positions_bytes, config.l1.size_bytes) *
            config.l1_miss_cycles;
  cycles += lines_touched * miss_fraction(positions_bytes, config.l2.size_bytes) *
            config.l2_miss_cycles;

  return cycles_to_time(config, cycles);
}

ModelTime pairlist_step_time(const OpteronConfig& config,
                             const md::PairlistStepWork& work) {
  const double positions_bytes =
      static_cast<double>(work.n_atoms) * kBytesPerPosition;
  const double list_bytes = work.list_entries_directed * kBytesPerListEntry;

  double cycles = (kPairlistEntryOps * work.list_entries_directed +
                   kInteractionOps * work.interacting_directed) *
                  config.cpi;
  cycles += work.interacting_directed * config.div_cycles;

  // The gather: one quasi-random position load per entry, charged as a
  // whole miss (no streaming amortisation) per level it overflows.
  cycles += work.list_entries_directed *
            miss_fraction(positions_bytes, config.l1.size_bytes) *
            config.l1_miss_cycles;
  cycles += work.list_entries_directed *
            miss_fraction(positions_bytes, config.l2.size_bytes) *
            config.l2_miss_cycles;

  // The list itself streams at line granularity.
  const double list_lines = list_bytes / kLineBytes;
  cycles += list_lines * miss_fraction(list_bytes, config.l1.size_bytes) *
            config.l1_miss_cycles;
  cycles += list_lines * miss_fraction(list_bytes, config.l2.size_bytes) *
            config.l2_miss_cycles;

  // Amortised rebuild: cell-grid sweep plus binning.
  cycles += (kBuildTestOps * work.build_tests_directed +
             kBinOpsPerAtom * static_cast<double>(work.n_atoms)) *
            config.cpi / work.rebuild_period_steps;

  return cycles_to_time(config, cycles);
}

}  // namespace emdpa::opteron
