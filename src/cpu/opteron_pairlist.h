// Analytic Opteron price of the section-3.4 pairlist trade-off.
//
// The trace-driven OpteronMachine times the paper's actual on-the-fly N^2
// kernel.  These closed-form variants price the same machine running (a)
// that N^2 loop and (b) a classic Verlet-pairlist force loop, from the
// measured PairlistStepWork, so bench A2 can put the cache machine next to
// the streaming architectures on the same axis.
//
// Modelling choices (per directed event, cycles at config.cpi unless noted):
//  * N^2 candidate: the configured minimum-image strategy's instruction
//    profile (251 ops for the paper's 27-image search).  The inner loop
//    streams the position array; lines are charged at cache-line
//    granularity against the capacity each level can hold.
//  * pairlist entry: 27 ops — list entries are known to lie within
//    cutoff+skin, so the cheap round-to-nearest minimum image replaces the
//    27-image search (dr 3, round image 12, r^2 5, compare 1, index +
//    gather addressing 6).  That instruction reduction is most of the win.
//  * the gather: each entry loads one neighbour position from an
//    effectively random address, so it is charged a *whole* miss (no
//    line-granularity amortisation) with probability 1 - capacity/footprint
//    per level — the irregular-access cost the paper's streaming ports
//    avoid by recomputing distances.
//  * build (amortised over rebuild_period_steps): 31 ops per cell-grid
//    distance test plus 12 ops/atom of binning.
//  * both variants pay 19 flops + 1 FDIV per interacting pair.
#pragma once

#include "core/time_model.h"
#include "cpu/opteron_model.h"
#include "md/pairlist_cost.h"

namespace emdpa::opteron {

/// One velocity-Verlet force evaluation with the on-the-fly N^2 loop.
ModelTime n2_step_time(const OpteronConfig& config,
                       const md::PairlistStepWork& work);

/// The same evaluation through a Verlet pairlist, build cost amortised.
ModelTime pairlist_step_time(const OpteronConfig& config,
                             const md::PairlistStepWork& work);

}  // namespace emdpa::opteron
