// AVX2 Pack specialisations: 8-wide float / 4-wide double.  Compiled away
// entirely when the translation unit was not built with -mavx2.
#pragma once

#include "core/simd/pack_fwd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace emdpa::simd {

template <>
struct Pack<float, SimdType::kAvx2> {
  static constexpr std::size_t kWidth = 8;
  using Mask = __m256;
  __m256 v;

  static Pack load(const float* p) { return {_mm256_load_ps(p)}; }
  // Hardware vgatherdps: eight 32-bit indices, scale 4.  Same lane values
  // as eight scalar loads, so downstream arithmetic is bitwise unchanged.
  static Pack gather(const float* base, const std::uint32_t* idx) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return {_mm256_i32gather_ps(base, vidx, 4)};
  }
  static Pack broadcast(float s) { return {_mm256_set1_ps(s)}; }
  static Pack zero() { return {_mm256_setzero_ps()}; }
  void store(float* p) const { _mm256_store_ps(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm256_mul_ps(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm256_div_ps(a.v, b.v)}; }
  friend Pack abs(Pack a) {
    return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)};
  }
  friend Pack copysign(Pack mag, Pack sgn) {
    const __m256 sign_bit = _mm256_set1_ps(-0.0f);
    return {_mm256_or_ps(_mm256_and_ps(sign_bit, sgn.v),
                         _mm256_andnot_ps(sign_bit, mag.v))};
  }
  friend Mask cmp_lt(Pack a, Pack b) {
    return _mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ);
  }
  friend Mask cmp_gt(Pack a, Pack b) {
    return _mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ);
  }
  friend Mask cmp_ge(Pack a, Pack b) {
    return _mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ);
  }
  static Mask mask_and(Mask a, Mask b) { return _mm256_and_ps(a, b); }
  friend Pack select(Mask m, Pack a, Pack b) {
    return {_mm256_blendv_ps(b.v, a.v, m)};
  }
  static unsigned mask_bits(Mask m) {
    return static_cast<unsigned>(_mm256_movemask_ps(m));
  }
  friend float reduce_add(Pack a) {
    alignas(32) float lanes[kWidth];
    _mm256_store_ps(lanes, a.v);
    float acc = lanes[0];
    for (std::size_t i = 1; i < kWidth; ++i) acc += lanes[i];
    return acc;
  }
};

template <>
struct Pack<double, SimdType::kAvx2> {
  static constexpr std::size_t kWidth = 4;
  using Mask = __m256d;
  __m256d v;

  static Pack load(const double* p) { return {_mm256_load_pd(p)}; }
  // Hardware vgatherdpd: four 32-bit indices, scale 8.
  static Pack gather(const double* base, const std::uint32_t* idx) {
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return {_mm256_i32gather_pd(base, vidx, 8)};
  }
  static Pack broadcast(double s) { return {_mm256_set1_pd(s)}; }
  static Pack zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_store_pd(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm256_div_pd(a.v, b.v)}; }
  friend Pack abs(Pack a) {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
  }
  friend Pack copysign(Pack mag, Pack sgn) {
    const __m256d sign_bit = _mm256_set1_pd(-0.0);
    return {_mm256_or_pd(_mm256_and_pd(sign_bit, sgn.v),
                         _mm256_andnot_pd(sign_bit, mag.v))};
  }
  friend Mask cmp_lt(Pack a, Pack b) {
    return _mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ);
  }
  friend Mask cmp_gt(Pack a, Pack b) {
    return _mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ);
  }
  friend Mask cmp_ge(Pack a, Pack b) {
    return _mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ);
  }
  static Mask mask_and(Mask a, Mask b) { return _mm256_and_pd(a, b); }
  friend Pack select(Mask m, Pack a, Pack b) {
    return {_mm256_blendv_pd(b.v, a.v, m)};
  }
  static unsigned mask_bits(Mask m) {
    return static_cast<unsigned>(_mm256_movemask_pd(m));
  }
  friend double reduce_add(Pack a) {
    alignas(32) double lanes[kWidth];
    _mm256_store_pd(lanes, a.v);
    return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  }
};

}  // namespace emdpa::simd

#endif  // __AVX2__
