// SSE2 Pack specialisations: 4-wide float / 2-wide double (the x86-64
// baseline).  Compiled away entirely when the translation unit was not
// built with -msse2 (or an -march implying it).
#pragma once

#include "core/simd/pack_fwd.h"

#if defined(__SSE2__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace emdpa::simd {

template <>
struct Pack<float, SimdType::kSse2> {
  static constexpr std::size_t kWidth = 4;
  using Mask = __m128;
  __m128 v;

  static Pack load(const float* p) { return {_mm_load_ps(p)}; }
  // SSE2 has no gather instruction; lane-insert via set — same values, and
  // the compiler turns it into four scalar loads + shuffles.
  static Pack gather(const float* base, const std::uint32_t* idx) {
    return {_mm_set_ps(base[idx[3]], base[idx[2]], base[idx[1]],
                       base[idx[0]])};
  }
  static Pack broadcast(float s) { return {_mm_set1_ps(s)}; }
  static Pack zero() { return {_mm_setzero_ps()}; }
  void store(float* p) const { _mm_store_ps(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm_add_ps(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm_mul_ps(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm_div_ps(a.v, b.v)}; }
  friend Pack abs(Pack a) {
    return {_mm_andnot_ps(_mm_set1_ps(-0.0f), a.v)};
  }
  friend Pack copysign(Pack mag, Pack sgn) {
    const __m128 sign_bit = _mm_set1_ps(-0.0f);
    return {_mm_or_ps(_mm_and_ps(sign_bit, sgn.v),
                      _mm_andnot_ps(sign_bit, mag.v))};
  }
  friend Mask cmp_lt(Pack a, Pack b) { return _mm_cmplt_ps(a.v, b.v); }
  friend Mask cmp_gt(Pack a, Pack b) { return _mm_cmpgt_ps(a.v, b.v); }
  friend Mask cmp_ge(Pack a, Pack b) { return _mm_cmpge_ps(a.v, b.v); }
  static Mask mask_and(Mask a, Mask b) { return _mm_and_ps(a, b); }
  friend Pack select(Mask m, Pack a, Pack b) {
    return {_mm_or_ps(_mm_and_ps(m, a.v), _mm_andnot_ps(m, b.v))};
  }
  static unsigned mask_bits(Mask m) {
    return static_cast<unsigned>(_mm_movemask_ps(m));
  }
  friend float reduce_add(Pack a) {
    alignas(16) float lanes[kWidth];
    _mm_store_ps(lanes, a.v);
    return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  }
};

template <>
struct Pack<double, SimdType::kSse2> {
  static constexpr std::size_t kWidth = 2;
  using Mask = __m128d;
  __m128d v;

  static Pack load(const double* p) { return {_mm_load_pd(p)}; }
  static Pack gather(const double* base, const std::uint32_t* idx) {
    return {_mm_set_pd(base[idx[1]], base[idx[0]])};
  }
  static Pack broadcast(double s) { return {_mm_set1_pd(s)}; }
  static Pack zero() { return {_mm_setzero_pd()}; }
  void store(double* p) const { _mm_store_pd(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm_div_pd(a.v, b.v)}; }
  friend Pack abs(Pack a) {
    return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
  }
  friend Pack copysign(Pack mag, Pack sgn) {
    const __m128d sign_bit = _mm_set1_pd(-0.0);
    return {_mm_or_pd(_mm_and_pd(sign_bit, sgn.v),
                      _mm_andnot_pd(sign_bit, mag.v))};
  }
  friend Mask cmp_lt(Pack a, Pack b) { return _mm_cmplt_pd(a.v, b.v); }
  friend Mask cmp_gt(Pack a, Pack b) { return _mm_cmpgt_pd(a.v, b.v); }
  friend Mask cmp_ge(Pack a, Pack b) { return _mm_cmpge_pd(a.v, b.v); }
  static Mask mask_and(Mask a, Mask b) { return _mm_and_pd(a, b); }
  friend Pack select(Mask m, Pack a, Pack b) {
    return {_mm_or_pd(_mm_and_pd(m, a.v), _mm_andnot_pd(m, b.v))};
  }
  static unsigned mask_bits(Mask m) {
    return static_cast<unsigned>(_mm_movemask_pd(m));
  }
  friend double reduce_add(Pack a) {
    alignas(16) double lanes[kWidth];
    _mm_store_pd(lanes, a.v);
    return lanes[0] + lanes[1];
  }
};

}  // namespace emdpa::simd

#endif  // __SSE2__
