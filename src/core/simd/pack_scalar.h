// Scalar Pack fallback: one lane, plain arithmetic.  Always valid, on any
// target, so code written against Pack<Real, S> compiles everywhere.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "core/simd/pack_fwd.h"

namespace emdpa::simd {

template <typename Real>
struct Pack<Real, SimdType::kScalar> {
  static constexpr std::size_t kWidth = 1;
  using Mask = bool;
  Real v;

  static Pack load(const Real* p) { return {*p}; }
  static Pack gather(const Real* base, const std::uint32_t* idx) {
    return {base[idx[0]]};
  }
  static Pack broadcast(Real s) { return {s}; }
  static Pack zero() { return {Real(0)}; }
  void store(Real* p) const { *p = v; }

  friend Pack operator+(Pack a, Pack b) { return {a.v + b.v}; }
  friend Pack operator-(Pack a, Pack b) { return {a.v - b.v}; }
  friend Pack operator*(Pack a, Pack b) { return {a.v * b.v}; }
  friend Pack operator/(Pack a, Pack b) { return {a.v / b.v}; }
  friend Pack abs(Pack a) { return {std::fabs(a.v)}; }
  friend Pack copysign(Pack mag, Pack sgn) {
    return {std::copysign(mag.v, sgn.v)};
  }
  friend Mask cmp_lt(Pack a, Pack b) { return a.v < b.v; }
  friend Mask cmp_gt(Pack a, Pack b) { return a.v > b.v; }
  friend Mask cmp_ge(Pack a, Pack b) { return a.v >= b.v; }
  static Mask mask_and(Mask a, Mask b) { return a && b; }
  friend Pack select(Mask m, Pack a, Pack b) { return m ? a : b; }
  static unsigned mask_bits(Mask m) { return m ? 1u : 0u; }
  friend Real reduce_add(Pack a) { return a.v; }
};

}  // namespace emdpa::simd
