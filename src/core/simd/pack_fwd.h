// SIMD instruction-set enumeration and the Pack primary template.
//
// Shared by every per-ISA pack header (core/simd/pack_*.h) and by the
// runtime dispatch layer (core/simd_dispatch.h), which must name ISAs
// without pulling in any intrinsics.
#pragma once

#include <cstddef>

namespace emdpa::simd {

/// Instruction sets the Pack abstraction can target, in ranking order:
/// larger enum value = wider = preferred by the runtime dispatcher.
enum class SimdType { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

inline constexpr std::size_t kSimdTypeCount = 4;

constexpr const char* to_string(SimdType t) {
  switch (t) {
    case SimdType::kScalar: return "scalar";
    case SimdType::kSse2: return "sse2";
    case SimdType::kAvx2: return "avx2";
    case SimdType::kAvx512: return "avx512";
  }
  return "unknown";
}

template <typename Real, SimdType Type>
struct Pack;

}  // namespace emdpa::simd
