// AVX-512 Pack specialisations: 16-wide float / 8-wide double, using only
// AVX-512F (Foundation) instructions so the runtime requirement is the
// single "avx512f" CPUID bit.  Compiled away entirely when the translation
// unit was not built with -mavx512f.
//
// Differences from the narrower packs, forced by the ISA:
//  * Masks are k-register lane masks (__mmask8/__mmask16), not vector
//    registers; select() is a mask blend, which agrees with the bitwise
//    blend of the narrower packs because cmp_* masks are all-or-nothing per
//    lane.
//  * abs/copysign go through the 512-bit integer domain (no andnot_ps in
//    AVX-512F) — bit-identical to the andnot/or idiom of SSE2/AVX2.
//  * reduce_add stores the lanes and sums them SEQUENTIALLY, matching the
//    lane-order reduction of the other packs; _mm512_reduce_add_pd would be
//    a tree reduction with a different rounding trace.
#pragma once

#include "core/simd/pack_fwd.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace emdpa::simd {

template <>
struct Pack<float, SimdType::kAvx512> {
  static constexpr std::size_t kWidth = 16;
  using Mask = __mmask16;
  __m512 v;

  static Pack load(const float* p) { return {_mm512_load_ps(p)}; }
  // Hardware vgatherdps.  The full-mask masked form sidesteps the
  // undefined pass-through register of the unmasked intrinsic (every lane
  // is gathered, so the zero src never shows through).
  static Pack gather(const float* base, const std::uint32_t* idx) {
    const __m512i vidx = _mm512_loadu_si512(idx);
    return {_mm512_mask_i32gather_ps(_mm512_setzero_ps(),
                                     static_cast<__mmask16>(0xffff), vidx,
                                     base, 4)};
  }
  static Pack broadcast(float s) { return {_mm512_set1_ps(s)}; }
  static Pack zero() { return {_mm512_setzero_ps()}; }
  void store(float* p) const { _mm512_store_ps(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm512_add_ps(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm512_sub_ps(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm512_mul_ps(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm512_div_ps(a.v, b.v)}; }
  friend Pack abs(Pack a) {
    const __m512i mag = _mm512_set1_epi32(0x7fffffff);
    return {_mm512_castsi512_ps(
        _mm512_and_epi32(_mm512_castps_si512(a.v), mag))};
  }
  friend Pack copysign(Pack mag, Pack sgn) {
    const __m512i sign_bit = _mm512_set1_epi32(INT32_MIN);
    return {_mm512_castsi512_ps(_mm512_or_epi32(
        _mm512_and_epi32(_mm512_castps_si512(sgn.v), sign_bit),
        _mm512_andnot_epi32(sign_bit, _mm512_castps_si512(mag.v))))};
  }
  friend Mask cmp_lt(Pack a, Pack b) {
    return _mm512_cmp_ps_mask(a.v, b.v, _CMP_LT_OQ);
  }
  friend Mask cmp_gt(Pack a, Pack b) {
    return _mm512_cmp_ps_mask(a.v, b.v, _CMP_GT_OQ);
  }
  friend Mask cmp_ge(Pack a, Pack b) {
    return _mm512_cmp_ps_mask(a.v, b.v, _CMP_GE_OQ);
  }
  static Mask mask_and(Mask a, Mask b) { return static_cast<Mask>(a & b); }
  friend Pack select(Mask m, Pack a, Pack b) {
    return {_mm512_mask_blend_ps(m, b.v, a.v)};
  }
  static unsigned mask_bits(Mask m) { return static_cast<unsigned>(m); }
  friend float reduce_add(Pack a) {
    alignas(64) float lanes[kWidth];
    _mm512_store_ps(lanes, a.v);
    float acc = lanes[0];
    for (std::size_t i = 1; i < kWidth; ++i) acc += lanes[i];
    return acc;
  }
};

template <>
struct Pack<double, SimdType::kAvx512> {
  static constexpr std::size_t kWidth = 8;
  using Mask = __mmask8;
  __m512d v;

  static Pack load(const double* p) { return {_mm512_load_pd(p)}; }
  // Hardware vgatherdpd: eight 32-bit indices widen into a 512-bit gather
  // (full-mask masked form, as above).
  static Pack gather(const double* base, const std::uint32_t* idx) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return {_mm512_mask_i32gather_pd(_mm512_setzero_pd(),
                                     static_cast<__mmask8>(0xff), vidx, base,
                                     8)};
  }
  static Pack broadcast(double s) { return {_mm512_set1_pd(s)}; }
  static Pack zero() { return {_mm512_setzero_pd()}; }
  void store(double* p) const { _mm512_store_pd(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm512_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm512_mul_pd(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm512_div_pd(a.v, b.v)}; }
  friend Pack abs(Pack a) {
    const __m512i mag = _mm512_set1_epi64(0x7fffffffffffffffLL);
    return {_mm512_castsi512_pd(
        _mm512_and_epi64(_mm512_castpd_si512(a.v), mag))};
  }
  friend Pack copysign(Pack mag, Pack sgn) {
    const __m512i sign_bit = _mm512_set1_epi64(INT64_MIN);
    return {_mm512_castsi512_pd(_mm512_or_epi64(
        _mm512_and_epi64(_mm512_castpd_si512(sgn.v), sign_bit),
        _mm512_andnot_epi64(sign_bit, _mm512_castpd_si512(mag.v))))};
  }
  friend Mask cmp_lt(Pack a, Pack b) {
    return _mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ);
  }
  friend Mask cmp_gt(Pack a, Pack b) {
    return _mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ);
  }
  friend Mask cmp_ge(Pack a, Pack b) {
    return _mm512_cmp_pd_mask(a.v, b.v, _CMP_GE_OQ);
  }
  static Mask mask_and(Mask a, Mask b) { return static_cast<Mask>(a & b); }
  friend Pack select(Mask m, Pack a, Pack b) {
    return {_mm512_mask_blend_pd(m, b.v, a.v)};
  }
  static unsigned mask_bits(Mask m) { return static_cast<unsigned>(m); }
  friend double reduce_add(Pack a) {
    alignas(64) double lanes[kWidth];
    _mm512_store_pd(lanes, a.v);
    double acc = lanes[0];
    for (std::size_t i = 1; i < kWidth; ++i) acc += lanes[i];
    return acc;
  }
};

}  // namespace emdpa::simd

#endif  // __AVX512F__
