// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum guarding the
// checkpoint format's integrity footer.
//
// Chosen over a cryptographic hash deliberately: the threat model is bit
// rot, truncation and torn writes, not adversaries, and CRC-32 detects all
// burst errors up to 32 bits plus any odd number of bit flips at a few
// cycles per byte with zero dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace emdpa {

/// CRC of `size` bytes at `data`.  `seed` chains incremental computations:
/// crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

inline std::uint32_t crc32(const std::string& data, std::uint32_t seed = 0) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace emdpa
