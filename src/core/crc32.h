// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum guarding the
// checkpoint format's integrity footer.
//
// Chosen over a cryptographic hash deliberately: the threat model is bit
// rot, truncation and torn writes, not adversaries, and CRC-32 detects all
// burst errors up to 32 bits plus any odd number of bit flips at a few
// cycles per byte with zero dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace emdpa {

/// CRC of `size` bytes at `data`.  `seed` chains incremental computations:
/// crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

inline std::uint32_t crc32(const std::string& data, std::uint32_t seed = 0) {
  return crc32(data.data(), data.size(), seed);
}

/// Append the standard integrity footer — a final "crc <8 hex digits>\n"
/// line whose value covers every preceding byte — to a serialised body.
/// Shared by the checkpoint format and the trajectory-store frame formats.
std::string with_crc_footer(std::string body);

/// Verify the trailing footer written by with_crc_footer and return the body
/// without it.  Throws RuntimeFailure (naming `what`) when the footer is
/// missing, malformed, or does not match — a flipped bit, a truncated tail
/// or a torn write all land here.
std::string strip_crc_footer(const std::string& content, const char* what);

}  // namespace emdpa
