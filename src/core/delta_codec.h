// Byte-level XOR delta codec — the compression under trajectory-store delta
// frames.
//
// Two snapshots of the same simulation a few steps apart are numerically
// close: the sign, exponent and high mantissa bytes of most stored doubles
// agree, so the XOR of the two serialised states is mostly zero bytes with
// short bursts of low-mantissa noise.  The codec exploits exactly that and
// nothing more:
//
//   payload := token*            (whitespace-separated, newline-wrapped)
//   token   := 'z' <count>       a run of `count` zero XOR bytes
//            | <hex byte pairs>  a run of literal non-zero XOR bytes
//
// Applying a delta is XOR again (delta_apply(base, encode(base, next)) ==
// next, byte-exact, proven by the randomized store property harness).  The
// codec is deliberately text — it rides inside the same CRC-footered text
// frames as the hexfloat keyframes, so one corruption story covers both.
//
// The codec itself validates structure (malformed tokens, output-size
// mismatch); bit-level integrity of a frame on disk is the enclosing CRC-32
// footer's job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace emdpa {

/// Encode `next` as a delta against `base`.  The buffers must be the same
/// size (snapshots of one run have a fixed layout); throws RuntimeFailure
/// otherwise.
std::string delta_encode(const std::vector<std::uint8_t>& base,
                         const std::vector<std::uint8_t>& next);

/// Reconstruct the `next` buffer from `base` and an encoded delta.  Throws
/// RuntimeFailure on malformed payload or when the delta does not cover
/// exactly base.size() bytes.
std::vector<std::uint8_t> delta_apply(const std::vector<std::uint8_t>& base,
                                      const std::string& delta);

}  // namespace emdpa
