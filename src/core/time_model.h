// Strong types for the timing methodology.
//
// Every device simulator in this project reports *model time*: it counts the
// operations the real computation performs and converts them to seconds using
// a clock domain and per-operation cycle costs.  ModelTime and CycleCount are
// distinct types so that modelled durations can never be silently mixed with
// host wall-clock measurements or raw cycle counts.
#pragma once

#include <cstdint>
#include <ostream>

#include "core/error.h"

namespace emdpa {

/// A duration in modelled device seconds.
class ModelTime {
 public:
  constexpr ModelTime() = default;

  static constexpr ModelTime seconds(double s) { return ModelTime(s); }
  static constexpr ModelTime milliseconds(double ms) { return ModelTime(ms * 1e-3); }
  static constexpr ModelTime microseconds(double us) { return ModelTime(us * 1e-6); }
  static constexpr ModelTime zero() { return ModelTime(0.0); }

  constexpr double to_seconds() const { return seconds_; }
  constexpr double to_milliseconds() const { return seconds_ * 1e3; }

  constexpr ModelTime& operator+=(ModelTime o) { seconds_ += o.seconds_; return *this; }
  constexpr ModelTime& operator-=(ModelTime o) { seconds_ -= o.seconds_; return *this; }
  constexpr ModelTime& operator*=(double k) { seconds_ *= k; return *this; }

  friend constexpr ModelTime operator+(ModelTime a, ModelTime b) { return a += b; }
  friend constexpr ModelTime operator-(ModelTime a, ModelTime b) { return a -= b; }
  friend constexpr ModelTime operator*(ModelTime a, double k) { return a *= k; }
  friend constexpr ModelTime operator*(double k, ModelTime a) { return a *= k; }
  friend constexpr double operator/(ModelTime a, ModelTime b) {
    return a.seconds_ / b.seconds_;
  }
  friend constexpr auto operator<=>(ModelTime, ModelTime) = default;

  friend std::ostream& operator<<(std::ostream& os, ModelTime t) {
    return os << t.seconds_ << " s";
  }

 private:
  explicit constexpr ModelTime(double s) : seconds_(s) {}
  double seconds_ = 0.0;
};

/// A count of device clock cycles.  Fractional cycles are allowed because
/// cost models express average costs (e.g. 0.75 cycles/instruction on a
/// dual-issue pipeline).
class CycleCount {
 public:
  constexpr CycleCount() = default;
  explicit constexpr CycleCount(double cycles) : cycles_(cycles) {}

  constexpr double value() const { return cycles_; }

  constexpr CycleCount& operator+=(CycleCount o) { cycles_ += o.cycles_; return *this; }
  friend constexpr CycleCount operator+(CycleCount a, CycleCount b) { return a += b; }
  friend constexpr CycleCount operator*(CycleCount a, double k) { return CycleCount(a.cycles_ * k); }
  friend constexpr CycleCount operator*(double k, CycleCount a) { return a * k; }
  friend constexpr auto operator<=>(CycleCount, CycleCount) = default;

 private:
  double cycles_ = 0.0;
};

/// A clock domain converts cycle counts to modelled time.  Each simulated
/// device (SPE, PPE, GPU core, MTA processor, Opteron) owns one.
class ClockDomain {
 public:
  /// Construct from a frequency in hertz; must be positive.
  explicit constexpr ClockDomain(double hz) : hz_(hz) {
    if (hz <= 0.0) throw ContractViolation("clock frequency must be positive");
  }

  constexpr double hz() const { return hz_; }

  constexpr ModelTime to_time(CycleCount c) const {
    return ModelTime::seconds(c.value() / hz_);
  }

  constexpr CycleCount to_cycles(ModelTime t) const {
    return CycleCount(t.to_seconds() * hz_);
  }

 private:
  double hz_;
};

}  // namespace emdpa
