#include "core/simd_dispatch.h"

#include <cstdlib>

#include "core/error.h"

namespace emdpa::simd {

bool cpu_supports(SimdType isa) {
  if (isa == SimdType::kScalar) return true;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  switch (isa) {
    case SimdType::kSse2: return __builtin_cpu_supports("sse2") != 0;
    case SimdType::kAvx2: return __builtin_cpu_supports("avx2") != 0;
    case SimdType::kAvx512: return __builtin_cpu_supports("avx512f") != 0;
    case SimdType::kScalar: return true;
  }
#endif
  // Non-x86 (or unknown compiler): only the scalar path is trustworthy.
  return false;
}

SimdType parse_simd_type(const std::string& text) {
  for (const SimdType isa : kIsaRanking) {
    if (text == to_string(isa)) return isa;
  }
  throw RuntimeFailure("unknown SIMD ISA '" + text +
                       "' (valid: scalar, sse2, avx2, avx512)");
}

std::optional<SimdType> env_simd_override() {
  const char* value = std::getenv("EMDPA_SIMD");
  if (value == nullptr || *value == '\0') return std::nullopt;
  try {
    return parse_simd_type(value);
  } catch (const RuntimeFailure& e) {
    throw RuntimeFailure(std::string("EMDPA_SIMD: ") + e.what());
  }
}

SimdType choose_isa(unsigned compiled_mask, std::optional<SimdType> request) {
  if (request) {
    const SimdType isa = *request;
    if ((compiled_mask & isa_bit(isa)) == 0u) {
      throw RuntimeFailure(std::string("SIMD ISA '") + to_string(isa) +
                           "' was requested but is not compiled into this "
                           "binary (the compiler lacked the -m flag)");
    }
    if (!cpu_supports(isa)) {
      throw RuntimeFailure(std::string("SIMD ISA '") + to_string(isa) +
                           "' was requested but this CPU does not support it");
    }
    return isa;
  }
  for (const SimdType isa : kIsaRanking) {
    if ((compiled_mask & isa_bit(isa)) != 0u && cpu_supports(isa)) return isa;
  }
  throw RuntimeFailure(
      "no usable SIMD ISA: not even the scalar kernel table was compiled in");
}

}  // namespace emdpa::simd
