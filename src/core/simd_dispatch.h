// Runtime SIMD instruction-set selection.
//
// This layer answers three questions, and nothing more (it knows no kernels
// — the md layer owns the per-ISA function tables and asks this one which
// table to use):
//
//  * cpu_supports(isa)  — does the machine we are RUNNING on have the ISA?
//    (CPUID via __builtin_cpu_supports; the binary may well contain AVX-512
//    code paths that this CPU must never execute.)
//  * env_simd_override() — did the user force an ISA with EMDPA_SIMD=
//    scalar|sse2|avx2|avx512?  Unset or empty means "no preference".
//  * choose_isa(compiled_mask, request) — rank the ISAs widest-first and
//    return the best one that is both compiled into the binary and
//    supported by the CPU; or validate an explicit request, failing loudly
//    (RuntimeFailure with the reason) instead of silently running slower or
//    crashing on an illegal instruction.
#pragma once

#include <optional>
#include <string>

#include "core/simd/pack_fwd.h"

namespace emdpa::simd {

/// ISAs in dispatch preference order, widest first.
inline constexpr SimdType kIsaRanking[] = {SimdType::kAvx512, SimdType::kAvx2,
                                           SimdType::kSse2, SimdType::kScalar};

/// Bit for `isa` in a compiled-ISA bitmask.
constexpr unsigned isa_bit(SimdType isa) {
  return 1u << static_cast<unsigned>(isa);
}

/// True when the CPU executing this process can run `isa` (kScalar always).
bool cpu_supports(SimdType isa);

/// Parse "scalar" / "sse2" / "avx2" / "avx512"; throws RuntimeFailure (with
/// the valid spellings) on anything else.
SimdType parse_simd_type(const std::string& text);

/// The EMDPA_SIMD environment override, if set and non-empty.  Throws
/// RuntimeFailure on an unparseable value — a typo must not silently fall
/// back to auto-dispatch.
std::optional<SimdType> env_simd_override();

/// Pick the ISA to run: an explicit `request` is validated against
/// `compiled_mask` (an OR of isa_bit()s for the tables present in the
/// binary) and the CPU, and any failure throws with an actionable message;
/// no request walks kIsaRanking and returns the first available ISA.
SimdType choose_isa(unsigned compiled_mask, std::optional<SimdType> request);

}  // namespace emdpa::simd
