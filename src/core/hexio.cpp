#include "core/hexio.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/error.h"

namespace emdpa::hexio {

std::string format_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

std::string format_u64(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return buf;
}

double parse_double(const std::string& token, const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw RuntimeFailure(std::string("hexio: malformed ") + what + " '" +
                         token + "'");
  }
  if (consumed != token.size()) {
    throw RuntimeFailure(std::string("hexio: trailing characters in ") + what +
                         " '" + token + "'");
  }
  if (!std::isfinite(value)) {
    throw RuntimeFailure(std::string("hexio: non-finite ") + what + " '" +
                         token + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& token, const char* what) {
  try {
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(token, &consumed, 16);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw RuntimeFailure(std::string("hexio: malformed ") + what + " '" +
                         token + "'");
  }
}

}  // namespace emdpa::hexio
