#include "core/csv.h"

#include "core/string_util.h"

namespace emdpa {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::string& label, const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.push_back(label);
  for (double v : values) fields.push_back(format_auto(v));
  write_row(fields);
}

}  // namespace emdpa
