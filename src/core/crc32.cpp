#include "core/crc32.h"

#include <array>
#include <cstdio>

#include "core/error.h"

namespace emdpa {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string with_crc_footer(std::string body) {
  char footer[24];
  std::snprintf(footer, sizeof(footer), "crc %08x\n", crc32(body));
  body += footer;
  return body;
}

std::string strip_crc_footer(const std::string& content, const char* what) {
  // The footer is the last line; searching from the end keeps any body that
  // could legally contain "crc " unambiguous.
  const std::size_t pos = content.rfind("\ncrc ");
  if (pos == std::string::npos) {
    throw RuntimeFailure(std::string(what) +
                         ": missing crc footer (truncated file?)");
  }
  const std::string body = content.substr(0, pos + 1);
  const std::string footer = content.substr(pos + 1);
  // Exactly "crc " + 8 hex digits + newline; anything else is corruption.
  if (footer.size() != 13 || footer.compare(0, 4, "crc ") != 0 ||
      footer.back() != '\n') {
    throw RuntimeFailure(std::string(what) + ": malformed crc footer");
  }
  std::uint32_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = footer[4 + i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      throw RuntimeFailure(std::string(what) + ": malformed crc value");
    }
    stored = (stored << 4) | digit;
  }
  const std::uint32_t computed = crc32(body);
  if (computed != stored) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "%s: crc mismatch (stored %08x, computed %08x)", what,
                  stored, computed);
    throw RuntimeFailure(msg);
  }
  return body;
}

}  // namespace emdpa
