// Reusable worker thread pool with a chunked parallel_for primitive.
//
// This is the host execution layer the device models ride on: the SoA host
// kernel splits atom rows over it, the Cell model runs its SPE workers on it,
// and the MTA model executes its "streams" on it.  Design constraints:
//
//  * Determinism.  parallel_for decomposes [begin, end) into fixed chunks of
//    `grain` indices; which thread runs a chunk is scheduling-dependent, but
//    the chunk boundaries are not.  Callers that write per-index (or
//    per-chunk, via parallel_reduce's ordered fold) get results that are
//    bit-identical run to run at any thread count.
//  * Exceptions propagate: the first exception thrown by any chunk is
//    rethrown on the calling thread after all chunks finish.
//  * Nested parallel_for calls (from inside a chunk body) run inline and
//    serially on the calling worker — no deadlock, same results.
//  * Thread count comes from the EMDPA_THREADS environment variable when set
//    (a positive integer), otherwise std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace emdpa {

class ThreadPool {
 public:
  /// A pool of `n_threads` total execution contexts: the calling thread plus
  /// n_threads - 1 workers.  n_threads == 0 means default_thread_count().
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution contexts (callers of parallel_for participate, so a
  /// pool of size 1 has no worker threads and runs everything inline).
  std::size_t size() const { return workers_.size() + 1; }

  /// Resolved default: EMDPA_THREADS if set to a positive integer, else
  /// hardware_concurrency(), never less than 1.
  static std::size_t default_thread_count();

  /// Process-wide shared pool, created on first use with the default thread
  /// count.  Backends use this so one run reuses one set of threads.
  static ThreadPool& global();

  /// Fix the thread count global() will be created with (0 = default).  Must
  /// be called before the first global() use; returns false (and changes
  /// nothing) if the global pool already exists.  Unlike an EMDPA_THREADS
  /// setenv round-trip, a late call fails loudly instead of silently.
  static bool configure_global(std::size_t n_threads);

  /// Run body(chunk_begin, chunk_end) over [begin, end) split into chunks of
  /// at most max(grain, 1) indices.  Blocks until every chunk completed; the
  /// first exception thrown by a chunk is rethrown here.  Chunk boundaries
  /// depend only on (begin, end, grain), never on the thread count.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Deterministic map/reduce: map(chunk_begin, chunk_end) -> T per chunk,
  /// folded left-to-right in chunk order (combine(acc, chunk_result)).  The
  /// fold order is fixed by the chunk decomposition, so floating-point
  /// reductions are bit-identical run to run at any thread count.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                    T init, Map map, Combine combine) {
    if (end <= begin) return init;
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t n_chunks = (end - begin + g - 1) / g;
    std::vector<T> partials(n_chunks, init);
    parallel_for(0, n_chunks, 1, [&](std::size_t c0, std::size_t c1) {
      for (std::size_t k = c0; k < c1; ++k) {
        const std::size_t b = begin + k * g;
        const std::size_t e = b + g < end ? b + g : end;
        partials[k] = map(b, e);
      }
    });
    T acc = init;
    for (std::size_t k = 0; k < n_chunks; ++k) acc = combine(acc, partials[k]);
    return acc;
  }

 private:
  struct Task;

  void worker_loop();
  static void work_on(Task& task);

  mutable std::mutex mutex_;
  std::condition_variable wake_cv_;   ///< workers wait here for a new task
  std::condition_variable done_cv_;   ///< parallel_for waits here for completion
  std::mutex run_mutex_;              ///< serialises concurrent parallel_for calls
  Task* current_ = nullptr;
  std::uint64_t epoch_ = 0;
  /// Workers currently holding a pointer to current_ (guarded by mutex_).
  /// parallel_for waits for this to drain before destroying its Task.
  std::size_t n_active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace emdpa
