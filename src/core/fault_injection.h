// Deterministic fault-injection registry (resilience layer).
//
// The simulated backends mirror failure-prone orchestration layers — SPE DMA
// and mailbox traffic, MTA stream scheduling, neighbour-list rebuilds,
// checkpoint I/O — yet nothing in a healthy run ever exercises a failure
// path.  This registry lets tests (and operators, via the EMDPA_FAULTS
// environment variable) arm named injection sites so the documented recovery
// behaviour — retry, fallback, clean typed abort — is *proved* rather than
// assumed.
//
// Determinism: a site fires either on an exact 1-based hit index
// ("site:first" or "site:firstxcount" for `count` consecutive hits) or with
// a seeded per-site Bernoulli draw ("site%probability@seed").  Both forms
// are pure functions of the hit counter, so an armed run replays
// identically.
//
//   EMDPA_FAULTS="cellsim.dma:3;md.checkpoint_io:1x2"   # 3rd DMA request
//                                                       # fails once; the
//                                                       # first two
//                                                       # checkpoint writes
//                                                       # fail
//   EMDPA_FAULTS="mtasim.stream%0.25@42"                # each region fails
//                                                       # with p=0.25, seeded
//
// Sites compiled into the tree (one per orchestration layer):
//   cellsim.dma        transient DMA transfer failure  -> engine retries
//   cellsim.mailbox    dropped SPE mailbox signal      -> PPE re-signals
//   mtasim.stream      stream fault in a parallel region -> serial re-issue
//   md.list_build      neighbour-list rebuild failure  -> degrade / abort
//   md.checkpoint_io   EIO while writing a checkpoint  -> skip + retry next
//                                                         interval
//   md.step_perturb    one-ulp velocity kick before an exact step (keyed to
//                      the absolute step number, not the hit counter, so a
//                      replayed window re-fires identically) -> the known
//                      divergence `emdpa bisect` must localise
//
// Production builds can compile every hook to a constant-false no-op with
// -DEMDPA_FAULT_INJECTION=OFF (CMake option); the registry itself still
// links so tooling code that configures it keeps building.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace emdpa::fault {

/// When an armed site fires.  Exactly one of the two modes is active: hit
/// ranges (probability < 0) or seeded Bernoulli (probability in [0, 1]).
struct Plan {
  std::uint64_t first_hit = 1;  ///< 1-based hit index of the first failure
  std::uint64_t count = 1;      ///< consecutive failing hits from first_hit
  double probability = -1.0;    ///< >= 0 switches to seeded Bernoulli mode
  std::uint64_t seed = 0;       ///< Bernoulli mode: per-site stream seed
};

/// Per-site observation counters, for tests and reports.
struct SiteStats {
  std::uint64_t hits = 0;   ///< times the site was reached while armed
  std::uint64_t fires = 0;  ///< times the plan said "fail"
};

/// Process-wide registry of armed injection sites.  Thread-safe: sites are
/// hit from pool workers (the SPE workers run concurrently).  When no site
/// is armed, should_fail() is a single relaxed atomic load.
class Registry {
 public:
  /// The process singleton.  First access arms from $EMDPA_FAULTS if set.
  static Registry& instance();

  /// Arm sites from a spec string: ';'-separated entries of the form
  /// "site:first", "site:firstxcount" or "site%probability@seed".  Throws
  /// RuntimeFailure on malformed input.
  void arm_from_spec(const std::string& spec);

  void arm(const std::string& site, const Plan& plan);
  void disarm(const std::string& site);
  /// Disarm every site and zero all counters.
  void reset();

  bool any_armed() const;
  SiteStats stats(const std::string& site) const;

  /// Count a hit at `site`; true when the armed plan fails this hit.  Sites
  /// are only counted while armed (the disarmed fast path must stay free).
  bool should_fail(const char* site);

  /// Evaluate `site`'s armed plan against a CALLER-SUPPLIED 1-based index
  /// instead of the internal hit counter — for sites keyed to an absolute
  /// quantity like the simulation step number.  Replay-consistent by
  /// construction: restoring a snapshot and re-running a step window asks
  /// about the same indices and gets the same answers, which hit counters
  /// cannot promise.  Counts a hit (and a fire) like should_fail.
  bool should_fail_at(const char* site, std::uint64_t index);

 private:
  Registry();

  struct SiteState {
    Plan plan;
    SiteStats stats;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, SiteState> sites_;
  std::atomic<int> armed_count_{0};
};

#if defined(EMDPA_FAULT_INJECTION) && EMDPA_FAULT_INJECTION
/// The one hook compiled into production code paths.
inline bool injected(const char* site) {
  return Registry::instance().should_fail(site);
}
/// Step-indexed hook: fires when the armed plan covers `index` (1-based),
/// independent of how many times the site has been reached.  The hook the
/// replayable sites (md.step_perturb) use.
inline bool injected_at(const char* site, std::uint64_t index) {
  return Registry::instance().should_fail_at(site, index);
}
#else
constexpr bool injected(const char* /*site*/) { return false; }
constexpr bool injected_at(const char* /*site*/, std::uint64_t /*index*/) {
  return false;
}
#endif

/// RAII test helper: arms `site` on construction, disarms it on destruction
/// so one test's faults never leak into the next.
class ScopedFault {
 public:
  explicit ScopedFault(std::string site, const Plan& plan = {})
      : site_(std::move(site)) {
    Registry::instance().arm(site_, plan);
  }
  ~ScopedFault() { Registry::instance().disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  SiteStats stats() const { return Registry::instance().stats(site_); }

 private:
  std::string site_;
};

}  // namespace emdpa::fault
