// Heap buffer with guaranteed alignment.
//
// The Cell DMA engine (like the hardware MFC) requires 16-byte-aligned host
// addresses; std::vector only guarantees the element's own alignment.  The
// device models use AlignedBuffer for every host-side array that crosses a
// DMA boundary so the alignment contract holds by construction.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

#include "core/error.h"

namespace emdpa {

template <typename T, std::size_t Alignment = 16>
class AlignedBuffer {
  static_assert(Alignment >= alignof(T), "alignment must satisfy the type");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");

 public:
  explicit AlignedBuffer(std::size_t count) : count_(count) {
    EMDPA_REQUIRE(count > 0, "aligned buffer must hold at least one element");
    const std::size_t bytes =
        (count * sizeof(T) + Alignment - 1) / Alignment * Alignment;
    data_ = static_cast<T*>(::operator new(bytes, std::align_val_t{Alignment}));
    for (std::size_t i = 0; i < count_; ++i) new (data_ + i) T{};
  }

  ~AlignedBuffer() {
    if (data_ != nullptr) {
      for (std::size_t i = count_; i > 0; --i) data_[i - 1].~T();
      ::operator delete(data_, std::align_val_t{Alignment});
    }
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), count_(other.count_) {
    other.data_ = nullptr;
    other.count_ = 0;
  }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      this->~AlignedBuffer();
      data_ = other.data_;
      count_ = other.count_;
      other.data_ = nullptr;
      other.count_ = 0;
    }
    return *this;
  }

  std::size_t size() const { return count_; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + count_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + count_; }

 private:
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace emdpa
