// Deterministic priority queue for the cooperative job scheduler.
//
// A scheduler multiplexing simulations over shared compute needs two
// orderings at once: strict priority between bands, and fairness inside a
// band.  Both must be deterministic — the batch determinism guarantee
// ("time-sliced jobs finish bitwise identical to standalone runs") only
// composes into a reproducible *batch* if the interleaving itself replays.
//
// Entries are therefore ranked by (priority desc, push sequence asc): no
// timestamps, no pointer order.  Re-pushing a job after its time slice
// assigns a fresh sequence number, sending it to the back of its priority
// band — exactly round-robin among equal-priority jobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "core/error.h"

namespace emdpa {

/// Max-priority queue of opaque job ids (indices into the caller's job
/// table).  Not thread-safe: the scheduler's control loop is single-threaded
/// by design — parallelism lives inside each job's force kernels.
class JobQueue {
 public:
  void push(std::size_t id, int priority) {
    heap_.push(Entry{priority, next_sequence_++, id});
  }

  /// Remove and return the highest-priority (then longest-waiting) id.
  std::size_t pop() {
    EMDPA_REQUIRE(!heap_.empty(), "pop from an empty job queue");
    const std::size_t id = heap_.top().id;
    heap_.pop();
    return id;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  struct Entry {
    int priority;
    std::uint64_t sequence;
    std::size_t id;

    /// std::priority_queue is a max-heap on operator<: "less" means "served
    /// later", i.e. lower priority, or same priority but pushed later.
    bool operator<(const Entry& other) const {
      if (priority != other.priority) return priority < other.priority;
      return sequence > other.sequence;
    }
  };

  std::priority_queue<Entry> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace emdpa
