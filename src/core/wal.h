// Append-only, CRC-checked write-ahead log (resilience layer).
//
// PR 5 made individual simulations crash-safe; the batch scheduler that
// multiplexes them was still a single point of failure — kill it mid-flight
// and every piece of in-memory bookkeeping (retry counters, quarantine
// verdicts, the round-robin position) evaporated.  A write-ahead log fixes
// that the same way the checkpoint files fixed the physics state: every
// state transition is appended durably *before* the batch acts on it, so a
// restarted process replays the log and continues from the exact decision
// point the dead one reached.
//
// Record format — one record per line, human-greppable like every other
// on-disk format in this repo:
//
//   <payload> #crc=XXXXXXXX
//
// The CRC-32 (core/crc32.h) covers the payload bytes exactly.  Payloads are
// single-line by contract (append() rejects embedded newlines).
//
// Torn-tail policy: a SIGKILL mid-append leaves a partial final line (or a
// line whose CRC does not verify).  read_wal() replays records in order and
// stops at the first record that fails to verify, reporting the discarded
// byte count — the classic WAL contract: a prefix of the history is always
// recovered, never a corrupted suffix.
//
// Durability: append() fsyncs the file after every record, and rewrite()
// (atomic segment rotation/compaction: temp file + fsync + rename) fsyncs
// the containing directory after the rename so the commit survives power
// loss, not just process death.  The fsync helpers are shared with
// md::CheckpointManager, which has the same directory-durability
// obligation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace emdpa {

/// fsync an existing file by path (open + fsync + close).  Throws
/// RuntimeFailure on failure.  No-op on platforms without POSIX fsync.
void fsync_file(const std::string& path);

/// fsync the directory containing `path`, making a just-committed rename in
/// it durable across power loss.  Throws RuntimeFailure on failure.
void fsync_parent_directory(const std::string& path);

/// What a replay recovered: every verifiable record in order, plus how much
/// of a torn/corrupt tail was discarded.
struct WalReplay {
  std::vector<std::string> records;  ///< verified payloads, oldest first
  std::uint64_t dropped_bytes = 0;   ///< bytes discarded after the last good record
  bool truncated = false;            ///< true when a torn tail was dropped
};

/// Replay a log file.  A missing file is an empty (valid) log; any I/O error
/// on an existing file throws RuntimeFailure.
WalReplay read_wal(const std::string& path);

/// Appender over one log file.  Single-writer by design (the scheduler's
/// control loop is single-threaded); reruns reopen in append mode and
/// continue the same segment.
class WalWriter {
 public:
  /// Open (creating if missing) for appending.  Throws RuntimeFailure.
  explicit WalWriter(std::string path);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  const std::string& path() const { return path_; }

  /// Append one record and fsync it.  `payload` must not contain newlines.
  /// Throws RuntimeFailure on I/O failure — the previously appended records
  /// are unaffected (appends are strictly at the tail).
  void append(const std::string& payload);

  /// Atomically replace the whole log with `records` — segment rotation:
  /// the new segment is written to `<path>.tmp`, fsynced, renamed onto
  /// `<path>`, and the directory is fsynced; the appender then continues on
  /// the new segment.  A kill at any instant leaves either the old or the
  /// new segment complete on disk.
  void rewrite(const std::vector<std::string>& records);

  /// Current on-disk size in bytes (rotation policies key off this).
  std::uint64_t size_bytes() const;

  /// Records appended through this writer (excludes pre-existing ones).
  std::uint64_t appended() const { return appended_; }

 private:
  void open_append();
  void close_fd();

  std::string path_;
  int fd_ = -1;
  std::uint64_t appended_ = 0;
};

/// Frame one payload as a WAL line (without the trailing newline) — exposed
/// for tests that construct torn tails byte by byte.
std::string wal_frame(const std::string& payload);

}  // namespace emdpa
