#include "core/interrupt.h"

#include <csignal>

namespace emdpa {

namespace {

// The only thing a handler may touch: a lock-free sig_atomic_t latch.
volatile std::sig_atomic_t g_signal = 0;

void latch_signal(int signal) { g_signal = signal; }

}  // namespace

void arm_interrupt_handlers() {
  std::signal(SIGINT, latch_signal);
  std::signal(SIGTERM, latch_signal);
}

int interrupt_signal() { return static_cast<int>(g_signal); }

void clear_interrupt() { g_signal = 0; }

const char* interrupt_signal_name(int signal) {
  switch (signal) {
    case SIGINT: return "SIGINT";
    case SIGTERM: return "SIGTERM";
    default: return "signal";
  }
}

}  // namespace emdpa
