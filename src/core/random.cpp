#include "core/random.h"

#include <cmath>
#include <numbers>

#include "core/error.h"

namespace emdpa {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Rng::State Rng::state() const {
  return State{s_, cached_gaussian_, has_cached_gaussian_};
}

void Rng::restore(const State& state) {
  s_ = state.s;
  cached_gaussian_ = state.cached_gaussian;
  has_cached_gaussian_ = state.has_cached_gaussian;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0,1): the standard (x >> 11) * 2^-53 construction.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  EMDPA_REQUIRE(n > 0, "uniform_index needs a non-empty range");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller.  u1 is nudged away from zero so log(u1) is finite.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

Vec3d Rng::point_in_box(const Vec3d& extent) {
  return {uniform(0.0, extent.x), uniform(0.0, extent.y), uniform(0.0, extent.z)};
}

}  // namespace emdpa
