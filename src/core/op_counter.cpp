#include "core/op_counter.h"

#include <sstream>

namespace emdpa {

void OpCounter::add(std::string_view name, std::uint64_t n) {
  auto it = counts_.find(name);
  if (it == counts_.end()) {
    counts_.emplace(std::string(name), n);
  } else {
    it->second += n;
  }
}

std::uint64_t OpCounter::get(std::string_view name) const {
  auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

void OpCounter::merge(const OpCounter& other) {
  for (const auto& [name, count] : other.counts_) add(name, count);
}

void OpCounter::clear() { counts_.clear(); }

std::string OpCounter::to_string() const {
  std::ostringstream os;
  for (const auto& [name, count] : counts_) {
    os << name << " = " << count << "\n";
  }
  return os.str();
}

}  // namespace emdpa
