// Deterministic random number generation for workload construction.
//
// We implement the generators ourselves (SplitMix64 for seeding, Xoshiro256**
// for the stream) instead of using std::mt19937 so that workloads are
// bit-reproducible across standard libraries — the benchmark harness relies
// on every backend seeing the identical initial condition.
#pragma once

#include <array>
#include <cstdint>

#include "core/vec3.h"

namespace emdpa {

/// SplitMix64: tiny, high-quality 64-bit generator used to expand a single
/// user seed into the 256-bit Xoshiro state (the construction recommended by
/// the Xoshiro authors).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 — the project-wide PRNG.
class Rng {
 public:
  /// Complete generator state, snapshot-and-restore exact.  The cached
  /// Box–Muller second deviate is part of it: dropping it on restore would
  /// shift every subsequent gaussian() by one draw, which is exactly the
  /// divergence checkpoint/resume must not introduce.
  struct State {
    std::array<std::uint64_t, 4> s{};
    double cached_gaussian = 0.0;
    bool has_cached_gaussian = false;
  };

  explicit Rng(std::uint64_t seed);

  /// Snapshot the full state; restore() continues the identical stream.
  State state() const;
  void restore(const State& state);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Box–Muller, cached second value).
  double gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Uniform point in the axis-aligned box [0, extent) per component.
  Vec3d point_in_box(const Vec3d& extent);

 private:
  std::array<std::uint64_t, 4> s_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace emdpa
