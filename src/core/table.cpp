#include "core/table.h"

#include <algorithm>
#include <sstream>

#include "core/error.h"
#include "core/string_util.h"

namespace emdpa {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  EMDPA_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  EMDPA_REQUIRE(cells.size() == header_.size(),
                "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_fixed(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += (c == 0) ? pad_right(row[c], widths[c]) : pad_left(row[c], widths[c]);
    }
    return line;
  };

  std::ostringstream os;
  os << render_row(header_) << "\n";
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c > 0 ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) os << render_row(row) << "\n";
  return os.str();
}

}  // namespace emdpa
