// Cooperative SIGINT/SIGTERM handling (resilience layer).
//
// The emergency-checkpoint machinery exists so no failure mode discards
// completed work — yet before this seam an operator's Ctrl-C or an
// orchestrator's TERM did exactly that, killing the process between two
// periodic checkpoints.  arm_interrupt_handlers() installs async-signal-safe
// handlers that only latch the signal number; the simulation loops poll
// interrupt_requested() at their natural boundaries (per step in the
// host-parallel backend, per slice in the job scheduler), write a final
// checkpoint and unwind with core/error.h's Interrupted so the driver can
// exit with a distinct, resumable-meaning code.
//
// The latch is process-global by design (a signal is a process-level event),
// and nothing in the library polls it unless a driver armed the handlers —
// library embedders keep their own signal disposition untouched.
#pragma once

namespace emdpa {

/// Install the latching SIGINT/SIGTERM handlers.  Idempotent.
void arm_interrupt_handlers();

/// The latched signal number, or 0 when no signal has arrived.
int interrupt_signal();

/// True once a latched SIGINT/SIGTERM is pending.
inline bool interrupt_requested() { return interrupt_signal() != 0; }

/// Reset the latch (tests; a driver drains by exiting instead).
void clear_interrupt();

/// "SIGINT" / "SIGTERM" / "signal <n>" for messages.
const char* interrupt_signal_name(int signal);

}  // namespace emdpa
