#include "core/delta_codec.h"

#include <cstdio>

#include "core/error.h"

namespace emdpa {

namespace {

constexpr std::size_t kWrapColumn = 76;

const char kHexDigits[] = "0123456789abcdef";

void append_token(std::string& out, std::size_t& column,
                  const std::string& token) {
  if (column != 0 && column + 1 + token.size() > kWrapColumn) {
    out += '\n';
    column = 0;
  }
  if (column != 0) {
    out += ' ';
    ++column;
  }
  out += token;
  column += token.size();
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string delta_encode(const std::vector<std::uint8_t>& base,
                         const std::vector<std::uint8_t>& next) {
  if (base.size() != next.size()) {
    throw RuntimeFailure("delta_encode: buffer size mismatch");
  }
  std::string out;
  std::size_t column = 0;
  std::size_t i = 0;
  const std::size_t n = base.size();
  while (i < n) {
    if (base[i] == next[i]) {
      std::size_t run = 0;
      while (i < n && base[i] == next[i]) {
        ++run;
        ++i;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "z%zu", run);
      append_token(out, column, buf);
    } else {
      std::string token;
      while (i < n && base[i] != next[i]) {
        const std::uint8_t x = base[i] ^ next[i];
        token += kHexDigits[x >> 4];
        token += kHexDigits[x & 0xF];
        ++i;
      }
      append_token(out, column, token);
    }
  }
  if (column != 0) out += '\n';
  return out;
}

std::vector<std::uint8_t> delta_apply(const std::vector<std::uint8_t>& base,
                                      const std::string& delta) {
  std::vector<std::uint8_t> out(base);
  std::size_t pos = 0;  // next output byte to patch
  std::size_t i = 0;
  const std::size_t len = delta.size();
  while (i < len) {
    const char c = delta[i];
    if (c == ' ' || c == '\n' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Token runs until the next whitespace.
    std::size_t end = i;
    while (end < len && delta[end] != ' ' && delta[end] != '\n' &&
           delta[end] != '\t' && delta[end] != '\r') {
      ++end;
    }
    if (c == 'z') {
      std::size_t run = 0;
      if (end == i + 1) {
        throw RuntimeFailure("delta_apply: empty zero-run token");
      }
      for (std::size_t j = i + 1; j < end; ++j) {
        const char d = delta[j];
        if (d < '0' || d > '9') {
          throw RuntimeFailure("delta_apply: malformed zero-run token '" +
                               delta.substr(i, end - i) + "'");
        }
        run = run * 10 + static_cast<std::size_t>(d - '0');
        if (run > base.size()) {
          throw RuntimeFailure("delta_apply: zero run exceeds buffer size");
        }
      }
      pos += run;  // zero XOR: bytes already copied from base
      if (pos > out.size()) {
        throw RuntimeFailure("delta_apply: delta overruns buffer");
      }
    } else {
      if ((end - i) % 2 != 0) {
        throw RuntimeFailure("delta_apply: odd-length hex token '" +
                             delta.substr(i, end - i) + "'");
      }
      for (std::size_t j = i; j < end; j += 2) {
        const int hi = hex_value(delta[j]);
        const int lo = hex_value(delta[j + 1]);
        if (hi < 0 || lo < 0) {
          throw RuntimeFailure("delta_apply: malformed hex token '" +
                               delta.substr(i, end - i) + "'");
        }
        if (pos >= out.size()) {
          throw RuntimeFailure("delta_apply: delta overruns buffer");
        }
        out[pos] ^= static_cast<std::uint8_t>((hi << 4) | lo);
        ++pos;
      }
    }
    i = end;
  }
  if (pos != out.size()) {
    throw RuntimeFailure("delta_apply: delta covers " + std::to_string(pos) +
                         " of " + std::to_string(out.size()) + " bytes");
  }
  return out;
}

}  // namespace emdpa
