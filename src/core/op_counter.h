// Named operation counters.
//
// Device kernels increment counters for the events their cost models price
// (candidate pairs examined, interacting pairs, SIMD ops, DMA bytes, cache
// misses…).  Keeping the counters separate from the cost models makes the
// timing methodology auditable: a bench can print exactly which events were
// counted alongside the derived model time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace emdpa {

class OpCounter {
 public:
  /// Add `n` occurrences of the named event.
  void add(std::string_view name, std::uint64_t n = 1);

  /// Current count for the named event (0 if never recorded).
  std::uint64_t get(std::string_view name) const;

  /// Merge another counter set into this one.
  void merge(const OpCounter& other);

  /// Reset all counters to zero.
  void clear();

  /// Stable iteration over (name, count) pairs, sorted by name.
  const std::map<std::string, std::uint64_t, std::less<>>& entries() const {
    return counts_;
  }

  /// Render as a compact one-line-per-counter report.
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counts_;
};

}  // namespace emdpa
