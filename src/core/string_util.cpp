#include "core/string_util.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace emdpa {

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_auto(double value) {
  const double mag = std::fabs(value);
  char buf[64];
  if (value == 0.0) return "0";
  if (mag >= 1e-3 && mag < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.4g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3e", value);
  }
  return buf;
}

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) os << sep;
    os << parts[i];
  }
  return os.str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace emdpa
