#include "core/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace emdpa {

namespace {

// Set while a thread is executing chunks, so a nested parallel_for from a
// chunk body runs inline instead of deadlocking on the pool.
thread_local bool t_inside_chunk = false;

struct InsideChunkScope {
  bool previous = t_inside_chunk;
  InsideChunkScope() { t_inside_chunk = true; }
  ~InsideChunkScope() { t_inside_chunk = previous; }
};

// State for ThreadPool::configure_global / global().  0 means "use the
// default thread count"; the created flag flips permanently once global()
// has run so a late configure_global can fail instead of silently no-op.
std::atomic<std::size_t> g_global_threads{0};
std::atomic<bool> g_global_created{false};

}  // namespace

struct ThreadPool::Task {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t n_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex error_mutex;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t n_threads) {
  std::size_t total = n_threads == 0 ? default_thread_count() : n_threads;
  total = std::max<std::size_t>(total, 1);
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("EMDPA_THREADS")) {
    char* tail = nullptr;
    const long parsed = std::strtol(env, &tail, 10);
    if (tail != env && *tail == '\0' && parsed > 0) {
      return std::min<long>(parsed, 1024);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  // The flag is raised before construction: a configure_global racing with
  // the first global() use reports failure rather than being half-applied.
  g_global_created.store(true, std::memory_order_release);
  static ThreadPool pool(g_global_threads.load(std::memory_order_acquire));
  return pool;
}

bool ThreadPool::configure_global(std::size_t n_threads) {
  if (g_global_created.load(std::memory_order_acquire)) return false;
  g_global_threads.store(n_threads, std::memory_order_release);
  return true;
}

void ThreadPool::work_on(Task& task) {
  InsideChunkScope scope;
  std::size_t k;
  while ((k = task.next.fetch_add(1, std::memory_order_relaxed)) <
         task.n_chunks) {
    const std::size_t chunk_begin = task.begin + k * task.grain;
    const std::size_t chunk_end =
        std::min(task.end, chunk_begin + task.grain);
    try {
      (*task.body)(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(task.error_mutex);
      if (!task.error) task.error = std::current_exception();
    }
    task.completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  while (true) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      task = current_;
      seen_epoch = epoch_;
      // Registered under the same lock hold that read current_, so the
      // caller's done predicate (which also runs under mutex_) can never see
      // "all chunks done, nobody active" while this worker still holds a
      // pointer to the Task.  The Task lives on the caller's stack; the
      // caller must not return until this count drains back to zero.
      ++n_active_;
    }
    work_on(*task);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --n_active_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t n_chunks = (end - begin + g - 1) / g;

  // Serial path: no workers, a single chunk, or a nested call from inside a
  // running chunk.  Chunks execute in order on this thread; exceptions
  // propagate directly.
  if (workers_.empty() || n_chunks == 1 || t_inside_chunk) {
    InsideChunkScope scope;
    for (std::size_t k = 0; k < n_chunks; ++k) {
      const std::size_t chunk_begin = begin + k * g;
      body(chunk_begin, std::min(end, chunk_begin + g));
    }
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mutex_);
  Task task;
  task.body = &body;
  task.begin = begin;
  task.end = end;
  task.grain = g;
  task.n_chunks = n_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &task;
    ++epoch_;
  }
  wake_cv_.notify_all();

  work_on(task);  // the calling thread participates

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait until every chunk ran AND every worker that picked up the Task
    // pointer has dropped it (n_active_ back to zero) — only then is it safe
    // to destroy the stack-allocated Task.  Workers that wake after
    // current_ is cleared see no task and go back to sleep.
    done_cv_.wait(lock, [&] {
      return n_active_ == 0 &&
             task.completed.load(std::memory_order_acquire) == task.n_chunks;
    });
    current_ = nullptr;
  }
  if (task.error) std::rethrow_exception(task.error);
}

}  // namespace emdpa
