#include "core/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace emdpa {

namespace {

// Set while a thread is executing chunks, so a nested parallel_for from a
// chunk body runs inline instead of deadlocking on the pool.
thread_local bool t_inside_chunk = false;

struct InsideChunkScope {
  bool previous = t_inside_chunk;
  InsideChunkScope() { t_inside_chunk = true; }
  ~InsideChunkScope() { t_inside_chunk = previous; }
};

}  // namespace

struct ThreadPool::Task {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t n_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex error_mutex;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t n_threads) {
  std::size_t total = n_threads == 0 ? default_thread_count() : n_threads;
  total = std::max<std::size_t>(total, 1);
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("EMDPA_THREADS")) {
    char* tail = nullptr;
    const long parsed = std::strtol(env, &tail, 10);
    if (tail != env && *tail == '\0' && parsed > 0) {
      return std::min<long>(parsed, 1024);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::work_on(Task& task) {
  InsideChunkScope scope;
  std::size_t k;
  while ((k = task.next.fetch_add(1, std::memory_order_relaxed)) <
         task.n_chunks) {
    const std::size_t chunk_begin = task.begin + k * task.grain;
    const std::size_t chunk_end =
        std::min(task.end, chunk_begin + task.grain);
    try {
      (*task.body)(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(task.error_mutex);
      if (!task.error) task.error = std::current_exception();
    }
    task.completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  while (true) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      task = current_;
      seen_epoch = epoch_;
    }
    work_on(*task);
    if (task->completed.load(std::memory_order_acquire) == task->n_chunks) {
      // Taking the lock orders this notify after the caller either observed
      // completion or started waiting, so the wakeup cannot be missed.
      { std::lock_guard<std::mutex> lock(mutex_); }
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t n_chunks = (end - begin + g - 1) / g;

  // Serial path: no workers, a single chunk, or a nested call from inside a
  // running chunk.  Chunks execute in order on this thread; exceptions
  // propagate directly.
  if (workers_.empty() || n_chunks == 1 || t_inside_chunk) {
    InsideChunkScope scope;
    for (std::size_t k = 0; k < n_chunks; ++k) {
      const std::size_t chunk_begin = begin + k * g;
      body(chunk_begin, std::min(end, chunk_begin + g));
    }
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mutex_);
  Task task;
  task.body = &body;
  task.begin = begin;
  task.end = end;
  task.grain = g;
  task.n_chunks = n_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &task;
    ++epoch_;
  }
  wake_cv_.notify_all();

  work_on(task);  // the calling thread participates

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return task.completed.load(std::memory_order_acquire) == task.n_chunks;
    });
    current_ = nullptr;
  }
  if (task.error) std::rethrow_exception(task.error);
}

}  // namespace emdpa
