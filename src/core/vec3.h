// Minimal 3-component vector used throughout the MD library.
//
// Deliberately a plain aggregate: the device simulators reinterpret particle
// data in their own native layouts (e.g. the GPU model uses 4-component
// float4 textures, the SPE model uses 16-byte SIMD registers), so Vec3 stays
// a dumb value type with value semantics and no hidden state.
#pragma once

#include <cmath>
#include <ostream>

namespace emdpa {

template <typename T>
struct Vec3 {
  T x{}, y{}, z{};

  constexpr Vec3() = default;
  constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}

  /// Broadcast constructor: all three components set to s.
  static constexpr Vec3 splat(T s) { return {s, s, s}; }

  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(T s) { x *= s; y *= s; z *= s; return *this; }
  constexpr Vec3& operator/=(T s) { x /= s; y /= s; z /= s; return *this; }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, T s) { return a *= s; }
  friend constexpr Vec3 operator*(T s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, T s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  /// Component-wise product (Hadamard).
  friend constexpr Vec3 hadamard(const Vec3& a, const Vec3& b) {
    return {a.x * b.x, a.y * b.y, a.z * b.z};
  }

  friend constexpr T dot(const Vec3& a, const Vec3& b) {
    return a.x * b.x + a.y * b.y + a.z * b.z;
  }

  friend constexpr T length_squared(const Vec3& a) { return dot(a, a); }

  friend T length(const Vec3& a) { return std::sqrt(length_squared(a)); }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
  }
};

using Vec3f = Vec3<float>;
using Vec3d = Vec3<double>;

/// Convert between component precisions (used at the host/device boundary:
/// Cell and GPU kernels run single precision, the host reference is double).
template <typename To, typename From>
constexpr Vec3<To> vec_cast(const Vec3<From>& v) {
  return {static_cast<To>(v.x), static_cast<To>(v.y), static_cast<To>(v.z)};
}

}  // namespace emdpa
