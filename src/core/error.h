// Error handling primitives shared by every emdpa module.
//
// The simulators in this project model hardware with hard contracts (local
// store sizes, alignment rules, stream limits).  Violating such a contract is
// a programming error in the caller, and we surface it loudly via
// ContractViolation rather than silently producing garbage timing results.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace emdpa {

/// Structured context an error can carry about where in a run it happened.
/// The fields are filled incrementally as the exception unwinds: the thrower
/// knows the kernel, the simulation loop knows the step, the backend knows
/// its own name — each layer annotates what it knows and rethrows.  The
/// driver prints the assembled context on abort instead of a bare what().
struct ErrorContext {
  long step = -1;       ///< simulation step the failure surfaced at (-1 unknown)
  std::string kernel;   ///< force kernel driving the run, if any
  std::string backend;  ///< backend name, if the failure crossed a backend

  bool empty() const { return step < 0 && kernel.empty() && backend.empty(); }

  std::string to_string() const {
    std::string out;
    auto append = [&](const std::string& part) {
      if (!out.empty()) out += ", ";
      out += part;
    };
    if (step >= 0) append("step " + std::to_string(step));
    if (!kernel.empty()) append("kernel " + kernel);
    if (!backend.empty()) append("backend " + backend);
    return out;
  }
};

/// Mixin giving an exception type an ErrorContext.  Retrieved from a caught
/// std::exception via dynamic_cast (see error_context() below), so callers
/// that only know std::exception still reach the context.
class HasErrorContext {
 public:
  ErrorContext& context() { return context_; }
  const ErrorContext& context() const { return context_; }

 protected:
  HasErrorContext() = default;
  explicit HasErrorContext(ErrorContext context) : context_(std::move(context)) {}
  ~HasErrorContext() = default;

 private:
  ErrorContext context_;
};

/// Thrown when a caller violates a documented precondition of a device model
/// (e.g. DMA of unaligned data, local-store overflow, reading a texture bound
/// as a shader output).  These correspond to things that would crash, hang or
/// corrupt memory on the real hardware.
class ContractViolation : public std::logic_error, public HasErrorContext {
 public:
  explicit ContractViolation(const std::string& what, ErrorContext context = {})
      : std::logic_error(what), HasErrorContext(std::move(context)) {}
};

/// Thrown when an operation fails for an environmental reason (I/O, parse
/// errors) rather than a caller bug.
class RuntimeFailure : public std::runtime_error, public HasErrorContext {
 public:
  explicit RuntimeFailure(const std::string& what, ErrorContext context = {})
      : std::runtime_error(what), HasErrorContext(std::move(context)) {}
};

/// Thrown by the numerical-health watchdog when a run's physics has gone bad
/// (non-finite state, runaway energy drift, displacement explosion).  A
/// distinct type so the driver can turn it into a checkpoint-then-abort with
/// its own exit code, or a graceful kernel downgrade under --degrade.
class NumericalFailure : public RuntimeFailure {
 public:
  explicit NumericalFailure(const std::string& what, ErrorContext context = {})
      : RuntimeFailure(what, std::move(context)) {}
};

/// Thrown when a job exhausts an operator-imposed wall-clock or slice
/// budget (see HealthMonitor::enforce_deadline).  A distinct type because
/// the batch scheduler must NOT spend retry budget on it: re-running a job
/// whose time allowance is already consumed cannot succeed, so the
/// scheduler quarantines it immediately.
class DeadlineExceeded : public RuntimeFailure {
 public:
  explicit DeadlineExceeded(const std::string& what, ErrorContext context = {})
      : RuntimeFailure(what, std::move(context)) {}
};

/// Thrown when a run stops cooperatively on an operator signal (SIGINT /
/// SIGTERM, see core/interrupt.h) after the state was checkpointed.  A
/// distinct type so the driver can exit with its own code: orchestrators
/// must be able to tell "interrupted but resumable" from a crash or a
/// numerical failure.
class Interrupted : public RuntimeFailure {
 public:
  Interrupted(const std::string& what, int signal, ErrorContext context = {})
      : RuntimeFailure(what, std::move(context)), signal_(signal) {}

  /// The signal number that triggered the stop (SIGINT, SIGTERM).
  int signal() const { return signal_; }

 private:
  int signal_;
};

/// The context attached to `e`, or nullptr when its dynamic type carries
/// none.  Works on any caught std::exception.
inline const ErrorContext* error_context(const std::exception& e) {
  const auto* contextual = dynamic_cast<const HasErrorContext*>(&e);
  if (contextual == nullptr || contextual->context().empty()) return nullptr;
  return &contextual->context();
}

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::string full = std::string(file) + ":" + std::to_string(line) +
                     ": contract violated: (" + expr + ")";
  if (!msg.empty()) full += " — " + msg;
  throw ContractViolation(full);
}
}  // namespace detail

}  // namespace emdpa

/// Precondition check.  Always on (the checks guard simulator correctness and
/// are far off the hot paths; hot paths use EMDPA_ASSUME_AUDITED below).
#define EMDPA_REQUIRE(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) ::emdpa::detail::contract_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Invariant check for internal consistency (same mechanics, different intent).
#define EMDPA_ENSURE(expr, msg) EMDPA_REQUIRE(expr, msg)
