// Error handling primitives shared by every emdpa module.
//
// The simulators in this project model hardware with hard contracts (local
// store sizes, alignment rules, stream limits).  Violating such a contract is
// a programming error in the caller, and we surface it loudly via
// ContractViolation rather than silently producing garbage timing results.
#pragma once

#include <stdexcept>
#include <string>

namespace emdpa {

/// Thrown when a caller violates a documented precondition of a device model
/// (e.g. DMA of unaligned data, local-store overflow, reading a texture bound
/// as a shader output).  These correspond to things that would crash, hang or
/// corrupt memory on the real hardware.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an operation fails for an environmental reason (I/O, parse
/// errors) rather than a caller bug.
class RuntimeFailure : public std::runtime_error {
 public:
  explicit RuntimeFailure(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::string full = std::string(file) + ":" + std::to_string(line) +
                     ": contract violated: (" + expr + ")";
  if (!msg.empty()) full += " — " + msg;
  throw ContractViolation(full);
}
}  // namespace detail

}  // namespace emdpa

/// Precondition check.  Always on (the checks guard simulator correctness and
/// are far off the hot paths; hot paths use EMDPA_ASSUME_AUDITED below).
#define EMDPA_REQUIRE(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) ::emdpa::detail::contract_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Invariant check for internal consistency (same mechanics, different intent).
#define EMDPA_ENSURE(expr, msg) EMDPA_REQUIRE(expr, msg)
