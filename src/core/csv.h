// CSV output for machine-readable bench results (plotting, regression
// tracking).  Each bench can mirror its printed table into a CSV file.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace emdpa {

/// Streams rows of comma-separated values with correct quoting.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write one row.  Fields containing commas, quotes or newlines are quoted.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience for a label + numeric series.
  void write_row(const std::string& label, const std::vector<double>& values);

 private:
  static std::string escape(const std::string& field);
  std::ostream& out_;
};

}  // namespace emdpa
