// 4-component vector: the native element type of the GPU simulator's
// textures (RGBA) and the logical shape of SPE SIMD registers.
//
// The paper exploits the 4th component twice: the Cell port stores x/y/z in
// the first three lanes of SIMD registers, and the GPU port smuggles each
// atom's potential-energy contribution back to the host in the w component of
// the acceleration texture.  Vec4 is the host-visible view of those layouts.
#pragma once

#include <cmath>
#include <ostream>

#include "core/vec3.h"

namespace emdpa {

template <typename T>
struct Vec4 {
  T x{}, y{}, z{}, w{};

  constexpr Vec4() = default;
  constexpr Vec4(T x_, T y_, T z_, T w_) : x(x_), y(y_), z(z_), w(w_) {}

  /// Promote a Vec3 into the first three lanes; w defaults to 0.
  explicit constexpr Vec4(const Vec3<T>& v, T w_ = T{}) : x(v.x), y(v.y), z(v.z), w(w_) {}

  static constexpr Vec4 splat(T s) { return {s, s, s, s}; }

  /// Drop the w lane.
  constexpr Vec3<T> xyz() const { return {x, y, z}; }

  constexpr Vec4& operator+=(const Vec4& o) { x += o.x; y += o.y; z += o.z; w += o.w; return *this; }
  constexpr Vec4& operator-=(const Vec4& o) { x -= o.x; y -= o.y; z -= o.z; w -= o.w; return *this; }
  constexpr Vec4& operator*=(T s) { x *= s; y *= s; z *= s; w *= s; return *this; }

  friend constexpr Vec4 operator+(Vec4 a, const Vec4& b) { return a += b; }
  friend constexpr Vec4 operator-(Vec4 a, const Vec4& b) { return a -= b; }
  friend constexpr Vec4 operator*(Vec4 a, T s) { return a *= s; }
  friend constexpr Vec4 operator*(T s, Vec4 a) { return a *= s; }

  friend constexpr bool operator==(const Vec4&, const Vec4&) = default;

  friend constexpr T dot(const Vec4& a, const Vec4& b) {
    return a.x * b.x + a.y * b.y + a.z * b.z + a.w * b.w;
  }

  /// Dot product of the spatial lanes only — the common case in the MD
  /// kernels, where w carries unrelated payload (mass, PE, padding).
  friend constexpr T dot3(const Vec4& a, const Vec4& b) {
    return a.x * b.x + a.y * b.y + a.z * b.z;
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec4& v) {
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ", " << v.w << ")";
  }
};

using Vec4f = Vec4<float>;
using Vec4d = Vec4<double>;

template <typename To, typename From>
constexpr Vec4<To> vec_cast(const Vec4<From>& v) {
  return {static_cast<To>(v.x), static_cast<To>(v.y), static_cast<To>(v.z),
          static_cast<To>(v.w)};
}

}  // namespace emdpa
