#include "core/fault_injection.h"

#include <cstdlib>

#include "core/error.h"

namespace emdpa::fault {

namespace {

/// splitmix64: a tiny, high-quality mixer.  Hashing (seed, hit) gives every
/// hit an independent, reproducible draw without any sequential RNG state.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool plan_fires(const Plan& plan, std::uint64_t hit) {
  if (plan.probability >= 0.0) {
    // Map the hash to [0, 1); strictly-less keeps probability 0 silent and
    // probability 1 certain.
    const double draw =
        static_cast<double>(splitmix64(plan.seed ^ (hit * 0x9E3779B97F4A7C15ull)) >> 11) *
        0x1.0p-53;
    return draw < plan.probability;
  }
  return hit >= plan.first_hit && hit < plan.first_hit + plan.count;
}

std::uint64_t parse_u64(const std::string& spec, const std::string& token) {
  try {
    std::size_t consumed = 0;
    const unsigned long long v = std::stoull(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw RuntimeFailure("fault spec '" + spec + "': bad integer '" + token + "'");
  }
}

double parse_probability(const std::string& spec, const std::string& token) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(token, &consumed);
    if (consumed != token.size() || v < 0.0 || v > 1.0) {
      throw std::invalid_argument(token);
    }
    return v;
  } catch (const std::exception&) {
    throw RuntimeFailure("fault spec '" + spec + "': bad probability '" + token +
                         "' (want 0..1)");
  }
}

/// Parse one ';'-separated entry: "site:first[xcount]" or "site%prob[@seed]".
std::pair<std::string, Plan> parse_entry(const std::string& entry) {
  const std::size_t colon = entry.find(':');
  const std::size_t percent = entry.find('%');
  Plan plan;
  std::string site;
  if (colon != std::string::npos && (percent == std::string::npos || colon < percent)) {
    site = entry.substr(0, colon);
    std::string rest = entry.substr(colon + 1);
    const std::size_t x = rest.find('x');
    if (x != std::string::npos) {
      plan.count = parse_u64(entry, rest.substr(x + 1));
      rest.resize(x);
    }
    plan.first_hit = parse_u64(entry, rest);
    if (plan.first_hit == 0) {
      throw RuntimeFailure("fault spec '" + entry + "': hit indices are 1-based");
    }
  } else if (percent != std::string::npos) {
    site = entry.substr(0, percent);
    std::string rest = entry.substr(percent + 1);
    const std::size_t at = rest.find('@');
    if (at != std::string::npos) {
      plan.seed = parse_u64(entry, rest.substr(at + 1));
      rest.resize(at);
    }
    plan.probability = parse_probability(entry, rest);
  } else {
    throw RuntimeFailure("fault spec '" + entry +
                         "': want site:first[xcount] or site%prob[@seed]");
  }
  if (site.empty()) {
    throw RuntimeFailure("fault spec '" + entry + "': empty site name");
  }
  return {std::move(site), plan};
}

}  // namespace

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Registry() {
  if (const char* env = std::getenv("EMDPA_FAULTS")) {
    arm_from_spec(env);
  }
}

void Registry::arm_from_spec(const std::string& spec) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    if (end > begin) {
      auto [site, plan] = parse_entry(spec.substr(begin, end - begin));
      arm(site, plan);
    }
    begin = end + 1;
  }
}

void Registry::arm(const std::string& site, const Plan& plan) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Re-arming an existing site replaces its plan but keeps its counters.
  sites_[site].plan = plan;
  armed_count_.store(static_cast<int>(sites_.size()), std::memory_order_relaxed);
}

void Registry::disarm(const std::string& site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sites_.erase(site);
  armed_count_.store(static_cast<int>(sites_.size()), std::memory_order_relaxed);
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool Registry::any_armed() const {
  return armed_count_.load(std::memory_order_relaxed) > 0;
}

SiteStats Registry::stats(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it != sites_.end() ? it->second.stats : SiteStats{};
}

bool Registry::should_fail_at(const char* site, std::uint64_t index) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  SiteState& state = it->second;
  ++state.stats.hits;
  const bool fires = plan_fires(state.plan, index);
  if (fires) ++state.stats.fires;
  return fires;
}

bool Registry::should_fail(const char* site) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  SiteState& state = it->second;
  const std::uint64_t hit = ++state.stats.hits;
  const bool fires = plan_fires(state.plan, hit);
  if (fires) ++state.stats.fires;
  return fires;
}

}  // namespace emdpa::fault
