// Small string/number formatting helpers used by the report and CSV writers.
#pragma once

#include <string>
#include <vector>

namespace emdpa {

/// Format a double with `precision` significant decimal places, trimming a
/// trailing ".000" only when the value is integral at that precision.
std::string format_fixed(double value, int precision);

/// Format a double in "engineering-friendly" style: fixed for moderate
/// magnitudes, scientific outside [1e-3, 1e6).
std::string format_auto(double value);

/// Left-/right-pad `s` with spaces to `width` (no-op if already wider).
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `s` ends with `suffix`.
bool ends_with(const std::string& s, const std::string& suffix);

}  // namespace emdpa
