// Portable SIMD pack abstraction.
//
// Follows the ViterbiDecoderCpp idiom: each instruction set gets a Pack
// specialisation (one header per ISA under core/simd/), and code is written
// against Pack<Real, S> with the SimdType a template parameter.  Two ways to
// pick S:
//
//  * Compile-time: fastest_simd_type() returns the widest ISA the current
//    translation unit was compiled for (driven by the compiler's feature
//    macros), and NativePack<Real> aliases its Pack.  This is how the
//    device-model kernels and any single-ISA TU use the abstraction.
//  * Runtime: the md layer compiles its hot row loops once per ISA (each TU
//    with its own -m flags; see md/simd_rows_*.cpp) and picks a table of
//    function pointers at startup via core/simd_dispatch.h.  A TU only
//    instantiates Pack for the ISA it was compiled for, so every Pack
//    specialisation's symbols stay confined to a TU that may legally
//    execute them.
//
// Masks are opaque lane masks: produced by cmp_*, consumed by select() (a
// blend, safe even when the rejected lanes hold inf/NaN) and mask_bits()
// (one bit per lane, for popcounts and any-lane tests).
//
// block_lanes() defines the ISA-INDEPENDENT accumulation block: 64 bytes, 8
// doubles or 16 floats — the widest pack (AVX-512) exactly once, narrower
// packs several sub-packs.  Kernels that accumulate per block lane and
// reduce the block lanes in a fixed order produce bitwise-identical results
// on every ISA, which is what lets the runtime dispatcher change the ISA
// without changing the physics.
#pragma once

#include <cstddef>

#include "core/simd/pack_avx2.h"
#include "core/simd/pack_avx512.h"
#include "core/simd/pack_fwd.h"
#include "core/simd/pack_scalar.h"
#include "core/simd/pack_sse2.h"

namespace emdpa::simd {

constexpr SimdType fastest_simd_type() {
#if defined(__AVX512F__)
  return SimdType::kAvx512;
#elif defined(__AVX2__)
  return SimdType::kAvx2;
#elif defined(__SSE2__)
  return SimdType::kSse2;
#else
  return SimdType::kScalar;
#endif
}

/// The widest pack available for Real in this translation unit.
template <typename Real>
using NativePack = Pack<Real, fastest_simd_type()>;

template <typename Real>
constexpr std::size_t native_width() {
  return NativePack<Real>::kWidth;
}

/// Bytes per accumulation block: one full AVX-512 register, a whole number
/// of packs on every narrower ISA.
inline constexpr std::size_t kBlockBytes = 64;

/// Lanes per accumulation block for Real (8 doubles / 16 floats).  Kernels
/// pad their rows to this, not to the pack width, so the padded layout —
/// and therefore the accumulation and reduction order — is the same on
/// every ISA.
template <typename Real>
constexpr std::size_t block_lanes() {
  static_assert(kBlockBytes % sizeof(Real) == 0);
  return kBlockBytes / sizeof(Real);
}

}  // namespace emdpa::simd
