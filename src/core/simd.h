// Portable SIMD pack abstraction with compile-time dispatch.
//
// Follows the ViterbiDecoderCpp idiom: each instruction set gets a Pack
// specialisation, and fastest_simd_type() picks the widest one the current
// translation unit was compiled for (constexpr, driven by the compiler's
// feature macros).  A plain scalar specialisation is always valid, so code
// written against Pack<Real, fastest_simd_type()> compiles everywhere and
// vectorises wherever -msse2 / -mavx2 / -march=native is in effect.
// x86-64 guarantees SSE2, so the practical floor on that target is 2-wide
// double / 4-wide float.
//
// Masks are opaque lane masks: produced by cmp_*, consumed by select() (a
// bitwise blend, safe even when the rejected lanes hold inf/NaN) and
// mask_bits() (one bit per lane, for popcounts and any-lane tests).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace emdpa::simd {

enum class SimdType { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

constexpr const char* to_string(SimdType t) {
  switch (t) {
    case SimdType::kScalar: return "scalar";
    case SimdType::kSse2: return "sse2";
    case SimdType::kAvx2: return "avx2";
  }
  return "unknown";
}

constexpr SimdType fastest_simd_type() {
#if defined(__AVX2__)
  return SimdType::kAvx2;
#elif defined(__SSE2__)
  return SimdType::kSse2;
#else
  return SimdType::kScalar;
#endif
}

template <typename Real, SimdType Type>
struct Pack;

// ---------------------------------------------------------------------------
// Scalar fallback: one lane, plain arithmetic.  Always valid.
// ---------------------------------------------------------------------------
template <typename Real>
struct Pack<Real, SimdType::kScalar> {
  static constexpr std::size_t kWidth = 1;
  using Mask = bool;
  Real v;

  static Pack load(const Real* p) { return {*p}; }
  static Pack broadcast(Real s) { return {s}; }
  static Pack zero() { return {Real(0)}; }
  void store(Real* p) const { *p = v; }

  friend Pack operator+(Pack a, Pack b) { return {a.v + b.v}; }
  friend Pack operator-(Pack a, Pack b) { return {a.v - b.v}; }
  friend Pack operator*(Pack a, Pack b) { return {a.v * b.v}; }
  friend Pack operator/(Pack a, Pack b) { return {a.v / b.v}; }
  friend Pack abs(Pack a) { return {std::fabs(a.v)}; }
  friend Pack copysign(Pack mag, Pack sgn) {
    return {std::copysign(mag.v, sgn.v)};
  }
  friend Mask cmp_lt(Pack a, Pack b) { return a.v < b.v; }
  friend Mask cmp_gt(Pack a, Pack b) { return a.v > b.v; }
  friend Mask cmp_ge(Pack a, Pack b) { return a.v >= b.v; }
  static Mask mask_and(Mask a, Mask b) { return a && b; }
  friend Pack select(Mask m, Pack a, Pack b) { return m ? a : b; }
  static unsigned mask_bits(Mask m) { return m ? 1u : 0u; }
  friend Real reduce_add(Pack a) { return a.v; }
};

#if defined(__SSE2__)
// ---------------------------------------------------------------------------
// SSE2: 4-wide float / 2-wide double (the x86-64 baseline).
// ---------------------------------------------------------------------------
template <>
struct Pack<float, SimdType::kSse2> {
  static constexpr std::size_t kWidth = 4;
  using Mask = __m128;
  __m128 v;

  static Pack load(const float* p) { return {_mm_load_ps(p)}; }
  static Pack broadcast(float s) { return {_mm_set1_ps(s)}; }
  static Pack zero() { return {_mm_setzero_ps()}; }
  void store(float* p) const { _mm_store_ps(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm_add_ps(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm_mul_ps(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm_div_ps(a.v, b.v)}; }
  friend Pack abs(Pack a) {
    return {_mm_andnot_ps(_mm_set1_ps(-0.0f), a.v)};
  }
  friend Pack copysign(Pack mag, Pack sgn) {
    const __m128 sign_bit = _mm_set1_ps(-0.0f);
    return {_mm_or_ps(_mm_and_ps(sign_bit, sgn.v),
                      _mm_andnot_ps(sign_bit, mag.v))};
  }
  friend Mask cmp_lt(Pack a, Pack b) { return _mm_cmplt_ps(a.v, b.v); }
  friend Mask cmp_gt(Pack a, Pack b) { return _mm_cmpgt_ps(a.v, b.v); }
  friend Mask cmp_ge(Pack a, Pack b) { return _mm_cmpge_ps(a.v, b.v); }
  static Mask mask_and(Mask a, Mask b) { return _mm_and_ps(a, b); }
  friend Pack select(Mask m, Pack a, Pack b) {
    return {_mm_or_ps(_mm_and_ps(m, a.v), _mm_andnot_ps(m, b.v))};
  }
  static unsigned mask_bits(Mask m) {
    return static_cast<unsigned>(_mm_movemask_ps(m));
  }
  friend float reduce_add(Pack a) {
    alignas(16) float lanes[kWidth];
    _mm_store_ps(lanes, a.v);
    return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  }
};

template <>
struct Pack<double, SimdType::kSse2> {
  static constexpr std::size_t kWidth = 2;
  using Mask = __m128d;
  __m128d v;

  static Pack load(const double* p) { return {_mm_load_pd(p)}; }
  static Pack broadcast(double s) { return {_mm_set1_pd(s)}; }
  static Pack zero() { return {_mm_setzero_pd()}; }
  void store(double* p) const { _mm_store_pd(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm_div_pd(a.v, b.v)}; }
  friend Pack abs(Pack a) {
    return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
  }
  friend Pack copysign(Pack mag, Pack sgn) {
    const __m128d sign_bit = _mm_set1_pd(-0.0);
    return {_mm_or_pd(_mm_and_pd(sign_bit, sgn.v),
                      _mm_andnot_pd(sign_bit, mag.v))};
  }
  friend Mask cmp_lt(Pack a, Pack b) { return _mm_cmplt_pd(a.v, b.v); }
  friend Mask cmp_gt(Pack a, Pack b) { return _mm_cmpgt_pd(a.v, b.v); }
  friend Mask cmp_ge(Pack a, Pack b) { return _mm_cmpge_pd(a.v, b.v); }
  static Mask mask_and(Mask a, Mask b) { return _mm_and_pd(a, b); }
  friend Pack select(Mask m, Pack a, Pack b) {
    return {_mm_or_pd(_mm_and_pd(m, a.v), _mm_andnot_pd(m, b.v))};
  }
  static unsigned mask_bits(Mask m) {
    return static_cast<unsigned>(_mm_movemask_pd(m));
  }
  friend double reduce_add(Pack a) {
    alignas(16) double lanes[kWidth];
    _mm_store_pd(lanes, a.v);
    return lanes[0] + lanes[1];
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
// ---------------------------------------------------------------------------
// AVX2: 8-wide float / 4-wide double.
// ---------------------------------------------------------------------------
template <>
struct Pack<float, SimdType::kAvx2> {
  static constexpr std::size_t kWidth = 8;
  using Mask = __m256;
  __m256 v;

  static Pack load(const float* p) { return {_mm256_load_ps(p)}; }
  static Pack broadcast(float s) { return {_mm256_set1_ps(s)}; }
  static Pack zero() { return {_mm256_setzero_ps()}; }
  void store(float* p) const { _mm256_store_ps(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm256_mul_ps(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm256_div_ps(a.v, b.v)}; }
  friend Pack abs(Pack a) {
    return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)};
  }
  friend Pack copysign(Pack mag, Pack sgn) {
    const __m256 sign_bit = _mm256_set1_ps(-0.0f);
    return {_mm256_or_ps(_mm256_and_ps(sign_bit, sgn.v),
                         _mm256_andnot_ps(sign_bit, mag.v))};
  }
  friend Mask cmp_lt(Pack a, Pack b) {
    return _mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ);
  }
  friend Mask cmp_gt(Pack a, Pack b) {
    return _mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ);
  }
  friend Mask cmp_ge(Pack a, Pack b) {
    return _mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ);
  }
  static Mask mask_and(Mask a, Mask b) { return _mm256_and_ps(a, b); }
  friend Pack select(Mask m, Pack a, Pack b) {
    return {_mm256_blendv_ps(b.v, a.v, m)};
  }
  static unsigned mask_bits(Mask m) {
    return static_cast<unsigned>(_mm256_movemask_ps(m));
  }
  friend float reduce_add(Pack a) {
    alignas(32) float lanes[kWidth];
    _mm256_store_ps(lanes, a.v);
    float acc = lanes[0];
    for (std::size_t i = 1; i < kWidth; ++i) acc += lanes[i];
    return acc;
  }
};

template <>
struct Pack<double, SimdType::kAvx2> {
  static constexpr std::size_t kWidth = 4;
  using Mask = __m256d;
  __m256d v;

  static Pack load(const double* p) { return {_mm256_load_pd(p)}; }
  static Pack broadcast(double s) { return {_mm256_set1_pd(s)}; }
  static Pack zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_store_pd(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm256_div_pd(a.v, b.v)}; }
  friend Pack abs(Pack a) {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
  }
  friend Pack copysign(Pack mag, Pack sgn) {
    const __m256d sign_bit = _mm256_set1_pd(-0.0);
    return {_mm256_or_pd(_mm256_and_pd(sign_bit, sgn.v),
                         _mm256_andnot_pd(sign_bit, mag.v))};
  }
  friend Mask cmp_lt(Pack a, Pack b) {
    return _mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ);
  }
  friend Mask cmp_gt(Pack a, Pack b) {
    return _mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ);
  }
  friend Mask cmp_ge(Pack a, Pack b) {
    return _mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ);
  }
  static Mask mask_and(Mask a, Mask b) { return _mm256_and_pd(a, b); }
  friend Pack select(Mask m, Pack a, Pack b) {
    return {_mm256_blendv_pd(b.v, a.v, m)};
  }
  static unsigned mask_bits(Mask m) {
    return static_cast<unsigned>(_mm256_movemask_pd(m));
  }
  friend double reduce_add(Pack a) {
    alignas(32) double lanes[kWidth];
    _mm256_store_pd(lanes, a.v);
    return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  }
};
#endif  // __AVX2__

/// The widest pack available for Real in this translation unit.
template <typename Real>
using NativePack = Pack<Real, fastest_simd_type()>;

template <typename Real>
constexpr std::size_t native_width() {
  return NativePack<Real>::kWidth;
}

}  // namespace emdpa::simd
