// Plain-text table rendering for the benchmark harness.
//
// Every reproduction bench prints its figure/table as rows the paper reports;
// this formatter keeps those reports consistent and diffable.
#pragma once

#include <string>
#include <vector>

namespace emdpa {

/// A simple column-aligned text table.  Columns are right-aligned except the
/// first, which is left-aligned (row labels).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: label + numeric cells formatted with `precision` decimals.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with a separator rule under the header.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace emdpa
