// Seeded exponential backoff with decorrelated jitter (resilience layer).
//
// A transiently failing job retried on a fixed schedule synchronises with
// whatever broke it — every retry lands on the same contended resource at
// the same cadence.  The standard cure is exponential backoff with
// *decorrelated* jitter (each delay drawn uniformly from [base, 3×previous],
// capped), which spreads retries without the unbounded tail of full jitter.
//
// Unlike the usual wall-clock implementations, this one must be
// DETERMINISTIC: the batch scheduler journals every retry decision and a
// replayed batch has to reproduce the exact delays the dead process chose.
// The jitter therefore comes from a SplitMix64 stream seeded by
// (policy seed, per-consumer stream id) — pure state, no clocks — and the
// delays are expressed in abstract units the consumer interprets
// (the job scheduler uses "scheduling rounds").
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/error.h"
#include "core/random.h"

namespace emdpa {

struct BackoffPolicy {
  double base = 1.0;  ///< first delay; also the minimum of every draw
  double cap = 32.0;  ///< ceiling every draw is clamped to
  /// Stream seed; combined with the consumer's stream id so every consumer
  /// (e.g. every job in a batch) jitters independently yet reproducibly.
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
};

/// One consumer's backoff state.  next() yields the delay before retry
/// N = attempts() — deterministic for a given (policy, stream) pair.
class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy, std::uint64_t stream = 0)
      : policy_(policy),
        stream_seed_(policy.seed ^ (stream * 0x9E3779B97F4A7C15ull)),
        rng_(stream_seed_) {
    EMDPA_REQUIRE(policy.base > 0, "backoff: base delay must be positive");
    EMDPA_REQUIRE(policy.cap >= policy.base,
                  "backoff: cap must be at least the base delay");
    previous_ = policy.base;
  }

  /// The delay to wait before the next retry.  First call returns base
  /// exactly (a first retry should be prompt); subsequent calls draw
  /// uniform[base, 3×previous] clamped to cap.
  double next() {
    ++attempts_;
    if (attempts_ == 1) {
      previous_ = policy_.base;
      return previous_;
    }
    const double hi = std::min(policy_.cap, 3.0 * previous_);
    const double u = uniform01();
    previous_ = policy_.base + u * (hi - policy_.base);
    previous_ = std::min(policy_.cap, std::max(policy_.base, previous_));
    return previous_;
  }

  std::uint64_t attempts() const { return attempts_; }

  /// Restart the sequence from draw one — counter, envelope AND jitter
  /// stream.  Journal replay depends on this: restore_attempts() resets and
  /// re-draws, which must reproduce the dead process's exact delays.
  void reset() {
    attempts_ = 0;
    previous_ = policy_.base;
    rng_ = SplitMix64(stream_seed_);
  }

 private:
  double uniform01() {
    // 53-bit mantissa construction, the same mapping Rng::uniform uses.
    return static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
  }

  BackoffPolicy policy_;
  std::uint64_t stream_seed_;
  SplitMix64 rng_;
  double previous_;
  std::uint64_t attempts_ = 0;
};

}  // namespace emdpa
