// Hexfloat text serialisation — the round-trip-exact number encoding under
// every on-disk state format (checkpoints, trajectory-store frames).
//
// Values are written with printf "%a" and parsed with strtod: the hex
// mantissa/exponent form represents every finite double exactly, including
// denormals and the sign of zero, so a value survives any number of
// save/load cycles bit-identically — the property the bitwise resume and
// replay guarantees rest on.  Non-finite values are REJECTED at the parse
// boundary: "inf" and "nan" can only reach a state file through corruption
// or a blown-up run, and admitting them would silently poison every
// downstream kernel.
//
// Factored out of CheckpointManager (PR 8) so the checkpoint format and the
// trajectory-store frame formats share one implementation and one test
// surface.
#pragma once

#include <cstdint>
#include <string>

namespace emdpa::hexio {

/// Format a double as a hexfloat token ("%a": e.g. "0x1.5bf0a8b145769p+1").
/// Exact for every finite value; -0.0 keeps its sign.
std::string format_double(double value);

/// Format a u64 as 16 fixed-width lowercase hex digits.
std::string format_u64(std::uint64_t value);

/// Parse a token written by format_double (also accepts plain decimal —
/// strtod grammar).  Throws RuntimeFailure naming `what` on malformed or
/// partially-consumed input, and on any non-finite value.
double parse_double(const std::string& token, const char* what);

/// Parse a hex u64 token.  Throws RuntimeFailure naming `what` on malformed
/// or partially-consumed input.
std::uint64_t parse_u64(const std::string& token, const char* what);

}  // namespace emdpa::hexio
