#include "core/wal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/crc32.h"
#include "core/error.h"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace emdpa {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw RuntimeFailure(what + ": " + std::strerror(errno));
}

#ifndef _WIN32
/// write() the whole buffer, retrying short writes and EINTR.
void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("wal: write to '" + path + "' failed");
    }
    done += static_cast<std::size_t>(n);
  }
}
#endif

/// "XXXXXXXX" — 8 lowercase hex digits, the footer's fixed width.
std::string crc_hex(std::uint32_t crc) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%08x", crc);
  return buffer;
}

constexpr char kCrcMarker[] = " #crc=";
constexpr std::size_t kCrcMarkerLen = sizeof(kCrcMarker) - 1;
constexpr std::size_t kCrcDigits = 8;

/// Parse one framed line back to its payload; false when the frame is
/// malformed or the CRC does not verify (a torn or corrupted record).
bool unframe(const std::string& line, std::string* payload) {
  if (line.size() < kCrcMarkerLen + kCrcDigits) return false;
  const std::size_t marker = line.rfind(kCrcMarker);
  if (marker == std::string::npos) return false;
  if (marker + kCrcMarkerLen + kCrcDigits != line.size()) return false;
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < kCrcDigits; ++i) {
    const char c = line[marker + kCrcMarkerLen + i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint32_t>(c - 'a' + 10);
    else return false;
    stored = (stored << 4) | digit;
  }
  const std::string body = line.substr(0, marker);
  if (crc32(body) != stored) return false;
  *payload = body;
  return true;
}

}  // namespace

std::string wal_frame(const std::string& payload) {
  return payload + kCrcMarker + crc_hex(crc32(payload));
}

void fsync_file(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail_errno("fsync: cannot open '" + path + "'");
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("fsync: fsync of '" + path + "' failed");
  }
  ::close(fd);
#else
  (void)path;
#endif
}

void fsync_parent_directory(const std::string& path) {
#ifndef _WIN32
  fs::path parent = fs::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) fail_errno("fsync: cannot open directory '" + parent.string() + "'");
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("fsync: fsync of directory '" + parent.string() + "' failed");
  }
  ::close(fd);
#else
  (void)path;
#endif
}

WalReplay read_wal(const std::string& path) {
  WalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!fs::exists(path, ec)) return replay;  // missing = empty log
    throw RuntimeFailure("wal: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t eol = content.find('\n', pos);
    // A record is only committed once its newline landed; anything after
    // the last newline — and anything that fails to verify — is the torn
    // tail a mid-append kill leaves behind.
    if (eol == std::string::npos) break;
    std::string payload;
    if (!unframe(content.substr(pos, eol - pos), &payload)) break;
    replay.records.push_back(std::move(payload));
    pos = eol + 1;
  }
  if (pos < content.size()) {
    replay.truncated = true;
    replay.dropped_bytes = content.size() - pos;
  }
  return replay;
}

WalWriter::WalWriter(std::string path) : path_(std::move(path)) {
  EMDPA_REQUIRE(!path_.empty(), "wal: path must not be empty");
  open_append();
}

WalWriter::~WalWriter() { close_fd(); }

void WalWriter::open_append() {
#ifndef _WIN32
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) fail_errno("wal: cannot open '" + path_ + "' for append");
#endif
}

void WalWriter::close_fd() {
#ifndef _WIN32
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#endif
}

void WalWriter::append(const std::string& payload) {
  EMDPA_REQUIRE(payload.find('\n') == std::string::npos,
                "wal: record payloads are single-line");
#ifndef _WIN32
  const std::string line = wal_frame(payload) + "\n";
  write_all(fd_, line.data(), line.size(), path_);
  if (::fsync(fd_) != 0) fail_errno("wal: fsync of '" + path_ + "' failed");
#endif
  ++appended_;
}

void WalWriter::rewrite(const std::vector<std::string>& records) {
#ifndef _WIN32
  close_fd();
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    open_append();  // keep the appender usable after a failed rotation
    fail_errno("wal: cannot open '" + tmp + "' for rotation");
  }
  try {
    for (const std::string& payload : records) {
      EMDPA_REQUIRE(payload.find('\n') == std::string::npos,
                    "wal: record payloads are single-line");
      const std::string line = wal_frame(payload) + "\n";
      write_all(fd, line.data(), line.size(), tmp);
    }
    if (::fsync(fd) != 0) fail_errno("wal: fsync of '" + tmp + "' failed");
  } catch (...) {
    ::close(fd);
    std::error_code ignored;
    fs::remove(tmp, ignored);
    open_append();
    throw;
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, path_, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    open_append();
    throw RuntimeFailure("wal: cannot commit rotated segment '" + tmp +
                         "' onto '" + path_ + "': " + ec.message());
  }
  fsync_parent_directory(path_);
  open_append();
#else
  (void)records;
#endif
}

std::uint64_t WalWriter::size_bytes() const {
  std::error_code ec;
  const auto size = fs::file_size(path_, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

}  // namespace emdpa
