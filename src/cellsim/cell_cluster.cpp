#include "cellsim/cell_cluster.h"

#include <algorithm>

#include "cellsim/spe_kernel.h"
#include "core/aligned_buffer.h"
#include "core/error.h"
#include "md/observables.h"

namespace emdpa::cell {

ModelTime ring_allgather_time(const InterconnectConfig& config,
                              std::size_t bytes_per_rank, int ranks) {
  EMDPA_REQUIRE(ranks >= 1, "allgather needs at least one rank");
  if (ranks == 1) return ModelTime::zero();
  // (ranks-1) rounds; each round every rank sends one slice in parallel, so
  // the round time is one slice's transfer.
  const ModelTime per_round =
      config.message_latency +
      ModelTime::seconds(static_cast<double>(bytes_per_rank) /
                         config.bandwidth_bytes_per_s);
  return per_round * static_cast<double>(ranks - 1);
}

CellClusterBackend::CellClusterBackend(const ClusterOptions& options,
                                       const CellConfig& blade_config)
    : options_(options), blade_config_(blade_config) {
  EMDPA_REQUIRE(options.n_blades >= 1 && options.n_blades <= 64,
                "cluster model covers 1..64 blades");
  EMDPA_REQUIRE(options.spes_per_blade >= 1 &&
                    options.spes_per_blade <= blade_config.n_spes,
                "spes_per_blade out of range");
}

std::string CellClusterBackend::name() const {
  return "cell-cluster[" + std::to_string(options_.n_blades) + "x" +
         std::to_string(options_.spes_per_blade) + "spe]";
}

md::RunResult CellClusterBackend::run(const md::RunConfig& run_config) {
  EMDPA_REQUIRE(!run_config.lj.shifted,
                "the Cell port implements the paper's truncated LJ only");

  md::Workload workload = md::make_lattice_workload(run_config.workload);
  md::ParticleSystemF system = workload.system.cast<float>();
  const md::PeriodicBoxF box(static_cast<float>(workload.box.edge()));
  const auto lj = run_config.lj.cast<float>();
  const std::size_t n = system.size();
  const float dt = static_cast<float>(run_config.dt);
  const float half_dt = 0.5f * dt;
  for (auto& p : system.positions()) p = box.wrap(p);

  const int blades = options_.n_blades;
  const int spes = options_.spes_per_blade;
  const int total_slices = blades * spes;
  const ClockDomain spe_clock(blade_config_.spe_clock_hz);
  const ClockDomain ppe_clock(blade_config_.ppe_clock_hz);

  // One shared local store image per slice evaluation (the simulator runs
  // slices sequentially; each "SPE" sees the same resident layout).
  LocalStore ls(blade_config_.local_store_bytes);
  ls.allocate(48 * 1024, "spe program image + stack");
  const LsAddr ls_pos = ls.allocate(n * sizeof(emdpa::Vec4f), "positions");
  const LsAddr ls_acc = ls.allocate(n * sizeof(emdpa::Vec4f), "accelerations");

  AlignedBuffer<emdpa::Vec4f> host_pos(n);
  DmaEngine dma(blade_config_.dma);

  md::RunResult result;
  result.backend_name = name();
  ModelTime t_comm, t_compute, t_overhead;

  auto evaluate = [&]() -> std::pair<float, ModelTime> {
    for (std::size_t i = 0; i < n; ++i) {
      host_pos[i] = emdpa::Vec4f(system.positions()[i], 0.0f);
    }
    dma.get_large(ls, ls_pos, host_pos.data(), n * sizeof(emdpa::Vec4f), 1);
    const ModelTime dma_in = dma.wait_on_tags(1u << 1, ModelTime::zero());

    // Every blade computes its slice bundle; the step waits for the slowest
    // blade (its SPEs run concurrently within the blade).
    ModelTime slowest_blade;
    float pe = 0.0f;
    auto* acc = ls.data_at<emdpa::Vec4f>(ls_acc, n);

    for (int blade = 0; blade < blades; ++blade) {
      ModelTime slowest_spe;
      for (int s = 0; s < spes; ++s) {
        const int slice = blade * spes + s;
        SpeKernelParams params;
        params.box_edge = box.edge();
        params.cutoff_sq = lj.cutoff_squared();
        params.epsilon = lj.epsilon;
        params.sigma = lj.sigma;
        params.inv_mass = 1.0f / system.mass();
        params.n_atoms = static_cast<std::uint32_t>(n);
        params.i_begin = static_cast<std::uint32_t>(
            n * static_cast<std::size_t>(slice) /
            static_cast<std::size_t>(total_slices));
        params.i_end = static_cast<std::uint32_t>(
            n * (static_cast<std::size_t>(slice) + 1) /
            static_cast<std::size_t>(total_slices));

        const SpeKernelResult kr = run_spe_accel_kernel(
            options_.variant, params, ls, ls_pos, ls_acc);
        slowest_spe = std::max(
            slowest_spe, spe_clock.to_time(kr.work.cycles(blade_config_.spe_costs)));
        result.ops.add("cluster.pair_candidates", kr.stats.candidates);
      }
      slowest_blade = std::max(slowest_blade, slowest_spe);
    }
    t_compute += slowest_blade;
    // Each blade's PPE orchestrates its own SPEs; blades run concurrently,
    // so the per-step overhead is paid once, not per blade.
    t_overhead += blade_config_.ppe_step_overhead;

    // Collect accelerations + PE from the LS image (physics side).
    for (std::size_t i = 0; i < n; ++i) {
      system.accelerations()[i] = acc[i].xyz();
      pe += acc[i].w;
    }

    // Ring allgather so every blade sees all updated positions next step
    // (accelerations travel the same wire the other way; the symmetric cost
    // is folded into the same call).
    const std::size_t bytes_per_blade =
        (n / static_cast<std::size_t>(blades) + 1) * sizeof(emdpa::Vec4f);
    const ModelTime comm =
        ring_allgather_time(options_.interconnect, bytes_per_blade, blades) *
        2.0;
    t_comm += comm;

    return {pe, dma_in + slowest_blade + blade_config_.ppe_step_overhead + comm};
  };

  // Prime (untimed).
  {
    auto [pe, ignored] = evaluate();
    (void)ignored;
    t_comm = t_compute = t_overhead = ModelTime::zero();
    result.energies.push_back({md::kinetic_energy_of(system), pe});
  }

  const ModelTime launch = blade_config_.thread_launch *
                           static_cast<double>(spes);  // per blade, parallel
  ModelTime total = launch;

  for (int step = 0; step < run_config.steps; ++step) {
    ModelTime step_time;
    if (step == 0) step_time += launch;

    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    for (std::size_t i = 0; i < n; ++i) {
      system.positions()[i] =
          box.wrap(system.positions()[i] + system.velocities()[i] * dt);
    }
    step_time += ppe_clock.to_time(CycleCount(
        static_cast<double>(n) * 43.0 * blade_config_.ppe_cpi));

    auto [pe, accel_time] = evaluate();
    step_time += accel_time;

    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    result.energies.push_back({md::kinetic_energy_of(system), pe});
    result.step_times.push_back(step_time);
    total += step_time - (step == 0 ? launch : ModelTime::zero());
  }

  result.device_time = total;
  result.breakdown["interconnect"] = t_comm;
  result.breakdown["compute"] = t_compute;
  result.breakdown["blade_overhead"] = t_overhead;
  result.breakdown["spe_launch"] = launch;
  result.final_state = system.cast<double>();
  return result;
}

}  // namespace emdpa::cell
