#include "cellsim/local_store.h"

namespace emdpa::cell {

LocalStore::LocalStore(std::size_t bytes) : storage_(bytes, 0) {
  EMDPA_REQUIRE(bytes % kQuadwordBytes == 0,
                "local store size must be a multiple of a quadword");
}

LsAddr LocalStore::allocate(std::size_t bytes, const std::string& label) {
  // Round the request up to whole quadwords to preserve alignment of the
  // next allocation.
  const std::size_t rounded =
      (bytes + kQuadwordBytes - 1) / kQuadwordBytes * kQuadwordBytes;
  if (next_free_ + rounded > storage_.size()) {
    throw ContractViolation(
        "local store overflow allocating '" + label + "': need " +
        std::to_string(rounded) + " bytes, " + std::to_string(bytes_free()) +
        " free of " + std::to_string(storage_.size()));
  }
  const LsAddr addr{static_cast<std::uint32_t>(next_free_)};
  next_free_ += rounded;
  return addr;
}

void LocalStore::reset() { next_free_ = 0; }

void LocalStore::write_bytes(LsAddr addr, const void* src, std::size_t bytes) {
  check_range(addr, bytes);
  std::memcpy(storage_.data() + addr.offset, src, bytes);
}

void LocalStore::read_bytes(LsAddr addr, void* dst, std::size_t bytes) const {
  check_range(addr, bytes);
  std::memcpy(dst, storage_.data() + addr.offset, bytes);
}

void LocalStore::check_range(LsAddr addr, std::size_t bytes) const {
  if (addr.offset + bytes > storage_.size()) {
    throw ContractViolation("local store access out of range: offset " +
                            std::to_string(addr.offset) + " + " +
                            std::to_string(bytes) + " > " +
                            std::to_string(storage_.size()));
  }
}

}  // namespace emdpa::cell
