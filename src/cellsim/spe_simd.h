// SPE SIMD register model: a 4-lane float vector with SPU-intrinsic-style
// operations (spu_add, spu_madd, spu_sel, ...).
//
// This is the *functional* half of the SPE model: pure math, no timing.
// Kernels count the operations they issue into SpeWork (cost_model.h), so
// the op mix stays explicit and auditable next to the arithmetic.
//
// Fidelity note: results must be bit-identical to the scalar code paths so
// every Fig-5 variant computes the same physics.  We therefore implement
// multiply-add as separate multiply and add (the kernels count it as the
// fused op they would issue) and use exact division rather than the
// estimate+Newton sequence (again, the *cost* of the real sequence is what
// gets counted).
#pragma once

#include <cmath>
#include <cstdint>

#include "core/vec4.h"

namespace emdpa::cell {

struct vfloat4 {
  float lane[4] = {0, 0, 0, 0};

  static vfloat4 from(const emdpa::Vec4f& v) { return {{v.x, v.y, v.z, v.w}}; }
  emdpa::Vec4f to_vec4() const { return {lane[0], lane[1], lane[2], lane[3]}; }
};

/// Lane-wise select mask (all-ones or all-zeros per lane, as on SPU).
struct vmask4 {
  bool lane[4] = {false, false, false, false};
};

inline vfloat4 spu_splats(float s) { return {{s, s, s, s}}; }

inline vfloat4 spu_add(const vfloat4& a, const vfloat4& b) {
  return {{a.lane[0] + b.lane[0], a.lane[1] + b.lane[1], a.lane[2] + b.lane[2],
           a.lane[3] + b.lane[3]}};
}

inline vfloat4 spu_sub(const vfloat4& a, const vfloat4& b) {
  return {{a.lane[0] - b.lane[0], a.lane[1] - b.lane[1], a.lane[2] - b.lane[2],
           a.lane[3] - b.lane[3]}};
}

inline vfloat4 spu_mul(const vfloat4& a, const vfloat4& b) {
  return {{a.lane[0] * b.lane[0], a.lane[1] * b.lane[1], a.lane[2] * b.lane[2],
           a.lane[3] * b.lane[3]}};
}

/// Lane-wise |a| (sign-bit clear on hardware).
inline vfloat4 spu_abs(const vfloat4& a) {
  return {{std::fabs(a.lane[0]), std::fabs(a.lane[1]), std::fabs(a.lane[2]),
           std::fabs(a.lane[3])}};
}

/// Lane-wise copysign(magnitude, sign_source) — a sign-bit merge on SPU.
inline vfloat4 spu_copysign(const vfloat4& magnitude, const vfloat4& sign) {
  return {{std::copysign(magnitude.lane[0], sign.lane[0]),
           std::copysign(magnitude.lane[1], sign.lane[1]),
           std::copysign(magnitude.lane[2], sign.lane[2]),
           std::copysign(magnitude.lane[3], sign.lane[3])}};
}

inline vmask4 spu_cmpgt(const vfloat4& a, const vfloat4& b) {
  return {{a.lane[0] > b.lane[0], a.lane[1] > b.lane[1], a.lane[2] > b.lane[2],
           a.lane[3] > b.lane[3]}};
}

/// Lane-wise select: mask lane true -> b, false -> a (spu_sel semantics).
inline vfloat4 spu_sel(const vfloat4& a, const vfloat4& b, const vmask4& mask) {
  vfloat4 out;
  for (int l = 0; l < 4; ++l) out.lane[l] = mask.lane[l] ? b.lane[l] : a.lane[l];
  return out;
}

/// Extract one lane into a scalar register (free on SPU for lane 0, a
/// rotate otherwise — kernels count the shuffle).
inline float spu_extract(const vfloat4& a, int lane) { return a.lane[lane]; }

/// Insert a scalar into one lane (a shuffle on SPU).
inline vfloat4 spu_insert(float s, const vfloat4& a, int lane) {
  vfloat4 out = a;
  out.lane[lane] = s;
  return out;
}

}  // namespace emdpa::cell
