#include "cellsim/ppe_kernel.h"

#include <cmath>

#include "core/error.h"

namespace emdpa::cell {

namespace {

/// Closest periodic image of one displacement component.  Arithmetic is
/// identical to the SPE kernels' per-axis search so the PPE-only and SPE
/// configurations produce bit-identical single-precision physics.
inline float closest_image(float d, float edge) {
  float best = d;
  float best_abs = std::fabs(d);
  for (const float shift : {edge, -edge}) {
    const float cand = d + shift;
    const float cand_abs = std::fabs(cand);
    if (cand_abs < best_abs) {
      best = cand;
      best_abs = cand_abs;
    }
  }
  return best;
}

// Dynamic op counts of the *unported* code the PPE actually ran: the naive
// 27-image search (27 x (3 shifted coordinates + 5 for r^2 + 1 compare) =
// 243 ops) plus direction (3), cutoff compare (1) and loop bookkeeping (4).
// The restructured per-axis search only appeared in the SPE port.
constexpr double kPpeOpsPerCandidate = 3 + 243 + 1 + 4;
constexpr double kPpeOpsPerInteraction = 30;  // LJ force/energy incl. divide

}  // namespace

PpeKernelResult run_ppe_accel_kernel(float box_edge, float cutoff_sq,
                                     float epsilon, float sigma, float inv_mass,
                                     const emdpa::Vec4f* positions,
                                     emdpa::Vec4f* accel_out, std::size_t n) {
  EMDPA_REQUIRE(positions != nullptr && accel_out != nullptr,
                "PPE kernel needs valid arrays");
  const float sigma2 = sigma * sigma;
  const float eps24 = 24.0f * epsilon;
  const float eps2 = 2.0f * epsilon;

  PpeKernelResult result;

  for (std::size_t i = 0; i < n; ++i) {
    const emdpa::Vec4f pi = positions[i];
    float acc_x = 0, acc_y = 0, acc_z = 0, pe_i = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const float dx = closest_image(pi.x - positions[j].x, box_edge);
      const float dy = closest_image(pi.y - positions[j].y, box_edge);
      const float dz = closest_image(pi.z - positions[j].z, box_edge);
      const float r2 = dx * dx + dy * dy + dz * dz;
      ++result.stats.candidates;
      if (r2 < cutoff_sq) {
        ++result.stats.interacting;
        const float inv_r2 = 1.0f / r2;
        const float s2 = sigma2 * inv_r2;
        const float s6 = s2 * s2 * s2;
        const float f_over_r = eps24 * inv_r2 * s6 * (2.0f * s6 - 1.0f);
        pe_i += eps2 * s6 * (s6 - 1.0f);
        acc_x += f_over_r * dx;
        acc_y += f_over_r * dy;
        acc_z += f_over_r * dz;
      }
    }
    accel_out[i] = {acc_x * inv_mass, acc_y * inv_mass, acc_z * inv_mass, pe_i};
  }

  result.scalar_ops =
      kPpeOpsPerCandidate * static_cast<double>(result.stats.candidates) +
      kPpeOpsPerInteraction * static_cast<double>(result.stats.interacting);
  return result;
}

}  // namespace emdpa::cell
