// The Cell port of the MD application, mirroring the paper's section 5.1:
// the PPE runs the integrator and offloads the acceleration computation
// (step 2) to SPE threads, which DMA the positions into their local stores,
// compute their share of the N^2 pairs, and DMA the accelerations (with
// per-atom PE in w) back to main memory.
//
// Two launch strategies are modelled, exactly the Fig-6 comparison:
//  - kRespawnEveryStep: SPE threads are created for each time step and exit
//    when done.  Launch overhead scales with steps x SPEs.
//  - kPersistent: threads are launched on the first step only and signalled
//    through their inbound mailboxes thereafter ("launch only first time
//    step"), amortising the launch cost.
#pragma once

#include <memory>
#include <vector>

#include "cellsim/cost_model.h"
#include "cellsim/spe_context.h"
#include "cellsim/spe_kernel.h"
#include "md/backend.h"

namespace emdpa::cell {

enum class LaunchMode {
  kRespawnEveryStep,
  kPersistent,
};

const char* to_string(LaunchMode m);

/// How each SPE holds the position data.
enum class SpeDataLayout {
  /// The paper's port: the whole position array resident in every local
  /// store.  Simple, but caps the system at ~6500 atoms (two full quadword
  /// arrays + program image in 256 KB).
  kResident,
  /// Double-buffered streaming: only the owned slice is resident; the
  /// j-atoms arrive in DMA tiles overlapped with compute.  Lifts the size
  /// cap at a small per-tile bookkeeping cost (extension; the classic Cell
  /// technique the paper's simple port stops short of).
  kTiledStreaming,
};

const char* to_string(SpeDataLayout l);

struct CellRunOptions {
  int n_spes = 8;                                   ///< 0 => PPE-only
  LaunchMode launch_mode = LaunchMode::kPersistent;
  SimdVariant variant = SimdVariant::kSimdAccel;    ///< fully optimised
  SpeDataLayout data_layout = SpeDataLayout::kResident;
  std::size_t tile_atoms = 1024;                    ///< streaming tile size
};

/// Runs the complete MD calculation on the modelled Cell processor and
/// reports modelled time with a breakdown (spe_compute, spe_launch, dma,
/// mailbox, ppe).
class CellMdApp {
 public:
  CellMdApp(const CellConfig& config, const CellRunOptions& options);

  md::RunResult run(const md::RunConfig& run_config);

  const CellConfig& config() const { return config_; }
  const CellRunOptions& options() const { return options_; }

 private:
  CellConfig config_;
  CellRunOptions options_;
};

/// MdBackend adapter.
class CellBackend final : public md::MdBackend {
 public:
  explicit CellBackend(const CellRunOptions& options = {},
                       const CellConfig& config = {});

  std::string name() const override;
  std::string precision() const override { return "single"; }
  md::RunResult run(const md::RunConfig& run_config) override;

 private:
  CellConfig config_;
  CellRunOptions options_;
};

}  // namespace emdpa::cell
