#include "cellsim/cell_pairlist.h"

#include <cmath>

namespace emdpa::cell {

namespace {

constexpr double kBytesPerPosition = 16.0;  // float4 texel-style layout
constexpr double kBytesPerListEntry = 4.0;

constexpr double kBuildOpsPerTest = 31.0;
constexpr double kBinOpsPerAtom = 12.0;

/// Time to DMA `bytes` into local stores, requests capped at 16 KB.
ModelTime dma_stream_time(const CellConfig& config, double bytes) {
  const double requests =
      std::ceil(bytes / static_cast<double>(DmaConfig::kMaxRequestBytes));
  return ModelTime::seconds(bytes / config.dma.bandwidth_bytes_per_s) +
         config.dma.request_latency * requests;
}

ModelTime spe_cycles_to_time(const CellConfig& config, const SpeWork& work) {
  return ModelTime::seconds(work.cycles(config.spe_costs).value() /
                            (config.spe_clock_hz *
                             static_cast<double>(config.n_spes)));
}

}  // namespace

ModelTime cell_n2_step_time(const CellConfig& config,
                            const md::PairlistStepWork& work) {
  const double chunks = work.candidates_directed / 4.0;

  SpeWork spe;
  spe.simd = static_cast<std::uint64_t>(23.0 * chunks);
  spe.shuffle = static_cast<std::uint64_t>(2.0 * chunks);
  spe.load_store = static_cast<std::uint64_t>(chunks);
  spe.loop_iter = static_cast<std::uint64_t>(chunks);
  spe.fdiv_simd = static_cast<std::uint64_t>(chunks);

  ModelTime time = spe_cycles_to_time(config, spe);
  time += dma_stream_time(config,
                          static_cast<double>(work.n_atoms) * kBytesPerPosition);
  time += config.ppe_step_overhead;
  return time;
}

ModelTime cell_pairlist_step_time(const CellConfig& config,
                                  const md::PairlistStepWork& work) {
  const double entries = work.list_entries_directed;

  SpeWork spe;
  spe.scalar = static_cast<std::uint64_t>(
      27.0 * entries + 19.0 * work.interacting_directed);
  spe.load_store = static_cast<std::uint64_t>(4.0 * entries);
  spe.loop_iter = static_cast<std::uint64_t>(entries);
  spe.branch_taken = static_cast<std::uint64_t>(0.5 * entries);
  spe.fdiv_scalar = static_cast<std::uint64_t>(work.interacting_directed);

  ModelTime time = spe_cycles_to_time(config, spe);

  // Per-step traffic: position tiles plus the list stream.
  const double list_bytes = entries * kBytesPerListEntry;
  time += dma_stream_time(config,
                          static_cast<double>(work.n_atoms) * kBytesPerPosition +
                              list_bytes);

  // Amortised rebuild: the PPE walks the cell grid and re-uploads the list.
  const double build_ops =
      kBuildOpsPerTest * work.build_tests_directed +
      kBinOpsPerAtom * static_cast<double>(work.n_atoms);
  ModelTime rebuild =
      ModelTime::seconds(build_ops * config.ppe_cpi / config.ppe_clock_hz);
  rebuild += dma_stream_time(config, list_bytes);
  time += rebuild * (1.0 / work.rebuild_period_steps);

  time += config.ppe_step_overhead;
  return time;
}

}  // namespace emdpa::cell
