// SPE local store model.
//
// Each Synergistic Processing Element of the Cell BE has a private 256 KB
// local store (LS): the only memory an SPE program can address directly.
// Everything the SPE kernel touches — code, stack, the position array DMAed
// in, the acceleration array DMAed out — must fit in it, and DMA transfers
// into/out of it must respect the SPE's 16-byte alignment rules.
//
// The model is a real byte array with a bump allocator and hard bounds
// checks: a kernel that would overflow a 256 KB local store on hardware
// fails loudly here too (that is the constraint that forces the blocked
// data movement the paper describes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/error.h"

namespace emdpa::cell {

/// An offset into a local store, in bytes.  Strongly typed so host pointers
/// and LS addresses cannot be confused.
struct LsAddr {
  std::uint32_t offset = 0;
};

class LocalStore {
 public:
  static constexpr std::size_t kDefaultBytes = 256 * 1024;
  static constexpr std::size_t kQuadwordBytes = 16;

  explicit LocalStore(std::size_t bytes = kDefaultBytes);

  std::size_t capacity() const { return storage_.size(); }
  std::size_t bytes_allocated() const { return next_free_; }
  std::size_t bytes_free() const { return storage_.size() - next_free_; }

  /// Allocate `bytes` at 16-byte (quadword) alignment.  Throws
  /// ContractViolation on overflow — the hardware equivalent is a corrupted
  /// or non-loadable SPE image.
  LsAddr allocate(std::size_t bytes, const std::string& label);

  /// Release all allocations (the SPE program image is being replaced).
  void reset();

  /// Typed access to LS contents.  Bounds-checked.
  template <typename T>
  T* data_at(LsAddr addr, std::size_t count) {
    check_range(addr, sizeof(T) * count);
    return reinterpret_cast<T*>(storage_.data() + addr.offset);
  }

  template <typename T>
  const T* data_at(LsAddr addr, std::size_t count) const {
    check_range(addr, sizeof(T) * count);
    return reinterpret_cast<const T*>(storage_.data() + addr.offset);
  }

  /// Raw byte copy into the LS (used by the DMA engine).
  void write_bytes(LsAddr addr, const void* src, std::size_t bytes);

  /// Raw byte copy out of the LS (used by the DMA engine).
  void read_bytes(LsAddr addr, void* dst, std::size_t bytes) const;

 private:
  void check_range(LsAddr addr, std::size_t bytes) const;

  std::vector<std::uint8_t> storage_;
  std::size_t next_free_ = 0;
};

}  // namespace emdpa::cell
