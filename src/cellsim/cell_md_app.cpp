#include "cellsim/cell_md_app.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "cellsim/ppe_kernel.h"
#include "core/aligned_buffer.h"
#include "core/error.h"
#include "core/thread_pool.h"
#include "md/observables.h"

namespace emdpa::cell {

namespace {

// PPE-side scalar work per atom for one step's integration phases (two
// half-kicks, drift, wrap, kinetic energy) plus the pack/unpack of the
// quadword arrays and the linear PE reduction.
constexpr double kPpeIntegrationOpsPerAtom = 34 + 8 + 1;

/// One SPE's per-step offload: DMA positions in, run the kernel, DMA its
/// acceleration slice out.  Returns the modelled busy time of that SPE.
struct SpeStepOutcome {
  ModelTime busy;
  ModelTime dma;
  SpeKernelResult kernel;
};

/// Streaming per-step offload: the owned slice is resident; the j-atoms
/// arrive in double-buffered DMA tiles, each transfer overlapped with the
/// previous tile's compute.
SpeStepOutcome run_spe_step_tiled(SpeContext& spe, const CellConfig& config,
                                  SimdVariant variant,
                                  const SpeKernelParams& params,
                                  std::size_t tile_atoms, LsAddr ls_own,
                                  LsAddr ls_tile_a, LsAddr ls_tile_b,
                                  LsAddr ls_acc,
                                  const AlignedBuffer<emdpa::Vec4f>& host_pos,
                                  AlignedBuffer<emdpa::Vec4f>& host_acc) {
  const std::size_t n = params.n_atoms;
  const std::uint32_t n_own = params.i_end - params.i_begin;
  constexpr int kTagOwn = 1;
  constexpr int kTagOut = 2;
  constexpr int kTagTile[2] = {3, 4};
  const LsAddr tile_buffers[2] = {ls_tile_a, ls_tile_b};
  const ClockDomain spe_clock(config.spe_clock_hz);

  SpeStepOutcome outcome;

  // Resident slice in.
  spe.dma().get_large(spe.local_store(), ls_own,
                      host_pos.data() + params.i_begin,
                      n_own * sizeof(emdpa::Vec4f), kTagOwn);
  ModelTime stalls = spe.dma().wait_on_tags(1u << kTagOwn, ModelTime::zero());

  const std::size_t n_tiles = (n + tile_atoms - 1) / tile_atoms;
  auto tile_extent = [&](std::size_t k) {
    const std::size_t begin = k * tile_atoms;
    return std::min(tile_atoms, n - begin);
  };

  // Prefetch tile 0, then ping-pong: issue tile k+1 while computing tile k.
  spe.dma().get_large(spe.local_store(), tile_buffers[0], host_pos.data(),
                      tile_extent(0) * sizeof(emdpa::Vec4f), kTagTile[0]);
  stalls += spe.dma().wait_on_tags(1u << kTagTile[0], ModelTime::zero());

  ModelTime compute_total;
  for (std::size_t k = 0; k < n_tiles; ++k) {
    const int current = static_cast<int>(k % 2);
    const int other = 1 - current;
    if (k + 1 < n_tiles) {
      spe.dma().get_large(spe.local_store(), tile_buffers[other],
                          host_pos.data() + (k + 1) * tile_atoms,
                          tile_extent(k + 1) * sizeof(emdpa::Vec4f),
                          kTagTile[other]);
    }

    const SpeKernelResult kr = run_spe_accel_kernel_tile(
        variant, params, spe.local_store(), ls_own, tile_buffers[current],
        static_cast<std::uint32_t>(k * tile_atoms),
        static_cast<std::uint32_t>(tile_extent(k)), ls_acc, /*first_tile=*/k == 0);
    const ModelTime tile_compute = spe_clock.to_time(kr.work.cycles(config.spe_costs));
    compute_total += tile_compute;
    outcome.kernel.work += kr.work;
    outcome.kernel.stats += kr.stats;

    if (k + 1 < n_tiles) {
      // The next tile's transfer ran behind this tile's compute.
      stalls += spe.dma().wait_on_tags(1u << kTagTile[other], tile_compute);
    }
  }

  spe.dma().put_large(spe.local_store(), ls_acc, host_acc.data() + params.i_begin,
                      n_own * sizeof(emdpa::Vec4f), kTagOut);
  stalls += spe.dma().wait_on_tags(1u << kTagOut, ModelTime::zero());

  outcome.dma = stalls;
  outcome.busy = stalls + compute_total;
  return outcome;
}

SpeStepOutcome run_spe_step(SpeContext& spe, const CellConfig& config,
                            SimdVariant variant, const SpeKernelParams& params,
                            LsAddr ls_pos, LsAddr ls_acc,
                            const AlignedBuffer<emdpa::Vec4f>& host_pos,
                            AlignedBuffer<emdpa::Vec4f>& host_acc) {
  const std::size_t n = params.n_atoms;
  constexpr int kTagIn = 1;
  constexpr int kTagOut = 2;

  // DMA the full position array into the local store.
  spe.dma().get_large(spe.local_store(), ls_pos, host_pos.data(),
                      n * sizeof(emdpa::Vec4f), kTagIn);
  const ModelTime dma_in =
      spe.dma().wait_on_tags(1u << kTagIn, ModelTime::zero());

  // Compute this SPE's share of the pairs.
  SpeStepOutcome outcome;
  outcome.kernel = run_spe_accel_kernel(variant, params, spe.local_store(),
                                        ls_pos, ls_acc);
  const ModelTime compute = ClockDomain(config.spe_clock_hz)
                                .to_time(outcome.kernel.work.cycles(config.spe_costs));

  // DMA the owned acceleration slice back.
  const std::size_t slice_offset = params.i_begin * sizeof(emdpa::Vec4f);
  const std::size_t slice_bytes =
      (params.i_end - params.i_begin) * sizeof(emdpa::Vec4f);
  spe.dma().put_large(
      spe.local_store(),
      LsAddr{ls_acc.offset + static_cast<std::uint32_t>(slice_offset)},
      host_acc.data() + params.i_begin, slice_bytes, kTagOut);
  const ModelTime dma_out =
      spe.dma().wait_on_tags(1u << kTagOut, ModelTime::zero());

  outcome.dma = dma_in + dma_out;
  outcome.busy = dma_in + compute + dma_out;
  return outcome;
}

}  // namespace

const char* to_string(LaunchMode m) {
  switch (m) {
    case LaunchMode::kRespawnEveryStep: return "respawn-every-step";
    case LaunchMode::kPersistent: return "persistent-mailbox";
  }
  return "unknown";
}

const char* to_string(SpeDataLayout l) {
  switch (l) {
    case SpeDataLayout::kResident: return "resident";
    case SpeDataLayout::kTiledStreaming: return "tiled-streaming";
  }
  return "unknown";
}

CellMdApp::CellMdApp(const CellConfig& config, const CellRunOptions& options)
    : config_(config), options_(options) {
  EMDPA_REQUIRE(options.n_spes >= 0 && options.n_spes <= config.n_spes,
                "n_spes out of range for this Cell configuration");
  EMDPA_REQUIRE(options.tile_atoms > 0, "streaming tile must hold atoms");
}

md::RunResult CellMdApp::run(const md::RunConfig& run_config) {
  EMDPA_REQUIRE(!run_config.lj.shifted,
                "the Cell port implements the paper's truncated LJ only");

  // Build the canonical double-precision workload, then cross the host ->
  // device boundary into single precision (as the paper's Cell port does).
  md::Workload workload = md::make_lattice_workload(run_config.workload);
  md::ParticleSystemF system = workload.system.cast<float>();
  const md::PeriodicBoxF box(static_cast<float>(workload.box.edge()));
  const auto lj = run_config.lj.cast<float>();
  const std::size_t n = system.size();
  const float dt = static_cast<float>(run_config.dt);
  const float half_dt = 0.5f * dt;

  for (auto& p : system.positions()) p = box.wrap(p);

  const ClockDomain ppe_clock(config_.ppe_clock_hz);
  const bool ppe_only = options_.n_spes == 0;

  // Main-memory quadword arrays (the PPE marshals to/from these); DMA
  // requires them 16-byte aligned.
  AlignedBuffer<emdpa::Vec4f> host_pos(n), host_acc(n);

  // Set up SPE contexts and their static work partition.
  std::vector<std::unique_ptr<SpeContext>> spes;
  std::vector<SpeKernelParams> params(static_cast<std::size_t>(
      std::max(options_.n_spes, 0)));
  std::vector<LsAddr> ls_pos(params.size()), ls_acc(params.size());
  for (int s = 0; s < options_.n_spes; ++s) {
    spes.push_back(std::make_unique<SpeContext>(s, config_));
    auto& p = params[static_cast<std::size_t>(s)];
    p.box_edge = box.edge();
    p.cutoff_sq = lj.cutoff_squared();
    p.epsilon = lj.epsilon;
    p.sigma = lj.sigma;
    p.inv_mass = 1.0f / system.mass();
    p.n_atoms = static_cast<std::uint32_t>(n);
    p.i_begin = static_cast<std::uint32_t>(n * static_cast<std::size_t>(s) /
                                           static_cast<std::size_t>(options_.n_spes));
    p.i_end = static_cast<std::uint32_t>(n * (static_cast<std::size_t>(s) + 1) /
                                         static_cast<std::size_t>(options_.n_spes));
  }

  md::RunResult result;
  result.backend_name = "cell";
  ModelTime t_launch, t_compute, t_dma, t_mailbox, t_ppe;

  // Per-SPE tile buffers (streaming layout only).
  std::vector<std::array<LsAddr, 2>> ls_tiles(params.size());

  // Allocate LS buffers for a running thread.  Resident layout: positions
  // for all atoms plus the full acceleration array (owned slice at its
  // natural offset).  Streaming layout: the owned slices plus two DMA tile
  // buffers.
  auto setup_ls = [&](int s) {
    auto& spe = *spes[static_cast<std::size_t>(s)];
    // Program image + stack resident in the LS before data.
    spe.local_store().allocate(48 * 1024, "spe program image + stack");
    if (options_.data_layout == SpeDataLayout::kResident) {
      ls_pos[static_cast<std::size_t>(s)] =
          spe.local_store().allocate(n * sizeof(emdpa::Vec4f), "positions");
      ls_acc[static_cast<std::size_t>(s)] =
          spe.local_store().allocate(n * sizeof(emdpa::Vec4f), "accelerations");
    } else {
      const auto& p = params[static_cast<std::size_t>(s)];
      const std::size_t n_own = p.i_end - p.i_begin;
      ls_pos[static_cast<std::size_t>(s)] = spe.local_store().allocate(
          n_own * sizeof(emdpa::Vec4f), "own positions");
      ls_acc[static_cast<std::size_t>(s)] = spe.local_store().allocate(
          n_own * sizeof(emdpa::Vec4f), "own accelerations");
      for (int b = 0; b < 2; ++b) {
        ls_tiles[static_cast<std::size_t>(s)][static_cast<std::size_t>(b)] =
            spe.local_store().allocate(
                options_.tile_atoms * sizeof(emdpa::Vec4f), "position tile");
      }
    }
  };

  // Acceleration evaluation at the current positions; returns total PE and
  // the modelled time consumed this evaluation.
  auto evaluate_accelerations = [&](bool first_step) -> std::pair<float, ModelTime> {
    ModelTime elapsed;

    // Marshal positions (PPE-side, priced within integration ops).
    for (std::size_t i = 0; i < n; ++i) {
      host_pos[i] = emdpa::Vec4f(system.positions()[i], 0.0f);
    }

    if (ppe_only) {
      PpeKernelResult ppe = run_ppe_accel_kernel(
          box.edge(), lj.cutoff_squared(), lj.epsilon, lj.sigma,
          1.0f / system.mass(), host_pos.data(), host_acc.data(), n);
      const ModelTime t =
          ppe_clock.to_time(CycleCount(ppe.scalar_ops * config_.ppe_cpi));
      t_ppe += t;
      elapsed += t;
      result.ops.add("cell.pair_candidates", ppe.stats.candidates);
      result.ops.add("cell.pair_interactions", ppe.stats.interacting);
    } else {
      // Launch or signal the SPE threads.
      for (int s = 0; s < options_.n_spes; ++s) {
        auto& spe = *spes[static_cast<std::size_t>(s)];
        if (options_.launch_mode == LaunchMode::kRespawnEveryStep ||
            (first_step && !spe.thread_running())) {
          const ModelTime launch = spe.launch_thread();
          setup_ls(s);
          t_launch += launch;
          elapsed += launch;
          result.ops.add("cell.spe_launches");
        } else {
          const ModelTime sig = spe.signal(1 /* "more data" */);
          t_mailbox += sig;
          elapsed += sig;
          result.ops.add("cell.mailbox_signals");
        }
      }

      // SPEs run concurrently — for real, one pool worker per SPE.  Each
      // SPE touches only its own context (local store, DMA engine,
      // mailboxes) and a disjoint slice of host_acc, so the workers are
      // independent; the shared accumulators are updated afterwards in SPE
      // order so the totals stay deterministic.
      std::vector<SpeStepOutcome> outcomes(
          static_cast<std::size_t>(options_.n_spes));
      ThreadPool::global().parallel_for(
          0, static_cast<std::size_t>(options_.n_spes), 1,
          [&](std::size_t s_begin, std::size_t s_end) {
            for (std::size_t s = s_begin; s < s_end; ++s) {
              auto& spe = *spes[s];
              if (options_.launch_mode == LaunchMode::kPersistent &&
                  !first_step) {
                // Drain the "more data" token the PPE just mailed.
                spe.mailboxes().inbound.pop();
              }
              outcomes[s] =
                  options_.data_layout == SpeDataLayout::kResident
                      ? run_spe_step(spe, config_, options_.variant, params[s],
                                     ls_pos[s], ls_acc[s], host_pos, host_acc)
                      : run_spe_step_tiled(spe, config_, options_.variant,
                                           params[s], options_.tile_atoms,
                                           ls_pos[s], ls_tiles[s][0],
                                           ls_tiles[s][1], ls_acc[s], host_pos,
                                           host_acc);

              // Completion notification back to the PPE.
              spe.mailboxes().outbound.push(0xD0E);
              spe.mailboxes().outbound.pop();

              if (options_.launch_mode == LaunchMode::kRespawnEveryStep) {
                spe.terminate_thread();
              }
            }
          });

      // The modelled step completes with the slowest SPE.
      ModelTime slowest;
      for (int s = 0; s < options_.n_spes; ++s) {
        const SpeStepOutcome& outcome = outcomes[static_cast<std::size_t>(s)];
        slowest = std::max(slowest, outcome.busy);
        t_dma += outcome.dma;
        t_compute += outcome.busy - outcome.dma;
        result.ops.add("cell.pair_candidates", outcome.kernel.stats.candidates);
        result.ops.add("cell.pair_interactions",
                       outcome.kernel.stats.interacting);
        result.ops.add("cell.dma_bytes",
                       spes[static_cast<std::size_t>(s)]->dma().bytes_transferred());
      }
      elapsed += slowest;

      // PPE per-step orchestration (thread/completion management).
      t_ppe += config_.ppe_step_overhead;
      elapsed += config_.ppe_step_overhead;
    }

    // Unmarshal accelerations and reduce PE linearly on the PPE.
    float pe = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      system.accelerations()[i] = host_acc[i].xyz();
      pe += host_acc[i].w;
    }
    return {pe, elapsed};
  };

  auto charge_ppe_integration = [&]() {
    const ModelTime t = ppe_clock.to_time(CycleCount(
        static_cast<double>(n) * kPpeIntegrationOpsPerAtom * config_.ppe_cpi));
    t_ppe += t;
    return t;
  };

  // Prime (not part of the timed steps, mirroring the Opteron backend).
  {
    auto [pe, ignored] = evaluate_accelerations(/*first_step=*/true);
    (void)ignored;  // priming is untimed, but persistent threads are now up
    t_launch = ModelTime::zero();
    t_compute = ModelTime::zero();
    t_dma = ModelTime::zero();
    t_mailbox = ModelTime::zero();
    t_ppe = ModelTime::zero();
    if (options_.launch_mode == LaunchMode::kPersistent && !ppe_only) {
      // The paper's Fig-6 accounting includes the one-time launches in the
      // measured run, so re-charge them at the start of the timed region.
      t_launch = config_.thread_launch * static_cast<double>(options_.n_spes);
    }
    result.energies.push_back({md::kinetic_energy_of(system), pe});
  }

  ModelTime total = t_launch;

  for (int step = 0; step < run_config.steps; ++step) {
    ModelTime step_time;
    if (step == 0) step_time += t_launch;

    // 1. advance velocities (half kick).
    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    // 3/4. move atoms, wrap.
    for (std::size_t i = 0; i < n; ++i) {
      system.positions()[i] =
          box.wrap(system.positions()[i] + system.velocities()[i] * dt);
    }
    step_time += charge_ppe_integration();

    // 2. accelerations on the SPEs (or PPE).
    auto [pe, accel_time] = evaluate_accelerations(/*first_step=*/false);
    step_time += accel_time;

    // 1'. second half kick; 5. energies.
    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    result.energies.push_back({md::kinetic_energy_of(system), pe});

    result.step_times.push_back(step_time);
    total += step_time - (step == 0 ? t_launch : ModelTime::zero());
  }

  result.device_time = total;
  result.breakdown["spe_launch"] = t_launch;
  result.breakdown["spe_compute"] = t_compute;
  result.breakdown["dma"] = t_dma;
  result.breakdown["mailbox"] = t_mailbox;
  result.breakdown["ppe"] = t_ppe;
  for (const auto& spe : spes) {
    result.ops.add("cell.dma_retries", spe->dma().retries());
    result.ops.add("cell.mailbox_retries", spe->signal_retries());
  }
  result.final_state = system.cast<double>();
  return result;
}

CellBackend::CellBackend(const CellRunOptions& options, const CellConfig& config)
    : config_(config), options_(options) {}

std::string CellBackend::name() const {
  if (options_.n_spes == 0) return "cell-ppe-only";
  std::string name = "cell-" + std::to_string(options_.n_spes) + "spe[" +
                     to_string(options_.launch_mode) + "]";
  if (options_.data_layout == SpeDataLayout::kTiledStreaming) {
    name += "[tiled]";
  }
  return name;
}

md::RunResult CellBackend::run(const md::RunConfig& run_config) {
  CellMdApp app(config_, options_);
  md::RunResult result = app.run(run_config);
  result.backend_name = name();
  return result;
}

}  // namespace emdpa::cell
