// One SPE's execution context: local store, DMA engine, mailboxes and
// thread lifecycle state.
//
// Thread launches are the expensive operation the paper measures in Fig 6:
// creating an SPE thread under the 2006 Linux kernel costs tens of
// milliseconds, so respawning threads every time step destroys scaling,
// while launching once and signalling through mailboxes amortises the cost.
#pragma once

#include "cellsim/cost_model.h"
#include "cellsim/dma.h"
#include "cellsim/local_store.h"
#include "cellsim/mailbox.h"
#include "core/fault_injection.h"

namespace emdpa::cell {

class SpeContext {
 public:
  SpeContext(int index, const CellConfig& config)
      : index_(index),
        config_(&config),
        local_store_(config.local_store_bytes),
        dma_(config.dma) {}

  int index() const { return index_; }
  LocalStore& local_store() { return local_store_; }
  DmaEngine& dma() { return dma_; }
  Mailboxes& mailboxes() { return mailboxes_; }
  bool thread_running() const { return thread_running_; }

  /// Spawn the SPE thread (load the program image, start execution).
  /// Returns the modelled PPE-side cost.  The local store is reset: a fresh
  /// thread gets a fresh image.
  ModelTime launch_thread() {
    EMDPA_REQUIRE(!thread_running_, "SPE thread already running");
    thread_running_ = true;
    local_store_.reset();
    return config_->thread_launch;
  }

  /// Thread exits (respawn mode tears threads down each step).
  void terminate_thread() {
    EMDPA_REQUIRE(thread_running_, "no SPE thread to terminate");
    thread_running_ = false;
  }

  /// Signal a running thread through its inbound mailbox.  Returns the
  /// modelled signalling cost.
  ///
  /// Fault site "cellsim.mailbox": an injected failure models the PPE
  /// finding the 4-entry inbound mailbox full and re-issuing the write, so
  /// each drop charges another mailbox_signal; kMaxSignalAttempts
  /// consecutive drops raise RuntimeFailure (a wedged SPE).
  ModelTime signal(std::uint32_t word) {
    EMDPA_REQUIRE(thread_running_, "cannot signal an SPE with no thread");
    ModelTime cost = config_->mailbox_signal;
    int attempts = 1;
    while (fault::injected("cellsim.mailbox")) {
      ++signal_retries_;
      cost += config_->mailbox_signal;
      if (++attempts > kMaxSignalAttempts) {
        throw RuntimeFailure("mailbox: SPE " + std::to_string(index_) +
                             " unresponsive after " +
                             std::to_string(kMaxSignalAttempts) +
                             " signal attempts (injected)");
      }
    }
    mailboxes_.inbound.push(word);
    return cost;
  }

  /// Signals re-issued after an injected mailbox-full drop.
  std::uint64_t signal_retries() const { return signal_retries_; }

  static constexpr int kMaxSignalAttempts = 3;

 private:
  int index_;
  const CellConfig* config_;
  LocalStore local_store_;
  DmaEngine dma_;
  Mailboxes mailboxes_;
  std::uint64_t signal_retries_ = 0;
  bool thread_running_ = false;
};

}  // namespace emdpa::cell
