// Analytic Cell BE price of the section-3.4 pairlist trade-off.
//
// The streaming N^2 port is the Cell's natural shape: neighbour positions
// arrive in LS tiles by DMA and the force loop runs 4-wide SIMD over them.
// A pairlist breaks exactly that: list-driven neighbour access is a random
// gather inside the LS, and the 2006 toolchain's scalar path (rotate to the
// preferred slot, compute, rotate back) forfeits the SIMD win — the reason
// the paper's port recomputes distances instead of carrying a list.
//
// Modelled shape (per directed event, SpeOpCosts classes):
//  * N^2, per 4-candidate SIMD chunk: 23 simd (dr, round minimum image,
//    r^2, masked LJ evaluated on all lanes), 2 shuffle, 1 load_store
//    (streamed tile access), 1 loop_iter, 1 fdiv_simd.
//  * pairlist, per entry (scalar): 4 load_store (list word + 3 gathered
//    coords at unaligned LS slots), 27 scalar ops, 1 loop_iter, 0.5
//    branch_taken (cutoff test, ~half taken); per interacting pair:
//    19 scalar + 1 fdiv_scalar.
//  * both: per-step DMA of the position tiles; the pairlist additionally
//    streams the list in and, on each rebuild, has the PPE rebuild it
//    (31 ops/test + 12/atom at ppe_cpi) and re-upload it — amortised over
//    rebuild_period_steps.
//  * both: ppe_step_overhead, so the figures are comparable absolute
//    per-step times for the persistent-threads configuration.
#pragma once

#include "cellsim/cost_model.h"
#include "core/time_model.h"
#include "md/pairlist_cost.h"

namespace emdpa::cell {

/// One force evaluation of the streaming SIMD N^2 loop across all SPEs.
ModelTime cell_n2_step_time(const CellConfig& config,
                            const md::PairlistStepWork& work);

/// The same evaluation through a Verlet pairlist (scalar gather on the
/// SPEs, PPE rebuild amortised).
ModelTime cell_pairlist_step_time(const CellConfig& config,
                                  const md::PairlistStepWork& work);

}  // namespace emdpa::cell
