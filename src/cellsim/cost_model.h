// Cell BE timing model: per-operation SPE cycle costs, PPE cost, and the
// system-level overheads (thread launch, mailbox signalling, per-step PPE
// orchestration).
//
// Calibration (see DESIGN.md §6 and EXPERIMENTS.md): architectural numbers
// (3.2 GHz clocks, 8 SPEs, 256 KB LS, DMA geometry) are the hardware's.  The
// per-op cycle costs model *2006-era compiled code*: the paper notes the
// GNU 4.x toolchain was "unable to perform significant code optimization",
// so scalar SPE operations pay the full rotate-to-slot/compute/rotate-back
// sequence at architectural latency with no scheduling overlap, SIMD ops pay
// their ~6-7 cycle latency un-overlapped plus operand shuffles, and every
// taken branch stalls the unhinted dual-issue pipeline.  The resulting class
// costs are calibrated jointly against Fig 5's optimisation staircase and
// Table 1's absolute runtimes.
#pragma once

#include <cstdint>

#include "cellsim/dma.h"
#include "core/time_model.h"

namespace emdpa::cell {

/// Cycle cost per dynamic operation class on one SPE.
struct SpeOpCosts {
  double scalar = 4.6;         ///< scalar float/int ALU op in the preferred slot
  double simd = 12.0;          ///< 4-wide arithmetic op at full latency, unscheduled
  double shuffle = 8.5;        ///< odd-pipe shuffle/select/splat/insert/extract
  double load_store = 20.0;    ///< LS access incl. address generation + rotate
  double branch_taken = 28.0;  ///< un-hinted taken branch (no prediction)
  double loop_iter = 20.0;     ///< per-iteration index/bookkeeping (excl. branch)
  double fdiv_scalar = 41.0;   ///< scalar divide (estimate + Newton steps)
  double fdiv_simd = 28.0;     ///< vector divide sequence
};

/// Dynamic operation counts accumulated by an SPE kernel run.
struct SpeWork {
  std::uint64_t scalar = 0;
  std::uint64_t simd = 0;
  std::uint64_t shuffle = 0;
  std::uint64_t load_store = 0;
  std::uint64_t branch_taken = 0;
  std::uint64_t loop_iter = 0;
  std::uint64_t fdiv_scalar = 0;
  std::uint64_t fdiv_simd = 0;

  SpeWork& operator+=(const SpeWork& o) {
    scalar += o.scalar;
    simd += o.simd;
    shuffle += o.shuffle;
    load_store += o.load_store;
    branch_taken += o.branch_taken;
    loop_iter += o.loop_iter;
    fdiv_scalar += o.fdiv_scalar;
    fdiv_simd += o.fdiv_simd;
    return *this;
  }

  CycleCount cycles(const SpeOpCosts& costs) const {
    return CycleCount(static_cast<double>(scalar) * costs.scalar +
                      static_cast<double>(simd) * costs.simd +
                      static_cast<double>(shuffle) * costs.shuffle +
                      static_cast<double>(load_store) * costs.load_store +
                      static_cast<double>(branch_taken) * costs.branch_taken +
                      static_cast<double>(loop_iter) * costs.loop_iter +
                      static_cast<double>(fdiv_scalar) * costs.fdiv_scalar +
                      static_cast<double>(fdiv_simd) * costs.fdiv_simd);
  }
};

struct CellConfig {
  double spe_clock_hz = 3.2e9;
  double ppe_clock_hz = 3.2e9;
  int n_spes = 8;
  std::size_t local_store_bytes = 256 * 1024;

  SpeOpCosts spe_costs;
  DmaConfig dma;

  /// Cost of spawning one SPE thread from the PPE (libspe create + load +
  /// run under the 2006 2.6-series kernel).  Calibrated against Fig 6:
  /// respawning 8 SPE threads on each of 10 steps costs ~2 s there.
  ModelTime thread_launch = ModelTime::milliseconds(26.0);

  /// PPE->SPE mailbox write plus SPE-side poll.
  ModelTime mailbox_signal = ModelTime::microseconds(1.0);

  /// Per-step PPE orchestration: integration bookkeeping, readiness checks,
  /// completion polling across SPEs.  Calibrated so the persistent 8-SPE
  /// configuration lands at Table 1's 0.789 s.
  ModelTime ppe_step_overhead = ModelTime::milliseconds(12.0);

  /// Effective cycles per scalar operation on the in-order dual-issue PPE
  /// with 2006 code generation — calibrated against Table 1's PPE-only row
  /// (20.5 s, about 5x slower than the Opteron).
  double ppe_cpi = 6.2;
};

}  // namespace emdpa::cell
