#include "cellsim/cell_dp.h"

#include <cmath>

#include "core/aligned_buffer.h"
#include "core/error.h"
#include "core/vec4.h"
#include "md/observables.h"
#include "md/workload.h"

namespace emdpa::cell {

namespace {

/// Closest periodic image, per axis — identical candidate order to the
/// single-precision kernels, in double.
inline double closest_image_dp(double d, double edge) {
  double best = d;
  double best_abs = std::fabs(d);
  for (const double shift : {edge, -edge}) {
    const double cand = d + shift;
    const double cand_abs = std::fabs(cand);
    if (cand_abs < best_abs) {
      best = cand;
      best_abs = cand_abs;
    }
  }
  return best;
}

}  // namespace

SpeDpKernelResult run_spe_accel_kernel_dp(const SpeDpKernelParams& params,
                                          const SpeDpCosts& dp_costs,
                                          LocalStore& ls, LsAddr positions,
                                          LsAddr accel_out) {
  EMDPA_REQUIRE(params.i_begin <= params.i_end && params.i_end <= params.n_atoms,
                "SPE atom range out of bounds");
  const auto* pos = ls.data_at<emdpa::Vec4d>(positions, params.n_atoms);
  auto* acc = ls.data_at<emdpa::Vec4d>(accel_out, params.n_atoms);

  SpeDpKernelResult result;
  SpeWork& work = result.work;
  const double sm = dp_costs.simd_multiplier;      // per DP vector op
  const double cm = dp_costs.scalar_multiplier;    // per DP scalar op
  auto dp_simd = [&](double n) {
    work.simd += static_cast<std::uint64_t>(n * sm);
  };
  auto dp_scalar = [&](double n) {
    work.scalar += static_cast<std::uint64_t>(n * cm);
  };

  const double sigma2 = params.sigma * params.sigma;
  const double eps24 = 24.0 * params.epsilon;
  const double eps2 = 2.0 * params.epsilon;

  for (std::uint32_t i = params.i_begin; i < params.i_end; ++i) {
    work.loop_iter += 1;
    work.branch_taken += 1;
    work.load_store += 2;  // DP position is two quadwords
    const emdpa::Vec4d pi = pos[i];

    double acc_x = 0, acc_y = 0, acc_z = 0, pe_i = 0;

    for (std::uint32_t j = 0; j < params.n_atoms; ++j) {
      work.loop_iter += 1;
      work.branch_taken += 1;
      if (j == i) {
        work.branch_taken += 1;
        continue;
      }
      work.load_store += 2;

      // Direction (one DP vector sub covers 2 lanes; 2 ops for 3 comps).
      const double rx = pi.x - pos[j].x;
      const double ry = pi.y - pos[j].y;
      const double rz = pi.z - pos[j].z;
      dp_simd(2);

      // SIMD unit-cell search, 2-wide: twice the single-precision op count.
      const double dx = closest_image_dp(rx, params.box_edge);
      const double dy = closest_image_dp(ry, params.box_edge);
      const double dz = closest_image_dp(rz, params.box_edge);
      dp_simd(2 * 7);
      work.shuffle += 8;

      // Length.
      const double r2 = dx * dx + dy * dy + dz * dz;
      dp_simd(2);
      work.shuffle += 2;
      dp_scalar(2);

      ++result.stats.candidates;
      dp_scalar(1);  // cutoff compare
      if (!(r2 < params.cutoff_sq)) {
        work.branch_taken += 1;
        continue;
      }
      ++result.stats.interacting;

      const double inv_r2 = 1.0 / r2;
      const double s2 = sigma2 * inv_r2;
      const double s6 = s2 * s2 * s2;
      const double f_over_r = eps24 * inv_r2 * s6 * (2.0 * s6 - 1.0);
      pe_i += eps2 * s6 * (s6 - 1.0);
      work.fdiv_scalar += 2;  // DP divide: double the Newton refinement
      dp_scalar(12);

      acc_x += f_over_r * dx;
      acc_y += f_over_r * dy;
      acc_z += f_over_r * dz;
      dp_simd(2 + 2);  // splat-f multiply + accumulate across 2 registers
      work.shuffle += 1;
    }

    acc[i] = {acc_x * params.inv_mass, acc_y * params.inv_mass,
              acc_z * params.inv_mass, pe_i};
    dp_scalar(3);
    work.load_store += 2;
  }
  return result;
}

CellDpBackend::CellDpBackend(int n_spes, const CellConfig& config,
                             const SpeDpCosts& dp_costs)
    : n_spes_(n_spes), config_(config), dp_costs_(dp_costs) {
  EMDPA_REQUIRE(n_spes >= 1 && n_spes <= config.n_spes,
                "n_spes out of range for this Cell configuration");
}

std::string CellDpBackend::name() const {
  return "cell-" + std::to_string(n_spes_) + "spe[double-precision]";
}

md::RunResult CellDpBackend::run(const md::RunConfig& run_config) {
  EMDPA_REQUIRE(!run_config.lj.shifted,
                "the Cell port implements the paper's truncated LJ only");

  md::Workload workload = md::make_lattice_workload(run_config.workload);
  md::ParticleSystem& system = workload.system;
  const md::PeriodicBox& box = workload.box;
  const std::size_t n = system.size();
  const double half_dt = 0.5 * run_config.dt;

  for (auto& p : system.positions()) p = box.wrap(p);

  const ClockDomain spe_clock(config_.spe_clock_hz);
  const ClockDomain ppe_clock(config_.ppe_clock_hz);

  AlignedBuffer<emdpa::Vec4d> host_pos(n), host_acc(n);

  // Per-SPE local stores: DP arrays are 32 B/atom, so the LS constraint
  // bites at half the atom count of the single-precision port.
  std::vector<LocalStore> stores;
  std::vector<SpeDpKernelParams> params(static_cast<std::size_t>(n_spes_));
  std::vector<LsAddr> ls_pos(params.size()), ls_acc(params.size());
  for (int s = 0; s < n_spes_; ++s) {
    stores.emplace_back(config_.local_store_bytes);
    auto& store = stores.back();
    store.allocate(48 * 1024, "spe program image + stack");
    ls_pos[static_cast<std::size_t>(s)] =
        store.allocate(n * sizeof(emdpa::Vec4d), "positions (dp)");
    ls_acc[static_cast<std::size_t>(s)] =
        store.allocate(n * sizeof(emdpa::Vec4d), "accelerations (dp)");
    auto& p = params[static_cast<std::size_t>(s)];
    p.box_edge = box.edge();
    p.cutoff_sq = run_config.lj.cutoff_squared();
    p.epsilon = run_config.lj.epsilon;
    p.sigma = run_config.lj.sigma;
    p.inv_mass = 1.0 / system.mass();
    p.n_atoms = static_cast<std::uint32_t>(n);
    p.i_begin = static_cast<std::uint32_t>(
        n * static_cast<std::size_t>(s) / static_cast<std::size_t>(n_spes_));
    p.i_end = static_cast<std::uint32_t>(n * (static_cast<std::size_t>(s) + 1) /
                                         static_cast<std::size_t>(n_spes_));
  }

  md::RunResult result;
  result.backend_name = name();
  ModelTime t_compute, t_dma;

  DmaEngine dma(config_.dma);

  auto evaluate = [&]() -> std::pair<double, ModelTime> {
    for (std::size_t i = 0; i < n; ++i) {
      host_pos[i] = emdpa::Vec4d(system.positions()[i], 0.0);
    }
    ModelTime slowest;
    for (int s = 0; s < n_spes_; ++s) {
      auto& store = stores[static_cast<std::size_t>(s)];
      const auto& p = params[static_cast<std::size_t>(s)];
      dma.get_large(store, ls_pos[static_cast<std::size_t>(s)], host_pos.data(),
                    n * sizeof(emdpa::Vec4d), 1);
      const ModelTime dma_in = dma.wait_on_tags(1u << 1, ModelTime::zero());

      const SpeDpKernelResult kr = run_spe_accel_kernel_dp(
          p, dp_costs_, store, ls_pos[static_cast<std::size_t>(s)],
          ls_acc[static_cast<std::size_t>(s)]);
      const ModelTime compute =
          spe_clock.to_time(kr.work.cycles(config_.spe_costs));

      const std::size_t off = p.i_begin * sizeof(emdpa::Vec4d);
      dma.put_large(store,
                    LsAddr{ls_acc[static_cast<std::size_t>(s)].offset +
                           static_cast<std::uint32_t>(off)},
                    host_acc.data() + p.i_begin,
                    (p.i_end - p.i_begin) * sizeof(emdpa::Vec4d), 2);
      const ModelTime dma_out = dma.wait_on_tags(1u << 2, ModelTime::zero());

      slowest = std::max(slowest, dma_in + compute + dma_out);
      t_dma += dma_in + dma_out;
      t_compute += compute;
      result.ops.add("cell_dp.pair_candidates", kr.stats.candidates);
    }

    double pe = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      system.accelerations()[i] = host_acc[i].xyz();
      pe += host_acc[i].w;
    }
    return {pe, slowest + config_.ppe_step_overhead};
  };

  // Prime (untimed).
  {
    auto [pe, ignored] = evaluate();
    (void)ignored;
    t_compute = t_dma = ModelTime::zero();
    result.energies.push_back({md::kinetic_energy_of(system), pe});
  }

  const ModelTime launch =
      config_.thread_launch * static_cast<double>(n_spes_);
  ModelTime total = launch;

  for (int step = 0; step < run_config.steps; ++step) {
    ModelTime step_time;
    if (step == 0) step_time += launch;

    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    for (std::size_t i = 0; i < n; ++i) {
      system.positions()[i] = box.wrap(system.positions()[i] +
                                       system.velocities()[i] * run_config.dt);
    }
    step_time += ppe_clock.to_time(
        CycleCount(static_cast<double>(n) * 43.0 * config_.ppe_cpi));

    auto [pe, accel_time] = evaluate();
    step_time += accel_time;

    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    result.energies.push_back({md::kinetic_energy_of(system), pe});
    result.step_times.push_back(step_time);
    total += step_time - (step == 0 ? launch : ModelTime::zero());
  }

  result.device_time = total;
  result.breakdown["spe_launch"] = launch;
  result.breakdown["spe_compute"] = t_compute;
  result.breakdown["dma"] = t_dma;
  result.final_state = std::move(system);
  return result;
}

}  // namespace emdpa::cell
