#include "cellsim/spe_kernel.h"

#include <cmath>

#include "cellsim/spe_simd.h"
#include "core/error.h"

namespace emdpa::cell {

const char* to_string(SimdVariant v) {
  switch (v) {
    case SimdVariant::kOriginal: return "original";
    case SimdVariant::kCopysign: return "replace-if-with-copysign";
    case SimdVariant::kSimdReflect: return "simd-unit-cell-reflection";
    case SimdVariant::kSimdDirection: return "simd-direction-vector";
    case SimdVariant::kSimdLength: return "simd-length-calculation";
    case SimdVariant::kSimdAccel: return "simd-acceleration";
  }
  return "unknown";
}

namespace {

/// Scalar per-axis neighbour-cell search: among the three images
/// {d, d+edge, d-edge} keep the one with the smallest magnitude.  This is
/// the paper's "searching the 27 neighboring unit cells" decomposed per
/// axis.  `use_copysign_select` switches the inner `if` (kOriginal) for
/// branch-free select math (kCopysign).  Returns the closest image; op
/// counts go to `work`.
inline float search_axis_scalar(float d, float edge, bool use_copysign_select,
                                SpeWork& work) {
  float best = d;
  float best_abs = std::fabs(d);
  work.scalar += 1;  // fabs
  const float shifts[2] = {edge, -edge};
  for (const float shift : shifts) {  // unrolled by the compiler (constant trip)
    const float cand = d + shift;
    const float cand_abs = std::fabs(cand);
    work.scalar += 3;  // add, fabs, compare
    if (use_copysign_select) {
      // Branch-free: selects keyed off the comparison mask (odd-pipe ops,
      // priced as shuffles).
      const bool closer = cand_abs < best_abs;
      best = closer ? cand : best;
      best_abs = closer ? cand_abs : best_abs;
      work.shuffle += 2;  // two selects
    } else {
      // The compiled `if` lays the update block inline: when the candidate
      // is NOT closer (the common case) the branch over the block is taken
      // and, with no branch prediction on the SPE, stalls the pipeline.
      if (cand_abs < best_abs) {
        work.scalar += 2;  // two updates on the fall-through path
        best = cand;
        best_abs = cand_abs;
      } else {
        work.branch_taken += 1;
      }
    }
  }
  return best;
}

/// SIMD unit-cell search: all three axes at once.  The two shifted images
/// are tested lane-parallel with compare+select; bit-identical to the scalar
/// search (same candidates, same comparisons, same order).
inline vfloat4 search_simd(const vfloat4& dr, const vfloat4& edge_splat,
                           const vfloat4& neg_edge_splat, SpeWork& work) {
  vfloat4 best = dr;
  vfloat4 best_abs = spu_abs(dr);
  work.simd += 1;
  for (const vfloat4* shift : {&edge_splat, &neg_edge_splat}) {  // unrolled
    const vfloat4 cand = spu_add(dr, *shift);
    const vfloat4 cand_abs = spu_abs(cand);
    const vmask4 closer = spu_cmpgt(best_abs, cand_abs);
    best = spu_sel(best, cand, closer);
    best_abs = spu_sel(best_abs, cand_abs, closer);
    work.simd += 3;    // add, abs, compare
    work.shuffle += 2; // two selects (odd pipe)
  }
  return best;
}

/// Per-atom accumulator state threaded through the pair loop.  Which member
/// is live depends on the variant (scalar vs SIMD acceleration).
struct AccumState {
  float acc_x = 0, acc_y = 0, acc_z = 0, pe = 0;
  vfloat4 acc_v = spu_splats(0.0f);
};

/// One candidate pair, all six variants: direction, unit-cell reflection,
/// length, cutoff test, LJ force/energy, acceleration accumulation.  Op
/// counts are recorded alongside every block.
class PairProcessor {
 public:
  PairProcessor(SimdVariant variant, const SpeKernelParams& params,
                SpeWork& work, md::PairStats& stats)
      : work_(work),
        stats_(stats),
        simd_reflect_(variant >= SimdVariant::kSimdReflect),
        simd_direction_(variant >= SimdVariant::kSimdDirection),
        simd_length_(variant >= SimdVariant::kSimdLength),
        simd_accel_(variant >= SimdVariant::kSimdAccel),
        copysign_select_(variant >= SimdVariant::kCopysign),
        edge_(params.box_edge),
        cutoff_sq_(params.cutoff_sq),
        sigma2_(params.sigma * params.sigma),
        eps24_(24.0f * params.epsilon),
        eps2_(2.0f * params.epsilon),
        edge_splat_(spu_splats(params.box_edge)),
        neg_edge_splat_(spu_splats(-params.box_edge)) {}

  bool uses_simd_accumulator() const { return simd_accel_; }

  void process(const emdpa::Vec4f& pi, const emdpa::Vec4f& pj,
               AccumState& state) {
    // --- direction vector -------------------------------------------
    float dx = 0, dy = 0, dz = 0;  // scalar path state
    vfloat4 drv{};                 // SIMD path state
    if (simd_direction_) {
      work_.load_store += 1;  // quadword load of p_j
      work_.simd += 1;        // vector subtract
      drv = spu_sub(vfloat4::from(pi), vfloat4::from(pj));
    } else {
      // Component loads + scalar subtracts (each scalar access costs a
      // load, a rotate-to-preferred-slot shuffle and address arithmetic
      // on the SPE).
      work_.load_store += 3;
      work_.shuffle += 3;
      work_.scalar += 6;
      dx = pi.x - pj.x;
      dy = pi.y - pj.y;
      dz = pi.z - pj.z;
    }

    // --- unit-cell reflection (minimum image) -----------------------
    if (simd_reflect_) {
      if (!simd_direction_) {
        // Pack the scalar direction components into a SIMD register.
        work_.shuffle += 4;  // three inserts + a move
        drv = {{dx, dy, dz, 0.0f}};
      }
      drv = search_simd(drv, edge_splat_, neg_edge_splat_, work_);
    } else {
      // Per-axis scalar search, looping over the three dimensions.  Each
      // iteration spills/reloads the axis scalar through the stack (2006
      // code generation keeps loop-carried scalars in the LS).
      float* axes[3] = {&dx, &dy, &dz};
      for (float* d : axes) {
        work_.loop_iter += 1;
        work_.branch_taken += 1;  // axis-loop back edge
        work_.load_store += 2;    // spill + reload of the axis component
        *d = search_axis_scalar(*d, edge_, copysign_select_, work_);
      }
    }

    // --- length calculation -----------------------------------------
    float r2 = 0;
    if (simd_length_) {
      const vfloat4 sq = spu_mul(drv, drv);
      work_.simd += 1;
      // Horizontal add of lanes 0..2: two rotates + two adds; the lane-0
      // extract is free (scalars live in the preferred slot).
      work_.shuffle += 2;
      work_.scalar += 2;
      r2 = spu_extract(sq, 0) + spu_extract(sq, 1) + spu_extract(sq, 2);
    } else {
      if (simd_reflect_) {
        // SIMD register back to scalar components (plus a spill the
        // 2006 compiler emits around the extracts).
        work_.shuffle += 3;
        work_.load_store += 2;
        dx = spu_extract(drv, 0);
        dy = spu_extract(drv, 1);
        dz = spu_extract(drv, 2);
      }
      work_.scalar += 5;  // 3 multiplies + 2 adds
      r2 = dx * dx + dy * dy + dz * dz;
    }

    // --- cutoff test --------------------------------------------------
    ++stats_.candidates;
    work_.scalar += 1;  // compare
    if (!(r2 < cutoff_sq_)) {
      work_.branch_taken += 1;  // skip to next j
      return;
    }
    ++stats_.interacting;

    // --- Lennard-Jones force and energy (scalar in every variant; the
    // paper SIMDises only the acceleration conversion) -----------------
    work_.fdiv_scalar += 1;  // 1/r^2 via estimate + Newton
    const float inv_r2 = 1.0f / r2;
    const float s2 = sigma2_ * inv_r2;
    const float s6 = s2 * s2 * s2;
    const float f_over_r = eps24_ * inv_r2 * s6 * (2.0f * s6 - 1.0f);
    work_.scalar += 8;
    state.pe += eps2_ * s6 * (s6 - 1.0f);  // half of 4*eps*...: pair seen twice
    work_.scalar += 4;

    // --- acceleration accumulation ------------------------------------
    if (simd_accel_) {
      const vfloat4 fv = spu_splats(f_over_r);
      state.acc_v = spu_add(state.acc_v, spu_mul(fv, drv));
      work_.shuffle += 1;  // splat
      work_.simd += 2;     // multiply + add
    } else {
      if (simd_reflect_ && simd_length_) {
        // dr still lives in a SIMD register; extract for the scalar
        // update (only on interacting pairs, hence the small Fig-5 win).
        work_.shuffle += 3;
        dx = spu_extract(drv, 0);
        dy = spu_extract(drv, 1);
        dz = spu_extract(drv, 2);
      }
      work_.scalar += 6;  // 3 multiplies + 3 adds
      state.acc_x += f_over_r * dx;
      state.acc_y += f_over_r * dy;
      state.acc_z += f_over_r * dz;
    }
  }

  /// Convert the accumulator to the stored quadword (acceleration + PE).
  emdpa::Vec4f finalize(const AccumState& state, float inv_mass) {
    float ax, ay, az;
    if (simd_accel_) {
      ax = spu_extract(state.acc_v, 0);
      ay = spu_extract(state.acc_v, 1);
      az = spu_extract(state.acc_v, 2);
      work_.shuffle += 2;
    } else {
      ax = state.acc_x;
      ay = state.acc_y;
      az = state.acc_z;
    }
    work_.scalar += 3;
    return {ax * inv_mass, ay * inv_mass, az * inv_mass, state.pe};
  }

  /// Re-seed the accumulator from a previously stored partial result (the
  /// tiled kernel's read-modify-write across tiles).
  void seed(const emdpa::Vec4f& partial, float inv_mass, AccumState& state) {
    // Undo the finalize scaling so accumulation continues in force units.
    const float mass = 1.0f / inv_mass;
    const float fx = partial.x * mass;
    const float fy = partial.y * mass;
    const float fz = partial.z * mass;
    work_.scalar += 3;
    if (simd_accel_) {
      state.acc_v = {{fx, fy, fz, 0.0f}};
      work_.shuffle += 3;  // pack
    } else {
      state.acc_x = fx;
      state.acc_y = fy;
      state.acc_z = fz;
    }
    state.pe = partial.w;
  }

 private:
  SpeWork& work_;
  md::PairStats& stats_;
  const bool simd_reflect_;
  const bool simd_direction_;
  const bool simd_length_;
  const bool simd_accel_;
  const bool copysign_select_;
  const float edge_;
  const float cutoff_sq_;
  const float sigma2_;
  const float eps24_;
  const float eps2_;
  const vfloat4 edge_splat_;
  const vfloat4 neg_edge_splat_;
};

}  // namespace

SpeKernelResult run_spe_accel_kernel(SimdVariant variant,
                                     const SpeKernelParams& params,
                                     LocalStore& ls, LsAddr positions,
                                     LsAddr accel_out) {
  EMDPA_REQUIRE(params.i_begin <= params.i_end && params.i_end <= params.n_atoms,
                "SPE atom range out of bounds");
  const auto* pos = ls.data_at<emdpa::Vec4f>(positions, params.n_atoms);
  auto* acc = ls.data_at<emdpa::Vec4f>(accel_out, params.n_atoms);

  SpeKernelResult result;
  SpeWork& work = result.work;
  PairProcessor processor(variant, params, work, result.stats);
  const float inv_mass = params.inv_mass;

  for (std::uint32_t i = params.i_begin; i < params.i_end; ++i) {
    work.loop_iter += 1;
    work.branch_taken += 1;  // i-loop back edge
    work.load_store += 1;    // load p_i
    const emdpa::Vec4f pi = pos[i];

    AccumState state;
    for (std::uint32_t j = 0; j < params.n_atoms; ++j) {
      work.loop_iter += 1;
      work.branch_taken += 1;  // j-loop back edge
      if (j == i) {
        work.branch_taken += 1;  // the skip branch
        continue;
      }
      processor.process(pi, pos[j], state);
    }

    acc[i] = processor.finalize(state, inv_mass);
    work.load_store += 1;  // quadword store
  }

  return result;
}

SpeKernelResult run_spe_accel_kernel_tile(
    SimdVariant variant, const SpeKernelParams& params, LocalStore& ls,
    LsAddr positions_own, LsAddr positions_tile, std::uint32_t tile_begin,
    std::uint32_t tile_count, LsAddr accel_slice, bool first_tile) {
  EMDPA_REQUIRE(params.i_begin <= params.i_end && params.i_end <= params.n_atoms,
                "SPE atom range out of bounds");
  EMDPA_REQUIRE(tile_begin + tile_count <= params.n_atoms,
                "tile exceeds the atom count");
  const std::uint32_t n_own = params.i_end - params.i_begin;
  const auto* own = ls.data_at<emdpa::Vec4f>(positions_own, n_own);
  const auto* tile = ls.data_at<emdpa::Vec4f>(positions_tile, tile_count);
  auto* acc = ls.data_at<emdpa::Vec4f>(accel_slice, n_own);

  SpeKernelResult result;
  SpeWork& work = result.work;
  PairProcessor processor(variant, params, work, result.stats);
  const float inv_mass = params.inv_mass;

  for (std::uint32_t k = 0; k < n_own; ++k) {
    const std::uint32_t i = params.i_begin + k;
    work.loop_iter += 1;
    work.branch_taken += 1;
    work.load_store += 1;
    const emdpa::Vec4f pi = own[k];

    AccumState state;
    if (!first_tile) {
      work.load_store += 1;  // reload the partial accumulator
      processor.seed(acc[k], inv_mass, state);
    }

    for (std::uint32_t t = 0; t < tile_count; ++t) {
      const std::uint32_t j = tile_begin + t;
      work.loop_iter += 1;
      work.branch_taken += 1;
      if (j == i) {
        work.branch_taken += 1;
        continue;
      }
      processor.process(pi, tile[t], state);
    }

    acc[k] = processor.finalize(state, inv_mass);
    work.load_store += 1;
  }

  return result;
}

}  // namespace emdpa::cell
