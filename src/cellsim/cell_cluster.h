// Small-cluster Cell model (extension).
//
// The paper closes on "supercomputing-scale power to biological simulations
// users that have access to desktop and small cluster systems".  This
// backend models the natural small-cluster step: B Cell blades, atoms
// partitioned across blades and then across each blade's 8 SPEs, positions
// exchanged every step with a ring allgather over a commodity interconnect
// (GigE-class by default).
//
// The mechanism to observe is the communication wall: per-step compute
// shrinks as N^2/B while the allgather cost stays O(N), so scaling flattens
// once the wire dominates — MD's well-known strong-scaling limit, arriving
// embarrassingly early on 2006 interconnects.
#pragma once

#include "cellsim/cell_md_app.h"

namespace emdpa::cell {

struct InterconnectConfig {
  double bandwidth_bytes_per_s = 110.0e6;  ///< GigE, realistic payload rate
  ModelTime message_latency = ModelTime::microseconds(50);  ///< per message
};

struct ClusterOptions {
  int n_blades = 2;
  InterconnectConfig interconnect;
  /// Per-blade SPE configuration (persistent threads assumed).
  int spes_per_blade = 8;
  SimdVariant variant = SimdVariant::kSimdAccel;
};

/// Ring allgather time for `bytes_per_rank` contributed by each of `ranks`
/// participants: (ranks-1) rounds, each moving one slice.
ModelTime ring_allgather_time(const InterconnectConfig& config,
                              std::size_t bytes_per_rank, int ranks);

class CellClusterBackend final : public md::MdBackend {
 public:
  explicit CellClusterBackend(const ClusterOptions& options = {},
                              const CellConfig& blade_config = {});

  std::string name() const override;
  std::string precision() const override { return "single"; }
  md::RunResult run(const md::RunConfig& run_config) override;

 private:
  ClusterOptions options_;
  CellConfig blade_config_;
};

}  // namespace emdpa::cell
