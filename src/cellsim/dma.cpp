#include "cellsim/dma.h"

#include "core/fault_injection.h"

namespace emdpa::cell {

DmaEngine::DmaEngine(const DmaConfig& config) : config_(config) {}

void DmaEngine::check_request(const void* host, std::size_t bytes, int tag) const {
  EMDPA_REQUIRE(tag >= 0 && tag < DmaConfig::kNumTags, "DMA tag must be 0..31");
  EMDPA_REQUIRE(bytes > 0 && bytes <= DmaConfig::kMaxRequestBytes,
                "DMA request must be 1..16384 bytes (use *_large for more)");
  EMDPA_REQUIRE(bytes % DmaConfig::kAlignment == 0,
                "DMA size must be a multiple of 16 bytes");
  EMDPA_REQUIRE(reinterpret_cast<std::uintptr_t>(host) % DmaConfig::kAlignment == 0,
                "DMA host address must be 16-byte aligned");
}

void DmaEngine::account(std::size_t bytes, int tag) {
  // Fault site "cellsim.dma": each injected failure models the MFC
  // re-issuing the request, charging another request_latency on the tag.
  // The data copy already happened (the simulator is sequential), so only
  // the modelled time and the retry counter change.
  int attempts = 1;
  while (fault::injected("cellsim.dma")) {
    ++retries_;
    pending_[static_cast<std::size_t>(tag)] += config_.request_latency;
    if (++attempts > kMaxAttempts) {
      throw RuntimeFailure("dma: transfer failed after " +
                           std::to_string(kMaxAttempts) +
                           " attempts (injected)");
    }
  }
  pending_[static_cast<std::size_t>(tag)] +=
      config_.request_latency +
      ModelTime::seconds(static_cast<double>(bytes) / config_.bandwidth_bytes_per_s);
  bytes_transferred_ += bytes;
  ++requests_issued_;
}

void DmaEngine::get(LocalStore& ls, LsAddr dst, const void* host_src,
                    std::size_t bytes, int tag) {
  check_request(host_src, bytes, tag);
  EMDPA_REQUIRE(dst.offset % DmaConfig::kAlignment == 0,
                "DMA LS address must be 16-byte aligned");
  ls.write_bytes(dst, host_src, bytes);
  account(bytes, tag);
}

void DmaEngine::put(const LocalStore& ls, LsAddr src, void* host_dst,
                    std::size_t bytes, int tag) {
  check_request(host_dst, bytes, tag);
  EMDPA_REQUIRE(src.offset % DmaConfig::kAlignment == 0,
                "DMA LS address must be 16-byte aligned");
  ls.read_bytes(src, host_dst, bytes);
  account(bytes, tag);
}

void DmaEngine::get_large(LocalStore& ls, LsAddr dst, const void* host_src,
                          std::size_t bytes, int tag) {
  const auto* src = static_cast<const std::uint8_t*>(host_src);
  std::size_t done = 0;
  while (done < bytes) {
    const std::size_t chunk = std::min(bytes - done, DmaConfig::kMaxRequestBytes);
    get(ls, LsAddr{dst.offset + static_cast<std::uint32_t>(done)}, src + done,
        chunk, tag);
    done += chunk;
  }
}

void DmaEngine::put_large(const LocalStore& ls, LsAddr src, void* host_dst,
                          std::size_t bytes, int tag) {
  auto* dst = static_cast<std::uint8_t*>(host_dst);
  std::size_t done = 0;
  while (done < bytes) {
    const std::size_t chunk = std::min(bytes - done, DmaConfig::kMaxRequestBytes);
    put(ls, LsAddr{src.offset + static_cast<std::uint32_t>(done)}, dst + done,
        chunk, tag);
    done += chunk;
  }
}

ModelTime DmaEngine::wait_on_tags(std::uint32_t tag_mask,
                                  ModelTime time_since_issue) {
  ModelTime longest = ModelTime::zero();
  for (int tag = 0; tag < DmaConfig::kNumTags; ++tag) {
    if ((tag_mask >> tag) & 1u) {
      auto& p = pending_[static_cast<std::size_t>(tag)];
      if (p > longest) longest = p;
      p = ModelTime::zero();
    }
  }
  // Compute performed since issue overlaps the transfer; only the remainder
  // stalls the SPE.
  return longest > time_since_issue ? longest - time_since_issue
                                    : ModelTime::zero();
}

}  // namespace emdpa::cell
