// SPE mailbox model.
//
// Besides bulk DMA, the PPE and each SPE exchange small control words
// through mailboxes: a 4-entry inbound FIFO (PPE -> SPE) and a 1-entry
// outbound FIFO (SPE -> PPE), each entry 32 bits.  The paper's key
// optimisation (Fig 6) launches SPE threads once and then *signals* them
// through mailboxes each time step, amortising the thread-launch overhead.
//
// The model is a real bounded FIFO with the hardware depths; writes to a
// full FIFO and reads from an empty one are contract violations here
// (on hardware they block — our simulator is sequential, so a same-thread
// block would be a deadlock, which *is* a bug in the orchestration code).
#pragma once

#include <cstdint>
#include <deque>

#include "core/error.h"

namespace emdpa::cell {

class MailboxFifo {
 public:
  MailboxFifo(const char* name, std::size_t depth) : name_(name), depth_(depth) {}

  bool empty() const { return entries_.empty(); }
  bool full() const { return entries_.size() >= depth_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t depth() const { return depth_; }

  void push(std::uint32_t value) {
    if (full()) {
      throw ContractViolation(std::string("mailbox '") + name_ +
                              "' written while full (would deadlock)");
    }
    entries_.push_back(value);
  }

  std::uint32_t pop() {
    if (empty()) {
      throw ContractViolation(std::string("mailbox '") + name_ +
                              "' read while empty (would deadlock)");
    }
    const std::uint32_t value = entries_.front();
    entries_.pop_front();
    return value;
  }

 private:
  const char* name_;
  std::size_t depth_;
  std::deque<std::uint32_t> entries_;
};

/// The mailbox pair of one SPE.
struct Mailboxes {
  MailboxFifo inbound{"spe-inbound", 4};    ///< PPE -> SPE, 4 entries
  MailboxFifo outbound{"spe-outbound", 1};  ///< SPE -> PPE, 1 entry
};

}  // namespace emdpa::cell
