// PPE-only acceleration kernel: the unported baseline of Table 1's last row.
//
// This is the original scalar code (full 27-image minimum-image search)
// running on the Cell's Power Processing Element — a 3.2 GHz, dual-issue,
// in-order core that 2006 compilers scheduled poorly.  The paper measures it
// at 20.5 s for the 2048-atom/10-step run, about 5x slower than the Opteron
// and 26x slower than 8 SPEs.
#pragma once

#include <cstdint>

#include "cellsim/cost_model.h"
#include "core/vec4.h"
#include "md/force_kernel.h"

namespace emdpa::cell {

struct PpeKernelResult {
  double scalar_ops = 0;  ///< dynamic scalar op count, priced at ppe_cpi
  md::PairStats stats;
};

/// Compute single-precision accelerations for all atoms on the PPE, writing
/// them (and per-atom PE in w) into `accel_out[0..n)`.  Positions must be
/// wrapped.
PpeKernelResult run_ppe_accel_kernel(float box_edge, float cutoff_sq,
                                     float epsilon, float sigma, float inv_mass,
                                     const emdpa::Vec4f* positions,
                                     emdpa::Vec4f* accel_out, std::size_t n);

}  // namespace emdpa::cell
