// SPE DMA engine model.
//
// SPEs move data between main memory and their local stores with
// asynchronous DMA: a request is enqueued under a tag (0-31), and the
// program later blocks on a tag mask until the transfers complete.  The
// hardware enforces strict alignment (16-byte boundaries on both ends) and a
// 16 KB maximum per request; larger movements are issued as DMA lists.
//
// The model performs the copy immediately (the simulator is sequential) but
// accounts the modelled latency: completion time per tag is tracked so that
// wait_on_tags() charges only the not-yet-elapsed remainder, letting
// double-buffered kernels overlap transfer and compute exactly as on
// hardware.
#pragma once

#include <array>
#include <cstdint>

#include "cellsim/local_store.h"
#include "core/op_counter.h"
#include "core/time_model.h"

namespace emdpa::cell {

struct DmaConfig {
  /// Effective main-memory bandwidth per SPE.  The EIB peaks far higher,
  /// but a single SPE's sustained memory-to-LS rate is bounded by the MIC;
  /// 16 GB/s is the figure commonly measured on 3.2 GHz parts.
  double bandwidth_bytes_per_s = 16.0e9;

  /// Fixed issue + completion latency per DMA request.
  ModelTime request_latency = ModelTime::microseconds(0.3);

  static constexpr std::size_t kMaxRequestBytes = 16 * 1024;
  static constexpr std::size_t kAlignment = 16;
  static constexpr int kNumTags = 32;
};

/// One SPE's DMA engine (the MFC).  Owns no storage; operates on the SPE's
/// LocalStore and host memory.
class DmaEngine {
 public:
  explicit DmaEngine(const DmaConfig& config = {});

  /// Enqueue a get (main memory -> LS).  `host_src` must be 16-byte aligned,
  /// `bytes` a multiple of 16 and at most 16 KB.
  void get(LocalStore& ls, LsAddr dst, const void* host_src, std::size_t bytes,
           int tag);

  /// Enqueue a put (LS -> main memory).  Same alignment/size rules.
  void put(const LocalStore& ls, LsAddr src, void* host_dst, std::size_t bytes,
           int tag);

  /// Convenience: transfer of arbitrary size, split into <=16 KB requests on
  /// the same tag (models a DMA list).
  void get_large(LocalStore& ls, LsAddr dst, const void* host_src,
                 std::size_t bytes, int tag);
  void put_large(const LocalStore& ls, LsAddr src, void* host_dst,
                 std::size_t bytes, int tag);

  /// Block until all requests on tags in `tag_mask` complete.  Returns the
  /// stall time: how much of the outstanding transfer time had not already
  /// been hidden behind `time_since_issue` of useful compute.
  ModelTime wait_on_tags(std::uint32_t tag_mask, ModelTime time_since_issue);

  /// Total bytes moved (both directions) and request count, for reports.
  std::uint64_t bytes_transferred() const { return bytes_transferred_; }
  std::uint64_t requests_issued() const { return requests_issued_; }
  /// Transfers re-issued after an injected failure (fault site
  /// "cellsim.dma").  Each retry charges another request_latency on the
  /// request's tag; kMaxAttempts consecutive failures raise RuntimeFailure.
  std::uint64_t retries() const { return retries_; }

  static constexpr int kMaxAttempts = 3;

 private:
  void check_request(const void* host, std::size_t bytes, int tag) const;
  void account(std::size_t bytes, int tag);

  DmaConfig config_;
  /// Outstanding (unwaited) transfer time per tag.
  std::array<ModelTime, DmaConfig::kNumTags> pending_{};
  std::uint64_t bytes_transferred_ = 0;
  std::uint64_t requests_issued_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace emdpa::cell
