// Double-precision Cell port (extension quantifying the paper's closing
// concern).
//
// The paper's conclusions flag "the availability and support for
// double-precision floating-point calculations" as the outstanding issue:
// the first-generation SPE executes double-precision as 2-wide,
// non-pipelined operations with a 13-cycle latency and a 6-cycle issue
// stall, giving ~1/14th of the single-precision throughput.  This backend
// runs the fully-optimised kernel in double precision on the SPEs under
// that cost model, so the ablation bench can show exactly where the Cell's
// 5x advantage goes.
//
// Physics: genuine double-precision arithmetic, same kernel structure as
// the single-precision port (persistent threads, full SIMD staircase),
// comparable against the double-precision host reference.
#pragma once

#include "cellsim/cost_model.h"
#include "cellsim/local_store.h"
#include "md/backend.h"
#include "md/force_kernel.h"

namespace emdpa::cell {

/// Cost model for SPE double precision relative to the SpeOpCosts classes:
/// DP vector ops run 2-wide and stall the pipeline, DP "scalar" ops pay the
/// same non-pipelined latency.
struct SpeDpCosts {
  /// Multiplier on SpeOpCosts::simd per 4-lane-equivalent DP operation
  /// (2 ops at half width, each non-pipelined): SP 25.6 GFLOPS vs DP
  /// 1.83 GFLOPS on the 3.2 GHz part -> ~14x.
  double simd_multiplier = 14.0;
  /// Multiplier on SpeOpCosts::scalar for a DP scalar op.
  double scalar_multiplier = 7.0;
};

struct SpeDpKernelParams {
  double box_edge = 0;
  double cutoff_sq = 0;
  double epsilon = 1;
  double sigma = 1;
  double inv_mass = 1;
  std::uint32_t n_atoms = 0;
  std::uint32_t i_begin = 0;
  std::uint32_t i_end = 0;
};

struct SpeDpKernelResult {
  SpeWork work;  ///< DP ops recorded pre-multiplied into the base classes
  md::PairStats stats;
};

/// Double-precision acceleration kernel on one SPE.  Positions and
/// accelerations are LS-resident arrays of 4 doubles per atom (x, y, z,
/// pad/PE).  Op counts are recorded scaled by SpeDpCosts so SpeWork::cycles
/// with the standard SpeOpCosts prices the DP run.
SpeDpKernelResult run_spe_accel_kernel_dp(const SpeDpKernelParams& params,
                                          const SpeDpCosts& dp_costs,
                                          LocalStore& ls, LsAddr positions,
                                          LsAddr accel_out);

/// MdBackend for the double-precision Cell port (persistent threads).
class CellDpBackend final : public md::MdBackend {
 public:
  explicit CellDpBackend(int n_spes = 8, const CellConfig& config = {},
                         const SpeDpCosts& dp_costs = {});

  std::string name() const override;
  std::string precision() const override { return "double"; }
  md::RunResult run(const md::RunConfig& run_config) override;

 private:
  int n_spes_;
  CellConfig config_;
  SpeDpCosts dp_costs_;
};

}  // namespace emdpa::cell
