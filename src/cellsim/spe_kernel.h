// The SPE acceleration kernel — step 2 of the MD calculation, ported to the
// SPE in the six cumulative optimisation stages of the paper's Figure 5:
//
//   kOriginal       scalar code; per-axis neighbour-cell search with `if`s
//   kCopysign       the `if` in the search replaced by branch-free selects
//   kSimdReflect    the unit-cell search done for all three axes at once
//                   with SIMD intrinsics (the big, >1.5x win)
//   kSimdDirection  the direction-vector computation SIMDised (~21%)
//   kSimdLength     the length calculation SIMDised (~15%)
//   kSimdAccel      the force-to-acceleration conversion SIMDised (~3%,
//                   small because so few tested pairs interact)
//
// Every variant computes bit-identical single-precision physics; they differ
// only in the operation mix they issue, which is recorded into SpeWork and
// priced by SpeOpCosts.  The kernel reads positions from, and writes
// accelerations to, the SPE local store; each atom's potential-energy
// contribution rides back in the w component of its acceleration quadword.
#pragma once

#include <cstdint>

#include "cellsim/cost_model.h"
#include "cellsim/local_store.h"
#include "core/vec4.h"
#include "md/force_kernel.h"

namespace emdpa::cell {

enum class SimdVariant : int {
  kOriginal = 0,
  kCopysign = 1,
  kSimdReflect = 2,
  kSimdDirection = 3,
  kSimdLength = 4,
  kSimdAccel = 5,
};

const char* to_string(SimdVariant v);

/// All six variants, in staircase order (for Fig 5 sweeps).
inline constexpr SimdVariant kAllSimdVariants[] = {
    SimdVariant::kOriginal,      SimdVariant::kCopysign,
    SimdVariant::kSimdReflect,   SimdVariant::kSimdDirection,
    SimdVariant::kSimdLength,    SimdVariant::kSimdAccel,
};

/// Scalar parameters compiled into the SPE program (the constants the PPE
/// embeds in the thread's argument block).
struct SpeKernelParams {
  float box_edge = 0;
  float cutoff_sq = 0;
  float epsilon = 1;
  float sigma = 1;
  float inv_mass = 1;
  std::uint32_t n_atoms = 0;
  std::uint32_t i_begin = 0;  ///< first atom this SPE is responsible for
  std::uint32_t i_end = 0;    ///< one past the last
};

struct SpeKernelResult {
  SpeWork work;          ///< dynamic op counts, priced by SpeOpCosts
  md::PairStats stats;   ///< candidates / interacting pairs observed
};

/// Run the acceleration kernel for atoms [i_begin, i_end) against all
/// n_atoms positions.  `positions` and `accel_out` are LS-resident arrays of
/// n_atoms Vec4f quadwords (positions' w ignored; accel w receives the
/// atom's PE contribution).  Positions must be wrapped into the box.
SpeKernelResult run_spe_accel_kernel(SimdVariant variant,
                                     const SpeKernelParams& params,
                                     LocalStore& ls, LsAddr positions,
                                     LsAddr accel_out);

/// Tiled flavour for the streaming data layout: process the owned atoms
/// [i_begin, i_end) (positions resident at `positions_own`, own-slice
/// indexing) against one DMA-streamed tile of `tile_count` atoms whose
/// global indices start at `tile_begin` (`positions_tile`).  Partial
/// accelerations accumulate in `accel_slice` ((i_end - i_begin) entries):
/// zeroed when `first_tile`, read-modified-written otherwise.  Iterating
/// tiles in ascending order reproduces the resident kernel bit-exactly.
SpeKernelResult run_spe_accel_kernel_tile(
    SimdVariant variant, const SpeKernelParams& params, LocalStore& ls,
    LsAddr positions_own, LsAddr positions_tile, std::uint32_t tile_begin,
    std::uint32_t tile_count, LsAddr accel_slice, bool first_tile);

}  // namespace emdpa::cell
