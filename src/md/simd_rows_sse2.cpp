// SSE2 row kernels.  Built with -msse2 -ffp-contract=off; reports "absent"
// when the compiler could not target SSE2 (non-x86 builds).
#include "md/simd_rows_impl.h"

namespace emdpa::md::simd_kernels::detail {

#if defined(__SSE2__)
const KernelRows* rows_sse2() {
  static const KernelRows table = make_rows<simd::SimdType::kSse2>();
  return &table;
}
#else
const KernelRows* rows_sse2() { return nullptr; }
#endif

}  // namespace emdpa::md::simd_kernels::detail
