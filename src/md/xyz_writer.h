// XYZ trajectory output: the simplest widely-read MD trajectory format
// (frame = atom count line, comment line, then one "El x y z" line per atom).
#pragma once

#include <ostream>
#include <string>

#include "md/particle_system.h"

namespace emdpa::md {

class XyzWriter {
 public:
  /// Writes frames to `out` (must outlive the writer).  `element` is the
  /// symbol emitted for every atom (single-species systems).
  explicit XyzWriter(std::ostream& out, std::string element = "Ar");

  /// Append one frame with the given comment line (newlines stripped).
  void write_frame(const ParticleSystem& system, const std::string& comment);

  std::size_t frames_written() const { return frames_; }

 private:
  std::ostream& out_;
  std::string element_;
  std::size_t frames_ = 0;
};

}  // namespace emdpa::md
