// Measured per-step work of the section-3.4 pairlist trade-off, in the
// directed units the device cost models price.
//
// The paper's ports all compute distances on the fly because the streaming
// architectures cannot exploit a neighbour pairlist ("updated every few
// simulation time steps") the way a cache machine can.  To model that trade
// concretely, each device family exposes an analytic pairlist variant of its
// force-loop price (opteron_pairlist.h, mta_pairlist.h, cell_pairlist.h,
// gpu_pairlist.h); they all consume the same measured workload description
// produced here, so the four families are compared on identical physics.
//
// Counts are *directed* ((i,j) and (j,i) both counted), matching the device
// models' convention of pricing loops that visit each pair from both ends;
// see the PairStats contract in force_kernel.h.
#pragma once

#include <cstddef>

#include "md/force_kernel.h"
#include "md/workload.h"

namespace emdpa::md {

/// Per-step force work of one workload, measured by running the real
/// neighbour-list kernel under velocity-Verlet for a short horizon.
struct PairlistStepWork {
  std::size_t n_atoms = 0;
  double skin = 0;                 ///< list shell radius beyond the cutoff
  double steps_measured = 0;       ///< horizon the averages come from

  /// Distance tests per step of the on-the-fly N^2 loop: N*(N-1).
  double candidates_directed = 0;
  /// Directed within-cutoff pairs per force evaluation (average).
  double interacting_directed = 0;
  /// Directed pairlist entries walked per force evaluation (average; the
  /// cutoff+skin shell, excluding SIMD padding).
  double list_entries_directed = 0;
  /// Directed distance tests one list build performs (cell-grid sweep,
  /// average over the builds observed).
  double build_tests_directed = 0;
  /// Force evaluations per list rebuild (the amortisation denominator for
  /// build costs; > 1 whenever the skin buys any reuse).
  double rebuild_period_steps = 1;
};

/// Run `steps` velocity-Verlet steps of `workload` with the parallel
/// neighbour-list kernel at `skin` and return the averaged work counts.
/// Deterministic: serial kernel, fixed workload seed.
PairlistStepWork measure_pairlist_step_work(const WorkloadSpec& workload,
                                            const LjParams& lj, double skin,
                                            double dt, int steps);

}  // namespace emdpa::md
