// Structure-of-arrays particle state.
//
// Host-side state is double precision; device backends convert to their
// native precision at the boundary (the paper runs single precision on Cell
// and GPU, double on MTA-2 and the Opteron).
#pragma once

#include <cstddef>
#include <vector>

#include "core/vec3.h"

namespace emdpa::md {

template <typename Real>
class ParticleSystemT {
 public:
  ParticleSystemT() = default;

  /// Create `n` particles at the origin with zero velocity and unit mass.
  explicit ParticleSystemT(std::size_t n)
      : positions_(n), velocities_(n), accelerations_(n), mass_(Real(1)) {}

  std::size_t size() const { return positions_.size(); }
  bool empty() const { return positions_.empty(); }

  std::vector<emdpa::Vec3<Real>>& positions() { return positions_; }
  const std::vector<emdpa::Vec3<Real>>& positions() const { return positions_; }

  std::vector<emdpa::Vec3<Real>>& velocities() { return velocities_; }
  const std::vector<emdpa::Vec3<Real>>& velocities() const { return velocities_; }

  std::vector<emdpa::Vec3<Real>>& accelerations() { return accelerations_; }
  const std::vector<emdpa::Vec3<Real>>& accelerations() const { return accelerations_; }

  /// All particles share one mass (the paper's kernel is a single-species
  /// LJ fluid in reduced units; mass is 1 there).
  Real mass() const { return mass_; }
  void set_mass(Real m);

  /// Convert the full state to another precision.
  template <typename Other>
  ParticleSystemT<Other> cast() const {
    ParticleSystemT<Other> out(size());
    for (std::size_t i = 0; i < size(); ++i) {
      out.positions()[i] = emdpa::vec_cast<Other>(positions_[i]);
      out.velocities()[i] = emdpa::vec_cast<Other>(velocities_[i]);
      out.accelerations()[i] = emdpa::vec_cast<Other>(accelerations_[i]);
    }
    out.set_mass(static_cast<Other>(mass_));
    return out;
  }

 private:
  std::vector<emdpa::Vec3<Real>> positions_;
  std::vector<emdpa::Vec3<Real>> velocities_;
  std::vector<emdpa::Vec3<Real>> accelerations_;
  Real mass_{1};
};

using ParticleSystem = ParticleSystemT<double>;
using ParticleSystemF = ParticleSystemT<float>;

}  // namespace emdpa::md
