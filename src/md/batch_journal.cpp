#include "md/batch_journal.h"

#include <sstream>

#include "core/error.h"
#include "core/fault_injection.h"

namespace emdpa::md {

namespace {

const char* event_word(JournalEvent event) {
  switch (event) {
    case JournalEvent::kAdmit: return "admit";
    case JournalEvent::kSlice: return "slice";
    case JournalEvent::kRetry: return "retry";
    case JournalEvent::kQuarantine: return "quarantine";
    case JournalEvent::kDone: return "done";
    case JournalEvent::kFail: return "fail";
    case JournalEvent::kInterrupt: return "interrupt";
  }
  return "unknown";
}

/// Reasons ride in the journal's single-line payloads; squash any newline a
/// nested error message could carry.
std::string one_line(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

}  // namespace

std::string encode_journal_record(const JournalRecord& record) {
  std::ostringstream os;
  os << event_word(record.event);
  switch (record.event) {
    case JournalEvent::kAdmit:
      os << " " << record.job << " priority " << record.priority;
      break;
    case JournalEvent::kSlice:
      os << " " << record.job << " steps " << record.steps;
      if (record.slices != 1) os << " slices " << record.slices;
      break;
    case JournalEvent::kRetry:
      os << " " << record.job << " attempt " << record.attempt << " delay "
         << record.delay << " " << one_line(record.detail);
      break;
    case JournalEvent::kQuarantine:
      os << " " << record.job << " attempts " << record.attempt << " "
         << one_line(record.detail);
      break;
    case JournalEvent::kDone:
      os << " " << record.job << " steps " << record.steps;
      break;
    case JournalEvent::kFail:
      os << " " << record.job << " attempt " << record.attempt << " "
         << one_line(record.detail);
      break;
    case JournalEvent::kInterrupt:
      break;
  }
  return os.str();
}

bool parse_journal_record(const std::string& payload, JournalRecord* record) {
  std::istringstream is(payload);
  std::string word;
  if (!(is >> word)) return false;
  *record = JournalRecord{};

  const auto read_key = [&](const char* key, auto* value) {
    std::string k;
    return static_cast<bool>(is >> k) && k == key &&
           static_cast<bool>(is >> *value);
  };
  const auto read_rest = [&](std::string* out) {
    std::string rest;
    std::getline(is, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    *out = rest;
  };

  if (word == "admit") {
    record->event = JournalEvent::kAdmit;
    return static_cast<bool>(is >> record->job) &&
           read_key("priority", &record->priority);
  }
  if (word == "slice") {
    record->event = JournalEvent::kSlice;
    if (!(is >> record->job) || !read_key("steps", &record->steps)) {
      return false;
    }
    std::string key;
    if (is >> key) {  // optional compaction-snapshot slice count
      if (key != "slices" || !(is >> record->slices)) return false;
    }
    return true;
  }
  if (word == "done") {
    record->event = JournalEvent::kDone;
    return static_cast<bool>(is >> record->job) &&
           read_key("steps", &record->steps);
  }
  if (word == "retry") {
    record->event = JournalEvent::kRetry;
    if (!(is >> record->job) || !read_key("attempt", &record->attempt) ||
        !read_key("delay", &record->delay)) {
      return false;
    }
    read_rest(&record->detail);
    return true;
  }
  if (word == "quarantine") {
    record->event = JournalEvent::kQuarantine;
    if (!(is >> record->job) || !read_key("attempts", &record->attempt)) {
      return false;
    }
    read_rest(&record->detail);
    return true;
  }
  if (word == "fail") {
    record->event = JournalEvent::kFail;
    if (!(is >> record->job) || !read_key("attempt", &record->attempt)) {
      return false;
    }
    read_rest(&record->detail);
    return true;
  }
  if (word == "interrupt") {
    record->event = JournalEvent::kInterrupt;
    return true;
  }
  return false;
}

BatchJournal::BatchJournal(std::string path, std::uint64_t max_segment_bytes)
    : path_(std::move(path)), max_segment_bytes_(max_segment_bytes) {
  EMDPA_REQUIRE(!path_.empty(), "journal: path must not be empty");
  EMDPA_REQUIRE(max_segment_bytes_ > 0,
                "journal: segment size bound must be positive");
}

BatchJournal::~BatchJournal() = default;

BatchJournal::Replay BatchJournal::replay() const {
  Replay replay;
  const WalReplay wal = read_wal(path_);
  replay.torn_tail = wal.truncated;
  for (const std::string& payload : wal.records) {
    JournalRecord record;
    // An unparseable (but CRC-clean) payload means a foreign or future
    // format: skip it rather than poison the whole replay.
    if (!parse_journal_record(payload, &record)) continue;
    ++replay.records;
    if (record.event == JournalEvent::kInterrupt) {
      replay.interrupted = true;
      continue;
    }
    replay.interrupted = false;  // a later record means the batch resumed
    ReplayedJob& job = replay.jobs[record.job];
    job.last_event = replay.records;
    switch (record.event) {
      case JournalEvent::kAdmit:
        break;
      case JournalEvent::kSlice:
        job.steps_done = record.steps;
        job.slices += record.slices;
        job.retrying = false;
        break;
      case JournalEvent::kRetry:
        job.attempts = record.attempt;
        job.retrying = true;
        job.retry_delay = record.delay;
        job.detail = record.detail;
        break;
      case JournalEvent::kQuarantine:
        job.status = JobStatus::kQuarantined;
        job.attempts = record.attempt;
        job.retrying = false;
        job.detail = record.detail;
        break;
      case JournalEvent::kDone:
        job.status = JobStatus::kCompleted;
        job.steps_done = record.steps;
        job.retrying = false;
        break;
      case JournalEvent::kFail:
        job.status = JobStatus::kFailed;
        job.attempts = record.attempt;
        job.retrying = false;
        job.detail = record.detail;
        break;
      case JournalEvent::kInterrupt:
        break;
    }
  }
  return replay;
}

void BatchJournal::open_for_append() {
  writer_ = std::make_unique<WalWriter>(path_);
}

void BatchJournal::record(const JournalRecord& record) {
  EMDPA_REQUIRE(writer_ != nullptr,
                "journal: open_for_append() before record()");
  try {
    // Injection site md.wal_io: an EIO on the journal append.  The proven
    // recovery is degradation, not abort — supervision state on disk lags
    // until the next successful append, and replay reconciles the gap from
    // the checkpoint/marker ground truth.
    if (fault::injected("md.wal_io")) {
      throw RuntimeFailure("journal: injected EIO appending to '" + path_ +
                           "'");
    }
    writer_->append(encode_journal_record(record));
    durable_ = true;
  } catch (const RuntimeFailure&) {
    ++append_failures_;
    durable_ = false;
  }
}

bool BatchJournal::over_segment_bound() const {
  return writer_ != nullptr && writer_->size_bytes() > max_segment_bytes_;
}

void BatchJournal::compact(const std::vector<JournalRecord>& snapshot) {
  if (writer_ == nullptr) return;
  std::vector<std::string> payloads;
  payloads.reserve(snapshot.size());
  for (const JournalRecord& record : snapshot) {
    payloads.push_back(encode_journal_record(record));
  }
  try {
    if (fault::injected("md.wal_io")) {
      throw RuntimeFailure("journal: injected EIO rotating '" + path_ + "'");
    }
    writer_->rewrite(payloads);
  } catch (const RuntimeFailure&) {
    // Rotation is an optimisation; the unrotated segment is still valid.
    ++append_failures_;
    durable_ = false;
  }
}

}  // namespace emdpa::md
