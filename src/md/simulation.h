// High-level simulation facade.
//
// Composes the library's pieces — workload, periodic box, LJ force kernel,
// optional bonded topology, optional thermostat, velocity-Verlet — behind
// one object with step/run/observe/checkpoint operations.  The lower-level
// pieces remain the public API for anyone who needs control (the device
// backends use them directly); Simulation is the convenient front door the
// examples use.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>

#include "md/angles.h"
#include "md/bonded.h"
#include "md/force_kernel.h"
#include "md/integrator.h"
#include "md/langevin.h"
#include "md/minimize.h"
#include "md/thermostat.h"
#include "md/workload.h"

namespace emdpa::md {

class Simulation {
 public:
  struct Options {
    WorkloadSpec workload;
    LjParams lj{};
    double dt = 0.005;
    /// Use the O(N) cell-list kernel instead of the paper's N^2 kernel.
    bool use_cell_list = false;
  };

  explicit Simulation(const Options& options);

  /// Restore from a checkpoint stream written by save().  The LJ/dt options
  /// must be supplied again (they are simulation parameters, not state).
  static Simulation resume(std::istream& checkpoint, const Options& options);

  const ParticleSystem& system() const { return system_; }
  ParticleSystem& system() { return system_; }
  const PeriodicBox& box() const { return box_; }
  long current_step() const { return step_; }
  const StepEnergies& last_energies() const { return last_energies_; }

  /// Attach harmonic bonds (their forces are added to the LJ forces).
  void set_bonds(BondTopology bonds);

  /// Attach harmonic angles (forces added alongside bonds and LJ).
  void set_angles(AngleTopology angles);

  /// Attach (or replace) a thermostat applied after every step.  The two
  /// flavours are mutually exclusive; setting one clears the other.
  void set_thermostat(const BerendsenThermostat& thermostat);
  void set_thermostat(LangevinThermostat thermostat);
  void clear_thermostat();

  /// Relax the positions toward a local energy minimum using the full force
  /// field (LJ + any attached bonds), then re-prime the integrator.
  MinimizeResult minimize(const MinimizeOptions& options = {});

  /// Advance one step; returns the post-step energies (bonded PE included).
  StepEnergies step();

  /// Advance `steps` steps, invoking `observer` (if given) after each.
  using Observer = std::function<void(long step, const StepEnergies&)>;
  void run(int steps, const Observer& observer = {});

  /// Serialise the full state.
  void save(std::ostream& out) const;

 private:
  Simulation(ParticleSystem system, PeriodicBox box, long step,
             const Options& options);
  void prime();
  void rebuild_composite();

  PeriodicBox box_;
  ParticleSystem system_;
  LjParams lj_;
  VelocityVerlet integrator_;
  std::unique_ptr<ForceKernel> lj_kernel_;
  std::unique_ptr<ForceKernel> composite_;  ///< LJ + bonds/angles, if any
  std::optional<BondTopology> bonds_;
  std::optional<AngleTopology> angles_;
  std::optional<BerendsenThermostat> thermostat_;
  std::optional<LangevinThermostat> langevin_;
  StepEnergies last_energies_{};
  long step_ = 0;
};

}  // namespace emdpa::md
