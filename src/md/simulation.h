// High-level simulation facade.
//
// Composes the library's pieces — workload, periodic box, LJ force kernel,
// optional bonded topology, optional thermostat, velocity-Verlet — behind
// one object with step/run/observe/checkpoint operations.  The lower-level
// pieces remain the public API for anyone who needs control (the device
// backends use them directly); Simulation is the convenient front door the
// examples and the host-parallel backend use.
//
// The force evaluation under the integrator is pluggable (SimKernel): the
// scalar reference kernel, the O(N) cell-list kernel, the SoA/SIMD N^2
// batch kernel, or the pool-parallel neighbour-list path whose skin logic
// pays off precisely across the timesteps this loop drives.  kAuto picks
// the host execution layer's fast path for the workload size.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>

#include "core/thread_pool.h"
#include "md/angles.h"
#include "md/backend.h"
#include "md/bonded.h"
#include "md/checkpoint.h"
#include "md/force_kernel.h"
#include "md/health.h"
#include "md/integrator.h"
#include "md/langevin.h"
#include "md/minimize.h"
#include "md/parallel_neighbor.h"
#include "md/precision.h"
#include "md/thermostat.h"
#include "md/workload.h"

namespace emdpa::md {

/// Which LJ force kernel drives the simulation loop.  kAuto resolves at
/// construction: the SoA N^2 batch kernel below the host layer's measured
/// list crossover (HostParallelBackend::kListCrossoverAtoms) and the
/// parallel neighbour-list path at or above it.
enum class SimKernel {
  kAuto,
  kReference,
  kCellList,
  kSoaN2,
  kNeighborList,
  kShardedList,
};

const char* to_string(SimKernel kernel);

/// Map the backend-facing HostKernel choice (--kernel) onto the simulation
/// seam: auto -> kAuto, n2 -> kSoaN2, list -> kNeighborList.
SimKernel to_sim_kernel(HostKernel kernel);

struct RunConfig;

class Simulation {
 public:
  struct Options {
    WorkloadSpec workload;
    LjParams lj{};
    double dt = 0.005;
    /// Legacy switch, honoured only with kernel == kAuto (resolves to
    /// kCellList); combining it with another explicit kernel throws.
    bool use_cell_list = false;
    /// Force-kernel strategy for every evaluation (prime, step, minimize).
    SimKernel kernel = SimKernel::kAuto;
    /// Neighbour-list skin radius (the list kernels only).
    double skin = 0.3;
    /// Requested spatial shard count for the neighbour-list build (>0
    /// selects the sharded path, md/sharded_domain.h): with kAuto or
    /// kNeighborList the kernel resolves to kShardedList; combining it with
    /// any other explicit kernel throws.  The realised count may be lower
    /// when slabs would be thinner than the list cutoff.  0 = flat list.
    std::size_t shards = 0;
    /// Neighbour-list staleness policy; tests inject kNeverRebuild to prove
    /// the displacement check matters.  (kNeighborList only.)
    SkinPolicy skin_policy = SkinPolicy::kHalfSkinDisplacement;
    /// Pool for the SoA/list kernels' row parallelism; nullptr runs serial.
    /// Results are bitwise identical at any thread count either way.
    ThreadPool* pool = nullptr;
    /// Numeric precision of the LJ fast path (md/precision.h): dp runs
    /// double end to end, sp runs the float kernels behind a narrowing
    /// adapter, mixed narrows the lane math but accumulates in double.
    /// Only the SIMD kernels (kSoaN2 / kNeighborList, or kAuto which
    /// resolves to one of them) support non-dp; combining sp/mixed with
    /// kReference or kCellList throws at construction.
    PrecisionMode precision = PrecisionMode::kDouble;
    /// Force the SIMD instruction set of the fast-path kernels (throws at
    /// construction when it cannot run here); empty resolves the EMDPA_SIMD
    /// environment override, then the fastest this CPU supports.
    std::optional<simd::SimdType> simd_isa;
    /// Numerical-health watchdog (md/health.h): engaged when set, consulted
    /// every policy.check_every steps after the step completes.  Violations
    /// raise NumericalFailure with step/kernel context.
    std::optional<HealthPolicy> health;
    /// When a step fails under the neighbour-list kernel (injected rebuild
    /// fault, or a watchdog violation while the state is still finite),
    /// restore the pre-step state and fall back to the reference N^2 kernel
    /// for the remainder of the run instead of aborting.
    bool degrade_to_reference = false;
    /// Resume normally fails loudly when the checkpoint records a different
    /// kernel/precision/ISA than this run resolves to (the arithmetic would
    /// silently change and break the bitwise-resume guarantee).  True skips
    /// the check — an explicit operator decision (--resume-force).
    bool ignore_checkpoint_config = false;
  };

  explicit Simulation(const Options& options);

  /// Restore from a checkpoint stream written by save().  The LJ/dt options
  /// must be supplied again (they are simulation parameters, not state).
  static Simulation resume(std::istream& checkpoint, const Options& options);

  /// Restore from an already-parsed checkpoint (e.g. via CheckpointManager's
  /// verified, fallback-aware load).  Version-2+ checkpoints carry the
  /// stored potential energy, so the restored accelerations are trusted as
  /// the primed state and NO re-priming force evaluation runs — the property
  /// that makes a resumed run continue bit-identically.  Version-1
  /// checkpoints re-prime as before.
  ///
  /// When the checkpoint records its producing run's configuration (v3),
  /// the resolved kernel/precision/ISA of this resume must match it; any
  /// mismatch throws RuntimeFailure unless Options::ignore_checkpoint_config
  /// is set.  A recorded Langevin RNG state is held until the caller
  /// re-attaches a Langevin thermostat (set_thermostat), which then
  /// continues the checkpointed noise sequence instead of re-seeding.
  static Simulation resume(Checkpoint checkpoint, const Options& options);

  const ParticleSystem& system() const { return system_; }
  ParticleSystem& system() { return system_; }
  const PeriodicBox& box() const { return box_; }
  long current_step() const { return step_; }
  const StepEnergies& last_energies() const { return last_energies_; }

  /// The kernel kAuto resolved to (or the explicitly requested one).
  SimKernel kernel() const { return kernel_kind_; }
  /// Requested spatial shard count (Options::shards); 0 unless the run
  /// resolved to kShardedList.  Part of the checkpointed configuration: a
  /// resume under a different count fails loudly like any kernel mismatch.
  std::size_t shards() const { return shards_; }
  /// The driving LJ kernel's self-reported name (includes SIMD/thread info).
  std::string kernel_name() const;
  /// Precision mode the run was configured with (Options::precision).
  PrecisionMode precision() const { return precision_; }
  /// Instruction set the fast-path kernel dispatched to at construction;
  /// empty for the scalar kernels (reference, cell-list) and after a
  /// degrade-to-reference fallback.
  std::optional<simd::SimdType> simd_isa() const { return simd_isa_; }
  /// SIMD lane count the dispatched kernel executes per pack — a runtime
  /// property of the selected ISA, NOT the compile-time native width.
  /// 1 for the scalar kernels.
  std::size_t simd_width() const { return simd_width_; }
  /// Neighbour-list rebuilds so far; 0 for the stateless kernels.
  std::uint64_t list_rebuilds() const;
  /// Cumulative wall-clock seconds the neighbour-list builds spent binning
  /// (counting sort + stencil tables) and filling (distance sweep +
  /// compaction); 0 for the stateless kernels.  The host-parallel backend
  /// reports these as metadata keys list_build_bin_ms / list_build_fill_ms.
  double list_build_bin_seconds() const;
  double list_build_fill_seconds() const;
  /// Cumulative halo-packing seconds of the sharded list builds; 0 for
  /// every other kernel (the flat list has no halo phase).
  double list_build_halo_seconds() const;
  /// Integrator-driven LJ force evaluations so far (primes + steps; the
  /// minimizer's internal probes are not counted).
  std::uint64_t force_evaluations() const { return force_evaluations_; }
  /// True once a failure made the run fall back to the reference kernel
  /// (Options::degrade_to_reference).
  bool degraded() const { return degraded_; }
  /// Watchdog checks performed so far (0 when no health policy is set).
  std::uint64_t health_checks() const {
    return health_ ? health_->checks_run() : 0;
  }

  /// Attach harmonic bonds (their forces are added to the LJ forces).
  void set_bonds(BondTopology bonds);

  /// Attach harmonic angles (forces added alongside bonds and LJ).
  void set_angles(AngleTopology angles);

  /// Attach (or replace) a thermostat applied after every step.  The two
  /// flavours are mutually exclusive; setting one clears the other.
  void set_thermostat(const BerendsenThermostat& thermostat);
  void set_thermostat(LangevinThermostat thermostat);
  void clear_thermostat();

  /// Relax the positions toward a local energy minimum using the full force
  /// field (LJ + any attached bonds), then re-prime the integrator.
  MinimizeResult minimize(const MinimizeOptions& options = {});

  /// Advance one step; returns the post-step energies (bonded PE included).
  StepEnergies step();

  /// Advance `steps` steps, invoking `observer` (if given) after each.
  using Observer = std::function<void(long step, const StepEnergies&)>;
  void run(int steps, const Observer& observer = {});

  /// Serialise the full state (checkpoint format v3: potential energy,
  /// CRC-32 footer, the resolved kernel/precision/ISA configuration, and
  /// the Langevin thermostat RNG state when one is attached).  Non-const
  /// because saving is a bitwise synchronisation point: the neighbour list
  /// is invalidated so the continuing run and any future resume from this
  /// checkpoint both rebuild it from exactly the state written — the
  /// trajectories stay bit-identical.
  void save(std::ostream& out);

  /// Capture the full state as a Checkpoint WITHOUT perturbing the run — the
  /// trajectory store's seam.  Unlike save(), no neighbour-list invalidation
  /// happens; instead the checkpoint carries the live list's reference
  /// positions (v4 `listref` section), so a resume() from it reseeds the
  /// identical list and continues bit-exactly, while the observed run itself
  /// proceeds as if nothing was captured.  Store-enabled runs therefore stay
  /// bitwise identical to store-disabled runs.
  Checkpoint snapshot() const;

 private:
  /// `restored_potential` non-null restores a checkpointed state verbatim:
  /// the stored accelerations are the primed state, so prime() is skipped
  /// and *restored_potential supplies the potential energy.
  Simulation(ParticleSystem system, PeriodicBox box, long step,
             const Options& options, const double* restored_potential = nullptr);
  void prime();
  void rebuild_composite();
  /// Kernel token recorded in checkpoints: to_string(kernel_kind_), with
  /// the shard count appended ("sharded-list/4") for the sharded path so a
  /// resume under a different count is caught by the v3 config check.
  std::string config_kernel_token() const;
  StepEnergies step_once();
  void degrade_now();
  ForceKernel& active_kernel();

  PeriodicBox box_;
  ParticleSystem system_;
  LjParams lj_;
  VelocityVerlet integrator_;
  SimKernel kernel_kind_;                   ///< resolved, never kAuto
  std::size_t shards_ = 0;                  ///< see shards()
  PrecisionMode precision_ = PrecisionMode::kDouble;
  std::optional<simd::SimdType> simd_isa_;  ///< dispatched ISA; see simd_isa()
  std::size_t simd_width_ = 1;
  /// Non-owning control view of lj_kernel_ when it is one of the
  /// neighbour-list kernels (dp, sp or mixed): rebuild statistics plus the
  /// checkpoint-time invalidation sync point.  nullptr otherwise.
  NeighborListControl* list_control_ = nullptr;
  std::unique_ptr<ForceKernel> lj_kernel_;
  std::unique_ptr<ForceKernel> composite_;  ///< LJ + bonds/angles, if any
  std::optional<BondTopology> bonds_;
  std::optional<AngleTopology> angles_;
  std::optional<BerendsenThermostat> thermostat_;
  std::optional<LangevinThermostat> langevin_;
  /// Checkpointed Langevin RNG state awaiting re-attachment of the
  /// thermostat after a resume; consumed by set_thermostat(Langevin).
  std::optional<Rng::State> pending_langevin_rng_;
  std::optional<HealthMonitor> health_;
  bool degrade_enabled_ = false;
  bool degraded_ = false;
  StepEnergies last_energies_{};
  long step_ = 0;
  std::uint64_t force_evaluations_ = 0;
};

/// Map the backend-facing RunConfig onto Simulation options: workload, LJ
/// parameters, dt, kernel choice, precision, ISA, degrade flag, health
/// policy (drift_tolerance > 0) and the resume-force override.  One mapping
/// shared by the host-parallel backend, the job scheduler and the tests that
/// must construct bitwise-equivalent standalone runs.
Simulation::Options simulation_options_from(const RunConfig& config,
                                            ThreadPool* pool);

}  // namespace emdpa::md
