// AVX-512 row kernels (AVX-512F only; see core/simd/pack_avx512.h).  Built
// with -mavx512f -ffp-contract=off; reports "absent" when the compiler
// could not target AVX-512F, and the dispatcher additionally gates on the
// avx512f CPUID bit at runtime.
#include "md/simd_rows_impl.h"

namespace emdpa::md::simd_kernels::detail {

#if defined(__AVX512F__)
const KernelRows* rows_avx512() {
  static const KernelRows table = make_rows<simd::SimdType::kAvx512>();
  return &table;
}
#else
const KernelRows* rows_avx512() { return nullptr; }
#endif

}  // namespace emdpa::md::simd_kernels::detail
