// Workload construction: the synthetic bio-molecular systems every
// experiment runs on.
//
// The paper's experiments sweep atom counts (256 … 8192) of a generic LJ
// fluid.  We generate those systems deterministically: atoms on a simple
// cubic lattice at a given reduced density, Maxwell–Boltzmann velocities at a
// given reduced temperature with the centre-of-mass drift removed.  The same
// (n, density, temperature, seed) tuple always produces the bit-identical
// double-precision system, so every device backend starts from the same
// initial condition.
#pragma once

#include <cstdint>

#include "md/box.h"
#include "md/particle_system.h"

namespace emdpa::md {

struct WorkloadSpec {
  std::size_t n_atoms = 256;
  double density = 0.8442;      ///< reduced number density (LJ liquid standard)
  double temperature = 1.44;    ///< initial reduced temperature
  std::uint64_t seed = 20070326; ///< IPPS 2007 start date — arbitrary but fixed
};

struct Workload {
  ParticleSystem system;
  PeriodicBox box;
};

/// Edge length of the cubic box holding `n` atoms at `density`.
double box_edge_for(std::size_t n, double density);

/// Build the standard workload: simple cubic lattice positions (first
/// `n_atoms` sites of the smallest lattice that fits), Maxwell–Boltzmann
/// velocities at `temperature` with zero total momentum, velocities rescaled
/// so the instantaneous temperature is exact.
Workload make_lattice_workload(const WorkloadSpec& spec);

/// Build a random-gas workload: uniformly random positions subject to a
/// minimum pair separation (rejection sampling), same velocity setup.  Used
/// by property tests to decouple results from lattice symmetry.
///
/// min_separation should be modest (≲ 0.8 of the mean spacing) or placement
/// may fail; failure throws RuntimeFailure after a bounded number of tries.
Workload make_random_gas_workload(const WorkloadSpec& spec, double min_separation);

/// Assign Maxwell–Boltzmann velocities at `temperature` to an existing
/// system: Gaussian components, centre-of-mass momentum removed, then
/// rescaled to the exact target temperature.  No-op for systems of < 2 atoms.
void assign_thermal_velocities(ParticleSystem& system, double temperature,
                               std::uint64_t seed);

}  // namespace emdpa::md
