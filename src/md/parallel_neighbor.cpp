#include "md/parallel_neighbor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "core/error.h"
#include "core/fault_injection.h"
#include "md/list_build_util.h"

namespace emdpa::md {

using listutil::padded_count;
using listutil::seconds_since;

const char* to_string(SkinPolicy policy) {
  switch (policy) {
    case SkinPolicy::kHalfSkinDisplacement: return "half-skin-displacement";
    case SkinPolicy::kNeverRebuild: return "never-rebuild";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ParallelNeighborListT
// ---------------------------------------------------------------------------

template <typename Real>
ParallelNeighborListT<Real>::ParallelNeighborListT(Real skin, ThreadPool* pool,
                                                   std::size_t grain,
                                                   SkinPolicy policy)
    : skin_(skin), pool_(pool), grain_(grain), policy_(policy) {
  EMDPA_REQUIRE(skin >= Real(0), "skin must be non-negative");
}

template <typename Real>
void ParallelNeighborListT<Real>::run_rows(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) const {
  run_span(n, grain_, body);
}

template <typename Real>
void ParallelNeighborListT<Real>::run_span(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) const {
  if (pool_ != nullptr) {
    pool_->parallel_for(0, n, grain, body);
  } else {
    body(0, n);
  }
}

template <typename Real>
bool ParallelNeighborListT<Real>::needs_rebuild(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, Real cutoff) const {
  if (build_positions_.size() != positions.size()) return true;
  // A list built for one cutoff silently drops interactions at a larger one
  // — invalidate on ANY cutoff (or box) change, not just growth.
  if (cutoff != build_cutoff_ || box.edge() != build_edge_) return true;
  if (policy_ == SkinPolicy::kNeverRebuild) return false;  // broken on purpose
  // Valid while no atom moved more than half the skin since the build: two
  // atoms approaching from opposite sides close at most `skin` total.
  const Real limit_sq = (skin_ / Real(2)) * (skin_ / Real(2));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto dr = box.min_image(positions[i] - build_positions_[i]);
    if (length_squared(dr) > limit_sq) return true;
  }
  return false;
}

template <typename Real>
bool ParallelNeighborListT<Real>::ensure(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, Real cutoff) {
  if (!needs_rebuild(positions, box, cutoff)) return false;
  build(positions, box, cutoff);
  return true;
}

template <typename Real>
void ParallelNeighborListT<Real>::build_all_pairs(
    const std::vector<emdpa::Vec3<Real>>& wrapped,
    const PeriodicBoxT<Real>& box) {
  listutil::build_all_pairs_csr<Real>(
      wrapped, box, list_cutoff_sq_,
      [this](std::size_t n,
             const std::function<void(std::size_t, std::size_t)>& body) {
        run_rows(n, body);
      },
      row_begin_, entries_, row_count_, directed_entries_,
      build_distance_tests_);
}

template <typename Real>
void ParallelNeighborListT<Real>::bin_atoms(std::size_t n, std::size_t cells,
                                            std::size_t n_cells,
                                            double inv_cell) {
  // The three passes live in list_build_util.h, SHARED with the sharded
  // build — one copy of the stable counting sort is what makes "sharded CSR
  // == flat CSR" provable rather than merely tested.
  (void)n;
  auto run = [this](std::size_t count, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body) {
    run_span(count, grain, body);
  };
  listutil::bin_pass_histogram(wrapped_, cells, n_cells, inv_cell, run,
                               cell_of_atom_, bin_hist_);
  listutil::bin_merge_scatter(wrapped_.size(), n_cells, run, cell_of_atom_,
                              bin_hist_, cell_start_, cell_atoms_);
}

template <typename Real>
void ParallelNeighborListT<Real>::populate_stencil(std::size_t cells,
                                                   std::size_t range) {
  auto run = [this](std::size_t count, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body) {
    run_span(count, grain, body);
  };
  listutil::populate_stencil(cells, range, run, cell_start_, stencil_pop_,
                             stencil_tmp_);
}

template <typename Real>
void ParallelNeighborListT<Real>::build(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, Real cutoff) {
  if (fault::injected("md.list_build")) {
    // Leave the list invalidated so a degraded-then-retried evaluation (or a
    // later healthy step) starts from a clean rebuild, not a half-built CSR.
    invalidate();
    throw RuntimeFailure("neighbour list: injected rebuild failure");
  }
  const std::size_t n = positions.size();
  const Real list_cutoff = cutoff + skin_;
  list_cutoff_sq_ = list_cutoff * list_cutoff;
  build_cutoff_ = cutoff;
  build_edge_ = box.edge();
  build_positions_ = positions;
  directed_entries_ = 0;
  build_distance_tests_ = 0;
  last_bin_seconds_ = 0;
  last_fill_seconds_ = 0;
  ++rebuilds_;

  const auto t_start = std::chrono::steady_clock::now();
  wrapped_.resize(n);
  run_rows(n, [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      wrapped_[i] = box.wrap(positions[i]);
    }
  });

  if (n == 0) {
    row_begin_.assign(1, 0);
    entries_.clear();
    return;
  }

  // Cell edge targets HALF the list radius: cutoff-sized cells sweep the
  // classic 27-cell stencil, ~16x the volume of the list sphere, while a
  // radius-2 stencil over half-sized cells sweeps ~6x — far fewer wasted
  // distance tests per build.  `range` is however many cells it takes to
  // cover the list radius at the realised cell edge.
  const double edge = static_cast<double>(box.edge());
  auto cells_ll =
      static_cast<long long>(edge / (static_cast<double>(list_cutoff) * 0.5));
  if (cells_ll < 1) cells_ll = 1;
  const auto cells = static_cast<std::size_t>(cells_ll);
  const double cell_edge = edge / static_cast<double>(cells);
  const auto range = static_cast<long long>(
      std::ceil(static_cast<double>(list_cutoff) / cell_edge));
  const std::size_t width = static_cast<std::size_t>(2 * range + 1);
  if (width > cells) {
    // Box too small for a proper stencil (wrap-around would visit a cell
    // twice and duplicate entries): O(N^2) build instead.  All of it counts
    // as fill — there is no binning phase to speak of.
    last_bin_seconds_ = seconds_since(t_start);
    bin_seconds_total_ += last_bin_seconds_;
    const auto t_fill = std::chrono::steady_clock::now();
    build_all_pairs(wrapped_, box);
    last_fill_seconds_ = seconds_since(t_fill);
    fill_seconds_total_ += last_fill_seconds_;
    return;
  }

  // Pool-parallel stable counting sort into cells (per-chunk histograms +
  // prefix-merge + scatter).  Atoms stay in index order within each cell,
  // which makes the sweep order (and so the list) independent of thread
  // count.
  const double inv_cell = static_cast<double>(cells) / edge;
  const std::size_t n_cells = cells * cells * cells;
  bin_atoms(n, cells, n_cells, inv_cell);

  // Per-axis wrapped stencil indices (shared with the sharded build).
  listutil::fill_stencil_axis(cells, static_cast<std::size_t>(range),
                              stencil_axis_);

  // Stencil population per cell.  Every atom in a cell sweeps exactly the
  // atoms of that cell's stencil (minus itself), so this is the EXACT
  // per-row distance-test count — which lets the single sweep below write
  // hits straight into disjoint scratch ranges with no counting pass.
  // Computed separably: one 1-D wrap-around window pass per axis.
  populate_stencil(cells, static_cast<std::size_t>(range));

  // Exact scratch CSR offsets (serial prefix — deterministic, so the sweep's
  // output layout is independent of thread count).
  scratch_begin_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    scratch_begin_[i + 1] =
        scratch_begin_[i] + stencil_pop_[cell_of_atom_[i]] - 1;  // minus self
  }
  build_distance_tests_ = scratch_begin_[n];
  scratch_entries_.resize(scratch_begin_[n]);

  last_bin_seconds_ = seconds_since(t_start);
  bin_seconds_total_ += last_bin_seconds_;
  const auto t_fill = std::chrono::steady_clock::now();

  // The single distance sweep: unlike the classic count-then-fill scheme it
  // pays each distance test exactly once (matching what the device cost
  // models price), writing hits into the row's scratch range in one fixed
  // order — stencil cells in table order, atoms within a cell in index
  // order — so the list contents are a pure function of the inputs.
  row_count_.assign(n, 0);
  run_rows(n, [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      const std::size_t cx = listutil::axis_cell(wrapped_[i].x, inv_cell, cells);
      const std::size_t cy = listutil::axis_cell(wrapped_[i].y, inv_cell, cells);
      const std::size_t cz = listutil::axis_cell(wrapped_[i].z, inv_cell, cells);
      std::uint64_t slot = scratch_begin_[i];
      for (std::size_t kx = 0; kx < width; ++kx) {
        const std::size_t px = stencil_axis_[cx * width + kx];
        for (std::size_t ky = 0; ky < width; ++ky) {
          const std::size_t py = stencil_axis_[cy * width + ky];
          const std::size_t row = (px * cells + py) * cells;
          for (std::size_t kz = 0; kz < width; ++kz) {
            const std::size_t c = row + stencil_axis_[cz * width + kz];
            for (std::uint32_t s = cell_start_[c]; s < cell_start_[c + 1];
                 ++s) {
              const std::uint32_t j = cell_atoms_[s];
              if (j == static_cast<std::uint32_t>(i)) continue;
              const auto dr = box.min_image(wrapped_[i] - wrapped_[j]);
              if (length_squared(dr) < list_cutoff_sq_) {
                scratch_entries_[slot++] = j;
              }
            }
          }
        }
      }
      row_count_[i] = static_cast<std::uint32_t>(slot - scratch_begin_[i]);
    }
  });

  // Serial prefix sum over SIMD-padded row extents.
  row_begin_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    row_begin_[i + 1] = row_begin_[i] + padded_count<Real>(row_count_[i]);
    directed_entries_ += row_count_[i];
  }

  // Compaction: copy each scratch row into its padded slot range.  Pure
  // data movement, no distance math.
  entries_.resize(row_begin_[n]);
  run_rows(n, [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      const std::uint32_t* src = scratch_entries_.data() + scratch_begin_[i];
      std::uint32_t slot = row_begin_[i];
      for (std::uint32_t k = 0; k < row_count_[i]; ++k) {
        entries_[slot++] = src[k];
      }
      for (; slot < row_begin_[i + 1]; ++slot) {
        entries_[slot] = static_cast<std::uint32_t>(i);  // self pad, r2 == 0
      }
    }
  });

  last_fill_seconds_ = seconds_since(t_fill);
  fill_seconds_total_ += last_fill_seconds_;
}

template class ParallelNeighborListT<double>;
template class ParallelNeighborListT<float>;

}  // namespace emdpa::md
