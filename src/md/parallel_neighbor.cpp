#include "md/parallel_neighbor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <type_traits>

#include "core/error.h"
#include "core/fault_injection.h"

namespace emdpa::md {

namespace {

/// Round `count` up to a whole number of 64-byte accumulation blocks — the
/// ISA-independent padding unit (see the header comment).
template <typename Real>
constexpr std::uint32_t padded_count(std::uint32_t count) {
  constexpr auto w = static_cast<std::uint32_t>(simd::block_lanes<Real>());
  return (count + w - 1) / w * w;
}

/// Atoms per histogram chunk in the parallel counting sort.  The chunk
/// decomposition is a function of N ONLY — never the thread count — because
/// the scatter pass routes each chunk's atoms through per-chunk cursors and
/// the resulting stable order must not depend on how many workers ran.  The
/// cap bounds the bin_hist_ footprint (chunks * cells) for huge systems.
constexpr std::size_t kBinChunkAtoms = 2048;
constexpr std::size_t kMaxBinChunks = 256;

std::size_t bin_chunk_size(std::size_t n) {
  std::size_t chunk = kBinChunkAtoms;
  while ((n + chunk - 1) / chunk > kMaxBinChunks) chunk *= 2;
  return chunk;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const char* to_string(SkinPolicy policy) {
  switch (policy) {
    case SkinPolicy::kHalfSkinDisplacement: return "half-skin-displacement";
    case SkinPolicy::kNeverRebuild: return "never-rebuild";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ParallelNeighborListT
// ---------------------------------------------------------------------------

template <typename Real>
ParallelNeighborListT<Real>::ParallelNeighborListT(Real skin, ThreadPool* pool,
                                                   std::size_t grain,
                                                   SkinPolicy policy)
    : skin_(skin), pool_(pool), grain_(grain), policy_(policy) {
  EMDPA_REQUIRE(skin >= Real(0), "skin must be non-negative");
}

template <typename Real>
void ParallelNeighborListT<Real>::run_rows(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) const {
  run_span(n, grain_, body);
}

template <typename Real>
void ParallelNeighborListT<Real>::run_span(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) const {
  if (pool_ != nullptr) {
    pool_->parallel_for(0, n, grain, body);
  } else {
    body(0, n);
  }
}

template <typename Real>
bool ParallelNeighborListT<Real>::needs_rebuild(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, Real cutoff) const {
  if (build_positions_.size() != positions.size()) return true;
  // A list built for one cutoff silently drops interactions at a larger one
  // — invalidate on ANY cutoff (or box) change, not just growth.
  if (cutoff != build_cutoff_ || box.edge() != build_edge_) return true;
  if (policy_ == SkinPolicy::kNeverRebuild) return false;  // broken on purpose
  // Valid while no atom moved more than half the skin since the build: two
  // atoms approaching from opposite sides close at most `skin` total.
  const Real limit_sq = (skin_ / Real(2)) * (skin_ / Real(2));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto dr = box.min_image(positions[i] - build_positions_[i]);
    if (length_squared(dr) > limit_sq) return true;
  }
  return false;
}

template <typename Real>
bool ParallelNeighborListT<Real>::ensure(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, Real cutoff) {
  if (!needs_rebuild(positions, box, cutoff)) return false;
  build(positions, box, cutoff);
  return true;
}

template <typename Real>
void ParallelNeighborListT<Real>::build_all_pairs(
    const std::vector<emdpa::Vec3<Real>>& wrapped,
    const PeriodicBoxT<Real>& box) {
  // Degenerate box (fewer than 3 cells per axis): O(N^2) build through the
  // same two-pass CSR layout, still row-parallel.
  const std::size_t n = wrapped.size();
  row_count_.assign(n, 0);
  run_rows(n, [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      std::uint32_t count = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const auto dr = box.min_image(wrapped[i] - wrapped[j]);
        if (length_squared(dr) < list_cutoff_sq_) ++count;
      }
      row_count_[i] = count;
    }
  });

  row_begin_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    row_begin_[i + 1] = row_begin_[i] + padded_count<Real>(row_count_[i]);
    directed_entries_ += row_count_[i];
  }
  build_distance_tests_ = n == 0 ? 0 : static_cast<std::uint64_t>(n) * (n - 1);

  entries_.assign(row_begin_[n], 0);
  run_rows(n, [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      std::uint32_t slot = row_begin_[i];
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const auto dr = box.min_image(wrapped[i] - wrapped[j]);
        if (length_squared(dr) < list_cutoff_sq_) {
          entries_[slot++] = static_cast<std::uint32_t>(j);
        }
      }
      for (; slot < row_begin_[i + 1]; ++slot) {
        entries_[slot] = static_cast<std::uint32_t>(i);  // self pad, r2 == 0
      }
    }
  });
}

template <typename Real>
void ParallelNeighborListT<Real>::bin_atoms(std::size_t n, std::size_t cells,
                                            std::size_t n_cells,
                                            double inv_cell) {
  const std::size_t chunk = bin_chunk_size(n);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;

  auto axis_cell = [&](double coord) {
    auto c = static_cast<long long>(coord * inv_cell);
    if (c < 0) c = 0;
    if (c >= static_cast<long long>(cells)) c = static_cast<long long>(cells) - 1;
    return static_cast<std::size_t>(c);
  };

  // Pass 1 — per-chunk histograms.  Each chunk owns a disjoint row of
  // bin_hist_ and a disjoint range of cell_of_atom_, so chunks are
  // embarrassingly parallel.
  cell_of_atom_.resize(n);
  bin_hist_.assign(n_chunks * n_cells, 0);
  run_span(n_chunks, 1, [&](std::size_t k_begin, std::size_t k_end) {
    for (std::size_t k = k_begin; k < k_end; ++k) {
      std::uint32_t* hist = bin_hist_.data() + k * n_cells;
      const std::size_t i_end = std::min(n, (k + 1) * chunk);
      for (std::size_t i = k * chunk; i < i_end; ++i) {
        const std::size_t c = (axis_cell(wrapped_[i].x) * cells +
                               axis_cell(wrapped_[i].y)) *
                                  cells +
                              axis_cell(wrapped_[i].z);
        cell_of_atom_[i] = static_cast<std::uint32_t>(c);
        ++hist[c];
      }
    }
  });

  // Pass 2 — prefix-merge: per-cell totals (parallel over cells), a serial
  // exclusive prefix over cells, then each per-chunk histogram column turns
  // into that chunk's write cursor for the cell.  Every cell's column is
  // independent, so both cell passes parallelise cleanly.
  cell_start_.assign(n_cells + 1, 0);
  run_span(n_cells, 4096, [&](std::size_t c_begin, std::size_t c_end) {
    for (std::size_t c = c_begin; c < c_end; ++c) {
      std::uint32_t total = 0;
      for (std::size_t k = 0; k < n_chunks; ++k) {
        total += bin_hist_[k * n_cells + c];
      }
      cell_start_[c + 1] = total;
    }
  });
  for (std::size_t c = 0; c < n_cells; ++c) {
    cell_start_[c + 1] += cell_start_[c];
  }
  run_span(n_cells, 4096, [&](std::size_t c_begin, std::size_t c_end) {
    for (std::size_t c = c_begin; c < c_end; ++c) {
      std::uint32_t cursor = cell_start_[c];
      for (std::size_t k = 0; k < n_chunks; ++k) {
        std::uint32_t& h = bin_hist_[k * n_cells + c];
        const std::uint32_t count = h;
        h = cursor;
        cursor += count;
      }
    }
  });

  // Pass 3 — scatter.  Within a chunk atoms are visited in index order and
  // chunk cursors are ordered by chunk id, so cell_atoms_ is the stable
  // counting sort by cell: the unique order a serial sort would produce,
  // independent of thread count and chunk execution order.
  cell_atoms_.resize(n);
  run_span(n_chunks, 1, [&](std::size_t k_begin, std::size_t k_end) {
    for (std::size_t k = k_begin; k < k_end; ++k) {
      std::uint32_t* cursor = bin_hist_.data() + k * n_cells;
      const std::size_t i_end = std::min(n, (k + 1) * chunk);
      for (std::size_t i = k * chunk; i < i_end; ++i) {
        cell_atoms_[cursor[cell_of_atom_[i]]++] = static_cast<std::uint32_t>(i);
      }
    }
  });
}

template <typename Real>
void ParallelNeighborListT<Real>::populate_stencil(std::size_t cells,
                                                   std::size_t range) {
  const std::size_t n_cells = cells * cells * cells;
  const std::size_t n_lines = cells * cells;
  const std::size_t width = 2 * range + 1;
  stencil_pop_.resize(n_cells);
  stencil_tmp_.resize(n_cells);

  // One separable pass: out[a] = sum_{|k| <= range} in[(a+k) mod cells]
  // along the axis with the given stride, as a wrap-around sliding window
  // (add the entering cell, drop the leaving one) — O(cells) per line
  // instead of O(cells * width).  Valid because width <= cells (the
  // all-pairs fallback catches smaller boxes), so the window never visits a
  // cell twice.
  auto window_pass = [&](const std::uint32_t* in, std::uint32_t* out,
                         std::size_t stride,
                         const std::function<std::size_t(std::size_t)>& base) {
    run_span(n_lines, 16, [&](std::size_t l_begin, std::size_t l_end) {
      for (std::size_t l = l_begin; l < l_end; ++l) {
        const std::size_t b = base(l);
        std::uint32_t window = 0;
        for (std::size_t k = 0; k < width; ++k) {
          window += in[b + ((k + cells - range) % cells) * stride];
        }
        out[b] = window;
        for (std::size_t a = 1; a < cells; ++a) {
          window += in[b + ((a + range) % cells) * stride];
          window -= in[b + ((a + cells - range - 1) % cells) * stride];
          out[b + a * stride] = window;
        }
      }
    });
  };

  // Seed with the per-cell populations, then one window pass per axis.
  // Three passes flip between the two buffers and land in stencil_pop_:
  //   populations (tmp) --z--> pop --y--> tmp --x--> pop.
  run_span(n_cells, 4096, [&](std::size_t c_begin, std::size_t c_end) {
    for (std::size_t c = c_begin; c < c_end; ++c) {
      stencil_tmp_[c] = cell_start_[c + 1] - cell_start_[c];
    }
  });
  window_pass(stencil_tmp_.data(), stencil_pop_.data(), 1,
              [&](std::size_t l) { return l * cells; });  // lines over (x, y)
  window_pass(stencil_pop_.data(), stencil_tmp_.data(), cells,
              [&](std::size_t l) {  // lines over (x, z)
                return (l / cells) * n_lines + (l % cells);
              });
  window_pass(stencil_tmp_.data(), stencil_pop_.data(), n_lines,
              [&](std::size_t l) { return l; });  // lines over (y, z)
}

template <typename Real>
void ParallelNeighborListT<Real>::build(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, Real cutoff) {
  if (fault::injected("md.list_build")) {
    // Leave the list invalidated so a degraded-then-retried evaluation (or a
    // later healthy step) starts from a clean rebuild, not a half-built CSR.
    invalidate();
    throw RuntimeFailure("neighbour list: injected rebuild failure");
  }
  const std::size_t n = positions.size();
  const Real list_cutoff = cutoff + skin_;
  list_cutoff_sq_ = list_cutoff * list_cutoff;
  build_cutoff_ = cutoff;
  build_edge_ = box.edge();
  build_positions_ = positions;
  directed_entries_ = 0;
  build_distance_tests_ = 0;
  last_bin_seconds_ = 0;
  last_fill_seconds_ = 0;
  ++rebuilds_;

  const auto t_start = std::chrono::steady_clock::now();
  wrapped_.resize(n);
  run_rows(n, [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      wrapped_[i] = box.wrap(positions[i]);
    }
  });

  if (n == 0) {
    row_begin_.assign(1, 0);
    entries_.clear();
    return;
  }

  // Cell edge targets HALF the list radius: cutoff-sized cells sweep the
  // classic 27-cell stencil, ~16x the volume of the list sphere, while a
  // radius-2 stencil over half-sized cells sweeps ~6x — far fewer wasted
  // distance tests per build.  `range` is however many cells it takes to
  // cover the list radius at the realised cell edge.
  const double edge = static_cast<double>(box.edge());
  auto cells_ll =
      static_cast<long long>(edge / (static_cast<double>(list_cutoff) * 0.5));
  if (cells_ll < 1) cells_ll = 1;
  const auto cells = static_cast<std::size_t>(cells_ll);
  const double cell_edge = edge / static_cast<double>(cells);
  const auto range = static_cast<long long>(
      std::ceil(static_cast<double>(list_cutoff) / cell_edge));
  const std::size_t width = static_cast<std::size_t>(2 * range + 1);
  if (width > cells) {
    // Box too small for a proper stencil (wrap-around would visit a cell
    // twice and duplicate entries): O(N^2) build instead.  All of it counts
    // as fill — there is no binning phase to speak of.
    last_bin_seconds_ = seconds_since(t_start);
    bin_seconds_total_ += last_bin_seconds_;
    const auto t_fill = std::chrono::steady_clock::now();
    build_all_pairs(wrapped_, box);
    last_fill_seconds_ = seconds_since(t_fill);
    fill_seconds_total_ += last_fill_seconds_;
    return;
  }

  // Pool-parallel stable counting sort into cells (per-chunk histograms +
  // prefix-merge + scatter).  Atoms stay in index order within each cell,
  // which makes the sweep order (and so the list) independent of thread
  // count.
  const double inv_cell = static_cast<double>(cells) / edge;
  const std::size_t n_cells = cells * cells * cells;
  auto axis_cell = [&](double coord) {
    auto c = static_cast<long long>(coord * inv_cell);
    if (c < 0) c = 0;
    if (c >= static_cast<long long>(cells)) c = static_cast<long long>(cells) - 1;
    return static_cast<std::size_t>(c);
  };
  bin_atoms(n, cells, n_cells, inv_cell);

  // Per-axis wrapped stencil indices: row a of this table lists the `width`
  // cell indices covering [a-range, a+range] on one axis.  Precomputing them
  // keeps the modulo arithmetic out of the sweep's inner loops.
  stencil_axis_.resize(cells * width);
  for (std::size_t a = 0; a < cells; ++a) {
    for (std::size_t k = 0; k < width; ++k) {
      stencil_axis_[a * width + k] = static_cast<std::uint32_t>(
          (a + k + cells - static_cast<std::size_t>(range)) % cells);
    }
  }

  // Stencil population per cell.  Every atom in a cell sweeps exactly the
  // atoms of that cell's stencil (minus itself), so this is the EXACT
  // per-row distance-test count — which lets the single sweep below write
  // hits straight into disjoint scratch ranges with no counting pass.
  // Computed separably: one 1-D wrap-around window pass per axis.
  populate_stencil(cells, static_cast<std::size_t>(range));

  // Exact scratch CSR offsets (serial prefix — deterministic, so the sweep's
  // output layout is independent of thread count).
  scratch_begin_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    scratch_begin_[i + 1] =
        scratch_begin_[i] + stencil_pop_[cell_of_atom_[i]] - 1;  // minus self
  }
  build_distance_tests_ = scratch_begin_[n];
  scratch_entries_.resize(scratch_begin_[n]);

  last_bin_seconds_ = seconds_since(t_start);
  bin_seconds_total_ += last_bin_seconds_;
  const auto t_fill = std::chrono::steady_clock::now();

  // The single distance sweep: unlike the classic count-then-fill scheme it
  // pays each distance test exactly once (matching what the device cost
  // models price), writing hits into the row's scratch range in one fixed
  // order — stencil cells in table order, atoms within a cell in index
  // order — so the list contents are a pure function of the inputs.
  row_count_.assign(n, 0);
  run_rows(n, [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      const std::size_t cx = axis_cell(wrapped_[i].x);
      const std::size_t cy = axis_cell(wrapped_[i].y);
      const std::size_t cz = axis_cell(wrapped_[i].z);
      std::uint64_t slot = scratch_begin_[i];
      for (std::size_t kx = 0; kx < width; ++kx) {
        const std::size_t px = stencil_axis_[cx * width + kx];
        for (std::size_t ky = 0; ky < width; ++ky) {
          const std::size_t py = stencil_axis_[cy * width + ky];
          const std::size_t row = (px * cells + py) * cells;
          for (std::size_t kz = 0; kz < width; ++kz) {
            const std::size_t c = row + stencil_axis_[cz * width + kz];
            for (std::uint32_t s = cell_start_[c]; s < cell_start_[c + 1];
                 ++s) {
              const std::uint32_t j = cell_atoms_[s];
              if (j == static_cast<std::uint32_t>(i)) continue;
              const auto dr = box.min_image(wrapped_[i] - wrapped_[j]);
              if (length_squared(dr) < list_cutoff_sq_) {
                scratch_entries_[slot++] = j;
              }
            }
          }
        }
      }
      row_count_[i] = static_cast<std::uint32_t>(slot - scratch_begin_[i]);
    }
  });

  // Serial prefix sum over SIMD-padded row extents.
  row_begin_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    row_begin_[i + 1] = row_begin_[i] + padded_count<Real>(row_count_[i]);
    directed_entries_ += row_count_[i];
  }

  // Compaction: copy each scratch row into its padded slot range.  Pure
  // data movement, no distance math.
  entries_.resize(row_begin_[n]);
  run_rows(n, [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      const std::uint32_t* src = scratch_entries_.data() + scratch_begin_[i];
      std::uint32_t slot = row_begin_[i];
      for (std::uint32_t k = 0; k < row_count_[i]; ++k) {
        entries_[slot++] = src[k];
      }
      for (; slot < row_begin_[i + 1]; ++slot) {
        entries_[slot] = static_cast<std::uint32_t>(i);  // self pad, r2 == 0
      }
    }
  });

  last_fill_seconds_ = seconds_since(t_fill);
  fill_seconds_total_ += last_fill_seconds_;
}

// ---------------------------------------------------------------------------
// NeighborListKernelT
// ---------------------------------------------------------------------------

template <typename Real, typename Acc>
NeighborListKernelT<Real, Acc>::NeighborListKernelT(Options options)
    : options_(options),
      list_(static_cast<Real>(options.skin), options.pool,
            options.grain < 64 ? 64 : options.grain, options.skin_policy),
      isa_(simd_kernels::resolve_isa(options.isa)) {
  const simd_kernels::KernelRows& table = simd_kernels::rows(isa_);
  width_ = simd_kernels::width<Real>(table);
  rows_fn_ = simd_kernels::list_rows<Real, Acc>(table);
}

template <typename Real, typename Acc>
std::string NeighborListKernelT<Real, Acc>::name() const {
  std::string name = std::string("neighbor-list-soa[") + simd::to_string(isa_) +
                     ",w" + std::to_string(simd_width()) + "," +
                     precision_tag<Real, Acc>() + "]";
  if (options_.pool != nullptr) {
    name += "[threads=" + std::to_string(options_.pool->size()) + "]";
  }
  return name;
}

template <typename Real, typename Acc>
ForceResultT<Acc> NeighborListKernelT<Real, Acc>::compute(
    const std::vector<emdpa::Vec3<Acc>>& positions,
    const PeriodicBoxT<Acc>& box, const LjParamsT<Acc>& lj, Acc mass) {
  const std::size_t n = positions.size();
  ForceResultT<Acc> result;
  result.accelerations.assign(n, {});
  if (n == 0) return result;

  // The list build and the lane math both run in Real: narrow the box, LJ
  // parameters and (when Real != Acc) the positions once, so sp and mixed
  // traverse exactly the list their lane coordinates were tested against.
  const PeriodicBoxT<Real> rbox(static_cast<Real>(box.edge()));
  const LjParamsT<Real> ljr = lj.template cast<Real>();
  const std::vector<emdpa::Vec3<Real>>* real_positions;
  if constexpr (std::is_same_v<Real, Acc>) {
    real_positions = &positions;
  } else {
    cast_positions_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      cast_positions_[i] = emdpa::Vec3<Real>{static_cast<Real>(positions[i].x),
                                             static_cast<Real>(positions[i].y),
                                             static_cast<Real>(positions[i].z)};
    }
    real_positions = &cast_positions_;
  }

  list_.ensure(*real_positions, rbox, ljr.cutoff);
  ++evaluations_;

  if (!xs_ || xs_->size() < n) {
    xs_.emplace(n);
    ys_.emplace(n);
    zs_.emplace(n);
  }
  row_pe_.resize(n);
  row_virial_.resize(n);
  row_hits_.resize(n);

  // Pack current positions into SoA lanes, wrapping once so the fused
  // reflection in the lane kernel is exact.
  Real* xs = xs_->data();
  Real* ys = ys_->data();
  Real* zs = zs_->data();
  auto pack = [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      const emdpa::Vec3<Real> p = rbox.wrap((*real_positions)[i]);
      xs[i] = p.x;
      ys[i] = p.y;
      zs[i] = p.z;
    }
  };

  const Acc inv_mass = Acc(1) / mass;
  const std::uint32_t* row_begin = list_.row_begin().data();
  const std::uint32_t* entries = list_.entries().data();

  // The dispatched per-ISA row loop (kernel_rows.h): gather each padded CSR
  // block, masked LJ accumulate, lane-order reduce.
  auto rows = [&](std::size_t i_begin, std::size_t i_end) {
    rows_fn_(xs, ys, zs, row_begin, entries, rbox.edge(), ljr.cutoff_squared(),
             ljr, inv_mass, i_begin, i_end, result.accelerations.data(),
             row_pe_.data(), row_virial_.data(), row_hits_.data());
  };

  if (options_.pool != nullptr) {
    options_.pool->parallel_for(0, n, 512, pack);
    options_.pool->parallel_for(0, n, options_.grain, rows);
  } else {
    pack(0, n);
    rows(0, n);
  }

  // Ordered reduction over the per-row partials: totals are independent of
  // thread count and chunking, bit-identical run to run.
  Acc total_pe{}, total_virial{};
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total_pe += row_pe_[i];
    total_virial += row_virial_[i];
    hits += row_hits_[i];
  }
  result.potential_energy = total_pe;
  result.virial = total_virial;
  result.stats.candidates = list_.directed_entries() / 2;  // unordered pairs
  result.stats.interacting = hits / 2;
  return result;
}

template class ParallelNeighborListT<double>;
template class ParallelNeighborListT<float>;
template class NeighborListKernelT<double>;
template class NeighborListKernelT<float>;
template class NeighborListKernelT<float, double>;

}  // namespace emdpa::md
