// Structure-of-arrays N^2 force kernel with SIMD lanes and optional
// thread-pool row parallelism — the host-side analogue of the paper's device
// ports, running as fast as the build machine allows.
//
// Differences from ReferenceKernelT, in the order they matter:
//  * SoA layout: positions live in separate 32-byte-aligned x/y/z arrays, so
//    a SIMD lane load touches contiguous memory (no AoS gather).
//  * Batch inner loop: each atom row tests kWidth j-atoms at a time; the
//    cutoff test and the force/energy accumulation are fused behind one lane
//    mask (a bitwise blend), with an any-lane early-out for the ~97% of
//    batches with no interacting pair.
//  * Min-image hoisted and fused: positions are wrapped into the box once at
//    pack time, after which all four MinImageStrategy variants agree exactly
//    (the property the reference-kernel tests assert), so every strategy
//    runs the same branch-free single-reflection inner loop.  The strategy
//    is kept for naming/API parity with ReferenceKernelT.
//  * Self-pair exclusion by distance, not index: the lane mask requires
//    r2 > 0, which drops the i==j pair but ALSO any distinct pair of atoms
//    at exactly coincident positions.  ReferenceKernelT only skips j==i and
//    would return inf/NaN forces for such a pair, so on degenerate inputs
//    forces and stats.interacting intentionally diverge; the bitwise-parity
//    claim below is scoped to configurations with no coincident atoms.
//  * Determinism: forces, PE and virial are accumulated per atom row and
//    reduced in row order, so results are bit-identical run to run at ANY
//    thread count (stronger than the per-chunk guarantee parallel_reduce
//    gives).
#pragma once

#include <optional>

#include "core/aligned_buffer.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "md/force_kernel.h"
#include "md/reference_kernel.h"

namespace emdpa::md {

template <typename Real>
class SoaKernelT final : public ForceKernelT<Real> {
 public:
  struct Options {
    MinImageStrategy strategy = MinImageStrategy::kRound;
    /// Pool to split atom rows over; nullptr runs serial on the caller.
    ThreadPool* pool = nullptr;
    /// Atom rows per parallel chunk.
    std::size_t grain = 16;
  };

  explicit SoaKernelT(Options options = {}) : options_(options) {}
  explicit SoaKernelT(MinImageStrategy strategy)
      : options_(Options{strategy, nullptr, 16}) {}

  std::string name() const override;

  MinImageStrategy strategy() const { return options_.strategy; }

  /// SIMD lane count this build executes per batch (compile-time dispatch).
  static constexpr std::size_t simd_width() {
    return simd::native_width<Real>();
  }
  static constexpr const char* simd_name() {
    return simd::to_string(simd::fastest_simd_type());
  }

  ForceResultT<Real> compute(const std::vector<emdpa::Vec3<Real>>& positions,
                             const PeriodicBoxT<Real>& box,
                             const LjParamsT<Real>& lj, Real mass) override;

 private:
  void ensure_capacity(std::size_t padded, std::size_t n);

  Options options_;
  // Scratch reused across steps (one kernel instance drives a whole run).
  std::optional<AlignedBuffer<Real, 32>> xs_, ys_, zs_;
  std::vector<Real> row_pe_, row_virial_;
  std::vector<std::uint64_t> row_hits_;
};

using SoaKernel = SoaKernelT<double>;
using SoaKernelF = SoaKernelT<float>;

}  // namespace emdpa::md
