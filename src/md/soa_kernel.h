// Structure-of-arrays N^2 force kernel with SIMD lanes and optional
// thread-pool row parallelism — the host-side analogue of the paper's device
// ports, running as fast as the build machine allows.
//
// Differences from ReferenceKernelT, in the order they matter:
//  * SoA layout: positions live in separate 64-byte-aligned x/y/z arrays, so
//    a SIMD lane load touches contiguous memory (no AoS gather).
//  * Batch inner loop: each atom row tests j-atoms one 64-byte block at a
//    time (simd::block_lanes lanes, a whole number of packs on every ISA);
//    the cutoff test and the force/energy accumulation are fused behind one
//    lane mask (a blend), with an any-lane early-out per pack for the ~97%
//    of batches with no interacting pair.
//  * Runtime ISA dispatch: the row loop is compiled once per instruction
//    set (md/simd_rows_*.cpp) and the constructor resolves which table to
//    run — Options::isa, else EMDPA_SIMD, else the fastest this CPU
//    supports.  Because rows accumulate in fixed blocks reduced in lane
//    order, every ISA produces BITWISE IDENTICAL results (kernel_rows.h).
//  * Precision seam: `Real` is the packed coordinate / lane-math type and
//    `Acc` the interface/reduction type (md/precision.h) — <double,double>
//    is the dp default, <float,float> the sp kernel behind the narrowing
//    adapter, <float,double> the natively double-facing mixed kernel.
//  * Min-image hoisted and fused: positions are wrapped into the box once at
//    pack time, after which all four MinImageStrategy variants agree exactly
//    (the property the reference-kernel tests assert), so every strategy
//    runs the same branch-free single-reflection inner loop.  The strategy
//    is kept for naming/API parity with ReferenceKernelT.
//  * Self-pair exclusion by distance, not index: the lane mask requires
//    r2 > 0, which drops the i==j pair but ALSO any distinct pair of atoms
//    at exactly coincident positions.  ReferenceKernelT only skips j==i and
//    would return inf/NaN forces for such a pair, so on degenerate inputs
//    forces and stats.interacting intentionally diverge; the bitwise-parity
//    claim below is scoped to configurations with no coincident atoms.
//  * Determinism: forces, PE and virial are accumulated per atom row and
//    reduced in row order, so results are bit-identical run to run at ANY
//    thread count (stronger than the per-chunk guarantee parallel_reduce
//    gives).
#pragma once

#include <optional>

#include "core/aligned_buffer.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "md/force_kernel.h"
#include "md/precision.h"
#include "md/reference_kernel.h"
#include "md/simd_kernels.h"

namespace emdpa::md {

template <typename Real, typename Acc = Real>
class SoaKernelT final : public ForceKernelT<Acc> {
 public:
  struct Options {
    MinImageStrategy strategy = MinImageStrategy::kRound;
    /// Pool to split atom rows over; nullptr runs serial on the caller.
    ThreadPool* pool = nullptr;
    /// Atom rows per parallel chunk.
    std::size_t grain = 16;
    /// Force this instruction set (throws at construction when it cannot
    /// run here); empty resolves EMDPA_SIMD, then the fastest available.
    std::optional<simd::SimdType> isa;
  };

  explicit SoaKernelT(Options options = {});
  explicit SoaKernelT(MinImageStrategy strategy)
      : SoaKernelT(Options{strategy, nullptr, 16, {}}) {}

  std::string name() const override;

  MinImageStrategy strategy() const { return options_.strategy; }

  /// The instruction set the dispatcher selected for this instance.
  simd::SimdType isa() const { return isa_; }
  const char* simd_name() const { return simd::to_string(isa_); }

  /// SIMD lane count the dispatched kernel executes per pack — a runtime
  /// property of the selected ISA, NOT the compile-time native width.
  std::size_t simd_width() const { return width_; }

  /// Lanes per accumulation block; rows are padded to this on every ISA.
  static constexpr std::size_t block_width() {
    return simd::block_lanes<Real>();
  }

  ForceResultT<Acc> compute(const std::vector<emdpa::Vec3<Acc>>& positions,
                            const PeriodicBoxT<Acc>& box,
                            const LjParamsT<Acc>& lj, Acc mass) override;

 private:
  void ensure_capacity(std::size_t padded, std::size_t n);

  Options options_;
  simd::SimdType isa_;
  std::size_t width_;
  simd_kernels::SoaRowsFn<Real, Acc> rows_fn_;
  // Scratch reused across steps (one kernel instance drives a whole run).
  std::optional<AlignedBuffer<Real, 64>> xs_, ys_, zs_;
  std::vector<Acc> row_pe_, row_virial_;
  std::vector<std::uint64_t> row_hits_;
};

using SoaKernel = SoaKernelT<double>;
using SoaKernelF = SoaKernelT<float>;
using SoaKernelMixed = SoaKernelT<float, double>;

}  // namespace emdpa::md
