// Streaming observables channel (--watch): cheap per-step scalars emitted
// as greppable key=value lines while a run (or a bisect side) executes.
//
//   watch step=40 energy=-187.158696117482 max_disp=0.41282104492187503
//
// The channel is an OBSERVER: it reads the post-step state and writes text,
// perturbing nothing — a watched run stays bitwise identical to an
// unwatched one.  Values print with %.17g so two runs' watch streams can be
// diffed as a poor-man's divergence check before reaching for the full
// bisection machinery.
//
// Observables:
//   energy    total (kinetic + potential) energy
//   ke        kinetic energy
//   pe        potential energy
//   max_disp  max over atoms of the min-image displacement from the
//             watch baseline (the state at construction)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "md/box.h"
#include "md/integrator.h"
#include "md/particle_system.h"

namespace emdpa::md {

class WatchEmitter {
 public:
  /// `spec` is a comma-separated observable list ("energy,max_disp").
  /// Throws RuntimeFailure on an unknown name or an empty spec.  `every`
  /// emits on steps divisible by it.  The baseline for max_disp is
  /// `initial` (positions copied).
  WatchEmitter(const std::string& spec, int every,
               const ParticleSystem& initial, const PeriodicBox& box);

  /// True when `step` is an emitting step.
  bool due(long step) const { return every_ > 0 && step % every_ == 0; }

  /// Write one "watch step=... k=v ..." line for the post-step state.  A
  /// non-null `tag` inserts "side=<tag>" after "watch" — how `emdpa bisect`
  /// keeps its two sides' streams distinguishable in one output.
  void emit(std::ostream& out, long step, const StepEnergies& energies,
            const ParticleSystem& system, const char* tag = nullptr) const;

  const std::vector<std::string>& observables() const { return observables_; }

  /// Parse and validate a spec without building an emitter (CLI validation).
  static std::vector<std::string> parse_spec(const std::string& spec);

 private:
  std::vector<std::string> observables_;
  int every_;
  std::vector<emdpa::Vec3d> baseline_;
  PeriodicBox box_;
};

}  // namespace emdpa::md
