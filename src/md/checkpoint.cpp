#include "md/checkpoint.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "core/crc32.h"
#include "core/error.h"
#include "core/hexio.h"

namespace emdpa::md {

namespace {

constexpr const char* kMagic = "emdpa-checkpoint";
constexpr int kVersion = 4;

std::string hex(double v) { return hexio::format_double(v); }

/// Header + atom records (everything between the version line and the v2+
/// footer), shared by all format versions.
Checkpoint parse_body(std::istream& in, int version) {
  std::string kw_atoms, kw_mass, kw_box, kw_step;
  std::size_t n = 0;
  std::string mass_tok, box_tok;
  long step = 0;
  if (!(in >> kw_atoms >> n >> kw_mass >> mass_tok >> kw_box >> box_tok >>
        kw_step >> step) ||
      kw_atoms != "atoms" || kw_mass != "mass" || kw_box != "box" ||
      kw_step != "step") {
    throw RuntimeFailure("checkpoint: malformed state line");
  }

  Checkpoint cp;
  cp.system = ParticleSystem(n);
  cp.system.set_mass(hexio::parse_double(mass_tok, "mass"));
  cp.box_edge = hexio::parse_double(box_tok, "box edge");
  cp.step = step;
  EMDPA_REQUIRE(cp.box_edge > 0.0, "checkpoint box edge must be positive");

  if (version >= 2) {
    std::string kw_pe, pe_tok;
    if (!(in >> kw_pe >> pe_tok) || kw_pe != "pe") {
      throw RuntimeFailure("checkpoint: malformed state line (missing pe)");
    }
    cp.potential = hexio::parse_double(pe_tok, "potential energy");
    cp.has_potential = true;
  }

  // Versions 3 and 4 insert optional keyworded sections between the state
  // line and the atom records.  Token-wise reading means one token of
  // lookahead: the first non-section token is the leading coordinate of
  // atom 0.
  std::string pending;
  bool have_pending = false;
  if (version >= 3) {
    have_pending = static_cast<bool>(in >> pending);
    if (have_pending && pending == "config") {
      std::string kw_k, kernel, kw_p, precision, kw_s, simd;
      if (!(in >> kw_k >> kernel >> kw_p >> precision >> kw_s >> simd) ||
          kw_k != "kernel" || kw_p != "precision" || kw_s != "simd") {
        throw RuntimeFailure("checkpoint: malformed config line");
      }
      cp.config = CheckpointConfig{kernel, precision, simd};
      have_pending = static_cast<bool>(in >> pending);
    }
    if (have_pending && pending == "rng") {
      std::string kw, s0, s1, s2, s3, cached, flag;
      if (!(in >> kw >> s0 >> s1 >> s2 >> s3 >> cached >> flag) ||
          kw != "langevin" || (flag != "0" && flag != "1")) {
        throw RuntimeFailure("checkpoint: malformed rng line");
      }
      Rng::State state;
      state.s = {hexio::parse_u64(s0, "rng state"),
                 hexio::parse_u64(s1, "rng state"),
                 hexio::parse_u64(s2, "rng state"),
                 hexio::parse_u64(s3, "rng state")};
      state.cached_gaussian = hexio::parse_double(cached, "rng cached gaussian");
      state.has_cached_gaussian = flag == "1";
      cp.langevin_rng = state;
      have_pending = static_cast<bool>(in >> pending);
    }
    if (version >= 4 && have_pending && pending == "listref") {
      std::size_t ref_n = 0;
      std::string kw_cutoff, cutoff_tok;
      if (!(in >> ref_n >> kw_cutoff >> cutoff_tok) || kw_cutoff != "cutoff") {
        throw RuntimeFailure("checkpoint: malformed listref line");
      }
      if (ref_n != n) {
        throw RuntimeFailure("checkpoint: listref atom count mismatch");
      }
      cp.list_ref_cutoff = hexio::parse_double(cutoff_tok, "listref cutoff");
      if (!(cp.list_ref_cutoff > 0.0)) {
        throw RuntimeFailure("checkpoint: listref cutoff must be positive");
      }
      std::vector<emdpa::Vec3d> ref(ref_n);
      for (std::size_t i = 0; i < ref_n; ++i) {
        std::string x, y, z;
        if (!(in >> x >> y >> z)) {
          throw RuntimeFailure("checkpoint: truncated listref at atom " +
                               std::to_string(i));
        }
        ref[i] = {hexio::parse_double(x, "listref x"),
                  hexio::parse_double(y, "listref y"),
                  hexio::parse_double(z, "listref z")};
      }
      cp.list_ref = std::move(ref);
      have_pending = static_cast<bool>(in >> pending);
    }
  }

  auto next_token = [&](std::size_t atom) -> std::string {
    if (have_pending) {
      have_pending = false;
      return pending;
    }
    std::string token;
    if (!(in >> token)) {
      throw RuntimeFailure("checkpoint: truncated at atom " +
                           std::to_string(atom));
    }
    return token;
  };

  for (std::size_t i = 0; i < n; ++i) {
    std::string t[9];
    for (auto& tok : t) tok = next_token(i);
    cp.system.positions()[i] = {hexio::parse_double(t[0], "x"),
                                hexio::parse_double(t[1], "y"),
                                hexio::parse_double(t[2], "z")};
    cp.system.velocities()[i] = {hexio::parse_double(t[3], "vx"),
                                 hexio::parse_double(t[4], "vy"),
                                 hexio::parse_double(t[5], "vz")};
    cp.system.accelerations()[i] = {hexio::parse_double(t[6], "ax"),
                                    hexio::parse_double(t[7], "ay"),
                                    hexio::parse_double(t[8], "az")};
  }
  return cp;
}

void write_checkpoint_text(std::ostream& out, const Checkpoint& cp) {
  // Build the body first: the footer is its checksum.
  std::ostringstream body;
  body << kMagic << ' ' << kVersion << '\n';
  body << "atoms " << cp.system.size() << " mass " << hex(cp.system.mass())
       << " box " << hex(cp.box_edge) << " step " << cp.step << " pe "
       << hex(cp.potential) << '\n';
  if (cp.config) {
    body << "config kernel " << cp.config->kernel << " precision "
         << cp.config->precision << " simd " << cp.config->simd << '\n';
  }
  if (cp.langevin_rng) {
    const Rng::State& rng = *cp.langevin_rng;
    body << "rng langevin " << hexio::format_u64(rng.s[0]) << ' '
         << hexio::format_u64(rng.s[1]) << ' ' << hexio::format_u64(rng.s[2])
         << ' ' << hexio::format_u64(rng.s[3]) << ' '
         << hex(rng.cached_gaussian) << ' '
         << (rng.has_cached_gaussian ? 1 : 0) << '\n';
  }
  if (cp.list_ref) {
    EMDPA_REQUIRE(cp.list_ref->size() == cp.system.size(),
                  "checkpoint listref must cover every atom");
    body << "listref " << cp.list_ref->size() << " cutoff "
         << hex(cp.list_ref_cutoff) << '\n';
    for (const auto& p : *cp.list_ref) {
      body << hex(p.x) << ' ' << hex(p.y) << ' ' << hex(p.z) << '\n';
    }
  }
  for (std::size_t i = 0; i < cp.system.size(); ++i) {
    const auto& p = cp.system.positions()[i];
    const auto& v = cp.system.velocities()[i];
    const auto& a = cp.system.accelerations()[i];
    body << hex(p.x) << ' ' << hex(p.y) << ' ' << hex(p.z) << ' ' << hex(v.x)
         << ' ' << hex(v.y) << ' ' << hex(v.z) << ' ' << hex(a.x) << ' '
         << hex(a.y) << ' ' << hex(a.z) << '\n';
  }
  out << with_crc_footer(body.str());
  if (!out) throw RuntimeFailure("checkpoint: write failed");
}

}  // namespace

void save_checkpoint(std::ostream& out, const ParticleSystem& system,
                     const PeriodicBox& box, long step, double potential) {
  Checkpoint cp;
  cp.system = system;
  cp.box_edge = box.edge();
  cp.step = step;
  cp.potential = potential;
  write_checkpoint_text(out, cp);
}

void save_checkpoint(std::ostream& out, const Checkpoint& cp) {
  write_checkpoint_text(out, cp);
}

Checkpoint load_checkpoint(std::istream& in) {
  std::string content{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
  std::istringstream header(content);
  std::string magic;
  int version = 0;
  if (!(header >> magic >> version)) {
    throw RuntimeFailure("checkpoint: missing header");
  }
  if (magic != kMagic) {
    throw RuntimeFailure("checkpoint: bad magic '" + magic + "'");
  }
  if (version < 1 || version > kVersion) {
    throw RuntimeFailure("checkpoint: unsupported version " +
                         std::to_string(version));
  }

  if (version >= 2) {
    // Verify the CRC footer before trusting any field.
    content = strip_crc_footer(content, "checkpoint");
  }

  std::istringstream body(content);
  std::string skip_magic;
  int skip_version = 0;
  body >> skip_magic >> skip_version;
  return parse_body(body, version);
}

}  // namespace emdpa::md
