#include "md/checkpoint.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "core/crc32.h"
#include "core/error.h"

namespace emdpa::md {

namespace {

constexpr const char* kMagic = "emdpa-checkpoint";
constexpr int kVersion = 3;

std::string hex(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string hex_u64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

double parse_double(const std::string& token, const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw RuntimeFailure(std::string("checkpoint: malformed ") + what + " '" +
                         token + "'");
  }
  if (consumed != token.size()) {
    throw RuntimeFailure(std::string("checkpoint: trailing characters in ") +
                         what + " '" + token + "'");
  }
  // stod happily parses "inf" and "nan"; a state with non-finite values can
  // only come from a corrupt file (or a blown-up run) and would silently
  // poison every downstream kernel, so reject it at the boundary.
  if (!std::isfinite(value)) {
    throw RuntimeFailure(std::string("checkpoint: non-finite ") + what + " '" +
                         token + "'");
  }
  return value;
}

std::uint64_t parse_u64_hex(const std::string& token, const char* what) {
  try {
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(token, &consumed, 16);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw RuntimeFailure(std::string("checkpoint: malformed ") + what + " '" +
                         token + "'");
  }
}

/// Header + atom records (everything between the version line and the v2+
/// footer), shared by all format versions.
Checkpoint parse_body(std::istream& in, int version) {
  std::string kw_atoms, kw_mass, kw_box, kw_step;
  std::size_t n = 0;
  std::string mass_tok, box_tok;
  long step = 0;
  if (!(in >> kw_atoms >> n >> kw_mass >> mass_tok >> kw_box >> box_tok >>
        kw_step >> step) ||
      kw_atoms != "atoms" || kw_mass != "mass" || kw_box != "box" ||
      kw_step != "step") {
    throw RuntimeFailure("checkpoint: malformed state line");
  }

  Checkpoint cp;
  cp.system = ParticleSystem(n);
  cp.system.set_mass(parse_double(mass_tok, "mass"));
  cp.box_edge = parse_double(box_tok, "box edge");
  cp.step = step;
  EMDPA_REQUIRE(cp.box_edge > 0.0, "checkpoint box edge must be positive");

  if (version >= 2) {
    std::string kw_pe, pe_tok;
    if (!(in >> kw_pe >> pe_tok) || kw_pe != "pe") {
      throw RuntimeFailure("checkpoint: malformed state line (missing pe)");
    }
    cp.potential = parse_double(pe_tok, "potential energy");
    cp.has_potential = true;
  }

  // Version 3 inserts up to two keyworded lines between the state line and
  // the atom records.  Token-wise reading means one token of lookahead: the
  // first non-section token is the leading coordinate of atom 0.
  std::string pending;
  bool have_pending = false;
  if (version >= 3) {
    have_pending = static_cast<bool>(in >> pending);
    if (have_pending && pending == "config") {
      std::string kw_k, kernel, kw_p, precision, kw_s, simd;
      if (!(in >> kw_k >> kernel >> kw_p >> precision >> kw_s >> simd) ||
          kw_k != "kernel" || kw_p != "precision" || kw_s != "simd") {
        throw RuntimeFailure("checkpoint: malformed config line");
      }
      cp.config = CheckpointConfig{kernel, precision, simd};
      have_pending = static_cast<bool>(in >> pending);
    }
    if (have_pending && pending == "rng") {
      std::string kw, s0, s1, s2, s3, cached, flag;
      if (!(in >> kw >> s0 >> s1 >> s2 >> s3 >> cached >> flag) ||
          kw != "langevin" || (flag != "0" && flag != "1")) {
        throw RuntimeFailure("checkpoint: malformed rng line");
      }
      Rng::State state;
      state.s = {parse_u64_hex(s0, "rng state"), parse_u64_hex(s1, "rng state"),
                 parse_u64_hex(s2, "rng state"), parse_u64_hex(s3, "rng state")};
      state.cached_gaussian = parse_double(cached, "rng cached gaussian");
      state.has_cached_gaussian = flag == "1";
      cp.langevin_rng = state;
      have_pending = static_cast<bool>(in >> pending);
    }
  }

  auto next_token = [&](std::size_t atom) -> std::string {
    if (have_pending) {
      have_pending = false;
      return pending;
    }
    std::string token;
    if (!(in >> token)) {
      throw RuntimeFailure("checkpoint: truncated at atom " +
                           std::to_string(atom));
    }
    return token;
  };

  for (std::size_t i = 0; i < n; ++i) {
    std::string t[9];
    for (auto& tok : t) tok = next_token(i);
    cp.system.positions()[i] = {parse_double(t[0], "x"), parse_double(t[1], "y"),
                                parse_double(t[2], "z")};
    cp.system.velocities()[i] = {parse_double(t[3], "vx"),
                                 parse_double(t[4], "vy"),
                                 parse_double(t[5], "vz")};
    cp.system.accelerations()[i] = {parse_double(t[6], "ax"),
                                    parse_double(t[7], "ay"),
                                    parse_double(t[8], "az")};
  }
  return cp;
}

void write_checkpoint_text(std::ostream& out, const Checkpoint& cp) {
  // Build the body first: the footer is its checksum.
  std::ostringstream body;
  body << kMagic << ' ' << kVersion << '\n';
  body << "atoms " << cp.system.size() << " mass " << hex(cp.system.mass())
       << " box " << hex(cp.box_edge) << " step " << cp.step << " pe "
       << hex(cp.potential) << '\n';
  if (cp.config) {
    body << "config kernel " << cp.config->kernel << " precision "
         << cp.config->precision << " simd " << cp.config->simd << '\n';
  }
  if (cp.langevin_rng) {
    const Rng::State& rng = *cp.langevin_rng;
    body << "rng langevin " << hex_u64(rng.s[0]) << ' ' << hex_u64(rng.s[1])
         << ' ' << hex_u64(rng.s[2]) << ' ' << hex_u64(rng.s[3]) << ' '
         << hex(rng.cached_gaussian) << ' ' << (rng.has_cached_gaussian ? 1 : 0)
         << '\n';
  }
  for (std::size_t i = 0; i < cp.system.size(); ++i) {
    const auto& p = cp.system.positions()[i];
    const auto& v = cp.system.velocities()[i];
    const auto& a = cp.system.accelerations()[i];
    body << hex(p.x) << ' ' << hex(p.y) << ' ' << hex(p.z) << ' ' << hex(v.x)
         << ' ' << hex(v.y) << ' ' << hex(v.z) << ' ' << hex(a.x) << ' '
         << hex(a.y) << ' ' << hex(a.z) << '\n';
  }
  const std::string text = body.str();
  char footer[24];
  std::snprintf(footer, sizeof(footer), "crc %08x\n", crc32(text));
  out << text << footer;
  if (!out) throw RuntimeFailure("checkpoint: write failed");
}

}  // namespace

void save_checkpoint(std::ostream& out, const ParticleSystem& system,
                     const PeriodicBox& box, long step, double potential) {
  Checkpoint cp;
  cp.system = system;
  cp.box_edge = box.edge();
  cp.step = step;
  cp.potential = potential;
  write_checkpoint_text(out, cp);
}

void save_checkpoint(std::ostream& out, const Checkpoint& cp) {
  write_checkpoint_text(out, cp);
}

Checkpoint load_checkpoint(std::istream& in) {
  std::string content{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
  std::istringstream header(content);
  std::string magic;
  int version = 0;
  if (!(header >> magic >> version)) {
    throw RuntimeFailure("checkpoint: missing header");
  }
  if (magic != kMagic) {
    throw RuntimeFailure("checkpoint: bad magic '" + magic + "'");
  }
  if (version < 1 || version > kVersion) {
    throw RuntimeFailure("checkpoint: unsupported version " +
                         std::to_string(version));
  }

  if (version >= 2) {
    // Locate and verify the CRC footer before trusting any field.  The
    // footer is the last line; searching from the end keeps a hex-float that
    // can never contain "crc" unambiguous anyway.
    const std::size_t pos = content.rfind("\ncrc ");
    if (pos == std::string::npos) {
      throw RuntimeFailure("checkpoint: missing crc footer (truncated file?)");
    }
    const std::string data = content.substr(0, pos + 1);
    std::istringstream footer(content.substr(pos + 1));
    std::string kw_crc, crc_tok, trailing;
    if (!(footer >> kw_crc >> crc_tok) || kw_crc != "crc" ||
        crc_tok.size() != 8 || (footer >> trailing)) {
      throw RuntimeFailure("checkpoint: malformed crc footer");
    }
    std::uint32_t stored = 0;
    try {
      std::size_t consumed = 0;
      stored = static_cast<std::uint32_t>(std::stoul(crc_tok, &consumed, 16));
      if (consumed != crc_tok.size()) throw std::invalid_argument(crc_tok);
    } catch (const std::exception&) {
      throw RuntimeFailure("checkpoint: malformed crc value '" + crc_tok + "'");
    }
    const std::uint32_t computed = crc32(data);
    if (computed != stored) {
      char msg[80];
      std::snprintf(msg, sizeof(msg),
                    "checkpoint: crc mismatch (stored %08x, computed %08x)",
                    stored, computed);
      throw RuntimeFailure(msg);
    }
    content = data;
  }

  std::istringstream body(content);
  std::string skip_magic;
  int skip_version = 0;
  body >> skip_magic >> skip_version;
  return parse_body(body, version);
}

}  // namespace emdpa::md
