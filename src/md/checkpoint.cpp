#include "md/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "core/crc32.h"
#include "core/error.h"

namespace emdpa::md {

namespace {

constexpr const char* kMagic = "emdpa-checkpoint";
constexpr int kVersion = 2;

std::string hex(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_double(const std::string& token, const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw RuntimeFailure(std::string("checkpoint: malformed ") + what + " '" +
                         token + "'");
  }
  if (consumed != token.size()) {
    throw RuntimeFailure(std::string("checkpoint: trailing characters in ") +
                         what + " '" + token + "'");
  }
  // stod happily parses "inf" and "nan"; a state with non-finite values can
  // only come from a corrupt file (or a blown-up run) and would silently
  // poison every downstream kernel, so reject it at the boundary.
  if (!std::isfinite(value)) {
    throw RuntimeFailure(std::string("checkpoint: non-finite ") + what + " '" +
                         token + "'");
  }
  return value;
}

/// Header + atom records (everything between the version line and the v2
/// footer), shared by both format versions.
Checkpoint parse_body(std::istream& in, int version) {
  std::string kw_atoms, kw_mass, kw_box, kw_step;
  std::size_t n = 0;
  std::string mass_tok, box_tok;
  long step = 0;
  if (!(in >> kw_atoms >> n >> kw_mass >> mass_tok >> kw_box >> box_tok >>
        kw_step >> step) ||
      kw_atoms != "atoms" || kw_mass != "mass" || kw_box != "box" ||
      kw_step != "step") {
    throw RuntimeFailure("checkpoint: malformed state line");
  }

  Checkpoint cp;
  cp.system = ParticleSystem(n);
  cp.system.set_mass(parse_double(mass_tok, "mass"));
  cp.box_edge = parse_double(box_tok, "box edge");
  cp.step = step;
  EMDPA_REQUIRE(cp.box_edge > 0.0, "checkpoint box edge must be positive");

  if (version >= 2) {
    std::string kw_pe, pe_tok;
    if (!(in >> kw_pe >> pe_tok) || kw_pe != "pe") {
      throw RuntimeFailure("checkpoint: malformed state line (missing pe)");
    }
    cp.potential = parse_double(pe_tok, "potential energy");
    cp.has_potential = true;
  }

  for (std::size_t i = 0; i < n; ++i) {
    std::string t[9];
    for (auto& tok : t) {
      if (!(in >> tok)) {
        throw RuntimeFailure("checkpoint: truncated at atom " +
                             std::to_string(i));
      }
    }
    cp.system.positions()[i] = {parse_double(t[0], "x"), parse_double(t[1], "y"),
                                parse_double(t[2], "z")};
    cp.system.velocities()[i] = {parse_double(t[3], "vx"),
                                 parse_double(t[4], "vy"),
                                 parse_double(t[5], "vz")};
    cp.system.accelerations()[i] = {parse_double(t[6], "ax"),
                                    parse_double(t[7], "ay"),
                                    parse_double(t[8], "az")};
  }
  return cp;
}

}  // namespace

void save_checkpoint(std::ostream& out, const ParticleSystem& system,
                     const PeriodicBox& box, long step, double potential) {
  // Build the body first: the footer is its checksum.
  std::ostringstream body;
  body << kMagic << ' ' << kVersion << '\n';
  body << "atoms " << system.size() << " mass " << hex(system.mass()) << " box "
       << hex(box.edge()) << " step " << step << " pe " << hex(potential)
       << '\n';
  for (std::size_t i = 0; i < system.size(); ++i) {
    const auto& p = system.positions()[i];
    const auto& v = system.velocities()[i];
    const auto& a = system.accelerations()[i];
    body << hex(p.x) << ' ' << hex(p.y) << ' ' << hex(p.z) << ' ' << hex(v.x)
         << ' ' << hex(v.y) << ' ' << hex(v.z) << ' ' << hex(a.x) << ' '
         << hex(a.y) << ' ' << hex(a.z) << '\n';
  }
  const std::string text = body.str();
  char footer[24];
  std::snprintf(footer, sizeof(footer), "crc %08x\n", crc32(text));
  out << text << footer;
  if (!out) throw RuntimeFailure("checkpoint: write failed");
}

Checkpoint load_checkpoint(std::istream& in) {
  std::string content{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
  std::istringstream header(content);
  std::string magic;
  int version = 0;
  if (!(header >> magic >> version)) {
    throw RuntimeFailure("checkpoint: missing header");
  }
  if (magic != kMagic) {
    throw RuntimeFailure("checkpoint: bad magic '" + magic + "'");
  }
  if (version != 1 && version != kVersion) {
    throw RuntimeFailure("checkpoint: unsupported version " +
                         std::to_string(version));
  }

  if (version >= 2) {
    // Locate and verify the CRC footer before trusting any field.  The
    // footer is the last line; searching from the end keeps a hex-float that
    // can never contain "crc" unambiguous anyway.
    const std::size_t pos = content.rfind("\ncrc ");
    if (pos == std::string::npos) {
      throw RuntimeFailure("checkpoint: missing crc footer (truncated file?)");
    }
    const std::string data = content.substr(0, pos + 1);
    std::istringstream footer(content.substr(pos + 1));
    std::string kw_crc, crc_tok, trailing;
    if (!(footer >> kw_crc >> crc_tok) || kw_crc != "crc" ||
        crc_tok.size() != 8 || (footer >> trailing)) {
      throw RuntimeFailure("checkpoint: malformed crc footer");
    }
    std::uint32_t stored = 0;
    try {
      std::size_t consumed = 0;
      stored = static_cast<std::uint32_t>(std::stoul(crc_tok, &consumed, 16));
      if (consumed != crc_tok.size()) throw std::invalid_argument(crc_tok);
    } catch (const std::exception&) {
      throw RuntimeFailure("checkpoint: malformed crc value '" + crc_tok + "'");
    }
    const std::uint32_t computed = crc32(data);
    if (computed != stored) {
      char msg[80];
      std::snprintf(msg, sizeof(msg),
                    "checkpoint: crc mismatch (stored %08x, computed %08x)",
                    stored, computed);
      throw RuntimeFailure(msg);
    }
    content = data;
  }

  std::istringstream body(content);
  std::string skip_magic;
  int skip_version = 0;
  body >> skip_magic >> skip_version;
  return parse_body(body, version);
}

}  // namespace emdpa::md
