#include "md/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "core/error.h"

namespace emdpa::md {

namespace {

constexpr const char* kMagic = "emdpa-checkpoint";
constexpr int kVersion = 1;

std::string hex(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_double(const std::string& token, const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw RuntimeFailure(std::string("checkpoint: malformed ") + what + " '" +
                         token + "'");
  }
  if (consumed != token.size()) {
    throw RuntimeFailure(std::string("checkpoint: trailing characters in ") +
                         what + " '" + token + "'");
  }
  // stod happily parses "inf" and "nan"; a state with non-finite values can
  // only come from a corrupt file (or a blown-up run) and would silently
  // poison every downstream kernel, so reject it at the boundary.
  if (!std::isfinite(value)) {
    throw RuntimeFailure(std::string("checkpoint: non-finite ") + what + " '" +
                         token + "'");
  }
  return value;
}

}  // namespace

void save_checkpoint(std::ostream& out, const ParticleSystem& system,
                     const PeriodicBox& box, long step) {
  out << kMagic << ' ' << kVersion << '\n';
  out << "atoms " << system.size() << " mass " << hex(system.mass()) << " box "
      << hex(box.edge()) << " step " << step << '\n';
  for (std::size_t i = 0; i < system.size(); ++i) {
    const auto& p = system.positions()[i];
    const auto& v = system.velocities()[i];
    const auto& a = system.accelerations()[i];
    out << hex(p.x) << ' ' << hex(p.y) << ' ' << hex(p.z) << ' ' << hex(v.x)
        << ' ' << hex(v.y) << ' ' << hex(v.z) << ' ' << hex(a.x) << ' '
        << hex(a.y) << ' ' << hex(a.z) << '\n';
  }
  if (!out) throw RuntimeFailure("checkpoint: write failed");
}

Checkpoint load_checkpoint(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version)) {
    throw RuntimeFailure("checkpoint: missing header");
  }
  if (magic != kMagic) {
    throw RuntimeFailure("checkpoint: bad magic '" + magic + "'");
  }
  if (version != kVersion) {
    throw RuntimeFailure("checkpoint: unsupported version " +
                         std::to_string(version));
  }

  std::string kw_atoms, kw_mass, kw_box, kw_step;
  std::size_t n = 0;
  std::string mass_tok, box_tok;
  long step = 0;
  if (!(in >> kw_atoms >> n >> kw_mass >> mass_tok >> kw_box >> box_tok >>
        kw_step >> step) ||
      kw_atoms != "atoms" || kw_mass != "mass" || kw_box != "box" ||
      kw_step != "step") {
    throw RuntimeFailure("checkpoint: malformed state line");
  }

  Checkpoint cp;
  cp.system = ParticleSystem(n);
  cp.system.set_mass(parse_double(mass_tok, "mass"));
  cp.box_edge = parse_double(box_tok, "box edge");
  cp.step = step;
  EMDPA_REQUIRE(cp.box_edge > 0.0, "checkpoint box edge must be positive");

  for (std::size_t i = 0; i < n; ++i) {
    std::string t[9];
    for (auto& tok : t) {
      if (!(in >> tok)) {
        throw RuntimeFailure("checkpoint: truncated at atom " +
                             std::to_string(i));
      }
    }
    cp.system.positions()[i] = {parse_double(t[0], "x"), parse_double(t[1], "y"),
                                parse_double(t[2], "z")};
    cp.system.velocities()[i] = {parse_double(t[3], "vx"),
                                 parse_double(t[4], "vy"),
                                 parse_double(t[5], "vz")};
    cp.system.accelerations()[i] = {parse_double(t[6], "ax"),
                                    parse_double(t[7], "ay"),
                                    parse_double(t[8], "az")};
  }
  return cp;
}

}  // namespace emdpa::md
