#include "md/backend.h"
#include "md/reference_kernel.h"

namespace emdpa::md {

RunResult HostReferenceBackend::run(const RunConfig& config) {
  Workload workload = make_lattice_workload(config.workload);

  ReferenceKernel kernel(MinImageStrategy::kRound);
  VelocityVerlet integrator(config.dt);

  RunResult result;
  result.backend_name = name();

  result.energies.push_back(
      integrator.prime(workload.system, workload.box, config.lj, kernel));
  for (int s = 0; s < config.steps; ++s) {
    result.energies.push_back(
        integrator.step(workload.system, workload.box, config.lj, kernel));
  }

  result.final_state = std::move(workload.system);
  return result;
}

}  // namespace emdpa::md
