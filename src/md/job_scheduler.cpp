#include "md/job_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/error.h"
#include "core/fault_injection.h"
#include "core/job_queue.h"
#include "md/batch_journal.h"
#include "md/health.h"

namespace emdpa::md {

namespace fs = std::filesystem;

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kPending: return "pending";
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kInterrupted: return "interrupted";
    case JobStatus::kQuarantined: return "quarantined";
  }
  return "unknown";
}

std::size_t BatchResult::count(JobStatus status) const {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(),
                    [&](const JobResult& j) { return j.status == status; }));
}

namespace {

bool filesystem_safe(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool job_finished(JobStatus status) {
  return status == JobStatus::kCompleted || status == JobStatus::kFailed ||
         status == JobStatus::kQuarantined;
}

std::string describe(const RuntimeFailure& error) {
  std::string text = error.what();
  if (!error.context().empty()) {
    text += " (" + error.context().to_string() + ")";
  }
  return text;
}

}  // namespace

JobScheduler::JobState::JobState(JobSpec s, std::string checkpoint_path,
                                 const RetryPolicy& merged_policy)
    : spec(std::move(s)),
      manager(std::move(checkpoint_path)),
      retry(merged_policy, spec.name),
      deadline_wall_seconds(merged_policy.deadline_wall_seconds),
      slice_budget(merged_policy.slice_budget) {
  result.name = spec.name;
  result.priority = spec.priority;
  result.steps_target = spec.config.steps;
}

JobScheduler::JobScheduler(std::vector<JobSpec> jobs, SchedulerOptions options)
    : options_(std::move(options)) {
  EMDPA_REQUIRE(!jobs.empty(), "scheduler: manifest has no jobs");
  EMDPA_REQUIRE(options_.slice_steps > 0,
                "scheduler: slice_steps must be positive");
  EMDPA_REQUIRE(options_.max_in_flight > 0,
                "scheduler: max_in_flight must be positive");
  EMDPA_REQUIRE(!options_.checkpoint_dir.empty(),
                "scheduler: checkpoint_dir is required (suspend state lives "
                "there)");
  EMDPA_REQUIRE(options_.retry.max_retries >= 0,
                "scheduler: max_retries must be non-negative");
  EMDPA_REQUIRE(options_.retry.deadline_wall_seconds >= 0.0,
                "scheduler: job deadline must be non-negative");

  std::error_code ec;
  fs::create_directories(options_.checkpoint_dir, ec);
  if (ec) {
    throw RuntimeFailure("scheduler: cannot create checkpoint directory '" +
                         options_.checkpoint_dir + "': " + ec.message());
  }

  const std::string journal_path =
      options_.journal_path.empty()
          ? (fs::path(options_.checkpoint_dir) / "batch.wal").string()
          : options_.journal_path;
  journal_ =
      std::make_unique<BatchJournal>(journal_path, options_.journal_max_bytes);

  jobs_.reserve(jobs.size());
  for (JobSpec& spec : jobs) {
    if (!filesystem_safe(spec.name)) {
      throw RuntimeFailure("scheduler: job name '" + spec.name +
                           "' is not filesystem-safe (use [A-Za-z0-9._-])");
    }
    EMDPA_REQUIRE(spec.config.steps > 0, "scheduler: job '" + spec.name +
                                             "' has no steps to run");
    for (const JobState& existing : jobs_) {
      if (existing.spec.name == spec.name) {
        throw RuntimeFailure("scheduler: duplicate job name '" + spec.name +
                             "'");
      }
    }
    RetryPolicy merged = options_.retry;
    if (spec.max_retries) merged.max_retries = *spec.max_retries;
    if (spec.deadline_seconds) {
      merged.deadline_wall_seconds = *spec.deadline_seconds;
    }
    if (spec.slice_budget) merged.slice_budget = *spec.slice_budget;
    EMDPA_REQUIRE(merged.max_retries >= 0, "scheduler: job '" + spec.name +
                                               "' has a negative retry budget");
    EMDPA_REQUIRE(merged.deadline_wall_seconds >= 0.0,
                  "scheduler: job '" + spec.name + "' has a negative deadline");
    const std::string path =
        (fs::path(options_.checkpoint_dir) / (spec.name + ".ckpt")).string();
    jobs_.emplace_back(std::move(spec), path, merged);
  }
}

JobScheduler::~JobScheduler() = default;

std::string JobScheduler::marker_path(const JobState& job) const {
  return (fs::path(options_.checkpoint_dir) / (job.spec.name + ".done"))
      .string();
}

// Completion markers make batch resume idempotent: a finished job (success
// OR isolated failure OR quarantine) is never re-run when the same manifest
// is pointed at the same checkpoint directory again.  Plain key/value text,
// one line each.
void JobScheduler::write_marker(const JobState& job) const {
  std::ofstream out(marker_path(job), std::ios::trunc);
  out << "status " << to_string(job.result.status) << "\n";
  out << "steps " << job.result.steps_done << "\n";
  out << "attempts " << job.result.attempts << "\n";
  out << "kinetic " << std::hexfloat << job.result.final_energies.kinetic
      << "\n";
  out << "potential " << job.result.final_energies.potential << "\n";
  if (!job.result.error.empty()) {
    std::string one_line = job.result.error;
    std::replace(one_line.begin(), one_line.end(), '\n', ' ');
    out << "error " << one_line << "\n";
  }
}

bool JobScheduler::load_marker(JobState& job) const {
  std::ifstream in(marker_path(job));
  if (!in) return false;
  std::string line;
  JobStatus status = JobStatus::kPending;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "status") {
      std::string value;
      ls >> value;
      if (value == "completed") status = JobStatus::kCompleted;
      else if (value == "failed") status = JobStatus::kFailed;
      else if (value == "quarantined") status = JobStatus::kQuarantined;
    } else if (key == "steps") {
      ls >> job.result.steps_done;
    } else if (key == "attempts") {
      ls >> job.result.attempts;
    } else if (key == "kinetic" || key == "potential") {
      // %a hexfloat: istream extraction cannot parse it, strtod can.
      std::string value;
      ls >> value;
      const double parsed = std::strtod(value.c_str(), nullptr);
      (key == "kinetic" ? job.result.final_energies.kinetic
                        : job.result.final_energies.potential) = parsed;
    } else if (key == "error") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      job.result.error = rest;
    }
  }
  if (!job_finished(status)) return false;  // torn or foreign file: re-run
  job.result.status = status;
  return true;
}

void JobScheduler::ensure_resident(JobState& job) {
  job.last_scheduled = ++schedule_clock_;
  if (job.sim) return;

  // Injection site md.job_spawn: bringing the job's Simulation up fails —
  // allocation pressure, an unreadable checkpoint device.  The proven
  // recovery is supervision: the failure costs one retry (with backoff),
  // and a persistently unspawnable job is quarantined, not the batch.
  if (fault::injected("md.job_spawn")) {
    throw RuntimeFailure("scheduler: injected spawn failure for job '" +
                         job.spec.name + "'");
  }

  const Simulation::Options sim_options =
      simulation_options_from(job.spec.config, options_.pool);

  // A checkpoint generation on disk (latest or rotated) means this job was
  // suspended or is being resumed from a previous batch: restore it
  // bit-exactly instead of starting over.  Config verification (v3) rides
  // the normal resume path, so a manifest edited to different arithmetic
  // fails THIS job loudly rather than silently forking its trajectory.
  const bool has_checkpoint = fs::exists(job.manager.path()) ||
                              fs::exists(job.manager.previous_path());
  if (has_checkpoint) {
    CheckpointLoad loaded = job.manager.load();
    job.sim.emplace(
        Simulation::resume(std::move(loaded.checkpoint), sim_options));
    job.result.resumed = true;
  } else {
    job.sim.emplace(sim_options);
  }
}

void JobScheduler::run_slice(JobState& job, std::uint64_t round) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    // Deadline budgets gate the slice before any work: slices are metered
    // cumulatively across every process that ran this job (journal-restored
    // total_slices), wall clock per process.
    HealthMonitor::enforce_deadline(job.spec.name, job.result.wall_seconds,
                                    job.deadline_wall_seconds,
                                    job.total_slices, job.slice_budget);
    ensure_resident(job);
    Simulation& sim = *job.sim;
    const long remaining = job.spec.config.steps - sim.current_step();
    if (remaining > 0) {
      sim.run(static_cast<int>(
          std::min<long>(options_.slice_steps, remaining)));
    }
    ++job.result.slices;
    ++job.total_slices;
    job.result.steps_done = sim.current_step();
    job.result.final_energies = sim.last_energies();
    job.result.degraded = sim.degraded();

    // Suspend = checkpoint.  save() is a bitwise synchronisation point, so
    // resuming this file continues the exact trajectory; a transient I/O
    // failure leaves the committed generations intact but means the only
    // up-to-date state is in memory — pin the job resident until a later
    // suspend commits.  A no-op completion slice (journal `done` whose
    // marker never landed) skips the save: the on-disk generation is
    // already final, and re-rotating it would re-open the rename window a
    // kill could land in — leaving a completed job with only a `.prev`.
    if (remaining > 0) {
      try {
        job.manager.save([&](std::ostream& out) { sim.save(out); });
        ++job.result.checkpoint_saves;
        job.pinned = false;
      } catch (const RuntimeFailure&) {
        job.pinned = true;
      }
    }

    JournalRecord rec;
    rec.event = JournalEvent::kSlice;
    rec.job = job.spec.name;
    rec.steps = job.result.steps_done;
    journal_->record(rec);

    if (sim.current_step() >= job.spec.config.steps) complete(job);
  } catch (const DeadlineExceeded& e) {
    // Deadline exhaustion is a policy verdict, not a transient fault:
    // quarantine immediately without spending retry budget.
    quarantine(job, describe(e));
  } catch (const RuntimeFailure& e) {
    supervise_failure(job, e, round);
  }
  job.result.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

// Supervision verdict for a failed slice.  ContractViolation (programming
// error) is deliberately NOT caught anywhere on this path and still aborts
// the whole batch.
void JobScheduler::supervise_failure(JobState& job,
                                     const RuntimeFailure& error,
                                     std::uint64_t round) {
  const RetryState::Verdict verdict = job.retry.on_failure();
  job.result.attempts = verdict.attempts;
  switch (verdict.action) {
    case FailureAction::kRetry: {
      job.result.error = describe(error);
      salvage(job);
      job.retry_waiting = true;
      job.release_round = round + verdict.delay_rounds;
      JournalRecord rec;
      rec.event = JournalEvent::kRetry;
      rec.job = job.spec.name;
      rec.attempt = verdict.attempts;
      rec.delay = verdict.delay_rounds;
      rec.detail = job.result.error;
      journal_->record(rec);
      break;
    }
    case FailureAction::kQuarantine:
      quarantine(job, describe(error));
      break;
    case FailureAction::kFail:
      fail(job, error);
      break;
  }
}

// Preserve the last finite state for post-mortem (or retry) resume, then
// drop residency; never let the rescue attempt mask the original failure.
void JobScheduler::salvage(JobState& job) {
  if (!job.sim) return;
  job.result.steps_done = job.sim->current_step();
  job.result.final_energies = job.sim->last_energies();
  job.result.degraded = job.sim->degraded();
  if (state_is_finite(job.sim->system())) {
    try {
      job.manager.save([&](std::ostream& out) { job.sim->save(out); });
      ++job.result.checkpoint_saves;
    } catch (...) {
    }
  }
  job.sim.reset();
  job.pinned = false;
}

void JobScheduler::complete(JobState& job) {
  job.result.final_state = job.sim->system();
  job.result.error.clear();  // a retried job that recovered is healthy
  JournalRecord rec;
  rec.event = JournalEvent::kDone;
  rec.job = job.spec.name;
  rec.steps = job.result.steps_done;
  journal_->record(rec);
  finish(job, JobStatus::kCompleted);
}

// Fault isolation: any RuntimeFailure — NumericalFailure from the physics
// or the watchdog, a corrupt checkpoint, a config mismatch on resume —
// fails this job only.  Reached when the retry budget is zero (the
// pre-supervision verdict: one failure fails the job).
void JobScheduler::fail(JobState& job, const RuntimeFailure& error) {
  job.result.error = describe(error);
  salvage(job);
  JournalRecord rec;
  rec.event = JournalEvent::kFail;
  rec.job = job.spec.name;
  rec.attempt = job.result.attempts;
  rec.detail = job.result.error;
  journal_->record(rec);
  finish(job, JobStatus::kFailed);
}

// Retry budget or deadline exhausted: set the job aside with its attempt
// history instead of aborting the batch or eating its wall clock forever.
void JobScheduler::quarantine(JobState& job, const std::string& reason) {
  job.result.error = reason;
  salvage(job);
  JournalRecord rec;
  rec.event = JournalEvent::kQuarantine;
  rec.job = job.spec.name;
  rec.attempt = job.result.attempts;
  rec.detail = reason;
  journal_->record(rec);
  finish(job, JobStatus::kQuarantined);
}

void JobScheduler::finish(JobState& job, JobStatus status) {
  job.result.status = status;
  write_marker(job);
  job.sim.reset();
  job.pinned = false;
  job.retry_waiting = false;
}

// Backpressure: evict the least-recently-scheduled unpinned resident until
// at most max_in_flight jobs hold live Simulation state.  Eviction is free
// of information loss — the suspend checkpoint just committed is the exact
// state — it only trades memory for the resume parse on the next slice.
void JobScheduler::evict_over_limit() {
  while (true) {
    std::size_t resident = 0;
    JobState* victim = nullptr;
    for (JobState& job : jobs_) {
      if (!job.sim) continue;
      ++resident;
      if (job.pinned) continue;
      if (!victim || job.last_scheduled < victim->last_scheduled) {
        victim = &job;
      }
    }
    if (resident <= options_.max_in_flight || !victim) return;
    victim->sim.reset();
  }
}

// Fold one job's replayed journal state into its in-memory supervision
// state.  Physics state is NOT taken from the journal — the checkpoint is
// the ground truth there; the journal owns attempt counters, backoff
// position, cumulative slice count and queue recency.
void JobScheduler::reconcile(JobState& job, const ReplayedJob& replayed) {
  job.retry.restore_attempts(replayed.attempts);
  job.result.attempts = replayed.attempts;
  job.result.steps_done = replayed.steps_done;
  job.total_slices = replayed.slices;
  job.last_event = replayed.last_event;
  if (replayed.retrying) {
    // The dead process had this job mid-backoff; serve the full recorded
    // delay from the new batch's round zero.
    job.retry_waiting = true;
    job.release_round = replayed.retry_delay;
    job.result.error = replayed.detail;
  }
}

// Rotate the journal down to one state snapshot per job.  Unfinished jobs
// are emitted least-recently-scheduled first so a replay of the compacted
// segment rebuilds the same round-robin position.
void JobScheduler::compact_journal(std::uint64_t round) {
  std::vector<std::size_t> unfinished;
  std::vector<JournalRecord> snapshot;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobState& job = jobs_[i];
    if (!job_finished(job.result.status)) {
      unfinished.push_back(i);
      continue;
    }
    JournalRecord admit;
    admit.event = JournalEvent::kAdmit;
    admit.job = job.spec.name;
    admit.priority = job.spec.priority;
    snapshot.push_back(admit);
    JournalRecord terminal;
    terminal.job = job.spec.name;
    terminal.steps = job.result.steps_done;
    terminal.attempt = job.result.attempts;
    terminal.detail = job.result.error;
    terminal.event = job.result.status == JobStatus::kCompleted
                         ? JournalEvent::kDone
                         : job.result.status == JobStatus::kFailed
                               ? JournalEvent::kFail
                               : JournalEvent::kQuarantine;
    snapshot.push_back(terminal);
  }
  std::stable_sort(unfinished.begin(), unfinished.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs_[a].last_scheduled < jobs_[b].last_scheduled;
                   });
  for (const std::size_t i : unfinished) {
    const JobState& job = jobs_[i];
    JournalRecord admit;
    admit.event = JournalEvent::kAdmit;
    admit.job = job.spec.name;
    admit.priority = job.spec.priority;
    snapshot.push_back(admit);
    if (job.total_slices > 0) {
      JournalRecord slice;
      slice.event = JournalEvent::kSlice;
      slice.job = job.spec.name;
      slice.steps = job.result.steps_done;
      slice.slices = job.total_slices;
      snapshot.push_back(slice);
    }
    if (job.result.attempts > 0) {
      // Re-arm the retry counter (and any backoff still being served) for
      // a replay of this snapshot; delay 0 means immediately runnable.
      JournalRecord retry;
      retry.event = JournalEvent::kRetry;
      retry.job = job.spec.name;
      retry.attempt = job.result.attempts;
      retry.delay = job.retry_waiting && job.release_round > round
                        ? job.release_round - round
                        : 0;
      retry.detail = job.result.error;
      snapshot.push_back(retry);
    }
  }
  journal_->compact(snapshot);
}

BatchResult JobScheduler::run() {
  EMDPA_REQUIRE(!ran_, "scheduler: run() is callable once");
  ran_ = true;

  // ---- Replay: reconstruct the dead (or previous) batch's supervision
  // state from the journal.
  const BatchJournal::Replay replayed = journal_->replay();

  // ---- Reconcile against the per-job ground truth on disk.
  for (JobState& job : jobs_) {
    const auto it = replayed.jobs.find(job.spec.name);
    const ReplayedJob* from_journal =
        it == replayed.jobs.end() ? nullptr : &it->second;
    if (from_journal != nullptr) reconcile(job, *from_journal);

    // A completion marker from a previous batch over the same checkpoint
    // directory keeps its verdict.
    if (load_marker(job)) {
      job.result.resumed = true;
      continue;
    }
    if (from_journal == nullptr) continue;

    // Journal terminal verdict whose marker never landed (killed between
    // the journal append and the marker write): honour the journal for
    // fail/quarantine — the verdict and its attempt history are exactly
    // what the WAL exists to preserve.  A `done` without a marker instead
    // re-enters the queue and completes in one no-op slice off its final
    // checkpoint, re-deriving the marker energies from the physics state.
    if (from_journal->status == JobStatus::kFailed ||
        from_journal->status == JobStatus::kQuarantined) {
      job.result.status = from_journal->status;
      job.result.error = from_journal->detail;
      write_marker(job);
    }
  }

  // ---- Resume: rebuild the runnable queue in journal-recency order, so
  // the round-robin position survives the crash.  Jobs the journal has
  // never seen sort after every replayed record, in manifest order.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (job_finished(jobs_[i].result.status)) continue;
    JobState& job = jobs_[i];
    if (job.last_event == 0) job.last_event = replayed.records + 1 + i;
    order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs_[a].last_event < jobs_[b].last_event;
                   });

  journal_->open_for_append();
  JobQueue queue;
  std::vector<std::size_t> waiting;  // mid-backoff, runnable at release_round
  for (const std::size_t idx : order) {
    JobState& job = jobs_[idx];
    if (replayed.jobs.find(job.spec.name) == replayed.jobs.end()) {
      JournalRecord rec;
      rec.event = JournalEvent::kAdmit;
      rec.job = job.spec.name;
      rec.priority = job.spec.priority;
      journal_->record(rec);
    }
    if (job.retry_waiting) waiting.push_back(idx);
    else queue.push(idx, job.spec.priority);
  }

  BatchResult batch;
  std::uint64_t round = 0;
  while (true) {
    // Release backoff waiters that have served their delay, in insertion
    // order (deterministic: insertion follows journal/queue order).
    for (auto it = waiting.begin(); it != waiting.end();) {
      JobState& job = jobs_[*it];
      if (job.release_round <= round) {
        job.retry_waiting = false;
        queue.push(*it, job.spec.priority);
        it = waiting.erase(it);
      } else {
        ++it;
      }
    }
    if (queue.empty()) {
      if (waiting.empty()) break;
      // Everyone runnable is backing off: fast-forward the round counter
      // to the earliest release instead of spinning.
      std::uint64_t earliest = jobs_[waiting.front()].release_round;
      for (const std::size_t idx : waiting) {
        earliest = std::min(earliest, jobs_[idx].release_round);
      }
      round = earliest;
      continue;
    }
    if (options_.stop_requested && options_.stop_requested()) {
      batch.interrupted = true;
      JournalRecord rec;
      rec.event = JournalEvent::kInterrupt;
      journal_->record(rec);
      break;
    }
    ++round;
    JobState& job = jobs_[queue.pop()];
    run_slice(job, round);
    if (!job_finished(job.result.status)) {
      const std::size_t idx = static_cast<std::size_t>(&job - jobs_.data());
      if (job.retry_waiting) waiting.push_back(idx);
      else queue.push(idx, job.spec.priority);
    }
    evict_over_limit();
    if (journal_->over_segment_bound()) compact_journal(round);
  }

  if (batch.interrupted) {
    // Drain: the last slice of every resident job was checkpointed by its
    // suspend, so dropping the in-memory state loses nothing — re-running
    // the batch resumes each interrupted job from its last slice boundary
    // (and the journal replays its retry/backoff position).
    for (JobState& job : jobs_) {
      if (job_finished(job.result.status)) continue;
      job.result.status = JobStatus::kInterrupted;
      job.sim.reset();
    }
  }

  batch.jobs.reserve(jobs_.size());
  for (JobState& job : jobs_) batch.jobs.push_back(std::move(job.result));
  return batch;
}

}  // namespace emdpa::md
