#include "md/job_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/error.h"
#include "core/job_queue.h"
#include "md/health.h"

namespace emdpa::md {

namespace fs = std::filesystem;

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kPending: return "pending";
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kInterrupted: return "interrupted";
  }
  return "unknown";
}

std::size_t BatchResult::count(JobStatus status) const {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(),
                    [&](const JobResult& j) { return j.status == status; }));
}

namespace {

bool filesystem_safe(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool job_finished(JobStatus status) {
  return status == JobStatus::kCompleted || status == JobStatus::kFailed;
}

std::string describe(const RuntimeFailure& error) {
  std::string text = error.what();
  if (!error.context().empty()) {
    text += " (" + error.context().to_string() + ")";
  }
  return text;
}

}  // namespace

JobScheduler::JobState::JobState(JobSpec s, std::string checkpoint_path)
    : spec(std::move(s)), manager(std::move(checkpoint_path)) {
  result.name = spec.name;
  result.priority = spec.priority;
  result.steps_target = spec.config.steps;
}

JobScheduler::JobScheduler(std::vector<JobSpec> jobs, SchedulerOptions options)
    : options_(std::move(options)) {
  EMDPA_REQUIRE(!jobs.empty(), "scheduler: manifest has no jobs");
  EMDPA_REQUIRE(options_.slice_steps > 0,
                "scheduler: slice_steps must be positive");
  EMDPA_REQUIRE(options_.max_in_flight > 0,
                "scheduler: max_in_flight must be positive");
  EMDPA_REQUIRE(!options_.checkpoint_dir.empty(),
                "scheduler: checkpoint_dir is required (suspend state lives "
                "there)");

  std::error_code ec;
  fs::create_directories(options_.checkpoint_dir, ec);
  if (ec) {
    throw RuntimeFailure("scheduler: cannot create checkpoint directory '" +
                         options_.checkpoint_dir + "': " + ec.message());
  }

  jobs_.reserve(jobs.size());
  for (JobSpec& spec : jobs) {
    if (!filesystem_safe(spec.name)) {
      throw RuntimeFailure("scheduler: job name '" + spec.name +
                           "' is not filesystem-safe (use [A-Za-z0-9._-])");
    }
    EMDPA_REQUIRE(spec.config.steps > 0, "scheduler: job '" + spec.name +
                                             "' has no steps to run");
    for (const JobState& existing : jobs_) {
      if (existing.spec.name == spec.name) {
        throw RuntimeFailure("scheduler: duplicate job name '" + spec.name +
                             "'");
      }
    }
    const std::string path =
        (fs::path(options_.checkpoint_dir) / (spec.name + ".ckpt")).string();
    jobs_.emplace_back(std::move(spec), path);
  }
}

std::string JobScheduler::marker_path(const JobState& job) const {
  return (fs::path(options_.checkpoint_dir) / (job.spec.name + ".done"))
      .string();
}

// Completion markers make batch resume idempotent: a finished job (success
// OR isolated failure) is never re-run when the same manifest is pointed at
// the same checkpoint directory again.  Plain key/value text, one line each.
void JobScheduler::write_marker(const JobState& job) const {
  std::ofstream out(marker_path(job), std::ios::trunc);
  out << "status " << to_string(job.result.status) << "\n";
  out << "steps " << job.result.steps_done << "\n";
  out << "kinetic " << std::hexfloat << job.result.final_energies.kinetic
      << "\n";
  out << "potential " << job.result.final_energies.potential << "\n";
  if (!job.result.error.empty()) {
    std::string one_line = job.result.error;
    std::replace(one_line.begin(), one_line.end(), '\n', ' ');
    out << "error " << one_line << "\n";
  }
}

bool JobScheduler::load_marker(JobState& job) const {
  std::ifstream in(marker_path(job));
  if (!in) return false;
  std::string line;
  JobStatus status = JobStatus::kPending;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "status") {
      std::string value;
      ls >> value;
      if (value == "completed") status = JobStatus::kCompleted;
      else if (value == "failed") status = JobStatus::kFailed;
    } else if (key == "steps") {
      ls >> job.result.steps_done;
    } else if (key == "kinetic" || key == "potential") {
      // %a hexfloat: istream extraction cannot parse it, strtod can.
      std::string value;
      ls >> value;
      const double parsed = std::strtod(value.c_str(), nullptr);
      (key == "kinetic" ? job.result.final_energies.kinetic
                        : job.result.final_energies.potential) = parsed;
    } else if (key == "error") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      job.result.error = rest;
    }
  }
  if (!job_finished(status)) return false;  // torn or foreign file: re-run
  job.result.status = status;
  return true;
}

void JobScheduler::ensure_resident(JobState& job) {
  job.last_scheduled = ++schedule_clock_;
  if (job.sim) return;

  const Simulation::Options sim_options =
      simulation_options_from(job.spec.config, options_.pool);

  // A checkpoint generation on disk (latest or rotated) means this job was
  // suspended or is being resumed from a previous batch: restore it
  // bit-exactly instead of starting over.  Config verification (v3) rides
  // the normal resume path, so a manifest edited to different arithmetic
  // fails THIS job loudly rather than silently forking its trajectory.
  const bool has_checkpoint = fs::exists(job.manager.path()) ||
                              fs::exists(job.manager.previous_path());
  if (has_checkpoint) {
    CheckpointLoad loaded = job.manager.load();
    job.sim.emplace(
        Simulation::resume(std::move(loaded.checkpoint), sim_options));
    job.result.resumed = true;
  } else {
    job.sim.emplace(sim_options);
  }
}

void JobScheduler::run_slice(JobState& job) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    ensure_resident(job);
    Simulation& sim = *job.sim;
    const long remaining = job.spec.config.steps - sim.current_step();
    if (remaining > 0) {
      sim.run(static_cast<int>(
          std::min<long>(options_.slice_steps, remaining)));
    }
    ++job.result.slices;
    job.result.steps_done = sim.current_step();
    job.result.final_energies = sim.last_energies();
    job.result.degraded = sim.degraded();

    // Suspend = checkpoint.  save() is a bitwise synchronisation point, so
    // resuming this file continues the exact trajectory; a transient I/O
    // failure leaves the committed generations intact but means the only
    // up-to-date state is in memory — pin the job resident until a later
    // suspend commits.
    try {
      job.manager.save([&](std::ostream& out) { sim.save(out); });
      ++job.result.checkpoint_saves;
      job.pinned = false;
    } catch (const RuntimeFailure&) {
      job.pinned = true;
    }

    if (sim.current_step() >= job.spec.config.steps) complete(job);
  } catch (const RuntimeFailure& e) {
    fail(job, e);
  }
  job.result.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

void JobScheduler::complete(JobState& job) {
  job.result.status = JobStatus::kCompleted;
  job.result.final_state = job.sim->system();
  finish(job, JobStatus::kCompleted);
}

// Fault isolation: any RuntimeFailure — NumericalFailure from the physics
// or the watchdog, a corrupt checkpoint, a config mismatch on resume —
// fails this job only.  Mirrors the single-run backend's checkpoint-then-
// abort: preserve the last finite state for post-mortem resume, never let
// the rescue attempt mask the original failure.  ContractViolation
// (programming error) is NOT caught and still aborts the whole batch.
void JobScheduler::fail(JobState& job, const RuntimeFailure& error) {
  job.result.error = describe(error);
  if (job.sim) {
    job.result.steps_done = job.sim->current_step();
    job.result.final_energies = job.sim->last_energies();
    job.result.degraded = job.sim->degraded();
    if (state_is_finite(job.sim->system())) {
      try {
        job.manager.save([&](std::ostream& out) { job.sim->save(out); });
        ++job.result.checkpoint_saves;
      } catch (...) {
      }
    }
  }
  finish(job, JobStatus::kFailed);
}

void JobScheduler::finish(JobState& job, JobStatus status) {
  job.result.status = status;
  write_marker(job);
  job.sim.reset();
  job.pinned = false;
}

// Backpressure: evict the least-recently-scheduled unpinned resident until
// at most max_in_flight jobs hold live Simulation state.  Eviction is free
// of information loss — the suspend checkpoint just committed is the exact
// state — it only trades memory for the resume parse on the next slice.
void JobScheduler::evict_over_limit() {
  while (true) {
    std::size_t resident = 0;
    JobState* victim = nullptr;
    for (JobState& job : jobs_) {
      if (!job.sim) continue;
      ++resident;
      if (job.pinned) continue;
      if (!victim || job.last_scheduled < victim->last_scheduled) {
        victim = &job;
      }
    }
    if (resident <= options_.max_in_flight || !victim) return;
    victim->sim.reset();
  }
}

BatchResult JobScheduler::run() {
  EMDPA_REQUIRE(!ran_, "scheduler: run() is callable once");
  ran_ = true;

  JobQueue queue;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    JobState& job = jobs_[i];
    // A completion marker from a previous batch over the same checkpoint
    // directory keeps its verdict; everything else (re)enters the queue.
    if (load_marker(job)) {
      job.result.resumed = true;
      continue;
    }
    queue.push(i, job.spec.priority);
  }

  BatchResult batch;
  while (!queue.empty()) {
    if (options_.stop_requested && options_.stop_requested()) {
      batch.interrupted = true;
      break;
    }
    JobState& job = jobs_[queue.pop()];
    run_slice(job);
    if (!job_finished(job.result.status)) {
      queue.push(static_cast<std::size_t>(&job - jobs_.data()),
                 job.spec.priority);
    }
    evict_over_limit();
  }

  if (batch.interrupted) {
    // Drain: the last slice of every resident job was checkpointed by its
    // suspend, so dropping the in-memory state loses nothing — re-running
    // the batch resumes each interrupted job from its last slice boundary.
    for (JobState& job : jobs_) {
      if (job_finished(job.result.status)) continue;
      job.result.status = JobStatus::kInterrupted;
      job.sim.reset();
    }
  }

  batch.jobs.reserve(jobs_.size());
  for (JobState& job : jobs_) batch.jobs.push_back(std::move(job.result));
  return batch;
}

}  // namespace emdpa::md
