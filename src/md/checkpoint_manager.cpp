#include "md/checkpoint_manager.h"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "core/error.h"
#include "core/fault_injection.h"
#include "core/wal.h"

namespace emdpa::md {

namespace fs = std::filesystem;

CheckpointManager::CheckpointManager(std::string path) : path_(std::move(path)) {
  EMDPA_REQUIRE(!path_.empty(), "checkpoint path must not be empty");
}

void CheckpointManager::save(const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = temp_path();
  // Serialise to the side file.  Any failure from here on must leave the
  // committed generations exactly as they were.
  try {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw RuntimeFailure("checkpoint: cannot open '" + tmp + "' for writing");
    }
    writer(out);
    if (fault::injected("md.checkpoint_io")) {
      throw RuntimeFailure("checkpoint: injected EIO writing '" + tmp + "'");
    }
    out.flush();
    if (!out) {
      throw RuntimeFailure("checkpoint: write to '" + tmp + "' failed");
    }
    out.close();
    // Durability, not just atomicity: the rename below publishes whatever
    // the page cache holds, so the temp file's DATA must be on stable
    // storage first or a power loss can commit a hole.
    fsync_file(tmp);
  } catch (...) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw;
  }

  // Commit: rotate latest -> previous, then promote the temp file.  Both
  // renames are atomic; a crash between them leaves `.prev` plus the
  // complete temp file, so at least one loadable generation survives.
  std::error_code ec;
  if (fs::exists(path_, ec)) {
    fs::rename(path_, previous_path(), ec);
    if (ec) {
      throw RuntimeFailure("checkpoint: cannot rotate '" + path_ + "' to '" +
                           previous_path() + "': " + ec.message());
    }
  }
  fs::rename(tmp, path_, ec);
  if (ec) {
    throw RuntimeFailure("checkpoint: cannot commit '" + tmp + "' to '" + path_ +
                         "': " + ec.message());
  }
  // The renames are atomic but not durable until the DIRECTORY is fsynced —
  // a power loss can roll the directory back to pre-rename while the data
  // blocks survive.  Injection site md.dir_fsync: the caller sees a failed
  // save (and retries or pins); the previously committed generations stay
  // loadable either way.
  if (fault::injected("md.dir_fsync")) {
    throw RuntimeFailure("checkpoint: injected EIO fsyncing directory of '" +
                         path_ + "'");
  }
  fsync_parent_directory(path_);
  ++saves_;
}

void CheckpointManager::save(const ParticleSystem& system, const PeriodicBox& box,
                             long step, double potential) {
  save([&](std::ostream& out) {
    save_checkpoint(out, system, box, step, potential);
  });
}

Checkpoint CheckpointManager::load_file(const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    throw RuntimeFailure("checkpoint: cannot open '" + file + "'");
  }
  return load_checkpoint(in);
}

CheckpointLoad CheckpointManager::load() const {
  std::string latest_error;
  try {
    return {load_file(path_), path_, /*used_fallback=*/false};
  } catch (const RuntimeFailure& e) {
    latest_error = e.what();
  }
  try {
    return {load_file(previous_path()), previous_path(), /*used_fallback=*/true};
  } catch (const RuntimeFailure& e) {
    throw RuntimeFailure("checkpoint: no loadable generation at '" + path_ +
                         "' (latest: " + latest_error +
                         "; previous: " + e.what() + ")");
  }
}

}  // namespace emdpa::md
