#include "md/watch.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "core/error.h"

namespace emdpa::md {

namespace {

const char* const kKnown[] = {"energy", "ke", "pe", "max_disp"};

bool known(const std::string& name) {
  return std::find(std::begin(kKnown), std::end(kKnown), name) !=
         std::end(kKnown);
}

std::string format_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::vector<std::string> WatchEmitter::parse_spec(const std::string& spec) {
  std::vector<std::string> names;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string name = spec.substr(begin, end - begin);
    if (!name.empty()) {
      if (!known(name)) {
        throw RuntimeFailure("watch: unknown observable '" + name +
                             "' (known: energy, ke, pe, max_disp)");
      }
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
    begin = end + 1;
  }
  if (names.empty()) {
    throw RuntimeFailure("watch: empty observable list");
  }
  return names;
}

WatchEmitter::WatchEmitter(const std::string& spec, int every,
                           const ParticleSystem& initial,
                           const PeriodicBox& box)
    : observables_(parse_spec(spec)),
      every_(every),
      baseline_(initial.positions()),
      box_(box) {
  EMDPA_REQUIRE(every_ >= 1, "watch interval must be >= 1");
}

void WatchEmitter::emit(std::ostream& out, long step,
                        const StepEnergies& energies,
                        const ParticleSystem& system, const char* tag) const {
  out << "watch";
  if (tag != nullptr) out << " side=" << tag;
  out << " step=" << step;
  for (const std::string& name : observables_) {
    double value = 0.0;
    if (name == "energy") {
      value = energies.total();
    } else if (name == "ke") {
      value = energies.kinetic;
    } else if (name == "pe") {
      value = energies.potential;
    } else if (name == "max_disp") {
      const std::size_t n =
          std::min(baseline_.size(), system.positions().size());
      for (std::size_t i = 0; i < n; ++i) {
        const Vec3d dr =
            box_.min_image(system.positions()[i] - baseline_[i]);
        value = std::max(value, std::sqrt(length_squared(dr)));
      }
    }
    out << ' ' << name << '=' << format_value(value);
  }
  out << '\n';
}

}  // namespace emdpa::md
