// Shared body of the four per-ISA row translation units
// (md/simd_rows_*.cpp): instantiate RowKernels<Real, Acc, S> for every
// precision combination and bundle the function pointers into a KernelRows
// table.  Included ONLY by those TUs — each instantiates exactly the one
// SimdType its -m flags permit, keeping every Pack's symbols inside a TU
// that may legally execute them.
#pragma once

#include "md/kernel_rows.h"
#include "md/simd_kernels.h"

namespace emdpa::md::simd_kernels {

template <simd::SimdType S>
KernelRows make_rows() {
  return KernelRows{
      S,
      simd::Pack<double, S>::kWidth,
      simd::Pack<float, S>::kWidth,
      &rows::RowKernels<double, double, S>::soa_rows,
      &rows::RowKernels<float, float, S>::soa_rows,
      &rows::RowKernels<float, double, S>::soa_rows,
      &rows::RowKernels<double, double, S>::list_rows,
      &rows::RowKernels<float, float, S>::list_rows,
      &rows::RowKernels<float, double, S>::list_rows,
  };
}

}  // namespace emdpa::md::simd_kernels
