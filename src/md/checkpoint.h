// Checkpointing: save and restore a complete simulation state (extension).
//
// Text format, versioned, round-trip exact: floating-point values are
// written as hex floats so a restored run continues bit-identically.
//
// Version 4 (written by save_checkpoint; versions 1–3 still load):
//
//   emdpa-checkpoint 4
//   atoms <N> mass <m> box <edge> step <k> pe <pe>
//   config kernel <kernel> precision <mode> simd <isa>     (optional line)
//   rng langevin <s0> <s1> <s2> <s3> <cached> <flag>       (optional line)
//   listref <N> cutoff <c>                                 (optional section)
//   <x> <y> <z>                                            (N lines, if listref)
//   <x> <y> <z> <vx> <vy> <vz> <ax> <ay> <az>              (N lines)
//   crc <8 hex digits>
//
// The footer is the CRC-32 of every byte before the "crc" line; a flipped
// bit, a truncated tail or a torn write fails verification, which is what
// lets CheckpointManager fall back to the previous generation instead of
// resuming from silent corruption.  The `pe` field carries the potential
// energy of the stored state so a resumed run can skip the re-priming force
// evaluation entirely — the stored accelerations ARE the primed state, the
// property the bitwise resume guarantee rests on.
//
// The two optional v3 lines close the resume-correctness holes the v2
// format left open:
//
//  * `config` records the force kernel, precision mode and dispatched SIMD
//    ISA that produced the state.  Earlier formats stored none of it, so
//    resuming an `sp`/`sse2` run under different flags silently continued
//    with different arithmetic — bitwise-identical-looking files, divergent
//    trajectories.  Simulation::resume now compares the recorded
//    configuration against the resumed run's resolved one and fails loudly
//    on any mismatch (Options::ignore_checkpoint_config / --resume-force
//    overrides explicitly).
//  * `rng langevin` carries the full Xoshiro256** state of the Langevin
//    thermostat — the four state words plus the cached Box–Muller second
//    deviate — so a resumed thermostatted run continues the identical noise
//    sequence instead of re-seeding and diverging.
//
// The optional v4 `listref` section carries the reference positions (and
// combined cutoff+skin radius) the active neighbour list was built from.
// The list build is a pure function of (positions, box, cutoff), so a
// restore can rebuild the IDENTICAL list from this section instead of
// forcing a sync-point rebuild from the current state.  That is what lets
// Simulation::snapshot() be a pure observer: a trajectory-store snapshot
// perturbs nothing (store-enabled runs stay bitwise identical to
// store-disabled runs), yet a replay restored from one continues
// bit-exactly.  Simulation::save() deliberately does NOT write the section
// — the checkpoint seam keeps its invalidate-on-save contract.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/random.h"
#include "md/box.h"
#include "md/particle_system.h"

namespace emdpa::md {

/// Run configuration recorded in a v3 checkpoint: the three knobs that
/// change the arithmetic of the trajectory without changing the state
/// layout.  Stored as the report-facing strings (to_string(SimKernel),
/// to_string(PrecisionMode), simd::to_string or "none") so the file stays
/// self-describing.
struct CheckpointConfig {
  std::string kernel;
  std::string precision;
  std::string simd;

  bool operator==(const CheckpointConfig& other) const = default;
};

struct Checkpoint {
  ParticleSystem system;
  double box_edge = 0.0;
  long step = 0;
  /// Potential energy of the stored state (version >= 2).
  double potential = 0.0;
  /// False for version-1 files, which predate the pe field; a resume from
  /// such a file must re-prime instead of trusting `potential`.
  bool has_potential = false;
  /// Producing run's configuration, when the writer recorded it (version 3
  /// files written by Simulation::save; absent in raw-state saves and older
  /// files, which resume unverified as before).
  std::optional<CheckpointConfig> config;
  /// Langevin thermostat RNG state, when one was attached at save time.
  std::optional<Rng::State> langevin_rng;
  /// Neighbour-list reference positions (v4 `listref` section): the
  /// positions the active list was built from, widened to double (exact for
  /// the sp/mixed float lists).  Written by Simulation::snapshot(), consumed
  /// by Simulation::resume() to reseed an identical list; absent in ordinary
  /// checkpoints, which keep the invalidate-on-save contract.
  std::optional<std::vector<emdpa::Vec3d>> list_ref;
  /// Combined cutoff+skin radius the list was built with (meaningful only
  /// when list_ref is set).
  double list_ref_cutoff = 0.0;
};

/// Serialise raw state to `out` (format version 4, no optional sections).
/// Throws RuntimeFailure on stream errors.
void save_checkpoint(std::ostream& out, const ParticleSystem& system,
                     const PeriodicBox& box, long step, double potential = 0.0);

/// Serialise a full checkpoint including the optional config, RNG and
/// listref sections.  `cp.has_potential` is ignored: v2+ always stores pe.
void save_checkpoint(std::ostream& out, const Checkpoint& cp);

/// Parse a checkpoint from `in`.  Accepts versions 1–4; versions >= 2 are
/// verified against their CRC footer.  Throws RuntimeFailure on malformed or
/// corrupt input (bad magic, wrong version, truncated atom records, checksum
/// mismatch, non-finite values).
Checkpoint load_checkpoint(std::istream& in);

}  // namespace emdpa::md
