// Checkpointing: save and restore a complete simulation state (extension).
//
// Text format, versioned, round-trip exact: floating-point values are
// written as hex floats so a restored run continues bit-identically.
//
//   emdpa-checkpoint 1
//   atoms <N> mass <m> box <edge> step <k>
//   <x> <y> <z> <vx> <vy> <vz> <ax> <ay> <az>     (N lines)
#pragma once

#include <iosfwd>

#include "md/box.h"
#include "md/particle_system.h"

namespace emdpa::md {

struct Checkpoint {
  ParticleSystem system;
  double box_edge = 0.0;
  long step = 0;
};

/// Serialise state to `out`.  Throws RuntimeFailure on stream errors.
void save_checkpoint(std::ostream& out, const ParticleSystem& system,
                     const PeriodicBox& box, long step);

/// Parse a checkpoint from `in`.  Throws RuntimeFailure on malformed input
/// (bad magic, wrong version, truncated atom records, trailing garbage).
Checkpoint load_checkpoint(std::istream& in);

}  // namespace emdpa::md
