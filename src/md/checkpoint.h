// Checkpointing: save and restore a complete simulation state (extension).
//
// Text format, versioned, round-trip exact: floating-point values are
// written as hex floats so a restored run continues bit-identically.
//
// Version 2 (written by save_checkpoint; version 1 files still load):
//
//   emdpa-checkpoint 2
//   atoms <N> mass <m> box <edge> step <k> pe <pe>
//   <x> <y> <z> <vx> <vy> <vz> <ax> <ay> <az>     (N lines)
//   crc <8 hex digits>
//
// The footer is the CRC-32 of every byte before the "crc" line; a flipped
// bit, a truncated tail or a torn write fails verification, which is what
// lets CheckpointManager fall back to the previous generation instead of
// resuming from silent corruption.  The `pe` field carries the potential
// energy of the stored state so a resumed run can skip the re-priming force
// evaluation entirely — the stored accelerations ARE the primed state, the
// property the bitwise resume guarantee rests on.
#pragma once

#include <iosfwd>

#include "md/box.h"
#include "md/particle_system.h"

namespace emdpa::md {

struct Checkpoint {
  ParticleSystem system;
  double box_edge = 0.0;
  long step = 0;
  /// Potential energy of the stored state (version >= 2).
  double potential = 0.0;
  /// False for version-1 files, which predate the pe field; a resume from
  /// such a file must re-prime instead of trusting `potential`.
  bool has_potential = false;
};

/// Serialise state to `out` (format version 2: pe field + CRC-32 footer).
/// Throws RuntimeFailure on stream errors.
void save_checkpoint(std::ostream& out, const ParticleSystem& system,
                     const PeriodicBox& box, long step, double potential = 0.0);

/// Parse a checkpoint from `in`.  Accepts versions 1 and 2; version 2 files
/// are verified against their CRC footer.  Throws RuntimeFailure on
/// malformed or corrupt input (bad magic, wrong version, truncated atom
/// records, checksum mismatch, non-finite values).
Checkpoint load_checkpoint(std::istream& in);

}  // namespace emdpa::md
