// Harmonic angle interactions (extension).
//
// Completes the minimal coarse-grained bio-molecular force field the paper's
// introduction motivates: bonds hold the backbone together (bonded.h), and
// angle terms  V(theta) = 1/2 * k * (theta - theta0)^2  over atom triples
// (i, j, k) — j the vertex — give chains stiffness.
#pragma once

#include <cstddef>
#include <vector>

#include "core/vec3.h"
#include "md/box.h"

namespace emdpa::md {

struct HarmonicAngle {
  std::size_t i = 0;       ///< first arm
  std::size_t j = 0;       ///< vertex
  std::size_t k = 0;       ///< second arm
  double stiffness = 1.0;  ///< k, reduced energy / rad^2
  double rest_angle = 0;   ///< theta0, radians
};

class AngleTopology {
 public:
  AngleTopology() = default;

  /// Add an angle; the three atoms must be distinct and the rest angle in
  /// (0, pi].
  void add_angle(HarmonicAngle angle);

  const std::vector<HarmonicAngle>& angles() const { return angles_; }
  std::size_t size() const { return angles_.size(); }

  /// Consecutive-triple angles along a linear chain 0-1-2-...-(n-1).
  static AngleTopology chain_angles(std::size_t n_atoms, double stiffness,
                                    double rest_angle);

  /// Accumulate angle forces into `accelerations` (adding) and return the
  /// angle potential energy.  Minimum-image arms, so angles work across the
  /// periodic boundary.
  double accumulate_forces(const std::vector<emdpa::Vec3d>& positions,
                           const PeriodicBox& box, double mass,
                           std::vector<emdpa::Vec3d>& accelerations) const;

 private:
  std::vector<HarmonicAngle> angles_;
};

}  // namespace emdpa::md
