#include "md/health.h"

#include <cmath>
#include <cstdio>

#include "core/error.h"

namespace emdpa::md {

namespace {

bool finite3(const Vec3d& v) {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

ErrorContext context_for(long step, const std::string& kernel) {
  ErrorContext ctx;
  ctx.step = step;
  ctx.kernel = kernel;
  return ctx;
}

}  // namespace

bool state_is_finite(const ParticleSystem& system) {
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (!finite3(system.positions()[i]) || !finite3(system.velocities()[i]) ||
        !finite3(system.accelerations()[i])) {
      return false;
    }
  }
  return true;
}

HealthMonitor::HealthMonitor(const HealthPolicy& policy) : policy_(policy) {
  EMDPA_REQUIRE(policy.check_every > 0, "health check interval must be positive");
  EMDPA_REQUIRE(policy.max_energy_drift > 0.0, "energy drift tolerance must be positive");
  EMDPA_REQUIRE(policy.max_step_displacement > 0.0,
                "step displacement limit must be positive");
}

void HealthMonitor::reset_baseline(const StepEnergies& energies) {
  baseline_total_ = energies.total();
}

void HealthMonitor::check(long step, const ParticleSystem& system,
                          const StepEnergies& energies, double dt,
                          const std::string& kernel, bool conserves_energy) {
  ++checks_;

  if (policy_.check_finite) {
    for (std::size_t i = 0; i < system.size(); ++i) {
      if (!finite3(system.positions()[i])) {
        throw NumericalFailure(
            "watchdog: non-finite position at atom " + std::to_string(i),
            context_for(step, kernel));
      }
      if (!finite3(system.velocities()[i]) ||
          !finite3(system.accelerations()[i])) {
        throw NumericalFailure(
            "watchdog: non-finite velocity/force at atom " + std::to_string(i),
            context_for(step, kernel));
      }
    }
    if (!std::isfinite(energies.total())) {
      throw NumericalFailure("watchdog: non-finite total energy",
                             context_for(step, kernel));
    }
  }

  // Fastest atom's per-step travel: an exploding integrator shows up here
  // one interval after the bad force, well before positions overflow.
  double max_speed_sq = 0.0;
  for (std::size_t i = 0; i < system.size(); ++i) {
    max_speed_sq = std::max(max_speed_sq, length_squared(system.velocities()[i]));
  }
  const double max_step = std::sqrt(max_speed_sq) * dt;
  if (max_step > policy_.max_step_displacement) {
    char msg[112];
    std::snprintf(msg, sizeof(msg),
                  "watchdog: displacement explosion (%.3g per step, limit %.3g)",
                  max_step, policy_.max_step_displacement);
    throw NumericalFailure(msg, context_for(step, kernel));
  }

  if (conserves_energy && baseline_total_) {
    const double drift = std::fabs(energies.total() - *baseline_total_) /
                         std::max(std::fabs(*baseline_total_), 1.0);
    if (drift > policy_.max_energy_drift) {
      char msg[112];
      std::snprintf(msg, sizeof(msg),
                    "watchdog: energy drift %.3g exceeds tolerance %.3g",
                    drift, policy_.max_energy_drift);
      throw NumericalFailure(msg, context_for(step, kernel));
    }
  }
}

void HealthMonitor::enforce_deadline(const std::string& job,
                                     double wall_seconds,
                                     double wall_budget_seconds,
                                     std::uint64_t slices,
                                     std::uint64_t slice_budget) {
  if (slice_budget > 0 && slices >= slice_budget) {
    throw DeadlineExceeded("deadline: job '" + job + "' exhausted its slice "
                           "budget (" + std::to_string(slices) + " of " +
                           std::to_string(slice_budget) + " slices used)");
  }
  if (wall_budget_seconds > 0 && wall_seconds >= wall_budget_seconds) {
    char msg[64];
    std::snprintf(msg, sizeof(msg), " (%.3gs of %.3gs used)", wall_seconds,
                  wall_budget_seconds);
    throw DeadlineExceeded("deadline: job '" + job +
                           "' exceeded its wall-clock budget" + msg);
  }
}

}  // namespace emdpa::md
