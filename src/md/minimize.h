// Energy minimisation (extension): steepest descent with adaptive step —
// the standard way to relax a constructed configuration (random packing,
// mutated structure) before dynamics, removing the overlaps that would blow
// up the integrator.
#pragma once

#include "md/force_kernel.h"
#include "md/particle_system.h"

namespace emdpa::md {

struct MinimizeOptions {
  int max_iterations = 1000;
  /// Stop when the largest force component magnitude falls below this.
  double force_tolerance = 1e-4;
  /// Initial displacement scale (reduced length per unit force).
  double initial_step = 1e-3;
  /// Cap on any atom's displacement per iteration.
  double max_displacement = 0.1;
};

struct MinimizeResult {
  int iterations = 0;
  bool converged = false;
  double initial_energy = 0;
  double final_energy = 0;
  double max_force = 0;  ///< at exit
};

/// Relax `system`'s positions toward a local potential-energy minimum using
/// `kernel`.  Velocities are untouched.  The step grows 10% after downhill
/// moves and halves after rejected (uphill) moves, which are rolled back.
MinimizeResult minimize_energy(ParticleSystem& system, const PeriodicBox& box,
                               const LjParams& lj, ForceKernel& kernel,
                               const MinimizeOptions& options = {});

}  // namespace emdpa::md
