// Langevin thermostat (extension).
//
// The Berendsen rescaler (thermostat.h) controls the mean temperature but
// produces no canonical fluctuations.  The Langevin thermostat couples each
// atom to an implicit solvent: per step, velocities are damped and kicked
// with Gaussian noise in the exact Ornstein-Uhlenbeck discretisation
//
//   v <- c1 * v + c2 * xi,   c1 = exp(-gamma*dt),
//                            c2 = sqrt(T/m * (1 - c1^2)),  xi ~ N(0,1)
//
// which samples the Maxwell-Boltzmann distribution at the target
// temperature for any dt.  Deterministically seeded, so runs reproduce.
#pragma once

#include <cstdint>

#include "core/random.h"
#include "md/particle_system.h"

namespace emdpa::md {

class LangevinThermostat {
 public:
  /// `target`: reduced temperature; `friction`: gamma, inverse reduced time.
  LangevinThermostat(double target, double friction, std::uint64_t seed);

  double target() const { return target_; }
  double friction() const { return friction_; }

  /// Apply one damping + noise sweep for time step `dt`.
  void apply(ParticleSystem& system, double dt);

  /// Checkpoint seam: the thermostat's full RNG state.  target/friction are
  /// parameters (re-supplied on resume, like dt); the noise stream position
  /// is *state* — without restoring it, a resumed run draws a different
  /// sequence and diverges from the uninterrupted one.
  Rng::State rng_state() const { return rng_.state(); }
  void restore_rng(const Rng::State& state) { rng_.restore(state); }

 private:
  double target_;
  double friction_;
  Rng rng_;
};

}  // namespace emdpa::md
