#include "md/bonded.h"

#include <cmath>

#include "core/error.h"

namespace emdpa::md {

void BondTopology::add_bond(HarmonicBond bond) {
  EMDPA_REQUIRE(bond.i != bond.j, "a bond must connect two distinct atoms");
  EMDPA_REQUIRE(bond.stiffness >= 0.0, "bond stiffness must be non-negative");
  EMDPA_REQUIRE(bond.rest_length >= 0.0, "bond rest length must be non-negative");
  bonds_.push_back(bond);
}

BondTopology BondTopology::linear_chain(std::size_t n_atoms, double stiffness,
                                        double rest_length) {
  BondTopology topo;
  for (std::size_t i = 0; i + 1 < n_atoms; ++i) {
    topo.add_bond({i, i + 1, stiffness, rest_length});
  }
  return topo;
}

double BondTopology::accumulate_forces(
    const std::vector<Vec3d>& positions, const PeriodicBox& box, double mass,
    std::vector<Vec3d>& accelerations) const {
  EMDPA_REQUIRE(accelerations.size() == positions.size(),
                "acceleration array must match position array");
  const double inv_mass = 1.0 / mass;
  double pe = 0.0;
  for (const auto& bond : bonds_) {
    EMDPA_REQUIRE(bond.i < positions.size() && bond.j < positions.size(),
                  "bond references an atom outside the system");
    const Vec3d dr = box.min_image(positions[bond.i] - positions[bond.j]);
    const double r = length(dr);
    const double stretch = r - bond.rest_length;
    pe += 0.5 * bond.stiffness * stretch * stretch;
    if (r > 0.0) {
      // F_i = -k * (r - r0) * unit(dr); equal and opposite on j.
      const Vec3d f = dr * (-bond.stiffness * stretch / r);
      accelerations[bond.i] += f * inv_mass;
      accelerations[bond.j] -= f * inv_mass;
    }
  }
  return pe;
}

}  // namespace emdpa::md
