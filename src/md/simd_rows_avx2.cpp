// AVX2 row kernels.  Built with -mavx2 -ffp-contract=off; reports "absent"
// when the compiler could not target AVX2.  The dispatcher only hands out
// this table on CPUs whose CPUID advertises AVX2, so no AVX2 instruction
// ever runs on a narrower machine.
#include "md/simd_rows_impl.h"

namespace emdpa::md::simd_kernels::detail {

#if defined(__AVX2__)
const KernelRows* rows_avx2() {
  static const KernelRows table = make_rows<simd::SimdType::kAvx2>();
  return &table;
}
#else
const KernelRows* rows_avx2() { return nullptr; }
#endif

}  // namespace emdpa::md::simd_kernels::detail
