// Bonded interactions (extension).
//
// The paper notes that "calculation of forces between bonded atoms is
// straightforward and less computationally intensive" and focuses on the
// non-bonded LJ kernel.  We provide the straightforward part too so the
// library covers the full force field of a minimal bio-molecular model:
// harmonic bonds  V(r) = 1/2 * k * (r - r0)^2  between explicit atom pairs.
#pragma once

#include <cstddef>
#include <vector>

#include "core/vec3.h"
#include "md/box.h"

namespace emdpa::md {

struct HarmonicBond {
  std::size_t i = 0;
  std::size_t j = 0;
  double stiffness = 1.0;     ///< k, in reduced energy / length^2
  double rest_length = 1.0;   ///< r0, in reduced length
};

/// A set of harmonic bonds over a particle system.
class BondTopology {
 public:
  BondTopology() = default;

  /// Add a bond; i and j must be distinct.  Bounds against the particle
  /// system are validated at evaluation time.
  void add_bond(HarmonicBond bond);

  const std::vector<HarmonicBond>& bonds() const { return bonds_; }
  std::size_t size() const { return bonds_.size(); }

  /// Build a linear chain 0-1-2-…-(n-1) with uniform parameters — the shape
  /// of a coarse-grained polymer backbone.
  static BondTopology linear_chain(std::size_t n_atoms, double stiffness,
                                   double rest_length);

  /// Accumulate bonded forces into `accelerations` (adding to existing
  /// values) and return the bonded potential energy.  Minimum-image is
  /// applied so bonds work across the periodic boundary.
  double accumulate_forces(const std::vector<emdpa::Vec3<double>>& positions,
                           const PeriodicBox& box, double mass,
                           std::vector<emdpa::Vec3<double>>& accelerations) const;

 private:
  std::vector<HarmonicBond> bonds_;
};

}  // namespace emdpa::md
