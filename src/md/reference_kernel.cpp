#include "md/reference_kernel.h"

#include <vector>

namespace emdpa::md {

const char* to_string(MinImageStrategy s) {
  switch (s) {
    case MinImageStrategy::kSearch27: return "search27";
    case MinImageStrategy::kBranchy: return "branchy";
    case MinImageStrategy::kCopysign: return "copysign";
    case MinImageStrategy::kRound: return "round";
  }
  return "unknown";
}

template <typename Real>
std::string ReferenceKernelT<Real>::name() const {
  return std::string("reference-n2[") + to_string(strategy_) + "]";
}

namespace {

/// Strategy dispatch hoisted to compile time: each instantiation inlines one
/// min-image computation into the pair loop.
template <MinImageStrategy S, typename Real>
inline emdpa::Vec3<Real> min_image_by(const PeriodicBoxT<Real>& box,
                                      emdpa::Vec3<Real> dr) {
  if constexpr (S == MinImageStrategy::kSearch27) {
    return box.min_image_search27(dr);
  } else if constexpr (S == MinImageStrategy::kBranchy) {
    return box.min_image_branchy(dr);
  } else if constexpr (S == MinImageStrategy::kCopysign) {
    return box.min_image_copysign(dr);
  } else {
    return box.min_image(dr);
  }
}

}  // namespace

template <typename Real>
template <MinImageStrategy S>
void ReferenceKernelT<Real>::compute_rows(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj, Real inv_mass,
    std::size_t i_begin, std::size_t i_end, ForceResultT<Real>& result,
    Real* row_pe, Real* row_virial, std::uint64_t* row_hits) const {
  const std::size_t n = positions.size();
  const Real cutoff_sq = lj.cutoff_squared();

  for (std::size_t i = i_begin; i < i_end; ++i) {
    const emdpa::Vec3<Real> pi = positions[i];
    emdpa::Vec3<Real> force{};
    Real pe{};
    Real virial{};
    std::uint64_t hits = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const emdpa::Vec3<Real> dr = min_image_by<S>(box, pi - positions[j]);
      const Real r2 = length_squared(dr);
      if (r2 < cutoff_sq) {
        ++hits;
        const Real f_over_r = lj.pair_force_over_r(r2);
        force += dr * f_over_r;
        pe += Real(0.5) * lj.pair_energy(r2);  // half: pair seen from both ends
        virial += Real(0.5) * f_over_r * r2;   // r.f, same halving
      }
    }
    result.accelerations[i] = force * inv_mass;
    row_pe[i] = pe;
    row_virial[i] = virial;
    row_hits[i] = hits;
  }
}

template <typename Real>
ForceResultT<Real> ReferenceKernelT<Real>::compute(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj, Real mass) {
  const std::size_t n = positions.size();
  ForceResultT<Real> result;
  result.accelerations.assign(n, {});
  if (n == 0) return result;

  const Real inv_mass = Real(1) / mass;
  std::vector<Real> row_pe(n), row_virial(n);
  std::vector<std::uint64_t> row_hits(n);

  // One strategy dispatch per row range — never inside the pair loop.
  auto rows = [&](std::size_t i_begin, std::size_t i_end) {
    switch (strategy_) {
      case MinImageStrategy::kSearch27:
        compute_rows<MinImageStrategy::kSearch27>(positions, box, lj, inv_mass,
                                                  i_begin, i_end, result,
                                                  row_pe.data(),
                                                  row_virial.data(),
                                                  row_hits.data());
        break;
      case MinImageStrategy::kBranchy:
        compute_rows<MinImageStrategy::kBranchy>(positions, box, lj, inv_mass,
                                                 i_begin, i_end, result,
                                                 row_pe.data(),
                                                 row_virial.data(),
                                                 row_hits.data());
        break;
      case MinImageStrategy::kCopysign:
        compute_rows<MinImageStrategy::kCopysign>(positions, box, lj, inv_mass,
                                                  i_begin, i_end, result,
                                                  row_pe.data(),
                                                  row_virial.data(),
                                                  row_hits.data());
        break;
      case MinImageStrategy::kRound:
        compute_rows<MinImageStrategy::kRound>(positions, box, lj, inv_mass,
                                               i_begin, i_end, result,
                                               row_pe.data(),
                                               row_virial.data(),
                                               row_hits.data());
        break;
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(0, n, grain_, rows);
  } else {
    rows(0, n);
  }

  // Ordered per-row reduction: the same additions in the same order as the
  // historical serial loop, so serial and parallel results are bit-identical.
  for (std::size_t i = 0; i < n; ++i) {
    result.potential_energy += row_pe[i];
    result.virial += row_virial[i];
    result.stats.interacting += row_hits[i];
  }
  // The row sweep visits every pair from both ends; report unordered pairs.
  result.stats.interacting /= 2;
  result.stats.candidates =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1) / 2;
  return result;
}

template class ReferenceKernelT<double>;
template class ReferenceKernelT<float>;

}  // namespace emdpa::md
