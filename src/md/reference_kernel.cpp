#include "md/reference_kernel.h"

namespace emdpa::md {

const char* to_string(MinImageStrategy s) {
  switch (s) {
    case MinImageStrategy::kSearch27: return "search27";
    case MinImageStrategy::kBranchy: return "branchy";
    case MinImageStrategy::kCopysign: return "copysign";
    case MinImageStrategy::kRound: return "round";
  }
  return "unknown";
}

template <typename Real>
std::string ReferenceKernelT<Real>::name() const {
  return std::string("reference-n2[") + to_string(strategy_) + "]";
}

template <typename Real>
ForceResultT<Real> ReferenceKernelT<Real>::compute(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj, Real mass) {
  const std::size_t n = positions.size();
  ForceResultT<Real> result;
  result.accelerations.assign(n, {});

  const Real cutoff_sq = lj.cutoff_squared();
  const Real inv_mass = Real(1) / mass;

  for (std::size_t i = 0; i < n; ++i) {
    const emdpa::Vec3<Real> pi = positions[i];
    emdpa::Vec3<Real> force{};
    Real pe{};
    Real virial{};
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      emdpa::Vec3<Real> dr = pi - positions[j];
      switch (strategy_) {
        case MinImageStrategy::kSearch27: dr = box.min_image_search27(dr); break;
        case MinImageStrategy::kBranchy: dr = box.min_image_branchy(dr); break;
        case MinImageStrategy::kCopysign: dr = box.min_image_copysign(dr); break;
        case MinImageStrategy::kRound: dr = box.min_image(dr); break;
      }
      const Real r2 = length_squared(dr);
      ++result.stats.candidates;
      if (r2 < cutoff_sq) {
        ++result.stats.interacting;
        const Real f_over_r = lj.pair_force_over_r(r2);
        force += dr * f_over_r;
        pe += Real(0.5) * lj.pair_energy(r2);  // half: pair seen from both ends
        virial += Real(0.5) * f_over_r * r2;   // r.f, same halving
      }
    }
    result.accelerations[i] = force * inv_mass;
    result.potential_energy += pe;
    result.virial += virial;
  }
  return result;
}

template class ReferenceKernelT<double>;
template class ReferenceKernelT<float>;

}  // namespace emdpa::md
