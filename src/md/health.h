// Numerical-health watchdog for long-running simulations.
//
// Long MD runs on accelerator-shaped execution layers fail in two modes the
// paper's lineage knows well: silent corruption (a NaN from a bad reduction
// propagates through every subsequent step) and slow poisoning (precision
// drift the single-precision ports must actively manage).  The watchdog
// catches both while the damage is still diagnosable: every `check_every`
// steps it verifies the state is finite, that total energy has not drifted
// beyond a tolerance of its baseline (NVE runs conserve it), and that no
// atom is moving fast enough to cross a significant fraction of the box in
// one step (an integrator explosion).
//
// Violations raise NumericalFailure (core/error.h) with the step and kernel
// in its structured context; the driver turns that into a
// checkpoint-then-abort with a distinct exit code, or — under --degrade — a
// fallback from the neighbour-list kernel to the reference N^2 kernel.
#pragma once

#include <optional>
#include <string>

#include "md/integrator.h"
#include "md/particle_system.h"

namespace emdpa::md {

struct HealthPolicy {
  /// Steps between checks (1 = every step).  Checking is O(N) — cheap next
  /// to a force evaluation, but not free at 100k atoms.
  long check_every = 10;
  /// Max |E_total - E_baseline| / max(|E_baseline|, 1) before the run is
  /// declared sick.  5% is far beyond healthy velocity-Verlet drift at the
  /// repo's default dt yet catches a blow-up within a few intervals.
  double max_energy_drift = 0.05;
  /// Max distance (reduced units) any atom may travel in one step.  Healthy
  /// LJ-liquid speeds at the default workload move atoms ~0.01 sigma per
  /// step; half a sigma per step means the integrator has exploded.
  double max_step_displacement = 0.5;
  /// Verify positions/velocities/accelerations are finite.
  bool check_finite = true;
};

/// Stateful checker: remembers the baseline energy of the run it watches.
/// Simulation owns one when Options::health is set and consults it after
/// each step.
class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthPolicy& policy);

  const HealthPolicy& policy() const { return policy_; }
  std::uint64_t checks_run() const { return checks_; }

  /// (Re)set the energy-drift baseline — called after priming and resume.
  void reset_baseline(const StepEnergies& energies);

  /// True when `step` lands on the checking interval.
  bool due(long step) const { return step % policy_.check_every == 0; }

  /// Inspect the post-step state; throws NumericalFailure (context carrying
  /// `step` and `kernel`) on any violation.  `dt` converts velocities to
  /// per-step displacements; `conserves_energy` false (thermostatted run)
  /// skips the drift check.
  void check(long step, const ParticleSystem& system,
             const StepEnergies& energies, double dt,
             const std::string& kernel, bool conserves_energy);

  /// Deadline guard for supervised batch jobs: throws DeadlineExceeded when
  /// `wall_seconds` exceeds a positive `wall_budget_seconds`, or when the
  /// job is asking for slice number `slices + 1` past a positive
  /// `slice_budget`.  A zero budget is unlimited.  The batch scheduler
  /// calls this at every slice boundary (health checks and deadlines are
  /// the same watchdog concern: stop sick runs while the damage is still
  /// diagnosable), and quarantines on the distinct exception type instead
  /// of spending retry budget.
  static void enforce_deadline(const std::string& job, double wall_seconds,
                               double wall_budget_seconds,
                               std::uint64_t slices,
                               std::uint64_t slice_budget);

 private:
  HealthPolicy policy_;
  std::optional<double> baseline_total_;
  std::uint64_t checks_ = 0;
};

/// True when every position, velocity and acceleration is finite.
bool state_is_finite(const ParticleSystem& system);

}  // namespace emdpa::md
