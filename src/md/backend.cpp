#include "md/backend.h"

namespace emdpa::md {

ModelTime RunResult::breakdown_component(const std::string& key) const {
  auto it = breakdown.find(key);
  return it == breakdown.end() ? ModelTime::zero() : it->second;
}

}  // namespace emdpa::md
