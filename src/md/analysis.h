// Trajectory analysis: the standard structural and dynamical diagnostics of
// an MD study (extension beyond the paper's timing focus, used by the
// domain examples to show the simulated physics is real).
//
//  * Radial distribution function g(r): liquid structure; for the LJ liquid
//    the first peak sits near the potential minimum 2^(1/6) sigma.
//  * Mean-squared displacement (MSD): distinguishes solid (bounded) from
//    liquid (linear growth, slope = 6D).
//  * Velocity autocorrelation: short-time dynamics.
#pragma once

#include <cstddef>
#include <vector>

#include "core/vec3.h"
#include "md/box.h"
#include "md/particle_system.h"

namespace emdpa::md {

/// Accumulates a radial distribution function over snapshots.
class RadialDistribution {
 public:
  /// Histogram of `bins` bins covering separations [0, r_max).
  RadialDistribution(std::size_t bins, double r_max);

  /// Accumulate all pairs of one snapshot (minimum-image separations).
  void accumulate(const ParticleSystem& system, const PeriodicBox& box);

  std::size_t bins() const { return counts_.size(); }
  double r_max() const { return r_max_; }
  std::size_t snapshots() const { return snapshots_; }

  /// Bin centre of bin `b`.
  double bin_center(std::size_t b) const;

  /// Normalised g(r): counts divided by the ideal-gas expectation for the
  /// accumulated snapshots.  Empty histogram returns zeros.
  std::vector<double> normalized() const;

  /// Location of the maximum of g(r) (bin centre), the first-peak position
  /// for liquid-like systems.
  double peak_location() const;

 private:
  std::vector<std::uint64_t> counts_;
  double r_max_;
  double bin_width_;
  std::size_t snapshots_ = 0;
  double density_sum_ = 0.0;   ///< mean density across snapshots
  std::size_t atoms_ = 0;      ///< atom count (fixed across snapshots)
};

/// Tracks mean-squared displacement against a reference configuration,
/// unwrapping periodic crossings between consecutive updates.
class MeanSquaredDisplacement {
 public:
  /// `reference`: positions at t=0 (wrapped or not); box for unwrapping.
  MeanSquaredDisplacement(const std::vector<emdpa::Vec3d>& reference,
                          const PeriodicBox& box);

  /// Feed the next snapshot (must be the same atoms, consecutive in time
  /// with displacements per interval < half a box edge).
  void update(const ParticleSystem& system);

  /// Current MSD, averaged over atoms.
  double value() const;

 private:
  PeriodicBox box_;
  std::vector<emdpa::Vec3d> reference_;
  std::vector<emdpa::Vec3d> unwrapped_;
  std::vector<emdpa::Vec3d> last_wrapped_;
};

/// Normalised velocity autocorrelation between a reference snapshot and the
/// current one: <v(0).v(t)> / <v(0).v(0)>.
double velocity_autocorrelation(const std::vector<emdpa::Vec3d>& v0,
                                const ParticleSystem& now);

}  // namespace emdpa::md
