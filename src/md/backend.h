// MdBackend: the top-level "run this MD workload on this device" interface.
//
// A backend owns a device model (or the plain host) and runs the full MD
// kernel of the paper — prime, then `steps` velocity-Verlet steps — on it,
// reporting modelled device time with a per-component breakdown (compute,
// data transfer, thread-launch overhead, …) plus the physics outputs so
// tests can verify every backend computes the same trajectory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/op_counter.h"
#include "core/simd/pack_fwd.h"
#include "core/time_model.h"
#include "md/integrator.h"
#include "md/lj_potential.h"
#include "md/particle_system.h"
#include "md/precision.h"
#include "md/workload.h"

namespace emdpa::md {

/// Force-kernel selection for backends that execute on the real host
/// (currently host-parallel).  kAuto picks the N^2 SoA batch kernel below
/// the measured crossover atom count and the O(N) neighbour-list path above
/// it; device-model backends ignore the choice entirely.
enum class HostKernel { kAuto, kN2, kList };

const char* to_string(HostKernel kernel);

struct RunConfig {
  WorkloadSpec workload;
  LjParams lj{};        ///< epsilon=sigma=1, cutoff=2.5 by default
  double dt = 0.005;
  int steps = 10;       ///< the paper's experiments run 10 time steps
  HostKernel host_kernel = HostKernel::kAuto;
  /// Numeric precision of the host fast-path kernels (--precision; honoured
  /// by the host-parallel backend, the device models keep the precisions
  /// the paper mandates for them).
  PrecisionMode precision = PrecisionMode::kDouble;
  /// Force the SIMD instruction set of the host fast-path kernels (--simd;
  /// host-parallel backend only).  Empty resolves the EMDPA_SIMD
  /// environment override, then the fastest this CPU supports.
  std::optional<simd::SimdType> simd_isa;
  /// Spatial shard count for the neighbour-list build (--shards; host-
  /// parallel backend only).  0 = flat build, -1 = auto (one shard per pool
  /// worker slot), >0 = requested count (the realised count may be lower
  /// when slabs would be thinner than the list cutoff).  Any non-zero value
  /// requires the list path (kAuto or kList; combining with kN2 throws).
  int shards = 0;

  // Resilience knobs, honoured by the host-parallel backend (the device
  // timing models ignore them — they replay a fixed workload, not a
  // long-running production job).
  /// Save a checkpoint to checkpoint_path every N completed steps (0 = off).
  /// Writes are atomic (temp file + CRC-32 footer + rename) and a transient
  /// I/O failure skips the interval and retries at the next one.
  int checkpoint_every = 0;
  /// Destination for periodic checkpoints and for the emergency checkpoint
  /// written when a run aborts on a NumericalFailure with finite state.
  std::string checkpoint_path;
  /// Resume from this checkpoint (latest generation, falling back to the
  /// rotated previous one on corruption).  `steps` is then the TOTAL step
  /// target: a run resumed at step 250 with steps=500 executes 250 more.
  std::string resume_path;
  /// Resume even when the checkpoint records a different kernel/precision/
  /// ISA than this run resolves to (--resume-force).  Default: mismatch
  /// fails loudly — continuing under different arithmetic silently breaks
  /// the bitwise-resume guarantee.
  bool resume_force = false;
  /// On a neighbour-list kernel failure, restore the pre-step state and fall
  /// back to the reference N^2 kernel instead of aborting.
  bool degrade = false;
  /// >0 arms the numerical-health watchdog with this relative energy-drift
  /// tolerance (plus the default finite/displacement checks).
  double drift_tolerance = 0.0;

  // Time-travel trajectory store (md/trajectory_store.h), honoured by the
  // host-parallel backend.  Snapshots are pure observers: a store-enabled
  // run's trajectory is bitwise identical to a store-disabled one.
  /// Directory for the snapshot ring; empty = no store.
  std::string store_dir;
  /// Snapshot every N completed steps (plus step 0 and the final step).
  /// 0 with a store_dir set still snapshots the endpoints.
  int store_every = 0;
  /// Every K-th snapshot is a full keyframe; the rest are XOR deltas.
  int store_keyframe_every = 8;
  /// Disk budget across all frames (ring eviction of oldest whole chains);
  /// 0 = unbounded.
  std::uint64_t store_max_bytes = 0;

  // Streaming observables channel (md/watch.h; --watch energy,max_disp).
  /// Comma-separated observable list; empty = off.
  std::string watch;
  /// Emit on steps divisible by this (the baseline state also emits).
  int watch_every = 1;
  /// Where watch lines go; the CLI points this at std::cout.  Ignored when
  /// `watch` is empty; must be non-null when it is not.
  std::ostream* watch_stream = nullptr;
};

struct RunResult {
  std::string backend_name;

  /// Modelled end-to-end device runtime for the `steps` steps (the quantity
  /// the paper's tables and figures report).  Zero for the plain host
  /// backend, which has no device model.
  ModelTime device_time;

  /// Named components of device_time (e.g. "compute", "spe_launch",
  /// "pcie_transfer").  Components sum to at most device_time.
  std::map<std::string, ModelTime> breakdown;

  /// Dimensionless execution-layer facts (thread count, SIMD width,
  /// neighbour-list rebuilds, ...).  Kept apart from `breakdown` so reports
  /// never render a thread count with an "s" unit.
  std::map<std::string, double> metadata;

  /// Textual execution-layer facts (simd_isa, precision, ...) — the
  /// non-numeric companions of `metadata`, rendered in the same report
  /// section.
  std::map<std::string, std::string> labels;

  /// Modelled time of each integration step (size == steps).  Benches use
  /// these to extrapolate long runs from short ones at large atom counts.
  std::vector<ModelTime> step_times;

  /// Energies after priming (step 0) followed by one entry per step.
  std::vector<StepEnergies> energies;

  /// Final state, converted back to double precision at the host boundary.
  ParticleSystem final_state;

  /// Event counts the timing model priced (pairs, DMA bytes, misses, …).
  OpCounter ops;

  ModelTime breakdown_component(const std::string& key) const;
};

class MdBackend {
 public:
  virtual ~MdBackend() = default;

  virtual std::string name() const = 0;

  /// "single" or "double" — the arithmetic precision of the device kernels
  /// (the paper runs Cell/GPU single, MTA-2/Opteron double).
  virtual std::string precision() const = 0;

  virtual RunResult run(const RunConfig& config) = 0;
};

/// Plain host reference backend: double precision, reference N^2 kernel, no
/// device timing model.  Ground truth for the physics tests.
class HostReferenceBackend final : public MdBackend {
 public:
  std::string name() const override { return "host-reference"; }
  std::string precision() const override { return "double"; }
  RunResult run(const RunConfig& config) override;
};

/// Real parallel host backend: SoA/SIMD force kernels with atom rows spread
/// over the shared thread pool.  No device timing model — this backend
/// exists to run the physics as fast as the build machine allows.  Per
/// RunConfig::host_kernel it runs either the N^2 SoA batch kernel or the
/// O(N) neighbour-list path (kAuto crosses over at kListCrossoverAtoms);
/// RunConfig::precision / simd_isa pick the kernels' numeric mode and
/// instruction set (runtime-dispatched, not compile-time).  Wall-clock time
/// lands in breakdown["host_wall"], the numeric execution facts (threads,
/// the dispatched kernel's actual simd_width, kernel_list, list_rebuilds)
/// in RunResult::metadata, and the textual ones (simd_isa, precision) in
/// RunResult::labels.  In dp mode energies match host-reference to
/// double-precision reduction tolerance and are bit-identical run to run at
/// any thread count — and across dispatched ISAs.
class HostParallelBackend final : public MdBackend {
 public:
  /// Atom count at which kAuto switches from the N^2 SoA kernel to the
  /// neighbour-list path.  Measured, not guessed: in the CI native-bench
  /// artifacts (Release, -march=native) BM_NeighborListParallel already
  /// edges out BM_SoaKernelParallel at 1024 atoms (~0.6x the N^2 time),
  /// is ~3x faster by 2048 and ~10x by 4096, while at 512 the N^2 sweep's
  /// perfect streaming still wins.  Re-measure those rows before moving
  /// this; tests/md/kernel_crossover_test.cpp pins the boundary.
  static constexpr std::size_t kListCrossoverAtoms = 1024;

  std::string name() const override { return "host-parallel"; }
  std::string precision() const override { return "double"; }
  RunResult run(const RunConfig& config) override;
};

}  // namespace emdpa::md
