// Write-ahead journal of batch scheduler state transitions.
//
// The scheduler journals every job state transition through one CRC-checked
// append-only log (core/wal.h), so that re-running `emdpa batch` after a
// SIGKILL reconstructs the EXACT scheduler state the dead process had:
//
//   admitted -> running -> suspended -> retrying(n) -> quarantined/done/failed
//
// Record grammar (one single-line payload per transition; the WAL layer adds
// the per-record CRC framing):
//
//   admit <job> priority <p>          job entered the batch
//   slice <job> steps <n> [slices <c>]
//                                     one time slice ran; steps_done after it
//                                     (`slices` carries the cumulative slice
//                                     count in compaction snapshots so the
//                                     slice-budget deadline survives rotation)
//   retry <job> attempt <k> delay <r> <reason...>
//                                     failure k consumed a retry; requeued
//                                     after r scheduler rounds
//   quarantine <job> attempts <k> <reason...>
//                                     retry budget (or deadline) exhausted
//   done <job> steps <n>              completed
//   fail <job> attempt <k> <reason...>  immediate failure (max_retries == 0)
//   interrupt                         batch drained on an operator signal
//
// Replay tolerates a torn tail (a kill mid-append) by construction, and the
// journal is REDUNDANT with the per-job checkpoints on purpose: checkpoints
// own the physics state, the journal owns the supervision state (attempt
// counters, quarantine verdicts, round-robin recency).  Reconciliation
// rules when they disagree — e.g. an append failed under an injected
// md.wal_io EIO, or the kill landed between a checkpoint commit and its
// journal record — always trust the checkpoint for physics and the journal
// for supervision; a `done` job whose completion marker is missing is
// simply re-admitted and completes in one no-op slice.
//
// Rotation: the log is compacted (WalWriter::rewrite — atomic temp + rename
// + directory fsync) once it grows past max_segment_bytes, replacing the
// full history with one state snapshot per job that replays to the same
// supervision state.
//
// Durability degradation: an append failure (disk full, injected md.wal_io)
// must not kill the batch the journal exists to protect — record() catches
// the failure, marks the journal non-durable and keeps scheduling; the
// next successful append resumes coverage and replay falls back to the
// checkpoint/marker ground truth for anything the gap lost.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/wal.h"
#include "md/job_scheduler.h"

namespace emdpa::md {

enum class JournalEvent {
  kAdmit,
  kSlice,
  kRetry,
  kQuarantine,
  kDone,
  kFail,
  kInterrupt,
};

struct JournalRecord {
  JournalEvent event = JournalEvent::kAdmit;
  std::string job;          ///< empty for kInterrupt
  int priority = 0;         ///< kAdmit
  long steps = 0;           ///< kSlice / kDone: steps_done after the event
  int attempt = 0;          ///< kRetry / kQuarantine / kFail: failures so far
  std::uint64_t delay = 0;  ///< kRetry: backoff delay in scheduler rounds
  std::uint64_t slices = 1; ///< kSlice: slices this record stands for
  std::string detail;       ///< kRetry / kQuarantine / kFail: one-line reason
};

/// Encode/decode one record payload (exposed for tests).  parse returns
/// false on malformed payloads (treated like a torn record on replay).
std::string encode_journal_record(const JournalRecord& record);
bool parse_journal_record(const std::string& payload, JournalRecord* record);

/// Supervision state replay reconstructs for one job.
struct ReplayedJob {
  /// Last terminal verdict seen, or kPending while mid-flight.
  JobStatus status = JobStatus::kPending;
  long steps_done = 0;        ///< from the last slice/done record
  int attempts = 0;           ///< failures so far (retry counter)
  std::uint64_t slices = 0;   ///< cumulative slices across every process
  std::uint64_t last_event = 0;  ///< 1-based index of the job's last record
  std::uint64_t retry_delay = 0; ///< pending backoff rounds when mid-retry
  bool retrying = false;      ///< last event was a retry (awaiting backoff)
  std::string detail;         ///< last recorded reason, if any
};

class BatchJournal {
 public:
  struct Replay {
    std::map<std::string, ReplayedJob> jobs;
    std::uint64_t records = 0;  ///< verified records replayed
    bool torn_tail = false;     ///< a partial tail was discarded
    bool interrupted = false;   ///< last batch drained on a signal
  };

  /// `max_segment_bytes` bounds the on-disk segment; the journal compacts
  /// (atomically) when an append grows past it.
  explicit BatchJournal(std::string path,
                        std::uint64_t max_segment_bytes = 256 * 1024);
  ~BatchJournal();

  BatchJournal(const BatchJournal&) = delete;
  BatchJournal& operator=(const BatchJournal&) = delete;

  const std::string& path() const { return path_; }

  /// Replay the existing segment (missing file = empty).  Read-only; call
  /// before open_for_append().
  Replay replay() const;

  /// Open the appender (creates the file).  Throws RuntimeFailure when even
  /// the open fails — a batch whose journal cannot exist at all should say
  /// so up front rather than run unsupervised.
  void open_for_append();

  /// Append one transition.  Never throws for I/O: a failed append (real or
  /// injected via the md.wal_io site) degrades durability instead of
  /// killing the batch — see the header comment.
  void record(const JournalRecord& record);

  /// True when the segment has outgrown max_segment_bytes and the owner
  /// should compact() with a fresh state snapshot.
  bool over_segment_bound() const;

  /// Compact the segment to `snapshot` (one admit/state run per job) via
  /// atomic rotation.  Never throws for I/O: a failed rotation leaves the
  /// unrotated (still valid) segment and degrades durable().
  void compact(const std::vector<JournalRecord>& snapshot);

  /// False once any append or rotation failed (supervision state on disk
  /// may lag the in-memory truth until the next successful append).
  bool durable() const { return durable_; }
  std::uint64_t append_failures() const { return append_failures_; }

 private:
  std::string path_;
  std::uint64_t max_segment_bytes_;
  std::unique_ptr<WalWriter> writer_;
  bool durable_ = true;
  std::uint64_t append_failures_ = 0;
};

}  // namespace emdpa::md
