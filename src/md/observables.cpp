#include "md/observables.h"

namespace emdpa::md {

template <typename Real>
Real kinetic_energy_of(const ParticleSystemT<Real>& system) {
  Real sum{};
  for (const auto& v : system.velocities()) sum += length_squared(v);
  return Real(0.5) * system.mass() * sum;
}

template <typename Real>
Real temperature_of(const ParticleSystemT<Real>& system) {
  if (system.empty()) return Real(0);
  return Real(2) * kinetic_energy_of(system) /
         (Real(3) * static_cast<Real>(system.size()));
}

template <typename Real>
emdpa::Vec3<Real> total_momentum_of(const ParticleSystemT<Real>& system) {
  emdpa::Vec3<Real> p{};
  for (const auto& v : system.velocities()) p += v;
  return p * system.mass();
}

template <typename Real>
emdpa::Vec3<Real> center_of_mass_of(const ParticleSystemT<Real>& system) {
  emdpa::Vec3<Real> c{};
  if (system.empty()) return c;
  for (const auto& r : system.positions()) c += r;
  return c / static_cast<Real>(system.size());
}

template double kinetic_energy_of(const ParticleSystemT<double>&);
template float kinetic_energy_of(const ParticleSystemT<float>&);
template double temperature_of(const ParticleSystemT<double>&);
template float temperature_of(const ParticleSystemT<float>&);
template emdpa::Vec3<double> total_momentum_of(const ParticleSystemT<double>&);
template emdpa::Vec3<float> total_momentum_of(const ParticleSystemT<float>&);
template <typename Real>
Real pressure_of(const ParticleSystemT<Real>& system, Real volume, Real virial) {
  return (Real(2) * kinetic_energy_of(system) + virial) / (Real(3) * volume);
}

template emdpa::Vec3<double> center_of_mass_of(const ParticleSystemT<double>&);
template emdpa::Vec3<float> center_of_mass_of(const ParticleSystemT<float>&);
template double pressure_of(const ParticleSystemT<double>&, double, double);
template float pressure_of(const ParticleSystemT<float>&, float, float);

}  // namespace emdpa::md
