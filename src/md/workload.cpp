#include "md/workload.h"

#include <cmath>

#include "core/error.h"
#include "core/random.h"
#include "md/observables.h"

namespace emdpa::md {

double box_edge_for(std::size_t n, double density) {
  EMDPA_REQUIRE(n > 0, "workload needs at least one atom");
  EMDPA_REQUIRE(density > 0.0, "density must be positive");
  return std::cbrt(static_cast<double>(n) / density);
}

Workload make_lattice_workload(const WorkloadSpec& spec) {
  const double edge = box_edge_for(spec.n_atoms, spec.density);
  PeriodicBox box(edge);
  ParticleSystem system(spec.n_atoms);

  // Smallest cubic lattice with at least n sites; fill sites in row-major
  // order.  Sites are offset by half a spacing so no atom sits on the box
  // boundary.
  std::size_t cells = 1;
  while (cells * cells * cells < spec.n_atoms) ++cells;
  const double spacing = edge / static_cast<double>(cells);

  std::size_t placed = 0;
  for (std::size_t ix = 0; ix < cells && placed < spec.n_atoms; ++ix) {
    for (std::size_t iy = 0; iy < cells && placed < spec.n_atoms; ++iy) {
      for (std::size_t iz = 0; iz < cells && placed < spec.n_atoms; ++iz) {
        system.positions()[placed] = {(static_cast<double>(ix) + 0.5) * spacing,
                                      (static_cast<double>(iy) + 0.5) * spacing,
                                      (static_cast<double>(iz) + 0.5) * spacing};
        ++placed;
      }
    }
  }

  assign_thermal_velocities(system, spec.temperature, spec.seed);
  return {std::move(system), box};
}

Workload make_random_gas_workload(const WorkloadSpec& spec, double min_separation) {
  EMDPA_REQUIRE(min_separation >= 0.0, "min_separation must be non-negative");
  const double edge = box_edge_for(spec.n_atoms, spec.density);
  PeriodicBox box(edge);
  ParticleSystem system(spec.n_atoms);

  Rng rng(spec.seed);
  const double min_sep_sq = min_separation * min_separation;
  const std::size_t max_tries_per_atom = 10000;

  for (std::size_t i = 0; i < spec.n_atoms; ++i) {
    bool placed = false;
    for (std::size_t attempt = 0; attempt < max_tries_per_atom; ++attempt) {
      const Vec3d candidate = rng.point_in_box(Vec3d::splat(edge));
      bool ok = true;
      for (std::size_t j = 0; j < i; ++j) {
        const Vec3d dr = box.min_image(candidate - system.positions()[j]);
        if (length_squared(dr) < min_sep_sq) {
          ok = false;
          break;
        }
      }
      if (ok) {
        system.positions()[i] = candidate;
        placed = true;
        break;
      }
    }
    if (!placed) {
      throw RuntimeFailure(
          "make_random_gas_workload: could not place atom " + std::to_string(i) +
          " with min_separation " + std::to_string(min_separation) +
          " — lower the separation or the density");
    }
  }

  assign_thermal_velocities(system, spec.temperature, spec.seed);
  return {std::move(system), box};
}

void assign_thermal_velocities(ParticleSystem& system, double temperature,
                               std::uint64_t seed) {
  EMDPA_REQUIRE(temperature >= 0.0, "temperature must be non-negative");
  const std::size_t n = system.size();
  if (n < 2 || temperature == 0.0) {
    for (auto& v : system.velocities()) v = {};
    return;
  }

  Rng rng(seed ^ 0x5eedbeefULL);
  const double stddev = std::sqrt(temperature / system.mass());
  for (auto& v : system.velocities()) {
    v = {rng.gaussian(0.0, stddev), rng.gaussian(0.0, stddev),
         rng.gaussian(0.0, stddev)};
  }

  // Remove centre-of-mass drift (equal masses: subtract the mean velocity).
  Vec3d mean{};
  for (const auto& v : system.velocities()) mean += v;
  mean /= static_cast<double>(n);
  for (auto& v : system.velocities()) v -= mean;

  // Rescale so the instantaneous temperature matches exactly.
  const double t_now = temperature_of(system);
  if (t_now > 0.0) {
    const double scale = std::sqrt(temperature / t_now);
    for (auto& v : system.velocities()) v *= scale;
  }
}

}  // namespace emdpa::md
