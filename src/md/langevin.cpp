#include "md/langevin.h"

#include <cmath>

#include "core/error.h"

namespace emdpa::md {

LangevinThermostat::LangevinThermostat(double target, double friction,
                                       std::uint64_t seed)
    : target_(target), friction_(friction), rng_(seed) {
  EMDPA_REQUIRE(target >= 0.0, "target temperature must be non-negative");
  EMDPA_REQUIRE(friction > 0.0, "friction must be positive");
}

void LangevinThermostat::apply(ParticleSystem& system, double dt) {
  EMDPA_REQUIRE(dt > 0.0, "time step must be positive");
  const double c1 = std::exp(-friction_ * dt);
  const double c2 = std::sqrt(target_ / system.mass() * (1.0 - c1 * c1));
  for (auto& v : system.velocities()) {
    v.x = c1 * v.x + c2 * rng_.gaussian();
    v.y = c1 * v.y + c2 * rng_.gaussian();
    v.z = c1 * v.z + c2 * rng_.gaussian();
  }
}

}  // namespace emdpa::md
