// Spatially sharded neighbour-list path for the 1M–10M-atom regime
// (ROADMAP item 2).  The flat ParallelNeighborListT builds one CSR over one
// position array; at millions of atoms the fill sweep's working set blows
// every cache level and every worker streams the whole box.  This header
// restructures the BUILD around spatial locality while leaving the physics
// byte-for-byte untouched:
//
//  * ShardedDomain — a slab decomposition of the cell grid along x.  Each
//    shard owns a contiguous run of x-slabs (quotient/remainder split, so
//    the partition is a pure function of (cells, shards)).  A shard's halo
//    view extends its slab run by the stencil range on both sides with
//    periodic wrap, clamped to the whole axis when the halo would lap
//    itself — which is also what makes two-shard boxes and ghost atoms that
//    wrap back into their own shard work.  Requested shard counts that
//    would make a slab thinner than the list cutoff are WIDENED (the count
//    is reduced) rather than accepted-and-wrong or rejected: `widened()`
//    reports it, callers log it.
//
//  * ShardedNeighborListT — same global cell grid, same stable counting
//    sort, same stencil geometry as the flat list (the passes literally are
//    the flat build's, via list_build_util.h), but the fill is restructured
//    per shard: a HALO phase packs, for every shard, a shard-local copy of
//    the wrapped coordinates of its extended view (owned slabs + ghost
//    slabs), in cell order, written by the worker that sweeps the shard —
//    pool chunks of one shard each, so on a first-touch NUMA policy the
//    pages land on the sweeping worker's node.  The per-shard sweep then
//    walks only shard-local memory: for each owned atom, stencil cells in
//    table order, atoms within a cell in global index order, distances
//    computed from the local coordinate copies (exact copies of the same
//    wrapped values the flat build tests, so every accept/reject decision
//    is bitwise identical) and entries recorded by GLOBAL atom id into the
//    same global scratch layout.  The resulting CSR is BYTE-IDENTICAL to
//    the flat build's at any shard count and any thread count — proven by
//    tests/md/shard_invariance_test.cpp — so the unchanged force kernels
//    on top produce bitwise-identical trajectories.
//
//  * Rebuild decisions are taken PER SHARD but triggered GLOBALLY: ensure()
//    runs one fused pass over the positions that wraps, bins (pass 1 of the
//    counting sort — the carried micro-item: the bandwidth-bound scatter
//    histogram and the displacement check share one sweep over the
//    positions) and records a per-shard staleness verdict.  If NO shard is
//    stale the pass cost is the whole rebuild cost avoided; if ANY shard is
//    stale, ALL shards rebuild from the already-binned histograms.  Truly
//    independent per-shard rebuilds cannot keep the bitwise contract: a
//    stale row's entries shift lane positions and change rounding, and a
//    fast atom near a boundary invalidates its neighbours' ghost copies —
//    so partial rebuilds would be silently wrong, not merely different.
//    The per-shard verdicts still pay off as introspection (shard_stale())
//    and as the decision input; the global OR is the correctness fence.
//
//  * ShardedNeighborListKernelT — the sharded list behind the SAME
//    ListKernelBaseT force path as the flat kernel (parallel_neighbor.h).
//    Identical CSR + identical traversal = identical forces; Simulation,
//    checkpoint/resume, the trajectory store, batch scheduler and bisect
//    all work unchanged behind SimKernel::kShardedList.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "md/parallel_neighbor.h"

namespace emdpa::md {

/// Slab decomposition of a `cells`-wide periodic cell grid along x.
class ShardedDomain {
 public:
  /// Degenerate single-shard domain (what an all-pairs fallback reports).
  ShardedDomain() = default;

  /// `cells`: cells per axis of the grid being partitioned; `range`: the
  /// stencil reach in cells (how far a sweep reads past an owned slab —
  /// the halo depth); `requested`: the shard count asked for.  The
  /// effective count is the largest value <= requested for which every
  /// slab spans at least `range` cells, i.e. at least the list cutoff —
  /// a thinner shard would be all halo and its ghost bookkeeping would
  /// alias.  Requires range <= cells/2 (the stencil-validity bound the
  /// list build's all-pairs fallback already enforces).
  ShardedDomain(std::size_t cells, std::size_t range, std::size_t requested);

  std::size_t cells() const { return cells_; }
  std::size_t range() const { return range_; }
  /// Shard count actually in effect (>= 1, <= requested()).
  std::size_t shard_count() const { return count_; }
  std::size_t requested() const { return requested_; }
  /// True when the requested count was reduced to keep slabs >= the cutoff.
  bool widened() const { return count_ < requested_; }

  /// Owned x-slab range of shard s: [slab_begin, slab_end).  Slabs are
  /// dealt by quotient/remainder, so sizes differ by at most one and the
  /// partition depends only on (cells, shard_count).
  std::size_t slab_begin(std::size_t s) const;
  std::size_t slab_end(std::size_t s) const { return slab_begin(s + 1); }

  /// The shard owning x-slab x.
  std::size_t shard_of_slab(std::size_t x) const;

  /// Extended (owned + halo) view of shard s: `halo_width` x-slabs starting
  /// at `halo_begin` (wrapping around the axis).  The view is the owned
  /// run extended by range() on both sides, clamped to the whole axis when
  /// that would reach or exceed cells — so a ghost slab that wraps into the
  /// shard's own territory is represented once, never duplicated.
  std::size_t halo_begin(std::size_t s) const;
  std::size_t halo_width(std::size_t s) const;

 private:
  std::size_t cells_ = 1;
  std::size_t range_ = 0;
  std::size_t requested_ = 1;
  std::size_t count_ = 1;
};

/// SIMD-padded CSR neighbour list with a spatially sharded build.  Public
/// surface mirrors ParallelNeighborListT (the kernel base drives both
/// through the same calls) plus shard introspection and the halo phase
/// timing.  See the header comment for the design and determinism argument.
template <typename Real>
class ShardedNeighborListT {
 public:
  /// `skin`: extra shell radius beyond the cutoff; `pool`: nullptr builds
  /// serially on the caller; `shards`: requested spatial shard count
  /// (>= 1; the realised count may be narrower — see ShardedDomain).
  explicit ShardedNeighborListT(
      Real skin, ThreadPool* pool = nullptr, std::size_t shards = 1,
      SkinPolicy policy = SkinPolicy::kHalfSkinDisplacement);

  Real skin() const { return skin_; }
  SkinPolicy policy() const { return policy_; }
  std::uint64_t rebuilds() const { return rebuilds_; }

  /// Requested shard count (fixed at construction).
  std::size_t shards() const { return requested_shards_; }
  /// The decomposition of the most recent build; a default (single-shard)
  /// domain after an all-pairs fallback build.
  const ShardedDomain& domain() const { return domain_; }
  /// Shards the most recent build actually swept (1 for all-pairs builds).
  std::size_t effective_shards() const {
    return sharded_build_ ? domain_.shard_count() : 1;
  }
  /// Per-shard staleness verdicts of the most recent ensure() displacement
  /// pass (indexed by shard; all-true right after a structural rebuild).
  /// The rebuild trigger is the OR of these — see the header comment.
  const std::vector<std::uint8_t>& shard_stale() const { return shard_stale_; }

  /// Exact (serial) staleness probe, mirroring ParallelNeighborListT's.
  bool needs_rebuild(const std::vector<emdpa::Vec3<Real>>& positions,
                     const PeriodicBoxT<Real>& box, Real cutoff) const;

  /// Rebuild the list for `positions` at `cutoff` (list radius cutoff+skin).
  void build(const std::vector<emdpa::Vec3<Real>>& positions,
             const PeriodicBoxT<Real>& box, Real cutoff);

  /// One fused pass (wrap + bin histogram + per-shard displacement check)
  /// then rebuild iff any shard is stale; returns true when a build
  /// happened.  The fused pass is the carried micro-item: when a rebuild
  /// IS needed, pass 1 of the counting sort has already been paid for.
  bool ensure(const std::vector<emdpa::Vec3<Real>>& positions,
              const PeriodicBoxT<Real>& box, Real cutoff);

  /// Drop the current list so the next ensure() rebuilds unconditionally.
  void invalidate() { build_positions_.clear(); build_cutoff_ = Real(-1); }

  bool valid() const {
    return build_cutoff_ >= Real(0) && !build_positions_.empty();
  }

  const std::vector<emdpa::Vec3<Real>>& reference_positions() const {
    return build_positions_;
  }

  Real build_cutoff() const { return build_cutoff_; }

  std::size_t size() const { return build_positions_.size(); }

  static constexpr std::size_t padded_multiple() {
    return simd::block_lanes<Real>();
  }

  const std::vector<std::uint32_t>& row_begin() const { return row_begin_; }
  const std::vector<std::uint32_t>& entries() const { return entries_; }

  std::uint64_t directed_entries() const { return directed_entries_; }
  std::uint64_t build_distance_tests() const { return build_distance_tests_; }

  /// Phase timings: bin (fused wrap/histogram + sort + stencil + scratch
  /// offsets), halo (shard-local coordinate packing) and fill (per-shard
  /// sweep + prefix + compaction).
  double last_bin_seconds() const { return last_bin_seconds_; }
  double last_halo_seconds() const { return last_halo_seconds_; }
  double last_fill_seconds() const { return last_fill_seconds_; }
  double bin_seconds_total() const { return bin_seconds_total_; }
  double halo_seconds_total() const { return halo_seconds_total_; }
  double fill_seconds_total() const { return fill_seconds_total_; }

 private:
  /// Shard-local copy of one shard's extended view: the wrapped coordinates
  /// and global ids of every atom in its owned + ghost slabs, in cell order
  /// (the order of cell_atoms_).  Because an x-slab is a contiguous global
  /// cell range AND a contiguous cell_atoms_ range, per-slab bases +
  /// offsets are the whole index: an atom at global sorted position t in
  /// slab lx sits at local slot slab_offset[lx] + (t - slab_base[lx]).
  struct ShardView {
    std::vector<std::uint32_t> gid;
    std::vector<Real> xs, ys, zs;
    std::vector<std::uint32_t> slab_base;    ///< cell_atoms_ offset per slab
    std::vector<std::uint32_t> slab_offset;  ///< local atom offset per slab
  };

  struct Geometry {
    std::size_t cells = 0;
    std::size_t range = 0;
    std::size_t width = 0;
    std::size_t n_cells = 0;
    double inv_cell = 0;
    bool degenerate = false;  ///< width > cells: all-pairs fallback regime
  };

  Geometry geometry(Real edge, Real list_cutoff) const;
  void run_span(std::size_t n, std::size_t grain,
                const std::function<void(std::size_t, std::size_t)>& body)
      const;
  /// Full or prebinned build; `fused_seconds` is bin-phase time the caller
  /// (ensure's fused pass) already spent.
  void build_impl(const std::vector<emdpa::Vec3<Real>>& positions,
                  const PeriodicBoxT<Real>& box, Real cutoff, bool prebinned,
                  double fused_seconds);
  void pack_halos(const Geometry& g);
  void sweep_shards(const PeriodicBoxT<Real>& box, const Geometry& g);

  Real skin_;
  ThreadPool* pool_;
  SkinPolicy policy_;
  std::size_t requested_shards_;

  ShardedDomain domain_;
  bool sharded_build_ = false;
  std::vector<std::uint8_t> shard_stale_;
  std::vector<ShardView> views_;

  Real build_cutoff_ = Real(-1);
  Real build_edge_ = Real(-1);
  Real list_cutoff_sq_ = Real(0);
  std::vector<emdpa::Vec3<Real>> build_positions_;
  std::vector<std::uint32_t> row_begin_;
  std::vector<std::uint32_t> entries_;
  std::vector<std::uint32_t> row_count_;
  std::uint64_t directed_entries_ = 0;
  std::uint64_t build_distance_tests_ = 0;
  std::uint64_t rebuilds_ = 0;

  double last_bin_seconds_ = 0;
  double last_halo_seconds_ = 0;
  double last_fill_seconds_ = 0;
  double bin_seconds_total_ = 0;
  double halo_seconds_total_ = 0;
  double fill_seconds_total_ = 0;

  // Build scratch reused across builds (same roles as the flat list's).
  std::vector<emdpa::Vec3<Real>> wrapped_;
  std::vector<std::uint32_t> cell_of_atom_;
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_atoms_;
  std::vector<std::uint32_t> bin_hist_;
  std::vector<std::uint32_t> stencil_axis_;
  std::vector<std::uint32_t> stencil_pop_;
  std::vector<std::uint32_t> stencil_tmp_;
  std::vector<std::uint64_t> scratch_begin_;
  std::vector<std::uint32_t> scratch_entries_;
  std::vector<std::uint8_t> chunk_shard_stale_;  ///< fused-pass verdicts
};

/// Force kernel over the sharded list — the flat kernel's force path
/// (ListKernelBaseT) verbatim, so identical CSR bytes give identical
/// forces.  Simulation selects it via SimKernel::kShardedList.
template <typename Real, typename Acc = Real>
class ShardedNeighborListKernelT final
    : public ListKernelBaseT<Real, Acc, ShardedNeighborListT<Real>> {
  using Base = ListKernelBaseT<Real, Acc, ShardedNeighborListT<Real>>;

 public:
  struct Options {
    double skin = 0.3;
    ThreadPool* pool = nullptr;
    std::size_t grain = 16;
    SkinPolicy skin_policy = SkinPolicy::kHalfSkinDisplacement;
    std::optional<simd::SimdType> isa;
    /// Requested spatial shard count (>= 1).  The build may realise fewer
    /// when slabs would be thinner than the list cutoff.
    std::size_t shards = 1;
  };

  explicit ShardedNeighborListKernelT(Options options = {})
      : Base(ShardedNeighborListT<Real>(static_cast<Real>(options.skin),
                                        options.pool, options.shards,
                                        options.skin_policy),
             options.pool, options.grain, options.isa) {}

  std::size_t shards() const { return this->list().shards(); }

  std::string name() const override {
    std::string name = std::string("sharded-list-soa[") +
                       simd::to_string(this->isa()) + ",w" +
                       std::to_string(this->simd_width()) + "," +
                       precision_tag<Real, Acc>() + "][shards=" +
                       std::to_string(shards()) + "]";
    if (this->pool_ != nullptr) {
      name += "[threads=" + std::to_string(this->pool_->size()) + "]";
    }
    return name;
  }
};

using ShardedNeighborListKernel = ShardedNeighborListKernelT<double>;
using ShardedNeighborListKernelF = ShardedNeighborListKernelT<float>;
using ShardedNeighborListKernelMixed = ShardedNeighborListKernelT<float, double>;

}  // namespace emdpa::md
