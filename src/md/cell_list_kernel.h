// Cell-list (linked-cell) force kernel — the cache-friendly technique the
// paper explicitly chooses NOT to use ("We do not employ any optimization
// technique that has been proposed for cache-based systems").
//
// We implement it anyway as the ablation counterpart (bench A2): it shows
// what the paper's baseline gives up on a cache-based CPU, and it provides an
// O(N) reference the property tests can cross-check the N^2 kernels against.
//
// The box is divided into cubic cells at least one cutoff wide; each atom
// interacts only with atoms in its own and the 26 neighbouring cells.
#pragma once

#include "md/force_kernel.h"

namespace emdpa::md {

template <typename Real>
class CellListKernelT final : public ForceKernelT<Real> {
 public:
  std::string name() const override { return "cell-list"; }

  ForceResultT<Real> compute(const std::vector<emdpa::Vec3<Real>>& positions,
                             const PeriodicBoxT<Real>& box,
                             const LjParamsT<Real>& lj, Real mass) override;
};

using CellListKernel = CellListKernelT<double>;
using CellListKernelF = CellListKernelT<float>;

}  // namespace emdpa::md
