// Internal helpers shared by the flat (ParallelNeighborListT) and sharded
// (ShardedNeighborListT) neighbour-list builds.  Everything here is part of
// the determinism contract: the padding unit, the chunk decomposition of the
// counting sort and the all-pairs fallback must be IDENTICAL in both builds,
// because the sharded CSR is proven bitwise equal to the flat one.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/simd.h"
#include "core/vec3.h"
#include "md/box.h"

namespace emdpa::md::listutil {

/// Round `count` up to a whole number of 64-byte accumulation blocks — the
/// ISA-independent padding unit (see parallel_neighbor.h).
template <typename Real>
constexpr std::uint32_t padded_count(std::uint32_t count) {
  constexpr auto w = static_cast<std::uint32_t>(simd::block_lanes<Real>());
  return (count + w - 1) / w * w;
}

/// Atoms per histogram chunk in the parallel counting sort.  The chunk
/// decomposition is a function of N ONLY — never the thread count — because
/// the scatter pass routes each chunk's atoms through per-chunk cursors and
/// the resulting stable order must not depend on how many workers ran.  The
/// cap bounds the bin_hist_ footprint (chunks * cells) for huge systems.
constexpr std::size_t kBinChunkAtoms = 2048;
constexpr std::size_t kMaxBinChunks = 256;

inline std::size_t bin_chunk_size(std::size_t n) {
  std::size_t chunk = kBinChunkAtoms;
  while ((n + chunk - 1) / chunk > kMaxBinChunks) chunk *= 2;
  return chunk;
}

inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Degenerate-box fallback (fewer than 3 cells per axis): O(N^2) build
/// through the same two-pass CSR layout, still row-parallel.  `run_rows`
/// splits [0, n) over whatever pool the caller owns.
template <typename Real>
void build_all_pairs_csr(
    const std::vector<emdpa::Vec3<Real>>& wrapped,
    const PeriodicBoxT<Real>& box, Real list_cutoff_sq,
    const std::function<void(std::size_t,
                             const std::function<void(std::size_t,
                                                      std::size_t)>&)>&
        run_rows,
    std::vector<std::uint32_t>& row_begin, std::vector<std::uint32_t>& entries,
    std::vector<std::uint32_t>& row_count, std::uint64_t& directed_entries,
    std::uint64_t& build_distance_tests) {
  const std::size_t n = wrapped.size();
  row_count.assign(n, 0);
  run_rows(n, [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      std::uint32_t count = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const auto dr = box.min_image(wrapped[i] - wrapped[j]);
        if (length_squared(dr) < list_cutoff_sq) ++count;
      }
      row_count[i] = count;
    }
  });

  row_begin.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    row_begin[i + 1] = row_begin[i] + padded_count<Real>(row_count[i]);
    directed_entries += row_count[i];
  }
  build_distance_tests = n == 0 ? 0 : static_cast<std::uint64_t>(n) * (n - 1);

  entries.assign(row_begin[n], 0);
  run_rows(n, [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      std::uint32_t slot = row_begin[i];
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const auto dr = box.min_image(wrapped[i] - wrapped[j]);
        if (length_squared(dr) < list_cutoff_sq) {
          entries[slot++] = static_cast<std::uint32_t>(j);
        }
      }
      for (; slot < row_begin[i + 1]; ++slot) {
        entries[slot] = static_cast<std::uint32_t>(i);  // self pad, r2 == 0
      }
    }
  });
}

/// How the builds split an index range over their pool: (n, grain, body).
using RunSpanFn = std::function<void(
    std::size_t, std::size_t,
    const std::function<void(std::size_t, std::size_t)>&)>;

/// Clamp one wrapped coordinate to its axis cell.  The clamp guards the
/// exact-edge case (coord * inv_cell landing on `cells` after rounding).
inline std::size_t axis_cell(double coord, double inv_cell,
                             std::size_t cells) {
  auto c = static_cast<long long>(coord * inv_cell);
  if (c < 0) c = 0;
  if (c >= static_cast<long long>(cells)) {
    c = static_cast<long long>(cells) - 1;
  }
  return static_cast<std::size_t>(c);
}

/// Cell id of a wrapped position.
template <typename Real>
std::size_t cell_index(const emdpa::Vec3<Real>& p, double inv_cell,
                       std::size_t cells) {
  return (axis_cell(static_cast<double>(p.x), inv_cell, cells) * cells +
          axis_cell(static_cast<double>(p.y), inv_cell, cells)) *
             cells +
         axis_cell(static_cast<double>(p.z), inv_cell, cells);
}

/// Pass 1 of the stable counting sort — per-chunk cell histograms.  Each
/// chunk owns a disjoint row of bin_hist and a disjoint range of
/// cell_of_atom, so chunks are embarrassingly parallel.
template <typename Real>
void bin_pass_histogram(const std::vector<emdpa::Vec3<Real>>& wrapped,
                        std::size_t cells, std::size_t n_cells,
                        double inv_cell, const RunSpanFn& run_span,
                        std::vector<std::uint32_t>& cell_of_atom,
                        std::vector<std::uint32_t>& bin_hist) {
  const std::size_t n = wrapped.size();
  const std::size_t chunk = bin_chunk_size(n);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  cell_of_atom.resize(n);
  bin_hist.assign(n_chunks * n_cells, 0);
  run_span(n_chunks, 1, [&](std::size_t k_begin, std::size_t k_end) {
    for (std::size_t k = k_begin; k < k_end; ++k) {
      std::uint32_t* hist = bin_hist.data() + k * n_cells;
      const std::size_t i_end = std::min(n, (k + 1) * chunk);
      for (std::size_t i = k * chunk; i < i_end; ++i) {
        const std::size_t c = cell_index(wrapped[i], inv_cell, cells);
        cell_of_atom[i] = static_cast<std::uint32_t>(c);
        ++hist[c];
      }
    }
  });
}

/// Passes 2 and 3 of the stable counting sort: prefix-merge the per-chunk
/// histograms into write cursors, then scatter.  Within a chunk atoms are
/// visited in index order and chunk cursors are ordered by chunk id, so
/// cell_atoms is the stable counting sort by cell — the unique order a
/// serial sort would produce, independent of thread count and chunk
/// execution order.  Requires bin_hist/cell_of_atom exactly as
/// bin_pass_histogram leaves them.
inline void bin_merge_scatter(std::size_t n, std::size_t n_cells,
                              const RunSpanFn& run_span,
                              const std::vector<std::uint32_t>& cell_of_atom,
                              std::vector<std::uint32_t>& bin_hist,
                              std::vector<std::uint32_t>& cell_start,
                              std::vector<std::uint32_t>& cell_atoms) {
  const std::size_t chunk = bin_chunk_size(n);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;

  cell_start.assign(n_cells + 1, 0);
  run_span(n_cells, 4096, [&](std::size_t c_begin, std::size_t c_end) {
    for (std::size_t c = c_begin; c < c_end; ++c) {
      std::uint32_t total = 0;
      for (std::size_t k = 0; k < n_chunks; ++k) {
        total += bin_hist[k * n_cells + c];
      }
      cell_start[c + 1] = total;
    }
  });
  for (std::size_t c = 0; c < n_cells; ++c) {
    cell_start[c + 1] += cell_start[c];
  }
  run_span(n_cells, 4096, [&](std::size_t c_begin, std::size_t c_end) {
    for (std::size_t c = c_begin; c < c_end; ++c) {
      std::uint32_t cursor = cell_start[c];
      for (std::size_t k = 0; k < n_chunks; ++k) {
        std::uint32_t& h = bin_hist[k * n_cells + c];
        const std::uint32_t count = h;
        h = cursor;
        cursor += count;
      }
    }
  });

  cell_atoms.resize(n);
  run_span(n_chunks, 1, [&](std::size_t k_begin, std::size_t k_end) {
    for (std::size_t k = k_begin; k < k_end; ++k) {
      std::uint32_t* cursor = bin_hist.data() + k * n_cells;
      const std::size_t i_end = std::min(n, (k + 1) * chunk);
      for (std::size_t i = k * chunk; i < i_end; ++i) {
        cell_atoms[cursor[cell_of_atom[i]]++] = static_cast<std::uint32_t>(i);
      }
    }
  });
}

/// Per-axis wrapped stencil indices: row a lists the `width` cell indices
/// covering [a-range, a+range] on one axis.  Precomputing them keeps the
/// modulo arithmetic out of the sweep's inner loops.
inline void fill_stencil_axis(std::size_t cells, std::size_t range,
                              std::vector<std::uint32_t>& stencil_axis) {
  const std::size_t width = 2 * range + 1;
  stencil_axis.resize(cells * width);
  for (std::size_t a = 0; a < cells; ++a) {
    for (std::size_t k = 0; k < width; ++k) {
      stencil_axis[a * width + k] =
          static_cast<std::uint32_t>((a + k + cells - range) % cells);
    }
  }
}

/// Stencil population per cell, computed separably: one 1-D wrap-around
/// sliding-window pass per axis (add the entering cell, drop the leaving
/// one) — O(cells) per line instead of O(cells * width).  Valid because
/// width <= cells (the all-pairs fallback catches smaller boxes), so the
/// window never visits a cell twice.  Three passes flip between the two
/// buffers and land in stencil_pop:
///   populations (tmp) --z--> pop --y--> tmp --x--> pop.
inline void populate_stencil(std::size_t cells, std::size_t range,
                             const RunSpanFn& run_span,
                             const std::vector<std::uint32_t>& cell_start,
                             std::vector<std::uint32_t>& stencil_pop,
                             std::vector<std::uint32_t>& stencil_tmp) {
  const std::size_t n_cells = cells * cells * cells;
  const std::size_t n_lines = cells * cells;
  const std::size_t width = 2 * range + 1;
  stencil_pop.resize(n_cells);
  stencil_tmp.resize(n_cells);

  auto window_pass = [&](const std::uint32_t* in, std::uint32_t* out,
                         std::size_t stride,
                         const std::function<std::size_t(std::size_t)>& base) {
    run_span(n_lines, 16, [&](std::size_t l_begin, std::size_t l_end) {
      for (std::size_t l = l_begin; l < l_end; ++l) {
        const std::size_t b = base(l);
        std::uint32_t window = 0;
        for (std::size_t k = 0; k < width; ++k) {
          window += in[b + ((k + cells - range) % cells) * stride];
        }
        out[b] = window;
        for (std::size_t a = 1; a < cells; ++a) {
          window += in[b + ((a + range) % cells) * stride];
          window -= in[b + ((a + cells - range - 1) % cells) * stride];
          out[b + a * stride] = window;
        }
      }
    });
  };

  run_span(n_cells, 4096, [&](std::size_t c_begin, std::size_t c_end) {
    for (std::size_t c = c_begin; c < c_end; ++c) {
      stencil_tmp[c] = cell_start[c + 1] - cell_start[c];
    }
  });
  window_pass(stencil_tmp.data(), stencil_pop.data(), 1,
              [&](std::size_t l) { return l * cells; });  // lines over (x, y)
  window_pass(stencil_pop.data(), stencil_tmp.data(), cells,
              [&](std::size_t l) {  // lines over (x, z)
                return (l / cells) * n_lines + (l % cells);
              });
  window_pass(stencil_tmp.data(), stencil_pop.data(), n_lines,
              [&](std::size_t l) { return l; });  // lines over (y, z)
}

}  // namespace emdpa::md::listutil
