#include "md/trajectory_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "core/crc32.h"
#include "core/delta_codec.h"
#include "core/error.h"
#include "core/hexio.h"

namespace emdpa::md {

namespace fs = std::filesystem;

namespace {

constexpr const char* kFrameMagic = "emdpa-trajframe";
constexpr int kFrameVersion = 1;
constexpr const char* kIndexMagic = "emdpa-trajindex";
constexpr int kIndexVersion = 1;

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_double(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 8;
  return v;
}

double get_double(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  const std::uint64_t bits = get_u64(in, pos);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Fixed little-endian word serialisation of a snapshot — the buffer the
/// delta codec XORs.  Everything that varies step to step is here; the step
/// number and config strings ride in the frame header / keyframe text.
std::vector<std::uint8_t> serialize_words(const Checkpoint& cp) {
  std::vector<std::uint8_t> out;
  const std::size_t n = cp.system.size();
  out.reserve((3 + 9 * n + (cp.langevin_rng ? 6 : 0) +
               (cp.list_ref ? 1 + 3 * n : 0)) *
              8);
  put_double(out, cp.system.mass());
  put_double(out, cp.box_edge);
  put_double(out, cp.potential);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& p = cp.system.positions()[i];
    const auto& v = cp.system.velocities()[i];
    const auto& a = cp.system.accelerations()[i];
    put_double(out, p.x);
    put_double(out, p.y);
    put_double(out, p.z);
    put_double(out, v.x);
    put_double(out, v.y);
    put_double(out, v.z);
    put_double(out, a.x);
    put_double(out, a.y);
    put_double(out, a.z);
  }
  if (cp.langevin_rng) {
    const Rng::State& rng = *cp.langevin_rng;
    put_u64(out, rng.s[0]);
    put_u64(out, rng.s[1]);
    put_u64(out, rng.s[2]);
    put_u64(out, rng.s[3]);
    put_double(out, rng.cached_gaussian);
    put_u64(out, rng.has_cached_gaussian ? 1 : 0);
  }
  if (cp.list_ref) {
    put_double(out, cp.list_ref_cutoff);
    for (const auto& p : *cp.list_ref) {
      put_double(out, p.x);
      put_double(out, p.y);
      put_double(out, p.z);
    }
  }
  return out;
}

/// Inverse of serialize_words onto `shape`'s layout: atom count, optional
/// sections and config come from `shape` (the chain keyframe), the numeric
/// state from `words`.
Checkpoint deserialize_words(const std::vector<std::uint8_t>& words,
                             const Checkpoint& shape, long step) {
  Checkpoint cp;
  const std::size_t n = shape.system.size();
  cp.system = ParticleSystem(n);
  cp.step = step;
  cp.has_potential = true;
  cp.config = shape.config;
  std::size_t pos = 0;
  cp.system.set_mass(get_double(words, pos));
  cp.box_edge = get_double(words, pos);
  cp.potential = get_double(words, pos);
  for (std::size_t i = 0; i < n; ++i) {
    cp.system.positions()[i] = {get_double(words, pos), get_double(words, pos),
                                get_double(words, pos)};
    cp.system.velocities()[i] = {get_double(words, pos), get_double(words, pos),
                                 get_double(words, pos)};
    cp.system.accelerations()[i] = {get_double(words, pos),
                                    get_double(words, pos),
                                    get_double(words, pos)};
  }
  if (shape.langevin_rng) {
    Rng::State rng;
    rng.s = {get_u64(words, pos), get_u64(words, pos), get_u64(words, pos),
             get_u64(words, pos)};
    rng.cached_gaussian = get_double(words, pos);
    rng.has_cached_gaussian = get_u64(words, pos) != 0;
    cp.langevin_rng = rng;
  }
  if (shape.list_ref) {
    cp.list_ref_cutoff = get_double(words, pos);
    std::vector<emdpa::Vec3d> ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      ref[i] = {get_double(words, pos), get_double(words, pos),
                get_double(words, pos)};
    }
    cp.list_ref = std::move(ref);
  }
  if (pos != words.size()) {
    throw RuntimeFailure("trajectory store: frame word count mismatch");
  }
  return cp;
}

/// Anything that changes the word layout OR the arithmetic the snapshot was
/// produced under: a change mid-run forces a fresh keyframe.
std::string shape_of(const Checkpoint& cp) {
  std::string shape = std::to_string(cp.system.size());
  shape += cp.langevin_rng ? "+rng" : "-rng";
  shape += cp.list_ref ? "+ref" : "-ref";
  if (cp.config) {
    shape += '/' + cp.config->kernel + '/' + cp.config->precision + '/' +
             cp.config->simd;
  }
  return shape;
}

std::string read_file(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw RuntimeFailure(std::string(what) + ": cannot open '" + path + "'");
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

TrajectoryStore::TrajectoryStore(TrajectoryStoreOptions options)
    : options_(std::move(options)) {
  EMDPA_REQUIRE(!options_.directory.empty(),
                "trajectory store directory must not be empty");
  EMDPA_REQUIRE(options_.keyframe_interval >= 1,
                "trajectory store keyframe interval must be >= 1");
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  if (ec) {
    throw RuntimeFailure("trajectory store: cannot create directory '" +
                         options_.directory + "': " + ec.message());
  }
  load_index();
}

std::string TrajectoryStore::frame_path(const FrameRecord& frame) const {
  char name[48];
  std::snprintf(name, sizeof(name), "frame_%012ld.%s", frame.step,
                frame.keyframe ? "key" : "delta");
  return (fs::path(options_.directory) / name).string();
}

void TrajectoryStore::write_file_atomic(const std::string& path,
                                        const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      throw RuntimeFailure("trajectory store: cannot open '" + tmp +
                           "' for writing");
    }
    out << content;
    out.flush();
    if (!out) {
      std::error_code ignored;
      fs::remove(tmp, ignored);
      throw RuntimeFailure("trajectory store: write to '" + tmp + "' failed");
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw RuntimeFailure("trajectory store: cannot commit '" + tmp + "' to '" +
                         path + "': " + ec.message());
  }
}

void TrajectoryStore::persist_index() {
  std::ostringstream body;
  body << kIndexMagic << ' ' << kIndexVersion << '\n';
  for (const FrameRecord& f : frames_) {
    body << "frame " << f.step << ' ' << (f.keyframe ? "key" : "delta") << ' '
         << f.bytes << '\n';
  }
  write_file_atomic((fs::path(options_.directory) / "index").string(),
                    with_crc_footer(body.str()));
}

void TrajectoryStore::load_index() {
  const std::string path = (fs::path(options_.directory) / "index").string();
  std::error_code ec;
  if (!fs::exists(path, ec)) return;  // fresh store
  const std::string body =
      strip_crc_footer(read_file(path, "trajectory index"), "trajectory index");
  std::istringstream in(body);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kIndexMagic ||
      version != kIndexVersion) {
    throw RuntimeFailure("trajectory index: bad header in '" + path + "'");
  }
  std::string kw;
  while (in >> kw) {
    if (kw != "frame") {
      throw RuntimeFailure("trajectory index: malformed entry in '" + path +
                           "'");
    }
    FrameRecord f;
    std::string kind;
    if (!(in >> f.step >> kind >> f.bytes) ||
        (kind != "key" && kind != "delta")) {
      throw RuntimeFailure("trajectory index: malformed entry in '" + path +
                           "'");
    }
    f.keyframe = kind == "key";
    if (!frames_.empty() && f.step <= frames_.back().step) {
      throw RuntimeFailure("trajectory index: steps out of order in '" + path +
                           "'");
    }
    frames_.push_back(f);
    stats_.bytes += f.bytes;
  }
  if (!frames_.empty() && !frames_.front().keyframe) {
    throw RuntimeFailure("trajectory index: first frame is not a keyframe");
  }
  // Chain position for subsequent appends; last_words_/last_shape_ are
  // rebuilt lazily on the first append (they need a frame payload read).
  since_keyframe_ = 0;
  for (auto it = frames_.rbegin(); it != frames_.rend() && !it->keyframe; ++it) {
    ++since_keyframe_;
  }
}

std::size_t TrajectoryStore::frame_index(long step) const {
  const auto it = std::lower_bound(
      frames_.begin(), frames_.end(), step,
      [](const FrameRecord& f, long s) { return f.step < s; });
  if (it == frames_.end() || it->step != step) {
    throw RuntimeFailure("trajectory store: no snapshot stored for step " +
                         std::to_string(step));
  }
  return static_cast<std::size_t>(it - frames_.begin());
}

void TrajectoryStore::append(const Checkpoint& cp) {
  if (!frames_.empty() && cp.step <= frames_.back().step) {
    throw RuntimeFailure(
        "trajectory store: snapshots must advance (step " +
        std::to_string(cp.step) + " after " +
        std::to_string(frames_.back().step) + ")");
  }
  // Reopened store: rebuild the delta base from the newest frame on disk.
  if (!frames_.empty() && last_words_.empty()) {
    const Checkpoint newest = load_step(frames_.back().step);
    last_words_ = serialize_words(newest);
    last_shape_ = shape_of(newest);
  }

  const std::vector<std::uint8_t> words = serialize_words(cp);
  const std::string shape = shape_of(cp);
  const bool keyframe = frames_.empty() || shape != last_shape_ ||
                        since_keyframe_ + 1 >= options_.keyframe_interval;

  FrameRecord frame;
  frame.step = cp.step;
  frame.keyframe = keyframe;

  std::string content;
  if (keyframe) {
    // A keyframe IS a complete checkpoint file: load_checkpoint reads it
    // directly, and its own CRC footer guards it.
    std::ostringstream out;
    save_checkpoint(out, cp);
    content = out.str();
  } else {
    std::ostringstream body;
    body << kFrameMagic << ' ' << kFrameVersion << '\n';
    body << "delta step " << cp.step << " base " << frames_.back().step
         << " bytes " << words.size() << '\n';
    body << delta_encode(last_words_, words);
    content = with_crc_footer(body.str());
  }
  frame.bytes = content.size();

  write_file_atomic(frame_path(frame), content);
  frames_.push_back(frame);
  stats_.bytes += frame.bytes;
  ++stats_.snapshots;
  if (keyframe) {
    ++stats_.keyframes;
    since_keyframe_ = 0;
  } else {
    ++stats_.deltas;
    ++since_keyframe_;
  }
  last_words_ = words;
  last_shape_ = shape;

  evict_to_budget();
  persist_index();
}

void TrajectoryStore::evict_to_budget() {
  if (options_.max_bytes == 0) return;
  while (stats_.bytes > options_.max_bytes) {
    // Oldest chain: the first frame (always a keyframe) through the last
    // frame before the next keyframe.  Never evict the newest chain — the
    // most recent snapshots must stay restorable no matter the budget.
    std::size_t chain_end = 1;  // one past the chain's last frame
    while (chain_end < frames_.size() && !frames_[chain_end].keyframe) {
      ++chain_end;
    }
    if (chain_end >= frames_.size()) return;  // only the newest chain remains
    for (std::size_t i = 0; i < chain_end; ++i) {
      std::error_code ignored;
      fs::remove(frame_path(frames_[i]), ignored);
      stats_.bytes -= frames_[i].bytes;
      ++stats_.evicted_frames;
    }
    frames_.erase(frames_.begin(),
                  frames_.begin() + static_cast<std::ptrdiff_t>(chain_end));
  }
}

std::vector<long> TrajectoryStore::steps() const {
  std::vector<long> out;
  out.reserve(frames_.size());
  for (const FrameRecord& f : frames_) out.push_back(f.step);
  return out;
}

bool TrajectoryStore::has_step(long step) const {
  const auto it = std::lower_bound(
      frames_.begin(), frames_.end(), step,
      [](const FrameRecord& f, long s) { return f.step < s; });
  return it != frames_.end() && it->step == step;
}

long TrajectoryStore::nearest_at_or_before(long step) const {
  const auto it = std::upper_bound(
      frames_.begin(), frames_.end(), step,
      [](long s, const FrameRecord& f) { return s < f.step; });
  if (it == frames_.begin()) return -1;
  return std::prev(it)->step;
}

Checkpoint TrajectoryStore::load_step(long step) const {
  const std::size_t target = frame_index(step);
  std::size_t key = target;
  while (key > 0 && !frames_[key].keyframe) --key;
  if (!frames_[key].keyframe) {
    throw RuntimeFailure("trajectory store: no keyframe precedes step " +
                         std::to_string(step));
  }

  std::ifstream in(frame_path(frames_[key]), std::ios::binary);
  if (!in) {
    throw RuntimeFailure("trajectory store: cannot open keyframe for step " +
                         std::to_string(frames_[key].step));
  }
  Checkpoint cp = load_checkpoint(in);  // CRC-verified
  if (key == target) return cp;

  std::vector<std::uint8_t> words = serialize_words(cp);
  for (std::size_t i = key + 1; i <= target; ++i) {
    const std::string path = frame_path(frames_[i]);
    const std::string body =
        strip_crc_footer(read_file(path, "trajectory frame"),
                         "trajectory frame");
    std::istringstream frame(body);
    std::string magic, kw_delta, kw_step, kw_base, kw_bytes;
    int version = 0;
    long frame_step = 0, base_step = 0;
    std::size_t byte_count = 0;
    if (!(frame >> magic >> version >> kw_delta >> kw_step >> frame_step >>
          kw_base >> base_step >> kw_bytes >> byte_count) ||
        magic != kFrameMagic || version != kFrameVersion ||
        kw_delta != "delta" || kw_step != "step" || kw_base != "base" ||
        kw_bytes != "bytes") {
      throw RuntimeFailure("trajectory frame: malformed header in '" + path +
                           "'");
    }
    if (frame_step != frames_[i].step || base_step != frames_[i - 1].step ||
        byte_count != words.size()) {
      throw RuntimeFailure("trajectory frame: chain mismatch in '" + path +
                           "'");
    }
    // Everything after the header line is the delta payload.
    std::string payload;
    std::getline(frame, payload);  // rest of the header line (empty)
    payload.assign(std::istreambuf_iterator<char>(frame),
                   std::istreambuf_iterator<char>());
    words = delta_apply(words, payload);
    cp = deserialize_words(words, cp, frame_step);
  }
  return cp;
}

}  // namespace emdpa::md
