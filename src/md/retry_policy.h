// Retry / quarantine policy for the supervised batch scheduler.
//
// Before this seam a transiently failing job had exactly two futures: abort
// (exhausting its slot in the batch report) or — worse — silently consume
// the batch's wall clock forever if an operator kept re-running it.
// Production MD practice assumes runs that survive node-level faults over
// hours, so the scheduler needs the standard supervision vocabulary:
//
//   * RETRY, up to a budget, with deterministic decorrelated-jitter backoff
//     (core/backoff.h) so retries neither hammer the failing resource nor
//     replay differently after a crash;
//   * QUARANTINE once the budget is exhausted — the job is set aside with
//     its attempt count and last error in the journal/report, and every
//     other job keeps its throughput (batch exit 3, not batch abort);
//   * per-job DEADLINES (wall seconds and cumulative slice budgets,
//     enforced through md::HealthMonitor) that quarantine immediately —
//     retrying a job whose time allowance is spent cannot succeed.
//
// Failure classification: every RuntimeFailure is considered transient and
// retryable (NumericalFailure included — a deterministic blow-up simply
// exhausts its budget in max_retries+1 attempts and lands in quarantine,
// which is exactly the CI "poisoned job" invariant).  DeadlineExceeded
// skips the retry budget.  ContractViolation is a programming error and
// still aborts the whole batch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/backoff.h"

namespace emdpa::md {

/// Batch-wide defaults; JobSpec carries per-job overrides.
struct RetryPolicy {
  /// Retries after the first attempt (0 = fail immediately, the pre-
  /// supervision behaviour; N means at most N+1 attempts total).
  int max_retries = 0;
  /// Backoff between attempts, in scheduler rounds (one round = one slice
  /// granted to some job).
  BackoffPolicy backoff{1.0, 16.0, 0x9E3779B97F4A7C15ull};
  /// Per-job wall-clock budget in seconds, measured over the slices this
  /// process ran for the job (0 = unlimited).
  double deadline_wall_seconds = 0.0;
  /// Per-job cumulative slice budget, journal-persistent across reruns
  /// (0 = unlimited).
  std::uint64_t slice_budget = 0;
};

enum class FailureAction {
  kRetry,       ///< re-queue after Verdict::delay_rounds
  kQuarantine,  ///< budget exhausted (or deadline): set aside, batch continues
  kFail,        ///< max_retries == 0: the pre-supervision immediate verdict
};

/// Per-job retry ledger.  Owns the job's backoff stream (seeded from the
/// policy seed and the job name, so every job jitters independently and a
/// journal replay that restores `attempts` re-derives the same future
/// delays).
class RetryState {
 public:
  RetryState(const RetryPolicy& policy, const std::string& job_name);

  struct Verdict {
    FailureAction action = FailureAction::kFail;
    /// kRetry only: rounds to wait before rescheduling.
    std::uint64_t delay_rounds = 0;
    /// 1-based count of failures so far (== attempts consumed).
    int attempts = 0;
  };

  /// Classify one failure.  `deadline` forces quarantine regardless of the
  /// remaining retry budget.
  Verdict on_failure(bool deadline = false);

  /// Journal replay: restore a prior process's failure count.  The backoff
  /// stream is advanced to match, so post-replay delays continue the same
  /// deterministic sequence.
  void restore_attempts(int attempts);

  /// Failures recorded so far (retries used = attempts - 1 once > 0).
  int attempts() const { return attempts_; }

  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  Backoff backoff_;
  int attempts_ = 0;
};

/// Stream id for a job's backoff: stable across processes and platforms.
std::uint64_t backoff_stream_for(const std::string& job_name);

}  // namespace emdpa::md
