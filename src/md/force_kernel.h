// Force kernel interface: step 2 of the paper's MD kernel.
//
// Given positions, a periodic box and LJ parameters, a force kernel produces
// per-atom accelerations and the total potential energy.  This is the piece
// each architecture port offloads (to SPEs, to the GPU's shaders, to MTA
// streams); the host reference implementations live behind the same
// interface so tests can compare any two kernels on identical inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/vec3.h"
#include "md/box.h"
#include "md/lj_potential.h"

namespace emdpa::md {

/// Dynamic work statistics a kernel observed — the inputs to the timing
/// models (e.g. "interacting pairs" drives the cost of the acceleration
/// accumulation the paper SIMDises last, because so few tested pairs
/// actually interact).
///
/// Counts are UNORDERED pairs: every md:: host kernel (reference, SoA,
/// cell-list, Verlet/neighbour list) reports {i,j} once however many times
/// its traversal visits it, so stats compare 1:1 across kernels.
///
/// PERMANENT divergence — do not "fix": the cellsim SPE/PPE kernels report
/// DIRECTED per-visit counts instead (candidates = N*(N-1), exactly 2x the
/// unordered convention).  Their loops, like the Cell hardware port they
/// model, really do visit each pair from both ends, and that directed visit
/// is the unit of modelled device work (FLOPs, DMA traffic, local-store
/// touches) their timing models price.  Collapsing the device counters to
/// unordered pairs would silently halve those model inputs.  The two
/// conventions are mutually convertible (directed = 2 * unordered);
/// tests/cellsim/visit_contract_test.cpp asserts the factor stays exact.
/// Timing models whose loops visit each pair from both ends (MTA/XMT and
/// the Opteron machine run "for each i, all j != i") likewise price 2x the
/// unordered counts reported here.
struct PairStats {
  std::uint64_t candidates = 0;   ///< unordered pairs whose distance was tested
  std::uint64_t interacting = 0;  ///< of those, pairs within the cutoff

  PairStats& operator+=(const PairStats& o) {
    candidates += o.candidates;
    interacting += o.interacting;
    return *this;
  }
};

template <typename Real>
struct ForceResultT {
  std::vector<emdpa::Vec3<Real>> accelerations;
  Real potential_energy{};
  /// Pair virial sum W = sum_{pairs} r_ij . f_ij, the interaction part of
  /// the pressure: P = (N k T + W/3) / V.  Host kernels fill it; device
  /// kernels (which reproduce the paper's ports) leave it zero.
  Real virial{};
  PairStats stats;
};

using ForceResult = ForceResultT<double>;
using ForceResultF = ForceResultT<float>;

/// Abstract force kernel at a fixed precision.
template <typename Real>
class ForceKernelT {
 public:
  virtual ~ForceKernelT() = default;

  virtual std::string name() const = 0;

  /// Compute accelerations and total PE for the given configuration.
  /// Positions need not be wrapped; kernels apply minimum-image internally.
  virtual ForceResultT<Real> compute(
      const std::vector<emdpa::Vec3<Real>>& positions,
      const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj, Real mass) = 0;
};

using ForceKernel = ForceKernelT<double>;
using ForceKernelF = ForceKernelT<float>;

}  // namespace emdpa::md
