// Parallel O(N) neighbour-list execution path — the standard MD optimisation
// the paper's section 3.4 notes its streaming ports had to forgo ("the
// neighboring atom pairlist construction, which is updated every few
// simulation time steps"), rebuilt here on top of the host thread-pool/SIMD
// layer so the host fast path stops paying N^2 at large atom counts.
//
// Two cooperating pieces:
//
//  * ParallelNeighborListT — a SIMD-padded CSR neighbour list built with a
//    cell-grid bin-and-sweep.  Binning is a pool-parallel stable counting
//    sort: fixed atom chunks build per-chunk cell histograms, a prefix-merge
//    pass turns the per-chunk columns into write cursors, and a second
//    chunk-parallel pass scatters atoms into their cells.  The output is the
//    unique stable sort by cell — atoms stay in index order within each cell
//    — so the list is a pure function of the inputs at any thread count (the
//    chunk decomposition depends only on N).  Cells are sized to about HALF
//    the list radius with a correspondingly wider stencil — much tighter
//    around the list sphere than a cutoff-sized 27-cell grid — and because
//    every row's distance-test count is known exactly up front (the
//    population of its cell's stencil, computed by three separable 1-D
//    wrap-around window passes, O(cells^3) instead of O(cells^3 * width^3)),
//    a SINGLE pool-parallel sweep writes hits straight into disjoint scratch
//    ranges; a serial prefix sum and a copy-only compaction then produce the
//    padded CSR.  Row slot ranges and contents are a pure function of the
//    inputs, independent of thread count.  Each row is padded to the 64-byte
//    ACCUMULATION BLOCK (simd::block_lanes<Real>() — 8 doubles / 16 floats),
//    not the hardware pack width, so the padded layout is identical on every
//    runtime-dispatched ISA; padding slots hold the atom's own index, whose
//    r2 == 0 the shared lane mask (lj_simd.h) already rejects.  The build
//    reports two phase timings — "bin" (wrap + counting sort + stencil
//    tables + scratch offsets) and "fill" (distance sweep + prefix +
//    compaction) — which the host-parallel backend surfaces as
//    RunResult::metadata keys list_build_bin_ms / list_build_fill_ms.
//
//  * ListKernelBaseT / NeighborListKernelT — a ForceKernelT that walks each
//    atom's neighbour lanes one block at a time (hardware vgatherdpd /
//    vgatherdps straight from the fixed-stride CSR entries on AVX2+, lane
//    loads below, then the same fused min-image + masked LJ accumulation as
//    the N^2 SoA kernel, through the same runtime-dispatched per-ISA row
//    loops — see soa_kernel.h for the dispatch and <Real, Acc> precision
//    seams).  Atom rows spread over the pool; per-row partials reduce in row
//    order, so forces, PE and virial are bitwise identical run to run at ANY
//    thread count, and bitwise identical across dispatched ISAs.  The base
//    class is shared with ShardedNeighborListKernelT (md/sharded_domain.h):
//    a sharded kernel differs ONLY in how its CSR was built.
//
// List validity mirrors VerletListKernelT — rebuilt when an atom has moved
// more than half the skin since the build — and additionally invalidates on
// any change of cutoff, box edge or atom count (the stale-cutoff bug this
// PR fixes in the Verlet kernel is excluded by construction here).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/aligned_buffer.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "md/force_kernel.h"
#include "md/precision.h"
#include "md/simd_kernels.h"

namespace emdpa::md {

/// When a built list considers itself stale.  Structural invalidation
/// (atom-count, cutoff or box-edge change) is always on — a list indexed for
/// a different configuration is memory-unsafe, not merely inaccurate — the
/// policy only governs the displacement check between structurally valid
/// configurations.
enum class SkinPolicy {
  /// Rebuild once any atom has moved more than skin/2 since the last build
  /// (two atoms approaching head-on close the gap by at most `skin`).  The
  /// correct MD policy; the default everywhere.
  kHalfSkinDisplacement,
  /// Never rebuild on displacement.  Deliberately broken: exists so the
  /// trajectory tests can prove the displacement check is load-bearing (a
  /// fast atom silently leaves its stale neighbourhood and the physics
  /// drifts).  Not exposed through any CLI.
  kNeverRebuild,
};

const char* to_string(SkinPolicy policy);

/// What the simulation seam needs from any neighbour-list kernel regardless
/// of its numeric types: rebuild statistics for the run report, the
/// checkpoint-time invalidation that keeps a continuing run and a future
/// resume bitwise identical, and the reference-position capture/reseed pair
/// the trajectory store's pure-observer snapshots rest on.  Every
/// NeighborListKernelT instantiation (dp, sp, mixed) implements it.
class NeighborListControl {
 public:
  virtual ~NeighborListControl() = default;
  virtual std::uint64_t list_rebuilds() const = 0;
  virtual void invalidate_list() = 0;
  virtual double list_bin_seconds() const = 0;
  virtual double list_fill_seconds() const = 0;
  /// Cumulative seconds spent packing shard-local halo copies.  Only the
  /// sharded list has a halo phase; the flat list reports zero.
  virtual double list_halo_seconds() const { return 0.0; }

  /// True when a built list is live (a build happened and nothing
  /// invalidated it since).
  virtual bool has_list() const = 0;
  /// The positions the live list was built from, widened to double (exact
  /// for the float lists: every float is a double).  Empty when !has_list().
  virtual std::vector<emdpa::Vec3d> list_reference_positions() const = 0;
  /// The lj cutoff the live list was built for (widened; the skin is the
  /// kernel's own configuration).  Meaningless when !has_list().
  virtual double list_build_cutoff() const = 0;
  /// Rebuild the list from `reference` (narrowed back to the kernel's Real —
  /// the exact inverse of list_reference_positions' widening).  The build is
  /// a pure function of (positions, box, cutoff), so seeding with a captured
  /// reference reproduces the captured list bit-for-bit — what lets a
  /// trajectory-store restore continue a run whose snapshot did NOT
  /// invalidate the list.
  virtual void seed_list(const std::vector<emdpa::Vec3d>& reference,
                         double box_edge, double cutoff) = 0;
};

/// SIMD-padded CSR neighbour list with a deterministic pool-parallel build.
template <typename Real>
class ParallelNeighborListT {
 public:
  /// `skin`: extra shell radius beyond the cutoff; `pool`: nullptr builds
  /// serially on the caller.
  explicit ParallelNeighborListT(
      Real skin, ThreadPool* pool = nullptr, std::size_t grain = 64,
      SkinPolicy policy = SkinPolicy::kHalfSkinDisplacement);

  Real skin() const { return skin_; }
  SkinPolicy policy() const { return policy_; }
  std::uint64_t rebuilds() const { return rebuilds_; }

  /// True when the list no longer covers `positions` at `cutoff`: atom count
  /// / cutoff / box edge changed, or some atom moved more than skin/2 since
  /// the last build.
  bool needs_rebuild(const std::vector<emdpa::Vec3<Real>>& positions,
                     const PeriodicBoxT<Real>& box, Real cutoff) const;

  /// Rebuild the list for `positions` at `cutoff` (list radius cutoff+skin).
  void build(const std::vector<emdpa::Vec3<Real>>& positions,
             const PeriodicBoxT<Real>& box, Real cutoff);

  /// Call build() iff needs_rebuild(); returns true when a build happened.
  bool ensure(const std::vector<emdpa::Vec3<Real>>& positions,
              const PeriodicBoxT<Real>& box, Real cutoff);

  /// Drop the current list so the next ensure() rebuilds unconditionally.
  void invalidate() { build_positions_.clear(); build_cutoff_ = Real(-1); }

  /// True when a build is live (built and not invalidated since).
  bool valid() const {
    return build_cutoff_ >= Real(0) && !build_positions_.empty();
  }

  /// The raw input positions of the most recent build — what needs_rebuild
  /// measures displacement against, and what seed-based restores replay.
  const std::vector<emdpa::Vec3<Real>>& reference_positions() const {
    return build_positions_;
  }

  /// The lj cutoff of the most recent build (list radius is cutoff+skin);
  /// Real(-1) when invalid.
  Real build_cutoff() const { return build_cutoff_; }

  std::size_t size() const { return build_positions_.size(); }

  /// Lanes every row's entry range is padded to — the ISA-independent
  /// accumulation block, so one built list serves any dispatched ISA.
  static constexpr std::size_t padded_multiple() {
    return simd::block_lanes<Real>();
  }

  /// Row i's padded entry range in entries(): a multiple of
  /// padded_multiple(); padding slots hold i itself.
  const std::vector<std::uint32_t>& row_begin() const { return row_begin_; }
  const std::vector<std::uint32_t>& entries() const { return entries_; }

  /// Directed (i,j) entries excluding padding, i.e. 2x the unordered pair
  /// count within cutoff+skin.
  std::uint64_t directed_entries() const { return directed_entries_; }

  /// Directed distance tests the most recent build performed — each
  /// candidate in the stencil sweep is tested exactly once, which is also
  /// what the device cost models price.
  std::uint64_t build_distance_tests() const { return build_distance_tests_; }

  /// Wall-clock seconds the most recent build spent in the binning phase
  /// (wrap + parallel counting sort + stencil tables + scratch offsets) and
  /// in the fill phase (distance sweep + prefix + compaction).  The
  /// *_seconds_total accessors accumulate across every build since
  /// construction — what the backend metadata and benchmarks report.
  double last_bin_seconds() const { return last_bin_seconds_; }
  double last_fill_seconds() const { return last_fill_seconds_; }
  double bin_seconds_total() const { return bin_seconds_total_; }
  double fill_seconds_total() const { return fill_seconds_total_; }

 private:
  void build_all_pairs(const std::vector<emdpa::Vec3<Real>>& wrapped,
                       const PeriodicBoxT<Real>& box);
  void run_rows(std::size_t n,
                const std::function<void(std::size_t, std::size_t)>& body) const;
  void run_span(std::size_t n, std::size_t grain,
                const std::function<void(std::size_t, std::size_t)>& body) const;
  void bin_atoms(std::size_t n, std::size_t cells, std::size_t n_cells,
                 double inv_cell);
  void populate_stencil(std::size_t cells, std::size_t range);

  Real skin_;
  ThreadPool* pool_;
  std::size_t grain_;
  SkinPolicy policy_;

  Real build_cutoff_ = Real(-1);   ///< lj cutoff the list was built for
  Real build_edge_ = Real(-1);     ///< box edge the list was built for
  Real list_cutoff_sq_ = Real(0);
  std::vector<emdpa::Vec3<Real>> build_positions_;
  std::vector<std::uint32_t> row_begin_;   ///< n+1 padded CSR offsets
  std::vector<std::uint32_t> entries_;     ///< padded neighbour indices
  std::vector<std::uint32_t> row_count_;   ///< true (unpadded) counts
  std::uint64_t directed_entries_ = 0;
  std::uint64_t build_distance_tests_ = 0;
  std::uint64_t rebuilds_ = 0;

  double last_bin_seconds_ = 0;
  double last_fill_seconds_ = 0;
  double bin_seconds_total_ = 0;
  double fill_seconds_total_ = 0;

  // Cell-grid scratch reused across builds.
  std::vector<emdpa::Vec3<Real>> wrapped_;
  std::vector<std::uint32_t> cell_of_atom_;
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_atoms_;
  std::vector<std::uint32_t> bin_hist_;      ///< per-chunk cell histograms
  std::vector<std::uint32_t> stencil_axis_;  ///< per-axis wrapped cell indices
  std::vector<std::uint32_t> stencil_pop_;   ///< atoms per cell stencil
  std::vector<std::uint32_t> stencil_tmp_;   ///< separable-pass intermediate
  std::vector<std::uint64_t> scratch_begin_; ///< exact per-row test offsets
  std::vector<std::uint32_t> scratch_entries_;
};

/// Shared implementation of every list-backed force kernel: the CSR walk,
/// the ISA dispatch, the precision seam and the complete NeighborListControl
/// plumbing, templated on the list type so the flat and sharded lists drive
/// the IDENTICAL force path.  That identity is the heart of the sharded
/// determinism proof — a sharded kernel differs from the flat one ONLY in
/// how the CSR was built, and the builds are proven to emit the same bytes.
///
/// Same physics, ISA dispatch, determinism guarantees and coincident-atom
/// caveat as SoaKernelT (see soa_kernel.h); PairStats count unordered pairs,
/// with candidates bounded by the list size rather than N^2.  For
/// Real != Acc the interface positions are narrowed once per evaluation and
/// BOTH the list build and the lane math run on the same narrowed
/// coordinates, so sp and mixed traverse identical lists.
template <typename Real, typename Acc, typename ListT>
class ListKernelBaseT : public ForceKernelT<Acc>, public NeighborListControl {
 public:
  Real skin() const { return list_.skin(); }
  std::uint64_t rebuilds() const { return list_.rebuilds(); }
  std::uint64_t evaluations() const { return evaluations_; }

  /// The underlying list, for inspection (rebuild counters, entry counts —
  /// the pairlist device cost models read their workload from here).
  const ListT& list() const { return list_; }

  /// Force the next compute() to rebuild the list (benchmarks use this to
  /// price the build; steady-state evaluation reuses the list).
  void invalidate() { list_.invalidate(); }

  /// The instruction set the dispatcher selected for this instance, and the
  /// lane count it executes per pack (runtime properties; see soa_kernel.h).
  simd::SimdType isa() const { return isa_; }
  std::size_t simd_width() const { return width_; }
  static constexpr std::size_t block_width() {
    return simd::block_lanes<Real>();
  }

  // NeighborListControl — the type-erased seam md::Simulation drives.
  std::uint64_t list_rebuilds() const override { return list_.rebuilds(); }
  void invalidate_list() override { list_.invalidate(); }
  double list_bin_seconds() const override {
    return list_.bin_seconds_total();
  }
  double list_fill_seconds() const override {
    return list_.fill_seconds_total();
  }
  double list_halo_seconds() const override {
    if constexpr (requires(const ListT& l) { l.halo_seconds_total(); }) {
      return list_.halo_seconds_total();
    } else {
      return 0.0;
    }
  }
  bool has_list() const override { return list_.valid(); }
  std::vector<emdpa::Vec3d> list_reference_positions() const override {
    std::vector<emdpa::Vec3d> out;
    out.reserve(list_.reference_positions().size());
    for (const auto& p : list_.reference_positions()) {
      out.push_back({static_cast<double>(p.x), static_cast<double>(p.y),
                     static_cast<double>(p.z)});
    }
    return out;
  }
  double list_build_cutoff() const override {
    return static_cast<double>(list_.build_cutoff());
  }
  void seed_list(const std::vector<emdpa::Vec3d>& reference, double box_edge,
                 double cutoff) override {
    // Narrowing double -> Real here is the exact inverse of the widening in
    // list_reference_positions (for Real == float the stored doubles are
    // exactly representable floats), so the rebuilt list is bit-identical to
    // the one captured.
    std::vector<emdpa::Vec3<Real>> narrowed;
    narrowed.reserve(reference.size());
    for (const auto& p : reference) {
      narrowed.push_back({static_cast<Real>(p.x), static_cast<Real>(p.y),
                          static_cast<Real>(p.z)});
    }
    list_.build(narrowed, PeriodicBoxT<Real>(static_cast<Real>(box_edge)),
                static_cast<Real>(cutoff));
  }

  ForceResultT<Acc> compute(const std::vector<emdpa::Vec3<Acc>>& positions,
                            const PeriodicBoxT<Acc>& box,
                            const LjParamsT<Acc>& lj, Acc mass) override {
    const std::size_t n = positions.size();
    ForceResultT<Acc> result;
    result.accelerations.assign(n, {});
    if (n == 0) return result;

    // The list build and the lane math both run in Real: narrow the box, LJ
    // parameters and (when Real != Acc) the positions once, so sp and mixed
    // traverse exactly the list their lane coordinates were tested against.
    const PeriodicBoxT<Real> rbox(static_cast<Real>(box.edge()));
    const LjParamsT<Real> ljr = lj.template cast<Real>();
    const std::vector<emdpa::Vec3<Real>>* real_positions;
    if constexpr (std::is_same_v<Real, Acc>) {
      real_positions = &positions;
    } else {
      cast_positions_.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        cast_positions_[i] =
            emdpa::Vec3<Real>{static_cast<Real>(positions[i].x),
                              static_cast<Real>(positions[i].y),
                              static_cast<Real>(positions[i].z)};
      }
      real_positions = &cast_positions_;
    }

    list_.ensure(*real_positions, rbox, ljr.cutoff);
    ++evaluations_;

    if (!xs_ || xs_->size() < n) {
      xs_.emplace(n);
      ys_.emplace(n);
      zs_.emplace(n);
    }
    row_pe_.resize(n);
    row_virial_.resize(n);
    row_hits_.resize(n);

    // Pack current positions into SoA lanes, wrapping once so the fused
    // reflection in the lane kernel is exact.
    Real* xs = xs_->data();
    Real* ys = ys_->data();
    Real* zs = zs_->data();
    auto pack = [&](std::size_t i_begin, std::size_t i_end) {
      for (std::size_t i = i_begin; i < i_end; ++i) {
        const emdpa::Vec3<Real> p = rbox.wrap((*real_positions)[i]);
        xs[i] = p.x;
        ys[i] = p.y;
        zs[i] = p.z;
      }
    };

    const Acc inv_mass = Acc(1) / mass;
    const std::uint32_t* row_begin = list_.row_begin().data();
    const std::uint32_t* entries = list_.entries().data();

    // The dispatched per-ISA row loop (kernel_rows.h): gather each padded
    // CSR sub-pack, masked LJ accumulate, lane-order reduce.
    auto rows = [&](std::size_t i_begin, std::size_t i_end) {
      rows_fn_(xs, ys, zs, row_begin, entries, rbox.edge(),
               ljr.cutoff_squared(), ljr, inv_mass, i_begin, i_end,
               result.accelerations.data(), row_pe_.data(), row_virial_.data(),
               row_hits_.data());
    };

    if (pool_ != nullptr) {
      pool_->parallel_for(0, n, 512, pack);
      pool_->parallel_for(0, n, grain_, rows);
    } else {
      pack(0, n);
      rows(0, n);
    }

    // Ordered reduction over the per-row partials: totals are independent of
    // thread count and chunking, bit-identical run to run.
    Acc total_pe{}, total_virial{};
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total_pe += row_pe_[i];
      total_virial += row_virial_[i];
      hits += row_hits_[i];
    }
    result.potential_energy = total_pe;
    result.virial = total_virial;
    result.stats.candidates = list_.directed_entries() / 2;  // unordered
    result.stats.interacting = hits / 2;
    return result;
  }

 protected:
  ListKernelBaseT(ListT list, ThreadPool* pool, std::size_t grain,
                  std::optional<simd::SimdType> isa)
      : list_(std::move(list)),
        pool_(pool),
        grain_(grain),
        isa_(simd_kernels::resolve_isa(isa)) {
    const simd_kernels::KernelRows& table = simd_kernels::rows(isa_);
    width_ = simd_kernels::width<Real>(table);
    rows_fn_ = simd_kernels::list_rows<Real, Acc>(table);
  }

  ListT list_;
  ThreadPool* pool_;
  std::size_t grain_;

 private:
  simd::SimdType isa_;
  std::size_t width_;
  simd_kernels::ListRowsFn<Real, Acc> rows_fn_;
  std::uint64_t evaluations_ = 0;
  // Scratch reused across steps.
  std::optional<AlignedBuffer<Real, 64>> xs_, ys_, zs_;
  std::vector<emdpa::Vec3<Real>> cast_positions_;  ///< Real != Acc only
  std::vector<Acc> row_pe_, row_virial_;
  std::vector<std::uint64_t> row_hits_;
};

/// Neighbour-list force kernel over the flat (unsharded) list: the host fast
/// path at large N.
template <typename Real, typename Acc = Real>
class NeighborListKernelT final
    : public ListKernelBaseT<Real, Acc, ParallelNeighborListT<Real>> {
  using Base = ListKernelBaseT<Real, Acc, ParallelNeighborListT<Real>>;

 public:
  struct Options {
    double skin = 0.3;
    /// Pool to split the list build and atom rows over; nullptr runs serial.
    ThreadPool* pool = nullptr;
    /// Atom rows per parallel chunk.
    std::size_t grain = 16;
    /// Displacement-staleness policy (kNeverRebuild is for tests only).
    SkinPolicy skin_policy = SkinPolicy::kHalfSkinDisplacement;
    /// Force this instruction set; empty resolves EMDPA_SIMD, then the
    /// fastest available (same seam as SoaKernelT::Options::isa).
    std::optional<simd::SimdType> isa;
  };

  explicit NeighborListKernelT(Options options = {})
      : Base(ParallelNeighborListT<Real>(
                 static_cast<Real>(options.skin), options.pool,
                 options.grain < 64 ? 64 : options.grain, options.skin_policy),
             options.pool, options.grain, options.isa) {}

  std::string name() const override {
    std::string name = std::string("neighbor-list-soa[") +
                       simd::to_string(this->isa()) + ",w" +
                       std::to_string(this->simd_width()) + "," +
                       precision_tag<Real, Acc>() + "]";
    if (this->pool_ != nullptr) {
      name += "[threads=" + std::to_string(this->pool_->size()) + "]";
    }
    return name;
  }
};

using NeighborListKernel = NeighborListKernelT<double>;
using NeighborListKernelF = NeighborListKernelT<float>;
using NeighborListKernelMixed = NeighborListKernelT<float, double>;

}  // namespace emdpa::md
