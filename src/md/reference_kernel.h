// Reference (host) N^2 force kernel — the paper's baseline algorithm.
//
// Structure follows the paper exactly: for each atom, scan all other N-1
// atoms, find the closest periodic image, test against the cutoff, and
// accumulate force and potential energy.  No neighbour lists, no Newton's
// third law halving — every ordered pair is examined, which is also what the
// GPU and SPE ports require (each parallel instance owns one atom's output).
// Per-atom PE contributions are half the pair energy so the system total
// comes out right.
//
// The min-image strategy is dispatched ONCE per row range, not per pair: the
// inner loop is instantiated per strategy, so the scalar kernel pays no
// per-pair switch.  Optionally, atom rows run on a ThreadPool; per-row
// partials are reduced in row order afterwards, so the parallel result is
// bit-identical to the serial one at any thread count (the MTA model relies
// on this to execute its streams concurrently while staying bitwise equal to
// the sequential ground truth).
#pragma once

#include "core/thread_pool.h"
#include "md/force_kernel.h"

namespace emdpa::md {

/// Which minimum-image computation the kernel uses.  All strategies produce
/// identical physics (asserted by tests); they differ only in operation mix,
/// which is what the device timing models price.
enum class MinImageStrategy {
  kSearch27,   ///< brute-force 27-image search (paper's original kernel)
  kBranchy,    ///< per-axis if/else reflection
  kCopysign,   ///< branch-free copysign reflection (paper's first SPE opt)
  kRound,      ///< round-to-nearest-image (host shorthand, same result)
};

const char* to_string(MinImageStrategy s);

template <typename Real>
class ReferenceKernelT final : public ForceKernelT<Real> {
 public:
  explicit ReferenceKernelT(MinImageStrategy strategy = MinImageStrategy::kRound,
                            ThreadPool* pool = nullptr, std::size_t grain = 16)
      : strategy_(strategy), pool_(pool), grain_(grain) {}

  std::string name() const override;

  MinImageStrategy strategy() const { return strategy_; }

  ForceResultT<Real> compute(const std::vector<emdpa::Vec3<Real>>& positions,
                             const PeriodicBoxT<Real>& box,
                             const LjParamsT<Real>& lj, Real mass) override;

 private:
  template <MinImageStrategy S>
  void compute_rows(const std::vector<emdpa::Vec3<Real>>& positions,
                    const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj,
                    Real inv_mass, std::size_t i_begin, std::size_t i_end,
                    ForceResultT<Real>& result, Real* row_pe, Real* row_virial,
                    std::uint64_t* row_hits) const;

  MinImageStrategy strategy_;
  ThreadPool* pool_;
  std::size_t grain_;
};

using ReferenceKernel = ReferenceKernelT<double>;
using ReferenceKernelF = ReferenceKernelT<float>;

}  // namespace emdpa::md
