// host-parallel backend: the one backend that runs on real hardware at full
// speed rather than under a device timing model.  Since PR 3 it is a thin
// veneer over md::Simulation's SimKernel seam: below the crossover atom
// count the N^2 SoA/SIMD batch kernel wins (no list to build, perfect
// streaming); above it the O(N) neighbour-list path takes over, and its
// skin-radius reuse pays off across the velocity-Verlet steps the
// simulation loop drives.  RunConfig::host_kernel overrides the automatic
// choice.
#include <chrono>

#include "core/thread_pool.h"
#include "md/backend.h"
#include "md/simulation.h"
#include "md/soa_kernel.h"

namespace emdpa::md {

const char* to_string(HostKernel kernel) {
  switch (kernel) {
    case HostKernel::kAuto: return "auto";
    case HostKernel::kN2: return "n2";
    case HostKernel::kList: return "list";
  }
  return "unknown";
}

SimKernel to_sim_kernel(HostKernel kernel) {
  switch (kernel) {
    case HostKernel::kAuto: return SimKernel::kAuto;
    case HostKernel::kN2: return SimKernel::kSoaN2;
    case HostKernel::kList: return SimKernel::kNeighborList;
  }
  return SimKernel::kAuto;
}

RunResult HostParallelBackend::run(const RunConfig& config) {
  ThreadPool& pool = ThreadPool::global();

  Simulation::Options options;
  options.workload = config.workload;
  options.lj = config.lj;
  options.dt = config.dt;
  options.kernel = to_sim_kernel(config.host_kernel);
  options.pool = &pool;

  RunResult result;
  result.backend_name = name();

  const auto wall_start = std::chrono::steady_clock::now();
  Simulation sim(options);
  result.energies.push_back(sim.last_energies());
  sim.run(config.steps, [&](long /*step*/, const StepEnergies& e) {
    result.energies.push_back(e);
  });
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const bool use_list = sim.kernel() == SimKernel::kNeighborList;

  // No device model: device_time stays zero and the wall clock is the only
  // real time.  Execution-layer facts ride in the metadata channel.
  result.breakdown["host_wall"] = ModelTime::seconds(wall_seconds);
  result.metadata["threads"] = static_cast<double>(pool.size());
  result.metadata["simd_width"] = static_cast<double>(SoaKernel::simd_width());
  result.metadata["kernel_list"] = use_list ? 1.0 : 0.0;
  if (use_list) {
    result.metadata["list_rebuilds"] = static_cast<double>(sim.list_rebuilds());
    // Cumulative build-phase wall time over the whole run, so the CI bench
    // jobs can track the binning and fill passes separately.
    result.metadata["list_build_bin_ms"] = sim.list_build_bin_seconds() * 1e3;
    result.metadata["list_build_fill_ms"] = sim.list_build_fill_seconds() * 1e3;
  }
  result.ops.add("host.threads", pool.size());
  result.ops.add("host.simd_width", SoaKernel::simd_width());
  if (use_list) result.ops.add("host.list_rebuilds", sim.list_rebuilds());

  result.final_state = std::move(sim.system());
  return result;
}

}  // namespace emdpa::md
