// host-parallel backend: the one backend that runs on real hardware at full
// speed rather than under a device timing model.  Below the crossover atom
// count the N^2 SoA/SIMD batch kernel wins (no list to build, perfect
// streaming); above it the O(N) neighbour-list path takes over — the
// standard MD optimisation the paper's streaming ports had to forgo.
// RunConfig::host_kernel overrides the automatic choice.
#include <chrono>

#include "core/thread_pool.h"
#include "md/backend.h"
#include "md/parallel_neighbor.h"
#include "md/soa_kernel.h"

namespace emdpa::md {

const char* to_string(HostKernel kernel) {
  switch (kernel) {
    case HostKernel::kAuto: return "auto";
    case HostKernel::kN2: return "n2";
    case HostKernel::kList: return "list";
  }
  return "unknown";
}

RunResult HostParallelBackend::run(const RunConfig& config) {
  Workload workload = make_lattice_workload(config.workload);

  ThreadPool& pool = ThreadPool::global();
  const bool use_list =
      config.host_kernel == HostKernel::kList ||
      (config.host_kernel == HostKernel::kAuto &&
       config.workload.n_atoms >= kListCrossoverAtoms);

  SoaKernel::Options n2_options;
  n2_options.pool = &pool;
  SoaKernel n2_kernel(n2_options);
  NeighborListKernel::Options list_options;
  list_options.pool = &pool;
  NeighborListKernel list_kernel(list_options);
  ForceKernel& kernel =
      use_list ? static_cast<ForceKernel&>(list_kernel) : n2_kernel;

  VelocityVerlet integrator(config.dt);

  RunResult result;
  result.backend_name = name();

  const auto wall_start = std::chrono::steady_clock::now();
  result.energies.push_back(
      integrator.prime(workload.system, workload.box, config.lj, kernel));
  for (int s = 0; s < config.steps; ++s) {
    result.energies.push_back(
        integrator.step(workload.system, workload.box, config.lj, kernel));
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // No device model: device_time stays zero and the wall clock is the only
  // real time.  Execution-layer facts ride in the metadata channel.
  result.breakdown["host_wall"] = ModelTime::seconds(wall_seconds);
  result.metadata["threads"] = static_cast<double>(pool.size());
  result.metadata["simd_width"] = static_cast<double>(SoaKernel::simd_width());
  result.metadata["kernel_list"] = use_list ? 1.0 : 0.0;
  if (use_list) {
    result.metadata["list_rebuilds"] =
        static_cast<double>(list_kernel.rebuilds());
  }
  result.ops.add("host.threads", pool.size());
  result.ops.add("host.simd_width", SoaKernel::simd_width());
  if (use_list) result.ops.add("host.list_rebuilds", list_kernel.rebuilds());

  result.final_state = std::move(workload.system);
  return result;
}

}  // namespace emdpa::md
