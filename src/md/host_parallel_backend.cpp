// host-parallel backend: the one backend that runs on real hardware at full
// speed rather than under a device timing model.  Since PR 3 it is a thin
// veneer over md::Simulation's SimKernel seam: below the crossover atom
// count the N^2 SoA/SIMD batch kernel wins (no list to build, perfect
// streaming); above it the O(N) neighbour-list path takes over, and its
// skin-radius reuse pays off across the velocity-Verlet steps the
// simulation loop drives.  RunConfig::host_kernel overrides the automatic
// choice.
#include <algorithm>
#include <chrono>
#include <optional>

#include "core/error.h"
#include "core/interrupt.h"
#include "core/thread_pool.h"
#include "md/backend.h"
#include "md/checkpoint_manager.h"
#include "md/simulation.h"
#include "md/trajectory_store.h"
#include "md/watch.h"

namespace emdpa::md {

const char* to_string(HostKernel kernel) {
  switch (kernel) {
    case HostKernel::kAuto: return "auto";
    case HostKernel::kN2: return "n2";
    case HostKernel::kList: return "list";
  }
  return "unknown";
}

SimKernel to_sim_kernel(HostKernel kernel) {
  switch (kernel) {
    case HostKernel::kAuto: return SimKernel::kAuto;
    case HostKernel::kN2: return SimKernel::kSoaN2;
    case HostKernel::kList: return SimKernel::kNeighborList;
  }
  return SimKernel::kAuto;
}

RunResult HostParallelBackend::run(const RunConfig& config) {
  ThreadPool& pool = ThreadPool::global();

  const Simulation::Options options = simulation_options_from(config, &pool);

  RunResult result;
  result.backend_name = name();

  std::optional<CheckpointManager> manager;
  if (!config.checkpoint_path.empty()) manager.emplace(config.checkpoint_path);

  const auto wall_start = std::chrono::steady_clock::now();

  long resumed_from = -1;
  bool resume_used_fallback = false;
  Simulation sim = [&] {
    if (config.resume_path.empty()) return Simulation(options);
    CheckpointLoad loaded = CheckpointManager(config.resume_path).load();
    resumed_from = loaded.checkpoint.step;
    resume_used_fallback = loaded.used_fallback;
    return Simulation::resume(std::move(loaded.checkpoint), options);
  }();

  // With --resume, config.steps is the total target; a checkpoint already at
  // or past it leaves nothing to run (the report still shows the state).
  const long remaining =
      resumed_from >= 0 ? std::max(0L, config.steps - resumed_from)
                        : config.steps;

  std::uint64_t checkpoint_failures = 0;
  auto save_now = [&] {
    manager->save([&](std::ostream& out) { sim.save(out); });
  };

  // Time-travel store: snapshots are pure observers (Simulation::snapshot
  // never touches the run), taken at the start state, every store_every
  // steps, and at the final step.
  std::optional<TrajectoryStore> store;
  if (!config.store_dir.empty()) {
    TrajectoryStoreOptions store_options;
    store_options.directory = config.store_dir;
    store_options.keyframe_interval = config.store_keyframe_every;
    store_options.max_bytes = config.store_max_bytes;
    store.emplace(std::move(store_options));
    store->append(sim.snapshot());
  }
  const long final_step = sim.current_step() + remaining;

  std::optional<WatchEmitter> watch;
  if (!config.watch.empty()) {
    EMDPA_REQUIRE(config.watch_stream != nullptr,
                  "watch requires an output stream");
    watch.emplace(config.watch, config.watch_every, sim.system(), sim.box());
    watch->emit(*config.watch_stream, sim.current_step(), sim.last_energies(),
                sim.system());
  }

  result.energies.push_back(sim.last_energies());
  try {
    sim.run(static_cast<int>(remaining), [&](long step, const StepEnergies& e) {
      result.energies.push_back(e);
      if (store && ((config.store_every > 0 && step % config.store_every == 0) ||
                    step == final_step)) {
        if (!store->has_step(step)) store->append(sim.snapshot());
      }
      if (watch && (watch->due(step) || step == final_step)) {
        watch->emit(*config.watch_stream, step, e, sim.system());
      }
      if (manager && config.checkpoint_every > 0 &&
          step % config.checkpoint_every == 0) {
        try {
          save_now();
        } catch (const RuntimeFailure&) {
          // Transient I/O failure (e.g. injected EIO): the temp file was
          // discarded, the committed generations are untouched, and the next
          // interval retries.  The run itself continues.
          ++checkpoint_failures;
        }
      }
      if (interrupt_requested()) {
        // Cooperative drain on SIGINT/SIGTERM (core/interrupt.h): unwind
        // with the distinct Interrupted type; the catch below writes the
        // emergency checkpoint so no completed step is lost.
        const int signal = interrupt_signal();
        ErrorContext context;
        context.step = step;
        throw Interrupted(std::string("interrupted by ") +
                              interrupt_signal_name(signal) + " at step " +
                              std::to_string(step),
                          signal, context);
      }
    });
  } catch (RuntimeFailure& e) {
    if (e.context().backend.empty()) e.context().backend = name();
    // Checkpoint-then-abort: preserve the last finite state so the operator
    // can resume after fixing the cause.  Never let the rescue attempt mask
    // the original failure.
    if (manager && state_is_finite(sim.system())) {
      try {
        save_now();
      } catch (...) {
      }
    }
    throw;
  }

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const bool use_list = sim.kernel() == SimKernel::kNeighborList ||
                        sim.kernel() == SimKernel::kShardedList;

  // No device model: device_time stays zero and the wall clock is the only
  // real time.  Execution-layer facts ride in the metadata channel.
  result.breakdown["host_wall"] = ModelTime::seconds(wall_seconds);
  result.metadata["threads"] = static_cast<double>(pool.size());
  // The width the dispatched kernel actually executes — a runtime property
  // of the selected ISA and precision, not the compile-time native width.
  result.metadata["simd_width"] = static_cast<double>(sim.simd_width());
  result.metadata["kernel_list"] = use_list ? 1.0 : 0.0;
  result.labels["simd_isa"] =
      sim.simd_isa() ? simd::to_string(*sim.simd_isa()) : "none";
  result.labels["precision"] = to_string(sim.precision());
  if (use_list) {
    result.metadata["list_rebuilds"] = static_cast<double>(sim.list_rebuilds());
    // Cumulative build-phase wall time over the whole run, so the CI bench
    // jobs can track the binning and fill passes separately.
    result.metadata["list_build_bin_ms"] = sim.list_build_bin_seconds() * 1e3;
    result.metadata["list_build_fill_ms"] = sim.list_build_fill_seconds() * 1e3;
    if (sim.kernel() == SimKernel::kShardedList) {
      result.metadata["shards"] = static_cast<double>(sim.shards());
      result.metadata["list_build_halo_ms"] =
          sim.list_build_halo_seconds() * 1e3;
    }
  }
  // Resilience facts, only when the corresponding knob was armed so the
  // default report keeps its exact historical shape.
  if (config.degrade) result.metadata["degraded"] = sim.degraded() ? 1.0 : 0.0;
  if (options.health) {
    result.metadata["health_checks"] = static_cast<double>(sim.health_checks());
  }
  if (manager && config.checkpoint_every > 0) {
    result.metadata["checkpoint_saves"] = static_cast<double>(manager->saves());
    result.metadata["checkpoint_failures"] =
        static_cast<double>(checkpoint_failures);
  }
  if (resumed_from >= 0) {
    result.metadata["resumed_from_step"] = static_cast<double>(resumed_from);
    result.metadata["resume_used_fallback"] = resume_used_fallback ? 1.0 : 0.0;
  }
  if (store) {
    const TrajectoryStoreStats& s = store->stats();
    result.metadata["store_snapshots"] = static_cast<double>(s.snapshots);
    result.metadata["store_keyframes"] = static_cast<double>(s.keyframes);
    result.metadata["store_deltas"] = static_cast<double>(s.deltas);
    result.metadata["store_bytes"] = static_cast<double>(s.bytes);
    result.metadata["store_evicted_frames"] =
        static_cast<double>(s.evicted_frames);
  }
  result.ops.add("host.threads", pool.size());
  result.ops.add("host.simd_width", sim.simd_width());
  if (use_list) result.ops.add("host.list_rebuilds", sim.list_rebuilds());

  result.final_state = std::move(sim.system());
  return result;
}

}  // namespace emdpa::md
