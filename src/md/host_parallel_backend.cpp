// host-parallel backend: the one backend that runs on real hardware at full
// speed rather than under a device timing model.  SoA/SIMD force kernel,
// atom rows spread over the shared thread pool (EMDPA_THREADS to override).
#include <chrono>

#include "core/thread_pool.h"
#include "md/backend.h"
#include "md/soa_kernel.h"

namespace emdpa::md {

RunResult HostParallelBackend::run(const RunConfig& config) {
  Workload workload = make_lattice_workload(config.workload);

  ThreadPool& pool = ThreadPool::global();
  SoaKernel::Options options;
  options.pool = &pool;
  SoaKernel kernel(options);
  VelocityVerlet integrator(config.dt);

  RunResult result;
  result.backend_name = name();

  const auto wall_start = std::chrono::steady_clock::now();
  result.energies.push_back(
      integrator.prime(workload.system, workload.box, config.lj, kernel));
  for (int s = 0; s < config.steps; ++s) {
    result.energies.push_back(
        integrator.step(workload.system, workload.box, config.lj, kernel));
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // No device model: device_time stays zero.  The execution-layer facts ride
  // in breakdown as dimensionless entries (see HostParallelBackend docs).
  result.breakdown["host_wall"] = ModelTime::seconds(wall_seconds);
  result.breakdown["threads"] =
      ModelTime::seconds(static_cast<double>(pool.size()));
  result.breakdown["simd_width"] =
      ModelTime::seconds(static_cast<double>(SoaKernel::simd_width()));
  result.ops.add("host.threads", pool.size());
  result.ops.add("host.simd_width", SoaKernel::simd_width());

  result.final_state = std::move(workload.system);
  return result;
}

}  // namespace emdpa::md
