// Registry of the per-ISA compiled row kernels and the md-layer half of
// runtime SIMD dispatch.
//
// The hot loops in md/kernel_rows.h are compiled once per instruction set:
// four translation units (md/simd_rows_{scalar,sse2,avx2,avx512}.cpp), each
// built with its own -m flags and -ffp-contract=off, each instantiating
// RowKernels for exactly one SimdType and returning a KernelRows table of
// plain function pointers (or nullptr when the compiler could not target
// that ISA — e.g. -mavx512f unsupported, or a non-x86 build).  Selecting a
// kernel is then data, not control flow: resolve_isa() asks
// core/simd_dispatch.h to rank {what is compiled in} ∩ {what this CPU
// supports}, honouring an explicit request (--simd / Options::isa) or the
// EMDPA_SIMD environment override, and rows() hands back the winning table.
//
// Every table implements every precision combination (see md/precision.h):
// <double,double>, <float,float> and the mixed <float,double>, so ISA and
// precision dispatch compose freely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/simd/pack_fwd.h"
#include "core/vec3.h"
#include "md/lj_potential.h"

namespace emdpa::md::simd_kernels {

/// Row-loop signatures; see RowKernels::soa_rows / list_rows for the
/// parameter contract.
template <typename Real, typename Acc>
using SoaRowsFn = void (*)(const Real* xs, const Real* ys, const Real* zs,
                           std::size_t padded, Real edge, Real cutoff_sq,
                           const LjParamsT<Real>& lj, Acc inv_mass,
                           std::size_t i_begin, std::size_t i_end,
                           emdpa::Vec3<Acc>* accelerations, Acc* row_pe,
                           Acc* row_virial, std::uint64_t* row_hits);

template <typename Real, typename Acc>
using ListRowsFn = void (*)(const Real* xs, const Real* ys, const Real* zs,
                            const std::uint32_t* row_begin,
                            const std::uint32_t* entries, Real edge,
                            Real cutoff_sq, const LjParamsT<Real>& lj,
                            Acc inv_mass, std::size_t i_begin,
                            std::size_t i_end,
                            emdpa::Vec3<Acc>* accelerations, Acc* row_pe,
                            Acc* row_virial, std::uint64_t* row_hits);

/// One ISA's worth of compiled row kernels: both hot loops in all three
/// precision combinations, plus the pack widths the ISA executes.
struct KernelRows {
  simd::SimdType isa;
  std::size_t width_double;
  std::size_t width_float;
  SoaRowsFn<double, double> soa_dd;
  SoaRowsFn<float, float> soa_ff;
  SoaRowsFn<float, double> soa_fd;
  ListRowsFn<double, double> list_dd;
  ListRowsFn<float, float> list_ff;
  ListRowsFn<float, double> list_fd;
};

namespace detail {
/// Per-TU hooks; each returns its table, or nullptr when the TU was
/// compiled without the ISA's feature macro.
const KernelRows* rows_scalar();
const KernelRows* rows_sse2();
const KernelRows* rows_avx2();
const KernelRows* rows_avx512();
}  // namespace detail

/// The table for `isa`, or nullptr when it is not compiled into the binary.
const KernelRows* rows_for(simd::SimdType isa);

/// OR of simd::isa_bit() for every table present in the binary.
unsigned compiled_mask();

/// ISAs that are both compiled in and supported by this CPU, best first.
std::vector<simd::SimdType> available_isas();

/// True when `isa` is compiled in AND this CPU can execute it.
bool isa_available(simd::SimdType isa);

/// Resolve the ISA to run: `request` (from --simd / kernel Options) wins,
/// else the EMDPA_SIMD environment override, else the fastest available.
/// Throws RuntimeFailure when an explicit choice cannot run here.
simd::SimdType resolve_isa(std::optional<simd::SimdType> request = {});

/// The table for a resolved ISA (ContractViolation if absent — callers go
/// through resolve_isa(), which only returns compiled-in ISAs).
const KernelRows& rows(simd::SimdType isa);

template <typename Real>
std::size_t width(const KernelRows& table) {
  if constexpr (std::is_same_v<Real, double>) {
    return table.width_double;
  } else {
    return table.width_float;
  }
}

template <typename Real, typename Acc>
SoaRowsFn<Real, Acc> soa_rows(const KernelRows& table) {
  if constexpr (std::is_same_v<Real, double>) {
    return table.soa_dd;
  } else if constexpr (std::is_same_v<Acc, float>) {
    return table.soa_ff;
  } else {
    return table.soa_fd;
  }
}

template <typename Real, typename Acc>
ListRowsFn<Real, Acc> list_rows(const KernelRows& table) {
  if constexpr (std::is_same_v<Real, double>) {
    return table.list_dd;
  } else if constexpr (std::is_same_v<Acc, float>) {
    return table.list_ff;
  } else {
    return table.list_fd;
  }
}

}  // namespace emdpa::md::simd_kernels
