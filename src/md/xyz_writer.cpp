#include "md/xyz_writer.h"

#include <algorithm>

#include "core/string_util.h"

namespace emdpa::md {

XyzWriter::XyzWriter(std::ostream& out, std::string element)
    : out_(out), element_(std::move(element)) {}

void XyzWriter::write_frame(const ParticleSystem& system,
                            const std::string& comment) {
  std::string clean = comment;
  std::replace(clean.begin(), clean.end(), '\n', ' ');

  out_ << system.size() << '\n' << clean << '\n';
  for (const auto& p : system.positions()) {
    out_ << element_ << ' ' << format_fixed(p.x, 6) << ' '
         << format_fixed(p.y, 6) << ' ' << format_fixed(p.z, 6) << '\n';
  }
  ++frames_;
}

}  // namespace emdpa::md
