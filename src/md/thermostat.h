// Velocity-rescaling thermostat (extension).
//
// The paper's kernel runs microcanonical (NVE).  For the domain examples
// (argon melting) we add the simplest canonical control: Berendsen-style
// velocity rescaling toward a target temperature.
#pragma once

#include "md/particle_system.h"

namespace emdpa::md {

class BerendsenThermostat {
 public:
  /// `target`: desired reduced temperature.  `coupling`: dimensionless
  /// relaxation strength per step in (0, 1]; 1 rescales to the target
  /// instantly each application.
  BerendsenThermostat(double target, double coupling);

  double target() const { return target_; }

  /// Rescale velocities one step toward the target temperature.  Returns the
  /// scale factor applied (1.0 when the system is already on target or has
  /// zero temperature).
  double apply(ParticleSystem& system) const;

 private:
  double target_;
  double coupling_;
};

}  // namespace emdpa::md
