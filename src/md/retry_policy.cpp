#include "md/retry_policy.h"

#include <cmath>

#include "core/crc32.h"
#include "core/error.h"

namespace emdpa::md {

std::uint64_t backoff_stream_for(const std::string& job_name) {
  // CRC-32 of the name: stable across runs, platforms and std::hash
  // implementations — the journal contract demands replayed delays match.
  return static_cast<std::uint64_t>(crc32(job_name));
}

RetryState::RetryState(const RetryPolicy& policy, const std::string& job_name)
    : policy_(policy), backoff_(policy.backoff, backoff_stream_for(job_name)) {
  EMDPA_REQUIRE(policy.max_retries >= 0,
                "retry policy: max_retries must be non-negative");
}

RetryState::Verdict RetryState::on_failure(bool deadline) {
  ++attempts_;
  Verdict verdict;
  verdict.attempts = attempts_;
  if (deadline) {
    // A consumed time allowance cannot be retried back; spend no budget.
    verdict.action = FailureAction::kQuarantine;
    return verdict;
  }
  if (policy_.max_retries == 0) {
    verdict.action = FailureAction::kFail;
    return verdict;
  }
  if (attempts_ > policy_.max_retries) {
    verdict.action = FailureAction::kQuarantine;
    return verdict;
  }
  verdict.action = FailureAction::kRetry;
  // Rounds are discrete; never round a positive delay down to "immediately".
  verdict.delay_rounds =
      static_cast<std::uint64_t>(std::ceil(backoff_.next()));
  if (verdict.delay_rounds == 0) verdict.delay_rounds = 1;
  return verdict;
}

void RetryState::restore_attempts(int attempts) {
  EMDPA_REQUIRE(attempts >= 0, "retry policy: attempts must be non-negative");
  attempts_ = attempts;
  // Replay the draws the dead process made so the next delay continues the
  // sequence instead of restarting it.
  backoff_.reset();
  const int draws = std::min(attempts, policy_.max_retries);
  for (int i = 0; i < draws; ++i) backoff_.next();
}

}  // namespace emdpa::md
