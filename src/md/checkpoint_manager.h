// Crash-safe checkpoint files: atomic writes, generation rotation,
// corruption fallback.
//
// A checkpoint that can be destroyed by the crash it exists to survive is
// worthless, so every write goes through the classic atomic protocol:
//
//   1. serialise to `<path>.tmp` (CRC-32 footer included — checkpoint.h),
//      then fsync the temp file so its data is on stable storage,
//   2. rotate the current `<path>` to `<path>.prev`,
//   3. rename `<path>.tmp` onto `<path>` (atomic within a filesystem),
//   4. fsync the containing directory so the renames are durable.
//
// A SIGKILL at any instant leaves at least one complete, verifiable
// generation on disk: mid-write kills leave the old `<path>` untouched, and
// a kill between the two renames leaves `<path>.prev` (and the complete but
// unpromoted temp file).  Steps 1 and 4 extend the guarantee from process
// death to power loss: without the file fsync a rename can publish a hole,
// and without the directory fsync the rename itself can be rolled back by
// the journal replay of the FILESYSTEM's own crash recovery.  load()
// verifies the latest generation's CRC and falls back to the previous one
// when the latest is truncated, bit-flipped or missing — resuming slightly
// earlier beats resuming from corruption.
//
// Fault-injection sites (core/fault_injection.h): "md.checkpoint_io"
// simulates an EIO during step 1 — save() throws RuntimeFailure after
// cleaning up the temp file, leaving every committed generation intact;
// "md.dir_fsync" simulates an EIO at step 4 — the just-renamed generation
// is complete but its durability is unpromised, so save() reports failure
// and callers retry at the next checkpoint interval.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "md/checkpoint.h"

namespace emdpa::md {

/// What load() resolved: the parsed checkpoint plus which generation served
/// it (used_fallback means the latest one was corrupt or missing).
struct CheckpointLoad {
  Checkpoint checkpoint;
  std::string source_path;
  bool used_fallback = false;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(std::string path);

  const std::string& path() const { return path_; }
  std::string previous_path() const { return path_ + ".prev"; }
  std::string temp_path() const { return path_ + ".tmp"; }

  /// Atomically commit one checkpoint generation, serialised by `writer`
  /// (typically [&](std::ostream& os) { sim.save(os); }).  Throws
  /// RuntimeFailure on any I/O error — the previously committed generations
  /// are never damaged by a failed save.
  void save(const std::function<void(std::ostream&)>& writer);

  /// Convenience overload serialising raw state via save_checkpoint().
  void save(const ParticleSystem& system, const PeriodicBox& box, long step,
            double potential = 0.0);

  /// Load the newest intact generation: `<path>`, else `<path>.prev`.
  /// Throws RuntimeFailure when neither verifies.
  CheckpointLoad load() const;

  /// Load and CRC-verify one specific file (no fallback).
  static Checkpoint load_file(const std::string& file);

  /// Committed generations this manager wrote.
  std::uint64_t saves() const { return saves_; }

 private:
  std::string path_;
  std::uint64_t saves_ = 0;
};

}  // namespace emdpa::md
