// Verlet neighbour-list kernel — the technique the paper's section 3.4
// singles out: "One of the most common techniques is the neighboring atom
// pairlist construction, which is updated every few simulation time steps.
// This scheme results in a small memory and computation overhead."
//
// Each atom keeps a list of neighbours within cutoff + skin; force
// evaluation walks only the lists.  The list stays valid until some atom
// has moved more than half the skin since the last build, at which point it
// is rebuilt (using the O(N) cell grid).  Unlike the stateless kernels this
// one is stateful — which is exactly why it is awkward on the paper's
// streaming devices and why the paper's ports skip it.
#pragma once

#include <cstdint>
#include <vector>

#include "md/force_kernel.h"

namespace emdpa::md {

template <typename Real>
class VerletListKernelT final : public ForceKernelT<Real> {
 public:
  /// `skin`: extra shell radius beyond the cutoff (reduced units).  Larger
  /// skins rebuild less often but visit more non-interacting pairs.
  explicit VerletListKernelT(Real skin = Real(0.3));

  std::string name() const override { return "verlet-list"; }

  Real skin() const { return skin_; }
  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t evaluations() const { return evaluations_; }

  ForceResultT<Real> compute(const std::vector<emdpa::Vec3<Real>>& positions,
                             const PeriodicBoxT<Real>& box,
                             const LjParamsT<Real>& lj, Real mass) override;

 private:
  bool needs_rebuild(const std::vector<emdpa::Vec3<Real>>& positions,
                     const PeriodicBoxT<Real>& box,
                     const LjParamsT<Real>& lj) const;
  void rebuild(const std::vector<emdpa::Vec3<Real>>& positions,
               const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj);

  Real skin_;
  /// lj.cutoff at the last build: a list built for one cutoff is silently
  /// wrong at any other (larger drops interactions), so any change forces a
  /// rebuild.  Negative = never built.
  Real build_cutoff_ = Real(-1);
  Real list_cutoff_sq_ = 0;
  std::vector<std::vector<std::uint32_t>> neighbours_;
  std::vector<emdpa::Vec3<Real>> build_positions_;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t evaluations_ = 0;
};

using VerletListKernel = VerletListKernelT<double>;
using VerletListKernelF = VerletListKernelT<float>;

}  // namespace emdpa::md
