#include "md/sharded_domain.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/error.h"
#include "core/fault_injection.h"
#include "md/list_build_util.h"

namespace emdpa::md {

using listutil::padded_count;
using listutil::seconds_since;

// ---------------------------------------------------------------------------
// ShardedDomain
// ---------------------------------------------------------------------------

ShardedDomain::ShardedDomain(std::size_t cells, std::size_t range,
                             std::size_t requested)
    : cells_(cells), range_(range), requested_(requested == 0 ? 1 : requested) {
  EMDPA_REQUIRE(cells >= 1, "sharded domain needs at least one cell");
  EMDPA_REQUIRE(2 * range + 1 <= cells,
                "stencil wider than the axis — the all-pairs fallback should "
                "have caught this box");
  // Widen (reduce the count) until every slab spans at least `range` cells
  // >= the list cutoff.  With the quotient/remainder deal below the minimum
  // slab width is cells / count, so the bound is count <= cells / range.
  const std::size_t max_by_cutoff =
      range == 0 ? cells_ : std::max<std::size_t>(1, cells_ / range);
  count_ = std::min(requested_, max_by_cutoff);
}

std::size_t ShardedDomain::slab_begin(std::size_t s) const {
  const std::size_t q = cells_ / count_;
  const std::size_t r = cells_ % count_;
  return s * q + std::min(s, r);
}

std::size_t ShardedDomain::shard_of_slab(std::size_t x) const {
  // Inverse of slab_begin: the first r shards hold q+1 slabs, the rest q.
  const std::size_t q = cells_ / count_;
  const std::size_t r = cells_ % count_;
  const std::size_t big = r * (q + 1);
  return x < big ? x / (q + 1) : r + (x - big) / q;
}

std::size_t ShardedDomain::halo_begin(std::size_t s) const {
  return (slab_begin(s) + cells_ - range_) % cells_;
}

std::size_t ShardedDomain::halo_width(std::size_t s) const {
  return std::min(cells_, slab_end(s) - slab_begin(s) + 2 * range_);
}

// ---------------------------------------------------------------------------
// ShardedNeighborListT
// ---------------------------------------------------------------------------

template <typename Real>
ShardedNeighborListT<Real>::ShardedNeighborListT(Real skin, ThreadPool* pool,
                                                 std::size_t shards,
                                                 SkinPolicy policy)
    : skin_(skin),
      pool_(pool),
      policy_(policy),
      requested_shards_(shards == 0 ? 1 : shards) {
  EMDPA_REQUIRE(skin >= Real(0), "skin must be non-negative");
}

template <typename Real>
void ShardedNeighborListT<Real>::run_span(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) const {
  if (pool_ != nullptr) {
    pool_->parallel_for(0, n, grain, body);
  } else {
    body(0, n);
  }
}

template <typename Real>
typename ShardedNeighborListT<Real>::Geometry
ShardedNeighborListT<Real>::geometry(Real edge_r, Real list_cutoff) const {
  // EXACTLY the flat build's cell sizing (parallel_neighbor.cpp): cells at
  // half the list radius, range = however many cells cover the radius.
  // Any divergence here would change which atoms share a cell and sink the
  // bitwise contract.
  Geometry g;
  const double edge = static_cast<double>(edge_r);
  auto cells_ll =
      static_cast<long long>(edge / (static_cast<double>(list_cutoff) * 0.5));
  if (cells_ll < 1) cells_ll = 1;
  g.cells = static_cast<std::size_t>(cells_ll);
  const double cell_edge = edge / static_cast<double>(g.cells);
  const auto range = static_cast<long long>(
      std::ceil(static_cast<double>(list_cutoff) / cell_edge));
  g.range = static_cast<std::size_t>(range);
  g.width = static_cast<std::size_t>(2 * range + 1);
  g.n_cells = g.cells * g.cells * g.cells;
  g.inv_cell = static_cast<double>(g.cells) / edge;
  g.degenerate = g.width > g.cells;
  return g;
}

template <typename Real>
bool ShardedNeighborListT<Real>::needs_rebuild(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, Real cutoff) const {
  if (build_positions_.size() != positions.size()) return true;
  if (cutoff != build_cutoff_ || box.edge() != build_edge_) return true;
  if (policy_ == SkinPolicy::kNeverRebuild) return false;
  const Real limit_sq = (skin_ / Real(2)) * (skin_ / Real(2));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto dr = box.min_image(positions[i] - build_positions_[i]);
    if (length_squared(dr) > limit_sq) return true;
  }
  return false;
}

template <typename Real>
void ShardedNeighborListT<Real>::build(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, Real cutoff) {
  build_impl(positions, box, cutoff, /*prebinned=*/false,
             /*fused_seconds=*/0.0);
}

template <typename Real>
bool ShardedNeighborListT<Real>::ensure(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, Real cutoff) {
  const std::size_t n = positions.size();
  const bool structural = build_positions_.size() != n ||
                          cutoff != build_cutoff_ || box.edge() != build_edge_;
  if (structural) {
    build_impl(positions, box, cutoff, false, 0.0);
    return true;
  }
  if (policy_ == SkinPolicy::kNeverRebuild || n == 0) return false;

  const auto t0 = std::chrono::steady_clock::now();
  const Real list_cutoff = cutoff + skin_;
  const Geometry g = geometry(box.edge(), list_cutoff);
  const Real limit_sq = (skin_ / Real(2)) * (skin_ / Real(2));
  const std::size_t chunk = listutil::bin_chunk_size(n);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;

  if (g.degenerate) {
    // All-pairs regime: no bins to fuse with, just a chunked displacement
    // verdict (single logical shard).
    chunk_shard_stale_.assign(n_chunks, 0);
    run_span(n_chunks, 1, [&](std::size_t k_begin, std::size_t k_end) {
      for (std::size_t k = k_begin; k < k_end; ++k) {
        const std::size_t i_end = std::min(n, (k + 1) * chunk);
        for (std::size_t i = k * chunk; i < i_end; ++i) {
          const auto dr = box.min_image(positions[i] - build_positions_[i]);
          if (length_squared(dr) > limit_sq) {
            chunk_shard_stale_[k] = 1;
            break;
          }
        }
      }
    });
    bool any = false;
    for (std::size_t k = 0; k < n_chunks; ++k) {
      if (chunk_shard_stale_[k] != 0) any = true;
    }
    shard_stale_.assign(1, any ? 1 : 0);
    if (!any) return false;
    build_impl(positions, box, cutoff, false, seconds_since(t0));
    return true;
  }

  // The fused pass (carried micro-item): ONE sweep over the positions wraps
  // each atom, scatters it into the pass-1 bin histogram AND measures its
  // displacement against the build reference, attributing the verdict to
  // the shard its new cell falls in.  Per-chunk verdict rows keep the pass
  // race-free; the serial merge below is order-independent (pure OR).
  const ShardedDomain domain(g.cells, g.range, requested_shards_);
  const std::size_t shard_count = domain.shard_count();
  const std::size_t n_lines = g.cells * g.cells;
  wrapped_.resize(n);
  cell_of_atom_.resize(n);
  bin_hist_.assign(n_chunks * g.n_cells, 0);
  chunk_shard_stale_.assign(n_chunks * shard_count, 0);
  run_span(n_chunks, 1, [&](std::size_t k_begin, std::size_t k_end) {
    for (std::size_t k = k_begin; k < k_end; ++k) {
      std::uint32_t* hist = bin_hist_.data() + k * g.n_cells;
      std::uint8_t* stale = chunk_shard_stale_.data() + k * shard_count;
      const std::size_t i_end = std::min(n, (k + 1) * chunk);
      for (std::size_t i = k * chunk; i < i_end; ++i) {
        wrapped_[i] = box.wrap(positions[i]);
        const std::size_t c =
            listutil::cell_index(wrapped_[i], g.inv_cell, g.cells);
        cell_of_atom_[i] = static_cast<std::uint32_t>(c);
        ++hist[c];
        const auto dr = box.min_image(positions[i] - build_positions_[i]);
        if (length_squared(dr) > limit_sq) {
          stale[domain.shard_of_slab(c / n_lines)] = 1;
        }
      }
    }
  });

  shard_stale_.assign(shard_count, 0);
  bool any = false;
  for (std::size_t k = 0; k < n_chunks; ++k) {
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (chunk_shard_stale_[k * shard_count + s] != 0) {
        shard_stale_[s] = 1;
        any = true;
      }
    }
  }
  if (!any) return false;

  // Any stale shard rebuilds ALL shards (the bitwise contract forbids
  // partial rebuilds — see the header).  Pass 1 of the counting sort is
  // already in bin_hist_/cell_of_atom_/wrapped_; keep the per-shard
  // verdicts the fused pass produced across the rebuild.
  std::vector<std::uint8_t> verdicts = shard_stale_;
  build_impl(positions, box, cutoff, /*prebinned=*/true, seconds_since(t0));
  if (sharded_build_ && verdicts.size() == shard_stale_.size()) {
    shard_stale_ = verdicts;
  }
  return true;
}

template <typename Real>
void ShardedNeighborListT<Real>::build_impl(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, Real cutoff, bool prebinned,
    double fused_seconds) {
  if (fault::injected("md.list_build")) {
    // Same contract as the flat list: leave the list invalidated so a
    // degraded-then-retried evaluation starts from a clean rebuild.
    invalidate();
    throw RuntimeFailure("neighbour list: injected rebuild failure");
  }
  const std::size_t n = positions.size();
  const Real list_cutoff = cutoff + skin_;
  list_cutoff_sq_ = list_cutoff * list_cutoff;
  build_cutoff_ = cutoff;
  build_edge_ = box.edge();
  build_positions_ = positions;
  directed_entries_ = 0;
  build_distance_tests_ = 0;
  last_bin_seconds_ = fused_seconds;
  last_halo_seconds_ = 0;
  last_fill_seconds_ = 0;
  ++rebuilds_;

  const auto t_bin = std::chrono::steady_clock::now();
  if (!prebinned) {
    wrapped_.resize(n);
    run_span(n, 512, [&](std::size_t i_begin, std::size_t i_end) {
      for (std::size_t i = i_begin; i < i_end; ++i) {
        wrapped_[i] = box.wrap(positions[i]);
      }
    });
  }

  if (n == 0) {
    row_begin_.assign(1, 0);
    entries_.clear();
    sharded_build_ = false;
    domain_ = ShardedDomain();
    shard_stale_.assign(1, 1);
    last_bin_seconds_ += seconds_since(t_bin);
    bin_seconds_total_ += last_bin_seconds_;
    return;
  }

  const Geometry g = geometry(build_edge_, list_cutoff);
  auto run = [this](std::size_t count, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body) {
    run_span(count, grain, body);
  };

  if (g.degenerate) {
    // Box too small for a proper stencil: the shared O(N^2) fallback, one
    // logical shard.  All pre-sweep work counts as bin, like the flat list.
    sharded_build_ = false;
    domain_ = ShardedDomain();
    shard_stale_.assign(1, 1);
    last_bin_seconds_ += seconds_since(t_bin);
    bin_seconds_total_ += last_bin_seconds_;
    const auto t_fill = std::chrono::steady_clock::now();
    listutil::build_all_pairs_csr<Real>(
        wrapped_, box, list_cutoff_sq_,
        [&](std::size_t count,
            const std::function<void(std::size_t, std::size_t)>& body) {
          run_span(count, 64, body);
        },
        row_begin_, entries_, row_count_, directed_entries_,
        build_distance_tests_);
    last_fill_seconds_ = seconds_since(t_fill);
    fill_seconds_total_ += last_fill_seconds_;
    return;
  }

  sharded_build_ = true;
  domain_ = ShardedDomain(g.cells, g.range, requested_shards_);
  shard_stale_.assign(domain_.shard_count(), 1);

  // The stable counting sort — pass 1 may already be paid for by ensure()'s
  // fused pass; passes 2 and 3 and the stencil tables are the SAME code the
  // flat build runs (list_build_util.h), so cell_atoms_/cell_start_/
  // stencil_pop_ are bitwise the flat build's.
  if (!prebinned) {
    listutil::bin_pass_histogram(wrapped_, g.cells, g.n_cells, g.inv_cell, run,
                                 cell_of_atom_, bin_hist_);
  }
  listutil::bin_merge_scatter(n, g.n_cells, run, cell_of_atom_, bin_hist_,
                              cell_start_, cell_atoms_);
  listutil::fill_stencil_axis(g.cells, g.range, stencil_axis_);
  listutil::populate_stencil(g.cells, g.range, run, cell_start_, stencil_pop_,
                             stencil_tmp_);

  // Exact scratch CSR offsets (serial prefix, identical to the flat build).
  scratch_begin_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    scratch_begin_[i + 1] =
        scratch_begin_[i] + stencil_pop_[cell_of_atom_[i]] - 1;  // minus self
  }
  build_distance_tests_ = scratch_begin_[n];
  scratch_entries_.resize(scratch_begin_[n]);

  last_bin_seconds_ += seconds_since(t_bin);
  bin_seconds_total_ += last_bin_seconds_;

  // Halo phase: shard-local coordinate copies, packed by the worker that
  // will sweep the shard (pool chunks of one shard — first-touch places
  // fresh pages on that worker's NUMA node; nested pools run inline so the
  // packing loop itself never migrates).
  const auto t_halo = std::chrono::steady_clock::now();
  pack_halos(g);
  last_halo_seconds_ = seconds_since(t_halo);
  halo_seconds_total_ += last_halo_seconds_;

  // Fill phase: per-shard sweep over shard-local memory, then the same
  // serial padded prefix and copy-only compaction as the flat build.
  const auto t_fill = std::chrono::steady_clock::now();
  sweep_shards(box, g);

  row_begin_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    row_begin_[i + 1] = row_begin_[i] + padded_count<Real>(row_count_[i]);
    directed_entries_ += row_count_[i];
  }

  entries_.resize(row_begin_[n]);
  run_span(n, 64, [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      const std::uint32_t* src = scratch_entries_.data() + scratch_begin_[i];
      std::uint32_t slot = row_begin_[i];
      for (std::uint32_t k = 0; k < row_count_[i]; ++k) {
        entries_[slot++] = src[k];
      }
      for (; slot < row_begin_[i + 1]; ++slot) {
        entries_[slot] = static_cast<std::uint32_t>(i);  // self pad, r2 == 0
      }
    }
  });

  last_fill_seconds_ = seconds_since(t_fill);
  fill_seconds_total_ += last_fill_seconds_;
}

template <typename Real>
void ShardedNeighborListT<Real>::pack_halos(const Geometry& g) {
  const std::size_t shard_count = domain_.shard_count();
  const std::size_t n_lines = g.cells * g.cells;
  views_.resize(shard_count);
  run_span(shard_count, 1, [&](std::size_t s_begin, std::size_t s_end) {
    for (std::size_t s = s_begin; s < s_end; ++s) {
      ShardView& v = views_[s];
      const std::size_t w = domain_.halo_width(s);
      const std::size_t hx0 = domain_.halo_begin(s);
      v.slab_base.resize(w);
      v.slab_offset.resize(w);
      std::uint32_t off = 0;
      for (std::size_t lx = 0; lx < w; ++lx) {
        const std::size_t gx = (hx0 + lx) % g.cells;
        const std::uint32_t base = cell_start_[gx * n_lines];
        v.slab_base[lx] = base;
        v.slab_offset[lx] = off;
        off += cell_start_[(gx + 1) * n_lines] - base;
      }
      v.gid.resize(off);
      v.xs.resize(off);
      v.ys.resize(off);
      v.zs.resize(off);
      for (std::size_t lx = 0; lx < w; ++lx) {
        const std::size_t gx = (hx0 + lx) % g.cells;
        const std::uint32_t base = v.slab_base[lx];
        const std::uint32_t count = cell_start_[(gx + 1) * n_lines] - base;
        std::uint32_t* gid = v.gid.data() + v.slab_offset[lx];
        Real* xs = v.xs.data() + v.slab_offset[lx];
        Real* ys = v.ys.data() + v.slab_offset[lx];
        Real* zs = v.zs.data() + v.slab_offset[lx];
        for (std::uint32_t k = 0; k < count; ++k) {
          const std::uint32_t j = cell_atoms_[base + k];
          gid[k] = j;
          // Exact copies of the globally wrapped coordinates — the sweep's
          // distance tests see the same bits the flat build would.
          xs[k] = wrapped_[j].x;
          ys[k] = wrapped_[j].y;
          zs[k] = wrapped_[j].z;
        }
      }
    }
  });
}

template <typename Real>
void ShardedNeighborListT<Real>::sweep_shards(const PeriodicBoxT<Real>& box,
                                              const Geometry& g) {
  const std::size_t n = build_positions_.size();
  const std::size_t shard_count = domain_.shard_count();
  const std::size_t n_lines = g.cells * g.cells;
  row_count_.assign(n, 0);
  // One pool chunk per shard; every atom is owned by exactly one shard and
  // writes only its own scratch range and row count, so shard execution
  // order is irrelevant.  Entry ORDER within a row (stencil cells in table
  // order, atoms within a cell in index order) and accept/reject decisions
  // (same minimum-image arithmetic on copies of the same wrapped values)
  // are exactly the flat sweep's — the CSR comes out byte-identical.
  run_span(shard_count, 1, [&](std::size_t s_begin, std::size_t s_end) {
    for (std::size_t s = s_begin; s < s_end; ++s) {
      const ShardView& v = views_[s];
      const std::size_t hx0 = domain_.halo_begin(s);
      for (std::size_t gx = domain_.slab_begin(s); gx < domain_.slab_end(s);
           ++gx) {
        for (std::uint32_t t = cell_start_[gx * n_lines];
             t < cell_start_[(gx + 1) * n_lines]; ++t) {
          const std::uint32_t i = cell_atoms_[t];
          const std::size_t c_i = cell_of_atom_[i];
          const std::size_t cx = gx;
          const std::size_t cy = (c_i / g.cells) % g.cells;
          const std::size_t cz = c_i % g.cells;
          std::uint64_t slot = scratch_begin_[i];
          for (std::size_t kx = 0; kx < g.width; ++kx) {
            const std::size_t px = stencil_axis_[cx * g.width + kx];
            const std::size_t lx = (px + g.cells - hx0) % g.cells;
            // Local address base of x-slab px inside this shard's view.
            const std::uint32_t rebase = v.slab_offset[lx] - v.slab_base[lx];
            for (std::size_t ky = 0; ky < g.width; ++ky) {
              const std::size_t py = stencil_axis_[cy * g.width + ky];
              const std::size_t row = (px * g.cells + py) * g.cells;
              for (std::size_t kz = 0; kz < g.width; ++kz) {
                const std::size_t c = row + stencil_axis_[cz * g.width + kz];
                const std::uint32_t a = cell_start_[c] + rebase;
                const std::uint32_t b = cell_start_[c + 1] + rebase;
                for (std::uint32_t u = a; u < b; ++u) {
                  const std::uint32_t j = v.gid[u];
                  if (j == i) continue;
                  const emdpa::Vec3<Real> pj{v.xs[u], v.ys[u], v.zs[u]};
                  const auto dr = box.min_image(wrapped_[i] - pj);
                  if (length_squared(dr) < list_cutoff_sq_) {
                    scratch_entries_[slot++] = j;
                  }
                }
              }
            }
          }
          row_count_[i] = static_cast<std::uint32_t>(slot - scratch_begin_[i]);
        }
      }
    }
  });
}

template class ShardedNeighborListT<double>;
template class ShardedNeighborListT<float>;

}  // namespace emdpa::md
