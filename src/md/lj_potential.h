// The 6-12 Lennard-Jones pair potential used by every kernel in the project.
//
//   V(r) = 4*eps * [ (sigma/r)^12 - (sigma/r)^6 ]
//
// Interactions are truncated (not shifted) at the cutoff, exactly as in the
// paper's kernel: atoms beyond the cutoff contribute neither force nor
// energy, and distances are evaluated on the fly with no neighbour list.
#pragma once

#include "core/error.h"

namespace emdpa::md {

template <typename Real>
struct LjParamsT {
  Real epsilon{1};
  Real sigma{1};
  Real cutoff{Real(2.5)};

  /// When true, the pair energy is shifted by -V(cutoff) so it reaches zero
  /// continuously at the cutoff.  The paper's kernel is plain truncated
  /// (shifted = false); the shifted form is provided because it removes the
  /// energy-bookkeeping discontinuity, which the energy-conservation
  /// property tests rely on.  Forces are identical either way.
  bool shifted = false;

  Real cutoff_squared() const { return cutoff * cutoff; }

  /// Pair potential energy at squared separation r2 (no cutoff test; the
  /// caller gates on cutoff_squared, mirroring the kernels' structure).
  Real pair_energy(Real r2) const {
    const Real s2 = sigma * sigma / r2;
    const Real s6 = s2 * s2 * s2;
    Real e = Real(4) * epsilon * s6 * (s6 - Real(1));
    if (shifted) e -= energy_shift();
    return e;
  }

  /// V(cutoff), the amount subtracted per pair when `shifted` is set.
  Real energy_shift() const {
    const Real s2 = sigma * sigma / cutoff_squared();
    const Real s6 = s2 * s2 * s2;
    return Real(4) * epsilon * s6 * (s6 - Real(1));
  }

  /// F(r)/r at squared separation r2, so that the force vector on atom i from
  /// atom j is  f_over_r * (r_i - r_j).  Positive value = repulsion.
  ///
  ///   F(r)/r = 24*eps/r^2 * [ 2*(sigma/r)^12 - (sigma/r)^6 ]
  Real pair_force_over_r(Real r2) const {
    const Real inv_r2 = Real(1) / r2;
    const Real s2 = sigma * sigma * inv_r2;
    const Real s6 = s2 * s2 * s2;
    return Real(24) * epsilon * inv_r2 * s6 * (Real(2) * s6 - Real(1));
  }

  /// Separation at which the potential crosses zero (= sigma).
  Real zero_crossing() const { return sigma; }

  /// Separation of the potential minimum, 2^(1/6)*sigma.
  Real minimum_location() const {
    return sigma * Real(1.1224620483093729814); // 2^(1/6)
  }

  /// Well depth at the minimum (= -epsilon).
  Real minimum_energy() const { return -epsilon; }

  template <typename Other>
  LjParamsT<Other> cast() const {
    return {static_cast<Other>(epsilon), static_cast<Other>(sigma),
            static_cast<Other>(cutoff), shifted};
  }
};

using LjParams = LjParamsT<double>;
using LjParamsF = LjParamsT<float>;

}  // namespace emdpa::md
