#include "md/simd_kernels.h"

#include "core/error.h"
#include "core/simd_dispatch.h"

namespace emdpa::md::simd_kernels {

const KernelRows* rows_for(simd::SimdType isa) {
  switch (isa) {
    case simd::SimdType::kScalar: return detail::rows_scalar();
    case simd::SimdType::kSse2: return detail::rows_sse2();
    case simd::SimdType::kAvx2: return detail::rows_avx2();
    case simd::SimdType::kAvx512: return detail::rows_avx512();
  }
  return nullptr;
}

unsigned compiled_mask() {
  unsigned mask = 0;
  for (const simd::SimdType isa : simd::kIsaRanking) {
    if (rows_for(isa) != nullptr) mask |= simd::isa_bit(isa);
  }
  return mask;
}

bool isa_available(simd::SimdType isa) {
  return rows_for(isa) != nullptr && simd::cpu_supports(isa);
}

std::vector<simd::SimdType> available_isas() {
  std::vector<simd::SimdType> isas;
  for (const simd::SimdType isa : simd::kIsaRanking) {
    if (isa_available(isa)) isas.push_back(isa);
  }
  return isas;
}

simd::SimdType resolve_isa(std::optional<simd::SimdType> request) {
  if (!request) request = simd::env_simd_override();
  return simd::choose_isa(compiled_mask(), request);
}

const KernelRows& rows(simd::SimdType isa) {
  const KernelRows* table = rows_for(isa);
  if (table == nullptr) {
    throw ContractViolation(std::string("SIMD kernel table for '") +
                            simd::to_string(isa) +
                            "' requested without resolve_isa()");
  }
  return *table;
}

}  // namespace emdpa::md::simd_kernels
