// Supervised cooperative ensemble scheduler: many simulations, one thread
// pool, and a runtime that survives its own death.
//
// The paper evaluates one simulation per architecture; the production story
// is aggregate throughput — replica ensembles and parameter sweeps
// multiplexed over shared compute, jobs/sec rather than steps/sec.  This
// scheduler runs a manifest of N independent jobs (each a full RunConfig)
// cooperatively over ONE shared ThreadPool by time-slicing at checkpoint
// boundaries:
//
//   suspend = CheckpointManager save   (atomic commit, CRC-32, rotation)
//   resume  = bit-exact restore        (v3 config-verified, no re-priming)
//
// Because PR 5 made save/resume bitwise, a time-sliced job's trajectory is
// bit-for-bit identical to the same job run standalone with the same
// checkpoint cadence — the scheduling layer is invisible to the physics
// (tests/trajectory/trajectory_batch_test.cpp proves it at 1 and 8
// threads).  On top of that seam:
//
//  * Priority queue (core/job_queue.h): strict priority between bands,
//    deterministic round-robin inside one.
//  * Backpressure: at most max_in_flight jobs keep live Simulation state in
//    memory; the rest exist only as checkpoint files until rescheduled.
//  * SUPERVISION (md/batch_journal.h + md/retry_policy.h): every job state
//    transition — admitted -> running -> suspended -> retrying(n) ->
//    quarantined/done/failed — is journaled through a CRC-checked
//    write-ahead log before the batch acts on it.  SIGKILL the scheduler at
//    any instant and re-running the same command replays the journal,
//    reconciles it against the per-job checkpoints/markers, and resumes:
//    retry counters, quarantine verdicts and the round-robin position all
//    survive.  A transiently failing job is retried with deterministic
//    decorrelated-jitter backoff up to its retry budget, then QUARANTINED —
//    set aside with its attempt count — instead of aborting the batch or
//    silently eating its wall clock forever.  Per-job wall/slice deadline
//    budgets (HealthMonitor::enforce_deadline) quarantine immediately.
//    ContractViolation (programming error) still aborts the whole batch.
//  * Drain: stop_requested (the driver wires SIGINT/SIGTERM here) finishes
//    the current slice — whose suspend already checkpointed it — and marks
//    the unfinished jobs interrupted.  Re-running the same manifest against
//    the same checkpoint directory resumes them and skips completed ones
//    (recorded in `<name>.done` markers, reconciled with the journal).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "md/backend.h"
#include "md/checkpoint_manager.h"
#include "md/integrator.h"
#include "md/particle_system.h"
#include "md/retry_policy.h"
#include "md/simulation.h"

namespace emdpa::md {

class BatchJournal;

/// One manifest entry: a named, prioritised, fully configured run.
struct JobSpec {
  /// Unique within the batch; also the checkpoint file stem, so restricted
  /// to [A-Za-z0-9._-].
  std::string name;
  /// Higher runs first; equal priorities round-robin deterministically.
  int priority = 0;
  /// Full per-job run configuration (atoms, steps, kernel, precision, seed,
  /// dt, degrade, drift_tolerance, ...).  `steps` is the total target.
  RunConfig config;
  /// Per-job overrides of the batch-wide retry/deadline policy
  /// (SchedulerOptions::retry); unset inherits the batch default.
  std::optional<int> max_retries;
  std::optional<double> deadline_seconds;
  std::optional<std::uint64_t> slice_budget;
};

enum class JobStatus {
  kPending,
  kCompleted,
  kFailed,
  kInterrupted,
  kQuarantined,
};

const char* to_string(JobStatus status);

/// Per-job outcome row for the report/CSV layer.
struct JobResult {
  std::string name;
  int priority = 0;
  JobStatus status = JobStatus::kPending;
  long steps_done = 0;
  long steps_target = 0;
  std::uint64_t slices = 0;            ///< time slices executed this batch
  std::uint64_t checkpoint_saves = 0;  ///< committed suspend checkpoints
  /// Failed attempts consumed so far — cumulative across reruns (journal-
  /// restored), so the report shows the true retry history after a crash.
  int attempts = 0;
  bool degraded = false;               ///< fell back to the reference kernel
  bool resumed = false;  ///< started from a pre-existing checkpoint
  double wall_seconds = 0.0;           ///< this job's slices, wall clock
  StepEnergies final_energies{};
  /// Failure message with structured context (kFailed/kQuarantined, or the
  /// latest retried error while a job is still being supervised).
  std::string error;
  /// Final state of a job completed in THIS batch (empty otherwise; a job
  /// already completed in a previous batch lives in its checkpoint file).
  ParticleSystem final_state;
};

struct BatchResult {
  std::vector<JobResult> jobs;  ///< manifest order
  bool interrupted = false;     ///< drained on stop_requested
  std::size_t count(JobStatus status) const;
};

struct SchedulerOptions {
  /// Steps per time slice; also the checkpoint cadence (every suspend
  /// saves), so a standalone run with --checkpoint-every <slice_steps> is
  /// the bitwise-equivalence reference.
  int slice_steps = 100;
  /// Jobs allowed to keep live Simulation state in memory at once.  Beyond
  /// it the least-recently-scheduled resident is evicted to its checkpoint
  /// file (a job whose last save failed transiently stays pinned resident —
  /// evicting it would lose state).
  std::size_t max_in_flight = 4;
  /// Directory for `<name>.ckpt` checkpoint generations and `<name>.done`
  /// completion markers; created if missing.  Reusing a directory resumes
  /// the batch recorded in it.
  std::string checkpoint_dir;
  /// Batch-wide retry/backoff/deadline defaults (per-job overrides ride on
  /// JobSpec).  max_retries == 0 keeps the pre-supervision verdict: one
  /// failure fails the job.
  RetryPolicy retry;
  /// Write-ahead journal path; empty derives `<checkpoint_dir>/batch.wal`.
  std::string journal_path;
  /// Journal segment size bound; past it the log compacts atomically.
  std::uint64_t journal_max_bytes = 256 * 1024;
  /// Shared pool the jobs' force kernels ride on; nullptr runs serial.
  ThreadPool* pool = nullptr;
  /// Polled between slices; true drains the batch (see header comment).
  std::function<bool()> stop_requested;
};

class JobScheduler {
 public:
  /// Validates the manifest (unique filesystem-safe names, positive steps)
  /// and scheduler options, and creates the checkpoint directory.  Throws
  /// RuntimeFailure/ContractViolation on invalid input.
  JobScheduler(std::vector<JobSpec> jobs, SchedulerOptions options);
  ~JobScheduler();

  /// Run the batch to completion (or drain).  Callable once.
  BatchResult run();

 private:
  struct JobState {
    JobSpec spec;
    JobResult result;
    CheckpointManager manager;
    RetryState retry;
    /// Merged (batch default + per-job override) deadline budgets.
    double deadline_wall_seconds = 0.0;
    std::uint64_t slice_budget = 0;
    std::optional<Simulation> sim;
    bool pinned = false;           ///< last suspend save failed; do not evict
    bool retry_waiting = false;    ///< backing off; runnable at release_round
    std::uint64_t release_round = 0;
    /// Slices across EVERY process that ran this job (journal-restored);
    /// the slice-budget deadline meters this, not the per-batch count.
    std::uint64_t total_slices = 0;
    std::uint64_t last_event = 0;  ///< journal recency for queue rebuild
    std::uint64_t last_scheduled = 0;

    JobState(JobSpec s, std::string checkpoint_path,
             const RetryPolicy& merged_policy);
  };

  void ensure_resident(JobState& job);
  void run_slice(JobState& job, std::uint64_t round);
  void supervise_failure(JobState& job, const RuntimeFailure& error,
                         std::uint64_t round);
  void salvage(JobState& job);
  void complete(JobState& job);
  void fail(JobState& job, const RuntimeFailure& error);
  void quarantine(JobState& job, const std::string& reason);
  void finish(JobState& job, JobStatus status);
  void evict_over_limit();
  void reconcile(JobState& job, const struct ReplayedJob& replayed);
  void compact_journal(std::uint64_t round);
  std::string marker_path(const JobState& job) const;
  void write_marker(const JobState& job) const;
  bool load_marker(JobState& job) const;

  std::vector<JobState> jobs_;
  SchedulerOptions options_;
  std::unique_ptr<BatchJournal> journal_;
  std::uint64_t schedule_clock_ = 0;
  bool ran_ = false;
};

}  // namespace emdpa::md
