// Scalar row kernels — the always-available dispatch floor.  Built with
// -ffp-contract=off like every other row TU so the lane arithmetic stays
// bitwise identical to the vector ISAs even under -march=native.
#include "md/simd_rows_impl.h"

namespace emdpa::md::simd_kernels::detail {

const KernelRows* rows_scalar() {
  static const KernelRows table = make_rows<simd::SimdType::kScalar>();
  return &table;
}

}  // namespace emdpa::md::simd_kernels::detail
