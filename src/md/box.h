// Periodic simulation box and minimum-image computation.
//
// The paper's kernel spends most of its time finding, for each atom pair,
// the closest of the 27 periodic images ("searching the 27 neighboring unit
// cells").  The optimised Cell port replaces this search with branch-free
// reflections ("replace if with copysign", then SIMD across all three axes).
// We implement all three strategies; they must agree whenever positions are
// wrapped into the primary box, which tests assert as a property.
#pragma once

#include <cmath>

#include "core/error.h"
#include "core/vec3.h"

namespace emdpa::md {

/// A cubic periodic box with edge length `edge`, spanning [0, edge)^3.
template <typename Real>
class PeriodicBoxT {
 public:
  explicit PeriodicBoxT(Real edge) : edge_(edge) {
    EMDPA_REQUIRE(edge > Real(0), "box edge must be positive");
  }

  Real edge() const { return edge_; }
  Real half_edge() const { return edge_ / Real(2); }
  Real volume() const { return edge_ * edge_ * edge_; }

  /// Wrap a position into the primary box [0, edge)^3.
  emdpa::Vec3<Real> wrap(emdpa::Vec3<Real> p) const {
    p.x -= edge_ * std::floor(p.x / edge_);
    p.y -= edge_ * std::floor(p.y / edge_);
    p.z -= edge_ * std::floor(p.z / edge_);
    return p;
  }

  /// Minimum-image displacement via rounding — the host-reference strategy.
  /// Valid for any separation.
  emdpa::Vec3<Real> min_image(emdpa::Vec3<Real> dr) const {
    dr.x -= edge_ * std::round(dr.x / edge_);
    dr.y -= edge_ * std::round(dr.y / edge_);
    dr.z -= edge_ * std::round(dr.z / edge_);
    return dr;
  }

  /// Minimum-image displacement via a single reflection with an `if` per
  /// axis — the "original" strategy on the SPE (branchy; the SPE has no
  /// branch prediction so this is the slow path of Fig 5).  Requires the raw
  /// separation to satisfy |dr| < 1.5*edge per axis, which holds whenever
  /// both positions are wrapped.
  emdpa::Vec3<Real> min_image_branchy(emdpa::Vec3<Real> dr) const {
    const Real half = half_edge();
    if (dr.x > half) dr.x -= edge_; else if (dr.x < -half) dr.x += edge_;
    if (dr.y > half) dr.y -= edge_; else if (dr.y < -half) dr.y += edge_;
    if (dr.z > half) dr.z -= edge_; else if (dr.z < -half) dr.z += edge_;
    return dr;
  }

  /// Minimum-image displacement via branch-free copysign selection — the
  /// paper's first SPE optimisation.  Same validity domain as
  /// min_image_branchy.
  emdpa::Vec3<Real> min_image_copysign(emdpa::Vec3<Real> dr) const {
    const Real half = half_edge();
    // select(|d| > half, copysign(edge, d), 0) without a data-dependent
    // branch: the comparison produces a 0/1 mask multiplied into the shift.
    const Real mx = Real(std::fabs(dr.x) > half);
    const Real my = Real(std::fabs(dr.y) > half);
    const Real mz = Real(std::fabs(dr.z) > half);
    dr.x -= mx * std::copysign(edge_, dr.x);
    dr.y -= my * std::copysign(edge_, dr.y);
    dr.z -= mz * std::copysign(edge_, dr.z);
    return dr;
  }

  /// Minimum-image displacement by brute-force search over the 27 periodic
  /// images — the strategy of the paper's baseline kernel.  Returns the image
  /// of `dr` with the smallest length.
  emdpa::Vec3<Real> min_image_search27(const emdpa::Vec3<Real>& dr) const {
    emdpa::Vec3<Real> best = dr;
    Real best_r2 = length_squared(dr);
    for (int ix = -1; ix <= 1; ++ix) {
      for (int iy = -1; iy <= 1; ++iy) {
        for (int iz = -1; iz <= 1; ++iz) {
          const emdpa::Vec3<Real> cand{dr.x + Real(ix) * edge_,
                                       dr.y + Real(iy) * edge_,
                                       dr.z + Real(iz) * edge_};
          const Real r2 = length_squared(cand);
          if (r2 < best_r2) {
            best_r2 = r2;
            best = cand;
          }
        }
      }
    }
    return best;
  }

 private:
  Real edge_;
};

using PeriodicBox = PeriodicBoxT<double>;
using PeriodicBoxF = PeriodicBoxT<float>;

}  // namespace emdpa::md
