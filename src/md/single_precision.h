// Double-facing adapters over the fp32 kernels — the `--precision sp` path.
//
// md::Simulation (and everything above it: backends, reports, checkpoints)
// speaks double.  The sp kernels (SoaKernelT<float>, NeighborListKernelT
// <float>) speak float end to end — that is the point, ALL their math
// including the accumulation runs at single precision, reproducing the
// trade the paper's Cell port makes when it keeps the SPE pipelines in
// fp32.  These adapters sit on the seam: narrow the double interface once
// per evaluation, run the float kernel, widen the results back.  The
// rounding happens exactly where the narrowing casts are written and
// nowhere else.
//
// Contrast with the mixed kernels (<float, double>): those are natively
// double-facing (ForceKernelT<double>), narrow only the lane inputs and
// accumulate in double, so they need no adapter.
#pragma once

#include "md/force_kernel.h"
#include "md/parallel_neighbor.h"
#include "md/sharded_domain.h"
#include "md/soa_kernel.h"

namespace emdpa::md {

namespace detail {

/// Narrow the double interface to the float one the sp kernels speak, run,
/// widen the results back.  Shared by every sp adapter.
template <typename Kernel>
ForceResult run_single(Kernel& inner,
                       std::vector<emdpa::Vec3<float>>& positions_f,
                       const std::vector<emdpa::Vec3<double>>& positions,
                       const PeriodicBox& box, const LjParams& lj,
                       double mass) {
  positions_f.resize(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    positions_f[i] = emdpa::Vec3<float>{static_cast<float>(positions[i].x),
                                        static_cast<float>(positions[i].y),
                                        static_cast<float>(positions[i].z)};
  }
  const PeriodicBoxF box_f(static_cast<float>(box.edge()));
  const LjParamsF lj_f = lj.cast<float>();

  const ForceResultF inner_result =
      inner.compute(positions_f, box_f, lj_f, static_cast<float>(mass));

  ForceResult result;
  result.accelerations.resize(inner_result.accelerations.size());
  for (std::size_t i = 0; i < inner_result.accelerations.size(); ++i) {
    const auto& a = inner_result.accelerations[i];
    result.accelerations[i] = emdpa::Vec3<double>{a.x, a.y, a.z};
  }
  result.potential_energy = inner_result.potential_energy;
  result.virial = inner_result.virial;
  result.stats = inner_result.stats;
  return result;
}

}  // namespace detail

/// SoaKernelT<float> behind the double ForceKernel interface.
class SingleSoaKernel final : public ForceKernel {
 public:
  explicit SingleSoaKernel(SoaKernelF::Options options = {})
      : inner_(options) {}

  std::string name() const override { return inner_.name(); }
  simd::SimdType isa() const { return inner_.isa(); }
  std::size_t simd_width() const { return inner_.simd_width(); }

  ForceResult compute(const std::vector<emdpa::Vec3<double>>& positions,
                      const PeriodicBox& box, const LjParams& lj,
                      double mass) override;

 private:
  SoaKernelF inner_;
  std::vector<emdpa::Vec3<float>> positions_f_;
};

/// A float list kernel (NeighborListKernelF / ShardedNeighborListKernelF)
/// behind the double ForceKernel interface; forwards the
/// NeighborListControl seam to the inner kernel so md::Simulation can
/// checkpoint-invalidate and report rebuilds as usual.
template <typename Inner>
class SingleListKernelT final : public ForceKernel,
                                public NeighborListControl {
 public:
  explicit SingleListKernelT(typename Inner::Options options = {})
      : inner_(options) {}

  std::string name() const override { return inner_.name(); }
  simd::SimdType isa() const { return inner_.isa(); }
  std::size_t simd_width() const { return inner_.simd_width(); }
  const Inner& inner() const { return inner_; }

  std::uint64_t list_rebuilds() const override {
    return inner_.list_rebuilds();
  }
  void invalidate_list() override { inner_.invalidate_list(); }
  double list_bin_seconds() const override {
    return inner_.list_bin_seconds();
  }
  double list_halo_seconds() const override {
    return inner_.list_halo_seconds();
  }
  double list_fill_seconds() const override {
    return inner_.list_fill_seconds();
  }
  bool has_list() const override { return inner_.has_list(); }
  std::vector<emdpa::Vec3d> list_reference_positions() const override {
    return inner_.list_reference_positions();
  }
  double list_build_cutoff() const override {
    return inner_.list_build_cutoff();
  }
  void seed_list(const std::vector<emdpa::Vec3d>& reference, double box_edge,
                 double cutoff) override {
    inner_.seed_list(reference, box_edge, cutoff);
  }

  ForceResult compute(const std::vector<emdpa::Vec3<double>>& positions,
                      const PeriodicBox& box, const LjParams& lj,
                      double mass) override {
    return detail::run_single(inner_, positions_f_, positions, box, lj, mass);
  }

 private:
  Inner inner_;
  std::vector<emdpa::Vec3<float>> positions_f_;
};

using SingleNeighborListKernel = SingleListKernelT<NeighborListKernelF>;
using SingleShardedListKernel = SingleListKernelT<ShardedNeighborListKernelF>;

}  // namespace emdpa::md
