// Scalar observables of a particle system (step 5 of the paper's kernel:
// "calculate new kinetic and total energies").
#pragma once

#include "core/vec3.h"
#include "md/particle_system.h"

namespace emdpa::md {

/// Total kinetic energy, 1/2 * m * sum(v^2).
template <typename Real>
Real kinetic_energy_of(const ParticleSystemT<Real>& system);

/// Instantaneous temperature from equipartition, T = 2*KE / (3*N).
/// (We use 3N rather than 3N-3 degrees of freedom, matching the simple
/// kernel in the paper; the difference is O(1/N).)
template <typename Real>
Real temperature_of(const ParticleSystemT<Real>& system);

/// Total linear momentum, m * sum(v).  Conserved exactly by the integrator
/// (up to roundoff): Newton's third law makes the force sum vanish.
template <typename Real>
emdpa::Vec3<Real> total_momentum_of(const ParticleSystemT<Real>& system);

/// Centre of mass of the (equal-mass) system.
template <typename Real>
emdpa::Vec3<Real> center_of_mass_of(const ParticleSystemT<Real>& system);

/// Instantaneous pressure from the virial theorem:
///   P = (2*KE + W) / (3*V)
/// where W is the pair virial a force kernel reports in ForceResult::virial.
/// For an ideal gas (W = 0) this reduces to P = rho*T.
template <typename Real>
Real pressure_of(const ParticleSystemT<Real>& system, Real volume, Real virial);

}  // namespace emdpa::md
