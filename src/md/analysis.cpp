#include "md/analysis.h"

#include <cmath>
#include <numbers>

#include "core/error.h"

namespace emdpa::md {

RadialDistribution::RadialDistribution(std::size_t bins, double r_max)
    : counts_(bins, 0), r_max_(r_max), bin_width_(r_max / static_cast<double>(bins)) {
  EMDPA_REQUIRE(bins > 0, "histogram needs at least one bin");
  EMDPA_REQUIRE(r_max > 0.0, "r_max must be positive");
}

void RadialDistribution::accumulate(const ParticleSystem& system,
                                    const PeriodicBox& box) {
  const std::size_t n = system.size();
  EMDPA_REQUIRE(n >= 2, "g(r) needs at least two atoms");
  if (snapshots_ == 0) {
    atoms_ = n;
  } else {
    EMDPA_REQUIRE(n == atoms_, "atom count changed between snapshots");
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Vec3d dr =
          box.min_image(system.positions()[i] - system.positions()[j]);
      const double r = length(dr);
      if (r < r_max_) {
        // Each unordered pair counts twice (i sees j and j sees i).
        counts_[static_cast<std::size_t>(r / bin_width_)] += 2;
      }
    }
  }
  density_sum_ += static_cast<double>(n) / box.volume();
  ++snapshots_;
}

double RadialDistribution::bin_center(std::size_t b) const {
  return (static_cast<double>(b) + 0.5) * bin_width_;
}

std::vector<double> RadialDistribution::normalized() const {
  std::vector<double> g(counts_.size(), 0.0);
  if (snapshots_ == 0) return g;

  const double mean_density = density_sum_ / static_cast<double>(snapshots_);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double r_lo = static_cast<double>(b) * bin_width_;
    const double r_hi = r_lo + bin_width_;
    const double shell_volume =
        4.0 / 3.0 * std::numbers::pi * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal_pairs_per_atom = mean_density * shell_volume;
    const double observed_per_atom =
        static_cast<double>(counts_[b]) /
        (static_cast<double>(snapshots_) * static_cast<double>(atoms_));
    g[b] = observed_per_atom / ideal_pairs_per_atom;
  }
  return g;
}

double RadialDistribution::peak_location() const {
  const std::vector<double> g = normalized();
  std::size_t best = 0;
  for (std::size_t b = 1; b < g.size(); ++b) {
    if (g[b] > g[best]) best = b;
  }
  return bin_center(best);
}

MeanSquaredDisplacement::MeanSquaredDisplacement(
    const std::vector<Vec3d>& reference, const PeriodicBox& box)
    : box_(box), reference_(reference), unwrapped_(reference),
      last_wrapped_(reference) {
  EMDPA_REQUIRE(!reference.empty(), "MSD needs at least one atom");
}

void MeanSquaredDisplacement::update(const ParticleSystem& system) {
  EMDPA_REQUIRE(system.size() == reference_.size(),
                "atom count changed between snapshots");
  for (std::size_t i = 0; i < reference_.size(); ++i) {
    // Minimum-image displacement since the last snapshot unwraps boundary
    // crossings (valid while per-interval motion < half a box edge).
    const Vec3d step = box_.min_image(system.positions()[i] - last_wrapped_[i]);
    unwrapped_[i] += step;
    last_wrapped_[i] = system.positions()[i];
  }
}

double MeanSquaredDisplacement::value() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < reference_.size(); ++i) {
    sum += length_squared(unwrapped_[i] - reference_[i]);
  }
  return sum / static_cast<double>(reference_.size());
}

double velocity_autocorrelation(const std::vector<Vec3d>& v0,
                                const ParticleSystem& now) {
  EMDPA_REQUIRE(v0.size() == now.size(), "atom count mismatch");
  EMDPA_REQUIRE(!v0.empty(), "autocorrelation needs atoms");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < v0.size(); ++i) {
    num += dot(v0[i], now.velocities()[i]);
    den += dot(v0[i], v0[i]);
  }
  EMDPA_REQUIRE(den > 0.0, "reference velocities are all zero");
  return num / den;
}

}  // namespace emdpa::md
