#include "md/thermostat.h"

#include <cmath>

#include "core/error.h"
#include "md/observables.h"

namespace emdpa::md {

BerendsenThermostat::BerendsenThermostat(double target, double coupling)
    : target_(target), coupling_(coupling) {
  EMDPA_REQUIRE(target >= 0.0, "target temperature must be non-negative");
  EMDPA_REQUIRE(coupling > 0.0 && coupling <= 1.0, "coupling must be in (0, 1]");
}

double BerendsenThermostat::apply(ParticleSystem& system) const {
  const double t_now = temperature_of(system);
  if (t_now <= 0.0) return 1.0;
  const double lambda = std::sqrt(1.0 + coupling_ * (target_ / t_now - 1.0));
  for (auto& v : system.velocities()) v *= lambda;
  return lambda;
}

}  // namespace emdpa::md
