#include "md/single_precision.h"

namespace emdpa::md {

ForceResult SingleSoaKernel::compute(
    const std::vector<emdpa::Vec3<double>>& positions, const PeriodicBox& box,
    const LjParams& lj, double mass) {
  return detail::run_single(inner_, positions_f_, positions, box, lj, mass);
}

}  // namespace emdpa::md
