#include "md/single_precision.h"

namespace emdpa::md {

namespace {

/// Narrow the double interface to the float one the sp kernels speak, run,
/// widen the results back.  Shared by both adapters.
template <typename Kernel>
ForceResult run_single(Kernel& inner,
                       std::vector<emdpa::Vec3<float>>& positions_f,
                       const std::vector<emdpa::Vec3<double>>& positions,
                       const PeriodicBox& box, const LjParams& lj,
                       double mass) {
  positions_f.resize(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    positions_f[i] = emdpa::Vec3<float>{static_cast<float>(positions[i].x),
                                        static_cast<float>(positions[i].y),
                                        static_cast<float>(positions[i].z)};
  }
  const PeriodicBoxF box_f(static_cast<float>(box.edge()));
  const LjParamsF lj_f = lj.cast<float>();

  const ForceResultF inner_result =
      inner.compute(positions_f, box_f, lj_f, static_cast<float>(mass));

  ForceResult result;
  result.accelerations.resize(inner_result.accelerations.size());
  for (std::size_t i = 0; i < inner_result.accelerations.size(); ++i) {
    const auto& a = inner_result.accelerations[i];
    result.accelerations[i] = emdpa::Vec3<double>{a.x, a.y, a.z};
  }
  result.potential_energy = inner_result.potential_energy;
  result.virial = inner_result.virial;
  result.stats = inner_result.stats;
  return result;
}

}  // namespace

ForceResult SingleSoaKernel::compute(
    const std::vector<emdpa::Vec3<double>>& positions, const PeriodicBox& box,
    const LjParams& lj, double mass) {
  return run_single(inner_, positions_f_, positions, box, lj, mass);
}

ForceResult SingleNeighborListKernel::compute(
    const std::vector<emdpa::Vec3<double>>& positions, const PeriodicBox& box,
    const LjParams& lj, double mass) {
  return run_single(inner_, positions_f_, positions, box, lj, mass);
}

}  // namespace emdpa::md
