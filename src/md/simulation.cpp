#include "md/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.h"
#include "core/fault_injection.h"
#include "md/backend.h"
#include "md/cell_list_kernel.h"
#include "md/checkpoint.h"
#include "md/observables.h"
#include "md/reference_kernel.h"
#include "md/sharded_domain.h"
#include "md/single_precision.h"
#include "md/soa_kernel.h"

namespace emdpa::md {

namespace {

SimKernel resolve_kernel(const Simulation::Options& options,
                         std::size_t n_atoms) {
  EMDPA_REQUIRE(!options.use_cell_list ||
                    options.kernel == SimKernel::kAuto ||
                    options.kernel == SimKernel::kCellList,
                "use_cell_list conflicts with an explicit kernel choice");
  if (options.shards > 0) {
    // --shards selects the sharded build of the list path; it has no
    // meaning for the other kernels, so combining them is a config error,
    // not something to silently ignore.
    EMDPA_REQUIRE(!options.use_cell_list &&
                      (options.kernel == SimKernel::kAuto ||
                       options.kernel == SimKernel::kNeighborList ||
                       options.kernel == SimKernel::kShardedList),
                  "shards > 0 requires the neighbour-list kernel "
                  "(kAuto, kNeighborList or kShardedList)");
    return SimKernel::kShardedList;
  }
  if (options.kernel != SimKernel::kAuto) return options.kernel;
  if (options.use_cell_list) return SimKernel::kCellList;
  return n_atoms >= HostParallelBackend::kListCrossoverAtoms
             ? SimKernel::kNeighborList
             : SimKernel::kSoaN2;
}

/// What make_lj_kernel hands back: the owning kernel plus the non-owning
/// views and dispatch properties Simulation records about it.
struct KernelBuild {
  std::unique_ptr<ForceKernel> kernel;
  NeighborListControl* list_control = nullptr;
  std::optional<simd::SimdType> isa;
  std::size_t width = 1;
};

KernelBuild make_lj_kernel(SimKernel kind, const Simulation::Options& options) {
  KernelBuild b;
  const PrecisionMode precision = options.precision;
  switch (kind) {
    case SimKernel::kReference:
    case SimKernel::kCellList:
      if (precision != PrecisionMode::kDouble) {
        throw RuntimeFailure(
            std::string("precision '") + to_string(precision) +
            "' requires a SIMD kernel (soa-n2 or neighbor-list); '" +
            to_string(kind) + "' runs double only");
      }
      if (kind == SimKernel::kReference) {
        b.kernel = std::make_unique<ReferenceKernel>();
      } else {
        b.kernel = std::make_unique<CellListKernel>();
      }
      return b;
    case SimKernel::kSoaN2: {
      auto adopt = [&](auto kernel) {
        b.isa = kernel->isa();
        b.width = kernel->simd_width();
        b.kernel = std::move(kernel);
      };
      if (precision == PrecisionMode::kSingle) {
        SoaKernelF::Options o;
        o.pool = options.pool;
        o.isa = options.simd_isa;
        adopt(std::make_unique<SingleSoaKernel>(o));
      } else if (precision == PrecisionMode::kMixed) {
        SoaKernelMixed::Options o;
        o.pool = options.pool;
        o.isa = options.simd_isa;
        adopt(std::make_unique<SoaKernelMixed>(o));
      } else {
        SoaKernel::Options o;
        o.pool = options.pool;
        o.isa = options.simd_isa;
        adopt(std::make_unique<SoaKernel>(o));
      }
      return b;
    }
    case SimKernel::kNeighborList: {
      auto adopt = [&](auto kernel) {
        b.isa = kernel->isa();
        b.width = kernel->simd_width();
        b.list_control = kernel.get();
        b.kernel = std::move(kernel);
      };
      if (precision == PrecisionMode::kSingle) {
        NeighborListKernelF::Options o;
        o.skin = options.skin;
        o.pool = options.pool;
        o.skin_policy = options.skin_policy;
        o.isa = options.simd_isa;
        adopt(std::make_unique<SingleNeighborListKernel>(o));
      } else if (precision == PrecisionMode::kMixed) {
        NeighborListKernelMixed::Options o;
        o.skin = options.skin;
        o.pool = options.pool;
        o.skin_policy = options.skin_policy;
        o.isa = options.simd_isa;
        adopt(std::make_unique<NeighborListKernelMixed>(o));
      } else {
        NeighborListKernel::Options o;
        o.skin = options.skin;
        o.pool = options.pool;
        o.skin_policy = options.skin_policy;
        o.isa = options.simd_isa;
        adopt(std::make_unique<NeighborListKernel>(o));
      }
      return b;
    }
    case SimKernel::kShardedList: {
      auto adopt = [&](auto kernel) {
        b.isa = kernel->isa();
        b.width = kernel->simd_width();
        b.list_control = kernel.get();
        b.kernel = std::move(kernel);
      };
      const std::size_t shards = std::max<std::size_t>(1, options.shards);
      if (precision == PrecisionMode::kSingle) {
        ShardedNeighborListKernelF::Options o;
        o.skin = options.skin;
        o.pool = options.pool;
        o.skin_policy = options.skin_policy;
        o.isa = options.simd_isa;
        o.shards = shards;
        adopt(std::make_unique<SingleShardedListKernel>(o));
      } else if (precision == PrecisionMode::kMixed) {
        ShardedNeighborListKernelMixed::Options o;
        o.skin = options.skin;
        o.pool = options.pool;
        o.skin_policy = options.skin_policy;
        o.isa = options.simd_isa;
        o.shards = shards;
        adopt(std::make_unique<ShardedNeighborListKernelMixed>(o));
      } else {
        ShardedNeighborListKernel::Options o;
        o.skin = options.skin;
        o.pool = options.pool;
        o.skin_policy = options.skin_policy;
        o.isa = options.simd_isa;
        o.shards = shards;
        adopt(std::make_unique<ShardedNeighborListKernel>(o));
      }
      return b;
    }
    case SimKernel::kAuto:
      break;  // resolved before we get here
  }
  throw ContractViolation("unresolved SimKernel");
}

/// LJ kernel plus optional bonded/angle topologies behind the ForceKernel
/// interface.
class CompositeKernel final : public ForceKernel {
 public:
  CompositeKernel(ForceKernel& lj, std::optional<BondTopology> bonds,
                  std::optional<AngleTopology> angles)
      : lj_(lj), bonds_(std::move(bonds)), angles_(std::move(angles)) {}

  std::string name() const override { return lj_.name() + "+topology"; }

  ForceResult compute(const std::vector<Vec3d>& positions,
                      const PeriodicBox& box, const LjParams& lj,
                      double mass) override {
    ForceResult result = lj_.compute(positions, box, lj, mass);
    if (bonds_) {
      result.potential_energy +=
          bonds_->accumulate_forces(positions, box, mass, result.accelerations);
    }
    if (angles_) {
      result.potential_energy += angles_->accumulate_forces(
          positions, box, mass, result.accelerations);
    }
    return result;
  }

 private:
  ForceKernel& lj_;
  std::optional<BondTopology> bonds_;
  std::optional<AngleTopology> angles_;
};

}  // namespace

const char* to_string(SimKernel kernel) {
  switch (kernel) {
    case SimKernel::kAuto: return "auto";
    case SimKernel::kReference: return "reference";
    case SimKernel::kCellList: return "cell-list";
    case SimKernel::kSoaN2: return "soa-n2";
    case SimKernel::kNeighborList: return "neighbor-list";
    case SimKernel::kShardedList: return "sharded-list";
  }
  return "unknown";
}

Simulation::Simulation(const Options& options)
    : Simulation(
          [&] {
            Workload w = make_lattice_workload(options.workload);
            return std::move(w.system);
          }(),
          PeriodicBox(box_edge_for(options.workload.n_atoms,
                                   options.workload.density)),
          /*step=*/0, options) {}

Simulation::Simulation(ParticleSystem system, PeriodicBox box, long step,
                       const Options& options, const double* restored_potential)
    : box_(box),
      system_(std::move(system)),
      lj_(options.lj),
      integrator_(options.dt),
      kernel_kind_(resolve_kernel(options, system_.size())),
      shards_(kernel_kind_ == SimKernel::kShardedList
                  ? std::max<std::size_t>(1, options.shards)
                  : 0),
      precision_(options.precision),
      degrade_enabled_(options.degrade_to_reference),
      step_(step) {
  KernelBuild build = make_lj_kernel(kernel_kind_, options);
  lj_kernel_ = std::move(build.kernel);
  list_control_ = build.list_control;
  simd_isa_ = build.isa;
  simd_width_ = build.width;
  if (options.health) health_.emplace(*options.health);
  if (restored_potential != nullptr) {
    // The checkpointed accelerations ARE the primed state (save_checkpoint
    // stores them alongside the potential energy); re-evaluating forces here
    // would rebuild the neighbour list one step earlier than the run that
    // wrote the checkpoint and break bitwise resume.
    last_energies_ = {kinetic_energy_of(system_), *restored_potential};
  } else {
    prime();
  }
  if (health_) health_->reset_baseline(last_energies_);
}

Simulation Simulation::resume(std::istream& checkpoint, const Options& options) {
  return resume(load_checkpoint(checkpoint), options);
}

Simulation Simulation::resume(Checkpoint checkpoint, const Options& options) {
  Simulation sim(std::move(checkpoint.system), PeriodicBox(checkpoint.box_edge),
                 checkpoint.step, options,
                 checkpoint.has_potential ? &checkpoint.potential : nullptr);
  if (checkpoint.config && !options.ignore_checkpoint_config) {
    // The three knobs recorded in the checkpoint change the arithmetic of
    // every subsequent step; resuming under different ones silently breaks
    // the bitwise-resume guarantee, so any mismatch is fatal by default.
    const CheckpointConfig resumed{
        sim.config_kernel_token(), to_string(sim.precision_),
        sim.simd_isa_ ? simd::to_string(*sim.simd_isa_) : "none"};
    const CheckpointConfig& saved = *checkpoint.config;
    std::string mismatches;
    auto compare = [&](const char* what, const std::string& was,
                       const std::string& now) {
      if (was == now) return;
      if (!mismatches.empty()) mismatches += ", ";
      mismatches += std::string(what) + " '" + was + "' vs resumed '" + now + "'";
    };
    compare("kernel", saved.kernel, resumed.kernel);
    compare("precision", saved.precision, resumed.precision);
    compare("simd", saved.simd, resumed.simd);
    if (!mismatches.empty()) {
      throw RuntimeFailure(
          "checkpoint: run configuration mismatch on resume (" + mismatches +
          "); rerun with the recorded flags, or override explicitly "
          "(--resume-force / Options::ignore_checkpoint_config)");
    }
  }
  sim.pending_langevin_rng_ = checkpoint.langevin_rng;
  if (checkpoint.list_ref && sim.list_control_ != nullptr) {
    // Snapshot-style checkpoint: reseed the neighbour list from the captured
    // reference positions.  The build is a pure function of (positions, box,
    // cutoff), so this reproduces the list the snapshotted run was using and
    // the replay continues bit-identically WITHOUT the invalidate-on-save
    // sync point.
    sim.list_control_->seed_list(*checkpoint.list_ref, checkpoint.box_edge,
                                 checkpoint.list_ref_cutoff);
  }
  return sim;
}

ForceKernel& Simulation::active_kernel() {
  return composite_ ? *composite_ : *lj_kernel_;
}

std::string Simulation::kernel_name() const { return lj_kernel_->name(); }

std::string Simulation::config_kernel_token() const {
  // One whitespace-free token (the checkpoint config section is parsed with
  // operator>>): the sharded path appends its shard count so a resume under
  // a different decomposition is a config mismatch like any other.  The
  // shard count changes which worker builds what — never the bits — but a
  // silent change would still invalidate any perf conclusions drawn from
  // the resumed run, and an explicit override (--resume-force) stays
  // available.
  std::string token = to_string(kernel_kind_);
  if (kernel_kind_ == SimKernel::kShardedList) {
    token += "/" + std::to_string(shards_);
  }
  return token;
}

std::uint64_t Simulation::list_rebuilds() const {
  return list_control_ != nullptr ? list_control_->list_rebuilds() : 0;
}

double Simulation::list_build_bin_seconds() const {
  return list_control_ != nullptr ? list_control_->list_bin_seconds() : 0;
}

double Simulation::list_build_fill_seconds() const {
  return list_control_ != nullptr ? list_control_->list_fill_seconds() : 0;
}

double Simulation::list_build_halo_seconds() const {
  return list_control_ != nullptr ? list_control_->list_halo_seconds() : 0;
}

void Simulation::prime() {
  last_energies_ = integrator_.prime(system_, box_, lj_, active_kernel());
  ++force_evaluations_;
}

void Simulation::rebuild_composite() {
  composite_ = std::make_unique<CompositeKernel>(*lj_kernel_, bonds_, angles_);
  prime();  // accelerations must include the new forces
}

void Simulation::set_bonds(BondTopology bonds) {
  bonds_ = std::move(bonds);
  rebuild_composite();
}

void Simulation::set_angles(AngleTopology angles) {
  angles_ = std::move(angles);
  rebuild_composite();
}

void Simulation::set_thermostat(const BerendsenThermostat& thermostat) {
  thermostat_ = thermostat;
  langevin_.reset();
  pending_langevin_rng_.reset();
}

void Simulation::set_thermostat(LangevinThermostat thermostat) {
  langevin_ = std::move(thermostat);
  thermostat_.reset();
  if (pending_langevin_rng_) {
    // Resumed run: continue the checkpointed noise sequence.  The freshly
    // constructed thermostat's seed is discarded — the stream position is
    // state, and re-seeding it would diverge from the uninterrupted run.
    langevin_->restore_rng(*pending_langevin_rng_);
    pending_langevin_rng_.reset();
  }
}

void Simulation::clear_thermostat() {
  thermostat_.reset();
  langevin_.reset();
  pending_langevin_rng_.reset();
}

MinimizeResult Simulation::minimize(const MinimizeOptions& options) {
  const MinimizeResult result =
      minimize_energy(system_, box_, lj_, active_kernel(), options);
  prime();
  return result;
}

StepEnergies Simulation::step_once() {
  // Deterministic divergence source for the bisection harness: at the armed
  // step, kick one velocity component by one ulp before integrating.  Keyed
  // to the absolute step number (injected_at, not injected) so a replay that
  // restores a snapshot and re-runs this step window perturbs the exact same
  // step again — the property the bisect self-test rests on.
  if (!system_.velocities().empty() &&
      fault::injected_at("md.step_perturb",
                         static_cast<std::uint64_t>(step_ + 1))) {
    double& vx = system_.velocities()[0].x;
    vx = std::nextafter(vx, std::numeric_limits<double>::infinity());
  }
  try {
    last_energies_ = integrator_.step(system_, box_, lj_, active_kernel());
  } catch (RuntimeFailure& e) {
    // Annotate what this layer knows (the kernel threw mid-step, so the
    // failing step is the one about to complete) and let it unwind.
    if (e.context().step < 0) e.context().step = step_ + 1;
    if (e.context().kernel.empty()) e.context().kernel = to_string(kernel_kind_);
    throw;
  }
  ++force_evaluations_;
  if (thermostat_) thermostat_->apply(system_);
  if (langevin_) langevin_->apply(system_, integrator_.dt());
  ++step_;
  if (health_ && health_->due(step_)) {
    health_->check(step_, system_, last_energies_, integrator_.dt(),
                   to_string(kernel_kind_),
                   /*conserves_energy=*/!thermostat_ && !langevin_);
  }
  return last_energies_;
}

void Simulation::degrade_now() {
  kernel_kind_ = SimKernel::kReference;
  shards_ = 0;
  list_control_ = nullptr;
  simd_isa_.reset();
  simd_width_ = 1;
  // The composite (if any) holds a reference to the old kernel; rebuild it
  // against the replacement before anything evaluates forces again.
  lj_kernel_ = std::make_unique<ReferenceKernel>();
  degraded_ = true;
  if (bonds_ || angles_) {
    rebuild_composite();  // re-primes internally
  } else {
    composite_.reset();
    prime();
  }
  // Fresh baseline: the reference kernel's summation order shifts the total
  // energy by rounding, and the pre-failure baseline may itself be drifted.
  if (health_) health_->reset_baseline(last_energies_);
}

StepEnergies Simulation::step() {
  const bool can_degrade = degrade_enabled_ && !degraded_ &&
                           (kernel_kind_ == SimKernel::kNeighborList ||
                            kernel_kind_ == SimKernel::kShardedList);
  if (!can_degrade) return step_once();

  // Snapshot so a failed step can be retried cleanly on the fallback kernel
  // (the failure may surface mid-step, after positions already advanced).
  const std::vector<Vec3d> positions = system_.positions();
  const std::vector<Vec3d> velocities = system_.velocities();
  const std::vector<Vec3d> accelerations = system_.accelerations();
  const StepEnergies energies = last_energies_;
  const long step_before = step_;
  try {
    return step_once();
  } catch (const RuntimeFailure&) {
    system_.positions() = positions;
    system_.velocities() = velocities;
    system_.accelerations() = accelerations;
    last_energies_ = energies;
    step_ = step_before;
    if (!state_is_finite(system_)) throw;  // nothing trustworthy to retry from
    degrade_now();
    return step_once();
  }
}

void Simulation::run(int steps, const Observer& observer) {
  EMDPA_REQUIRE(steps >= 0, "cannot run a negative number of steps");
  for (int s = 0; s < steps; ++s) {
    const StepEnergies e = step();
    if (observer) observer(step_, e);
  }
}

void Simulation::save(std::ostream& out) {
  Checkpoint cp;
  cp.system = system_;
  cp.box_edge = box_.edge();
  cp.step = step_;
  cp.potential = last_energies_.potential;
  // Record the arithmetic-determining configuration (resolved, never kAuto;
  // a degraded run records the reference kernel it actually executes) so a
  // resume under different flags fails loudly instead of silently diverging.
  cp.config =
      CheckpointConfig{config_kernel_token(), to_string(precision_),
                       simd_isa_ ? simd::to_string(*simd_isa_) : "none"};
  if (langevin_) cp.langevin_rng = langevin_->rng_state();
  save_checkpoint(out, cp);
  // Saving is a bitwise synchronisation point: drop the neighbour list so
  // the continuing run and any future resume from this checkpoint both
  // rebuild it from exactly the state just written.
  if (list_control_ != nullptr) list_control_->invalidate_list();
}

Checkpoint Simulation::snapshot() const {
  Checkpoint cp;
  cp.system = system_;
  cp.box_edge = box_.edge();
  cp.step = step_;
  cp.potential = last_energies_.potential;
  cp.has_potential = true;
  cp.config =
      CheckpointConfig{config_kernel_token(), to_string(precision_),
                       simd_isa_ ? simd::to_string(*simd_isa_) : "none"};
  if (langevin_) cp.langevin_rng = langevin_->rng_state();
  // Pure observer: instead of invalidating the live neighbour list (save()'s
  // sync point, a bitwise perturbation of the continuing run), capture the
  // positions it was built from so a restore can reseed the identical list.
  if (list_control_ != nullptr && list_control_->has_list()) {
    cp.list_ref = list_control_->list_reference_positions();
    cp.list_ref_cutoff = list_control_->list_build_cutoff();
  }
  return cp;
}

Simulation::Options simulation_options_from(const RunConfig& config,
                                            ThreadPool* pool) {
  Simulation::Options options;
  options.workload = config.workload;
  options.lj = config.lj;
  options.dt = config.dt;
  options.kernel = to_sim_kernel(config.host_kernel);
  // --shards auto (-1) means one shard per pool worker slot — the pool
  // sweeps shards one per chunk, so that is the widest useful count.
  options.shards = config.shards < 0
                       ? (pool != nullptr ? pool->size() : 1)
                       : static_cast<std::size_t>(config.shards);
  options.pool = pool;
  options.precision = config.precision;
  options.simd_isa = config.simd_isa;
  options.degrade_to_reference = config.degrade;
  options.ignore_checkpoint_config = config.resume_force;
  if (config.drift_tolerance > 0.0) {
    HealthPolicy policy;
    policy.max_energy_drift = config.drift_tolerance;
    options.health = policy;
  }
  return options;
}

}  // namespace emdpa::md
