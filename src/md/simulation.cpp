#include "md/simulation.h"

#include "core/error.h"
#include "md/cell_list_kernel.h"
#include "md/checkpoint.h"
#include "md/reference_kernel.h"

namespace emdpa::md {

namespace {

std::unique_ptr<ForceKernel> make_lj_kernel(bool use_cell_list) {
  if (use_cell_list) return std::make_unique<CellListKernel>();
  return std::make_unique<ReferenceKernel>();
}

/// LJ kernel plus optional bonded/angle topologies behind the ForceKernel
/// interface.
class CompositeKernel final : public ForceKernel {
 public:
  CompositeKernel(ForceKernel& lj, std::optional<BondTopology> bonds,
                  std::optional<AngleTopology> angles)
      : lj_(lj), bonds_(std::move(bonds)), angles_(std::move(angles)) {}

  std::string name() const override { return lj_.name() + "+topology"; }

  ForceResult compute(const std::vector<Vec3d>& positions,
                      const PeriodicBox& box, const LjParams& lj,
                      double mass) override {
    ForceResult result = lj_.compute(positions, box, lj, mass);
    if (bonds_) {
      result.potential_energy +=
          bonds_->accumulate_forces(positions, box, mass, result.accelerations);
    }
    if (angles_) {
      result.potential_energy += angles_->accumulate_forces(
          positions, box, mass, result.accelerations);
    }
    return result;
  }

 private:
  ForceKernel& lj_;
  std::optional<BondTopology> bonds_;
  std::optional<AngleTopology> angles_;
};

}  // namespace

Simulation::Simulation(const Options& options)
    : Simulation(
          [&] {
            Workload w = make_lattice_workload(options.workload);
            return std::move(w.system);
          }(),
          PeriodicBox(box_edge_for(options.workload.n_atoms,
                                   options.workload.density)),
          /*step=*/0, options) {}

Simulation::Simulation(ParticleSystem system, PeriodicBox box, long step,
                       const Options& options)
    : box_(box),
      system_(std::move(system)),
      lj_(options.lj),
      integrator_(options.dt),
      lj_kernel_(make_lj_kernel(options.use_cell_list)),
      step_(step) {
  prime();
}

Simulation Simulation::resume(std::istream& checkpoint, const Options& options) {
  Checkpoint cp = load_checkpoint(checkpoint);
  return Simulation(std::move(cp.system), PeriodicBox(cp.box_edge), cp.step,
                    options);
}

void Simulation::prime() {
  ForceKernel& kernel = composite_ ? *composite_ : *lj_kernel_;
  last_energies_ = integrator_.prime(system_, box_, lj_, kernel);
}

void Simulation::rebuild_composite() {
  composite_ = std::make_unique<CompositeKernel>(*lj_kernel_, bonds_, angles_);
  prime();  // accelerations must include the new forces
}

void Simulation::set_bonds(BondTopology bonds) {
  bonds_ = std::move(bonds);
  rebuild_composite();
}

void Simulation::set_angles(AngleTopology angles) {
  angles_ = std::move(angles);
  rebuild_composite();
}

void Simulation::set_thermostat(const BerendsenThermostat& thermostat) {
  thermostat_ = thermostat;
  langevin_.reset();
}

void Simulation::set_thermostat(LangevinThermostat thermostat) {
  langevin_ = std::move(thermostat);
  thermostat_.reset();
}

void Simulation::clear_thermostat() {
  thermostat_.reset();
  langevin_.reset();
}

MinimizeResult Simulation::minimize(const MinimizeOptions& options) {
  ForceKernel& kernel = composite_ ? *composite_ : *lj_kernel_;
  const MinimizeResult result =
      minimize_energy(system_, box_, lj_, kernel, options);
  prime();
  return result;
}

StepEnergies Simulation::step() {
  ForceKernel& kernel = composite_ ? *composite_ : *lj_kernel_;
  last_energies_ = integrator_.step(system_, box_, lj_, kernel);
  if (thermostat_) thermostat_->apply(system_);
  if (langevin_) langevin_->apply(system_, integrator_.dt());
  ++step_;
  return last_energies_;
}

void Simulation::run(int steps, const Observer& observer) {
  EMDPA_REQUIRE(steps >= 0, "cannot run a negative number of steps");
  for (int s = 0; s < steps; ++s) {
    const StepEnergies e = step();
    if (observer) observer(step_, e);
  }
}

void Simulation::save(std::ostream& out) const {
  save_checkpoint(out, system_, box_, step_);
}

}  // namespace emdpa::md
