#include "md/simulation.h"

#include "core/error.h"
#include "md/backend.h"
#include "md/cell_list_kernel.h"
#include "md/checkpoint.h"
#include "md/reference_kernel.h"
#include "md/soa_kernel.h"

namespace emdpa::md {

namespace {

SimKernel resolve_kernel(const Simulation::Options& options,
                         std::size_t n_atoms) {
  EMDPA_REQUIRE(!options.use_cell_list ||
                    options.kernel == SimKernel::kAuto ||
                    options.kernel == SimKernel::kCellList,
                "use_cell_list conflicts with an explicit kernel choice");
  if (options.kernel != SimKernel::kAuto) return options.kernel;
  if (options.use_cell_list) return SimKernel::kCellList;
  return n_atoms >= HostParallelBackend::kListCrossoverAtoms
             ? SimKernel::kNeighborList
             : SimKernel::kSoaN2;
}

std::unique_ptr<ForceKernel> make_lj_kernel(SimKernel kind,
                                            const Simulation::Options& options,
                                            NeighborListKernel** list_view) {
  *list_view = nullptr;
  switch (kind) {
    case SimKernel::kReference:
      return std::make_unique<ReferenceKernel>();
    case SimKernel::kCellList:
      return std::make_unique<CellListKernel>();
    case SimKernel::kSoaN2: {
      SoaKernel::Options o;
      o.pool = options.pool;
      return std::make_unique<SoaKernel>(o);
    }
    case SimKernel::kNeighborList: {
      NeighborListKernel::Options o;
      o.skin = options.skin;
      o.pool = options.pool;
      o.skin_policy = options.skin_policy;
      auto kernel = std::make_unique<NeighborListKernel>(o);
      *list_view = kernel.get();
      return kernel;
    }
    case SimKernel::kAuto:
      break;  // resolved before we get here
  }
  throw ContractViolation("unresolved SimKernel");
}

/// LJ kernel plus optional bonded/angle topologies behind the ForceKernel
/// interface.
class CompositeKernel final : public ForceKernel {
 public:
  CompositeKernel(ForceKernel& lj, std::optional<BondTopology> bonds,
                  std::optional<AngleTopology> angles)
      : lj_(lj), bonds_(std::move(bonds)), angles_(std::move(angles)) {}

  std::string name() const override { return lj_.name() + "+topology"; }

  ForceResult compute(const std::vector<Vec3d>& positions,
                      const PeriodicBox& box, const LjParams& lj,
                      double mass) override {
    ForceResult result = lj_.compute(positions, box, lj, mass);
    if (bonds_) {
      result.potential_energy +=
          bonds_->accumulate_forces(positions, box, mass, result.accelerations);
    }
    if (angles_) {
      result.potential_energy += angles_->accumulate_forces(
          positions, box, mass, result.accelerations);
    }
    return result;
  }

 private:
  ForceKernel& lj_;
  std::optional<BondTopology> bonds_;
  std::optional<AngleTopology> angles_;
};

}  // namespace

const char* to_string(SimKernel kernel) {
  switch (kernel) {
    case SimKernel::kAuto: return "auto";
    case SimKernel::kReference: return "reference";
    case SimKernel::kCellList: return "cell-list";
    case SimKernel::kSoaN2: return "soa-n2";
    case SimKernel::kNeighborList: return "neighbor-list";
  }
  return "unknown";
}

Simulation::Simulation(const Options& options)
    : Simulation(
          [&] {
            Workload w = make_lattice_workload(options.workload);
            return std::move(w.system);
          }(),
          PeriodicBox(box_edge_for(options.workload.n_atoms,
                                   options.workload.density)),
          /*step=*/0, options) {}

Simulation::Simulation(ParticleSystem system, PeriodicBox box, long step,
                       const Options& options)
    : box_(box),
      system_(std::move(system)),
      lj_(options.lj),
      integrator_(options.dt),
      kernel_kind_(resolve_kernel(options, system_.size())),
      lj_kernel_(make_lj_kernel(kernel_kind_, options, &list_kernel_)),
      step_(step) {
  prime();
}

Simulation Simulation::resume(std::istream& checkpoint, const Options& options) {
  Checkpoint cp = load_checkpoint(checkpoint);
  return Simulation(std::move(cp.system), PeriodicBox(cp.box_edge), cp.step,
                    options);
}

ForceKernel& Simulation::active_kernel() {
  return composite_ ? *composite_ : *lj_kernel_;
}

std::string Simulation::kernel_name() const { return lj_kernel_->name(); }

std::uint64_t Simulation::list_rebuilds() const {
  return list_kernel_ != nullptr ? list_kernel_->rebuilds() : 0;
}

double Simulation::list_build_bin_seconds() const {
  return list_kernel_ != nullptr ? list_kernel_->list().bin_seconds_total() : 0;
}

double Simulation::list_build_fill_seconds() const {
  return list_kernel_ != nullptr ? list_kernel_->list().fill_seconds_total()
                                 : 0;
}

void Simulation::prime() {
  last_energies_ = integrator_.prime(system_, box_, lj_, active_kernel());
  ++force_evaluations_;
}

void Simulation::rebuild_composite() {
  composite_ = std::make_unique<CompositeKernel>(*lj_kernel_, bonds_, angles_);
  prime();  // accelerations must include the new forces
}

void Simulation::set_bonds(BondTopology bonds) {
  bonds_ = std::move(bonds);
  rebuild_composite();
}

void Simulation::set_angles(AngleTopology angles) {
  angles_ = std::move(angles);
  rebuild_composite();
}

void Simulation::set_thermostat(const BerendsenThermostat& thermostat) {
  thermostat_ = thermostat;
  langevin_.reset();
}

void Simulation::set_thermostat(LangevinThermostat thermostat) {
  langevin_ = std::move(thermostat);
  thermostat_.reset();
}

void Simulation::clear_thermostat() {
  thermostat_.reset();
  langevin_.reset();
}

MinimizeResult Simulation::minimize(const MinimizeOptions& options) {
  const MinimizeResult result =
      minimize_energy(system_, box_, lj_, active_kernel(), options);
  prime();
  return result;
}

StepEnergies Simulation::step() {
  last_energies_ = integrator_.step(system_, box_, lj_, active_kernel());
  ++force_evaluations_;
  if (thermostat_) thermostat_->apply(system_);
  if (langevin_) langevin_->apply(system_, integrator_.dt());
  ++step_;
  return last_energies_;
}

void Simulation::run(int steps, const Observer& observer) {
  EMDPA_REQUIRE(steps >= 0, "cannot run a negative number of steps");
  for (int s = 0; s < steps; ++s) {
    const StepEnergies e = step();
    if (observer) observer(step_, e);
  }
}

void Simulation::save(std::ostream& out) const {
  save_checkpoint(out, system_, box_, step_);
}

}  // namespace emdpa::md
