#include "md/angles.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/error.h"

namespace emdpa::md {

void AngleTopology::add_angle(HarmonicAngle angle) {
  EMDPA_REQUIRE(angle.i != angle.j && angle.j != angle.k && angle.i != angle.k,
                "an angle needs three distinct atoms");
  EMDPA_REQUIRE(angle.stiffness >= 0.0, "angle stiffness must be non-negative");
  EMDPA_REQUIRE(angle.rest_angle > 0.0 && angle.rest_angle <= std::numbers::pi,
                "rest angle must be in (0, pi]");
  angles_.push_back(angle);
}

AngleTopology AngleTopology::chain_angles(std::size_t n_atoms, double stiffness,
                                          double rest_angle) {
  AngleTopology topo;
  for (std::size_t j = 1; j + 1 < n_atoms; ++j) {
    topo.add_angle({j - 1, j, j + 1, stiffness, rest_angle});
  }
  return topo;
}

double AngleTopology::accumulate_forces(
    const std::vector<Vec3d>& positions, const PeriodicBox& box, double mass,
    std::vector<Vec3d>& accelerations) const {
  EMDPA_REQUIRE(accelerations.size() == positions.size(),
                "acceleration array must match position array");
  const double inv_mass = 1.0 / mass;
  double pe = 0.0;

  for (const auto& angle : angles_) {
    EMDPA_REQUIRE(angle.i < positions.size() && angle.j < positions.size() &&
                      angle.k < positions.size(),
                  "angle references an atom outside the system");

    const Vec3d a = box.min_image(positions[angle.i] - positions[angle.j]);
    const Vec3d b = box.min_image(positions[angle.k] - positions[angle.j]);
    const double la = length(a);
    const double lb = length(b);
    if (la == 0.0 || lb == 0.0) continue;  // degenerate geometry: no torque

    double cos_theta = dot(a, b) / (la * lb);
    cos_theta = std::clamp(cos_theta, -1.0, 1.0);
    const double theta = std::acos(cos_theta);
    const double delta = theta - angle.rest_angle;
    pe += 0.5 * angle.stiffness * delta * delta;

    const double sin_theta = std::sqrt(1.0 - cos_theta * cos_theta);
    if (sin_theta < 1e-8) continue;  // collinear: force direction undefined

    // F_i = -K*(theta - theta0) * dtheta/dr_i, with
    // dtheta/dr_i = (cos(theta) a_hat - b_hat) / (|a| sin(theta)), and
    // symmetrically for k; the vertex takes the recoil.
    const Vec3d a_hat = a / la;
    const Vec3d b_hat = b / lb;
    const double coeff = -angle.stiffness * delta / sin_theta;
    const Vec3d f_i = (a_hat * cos_theta - b_hat) * (coeff / la);
    const Vec3d f_k = (b_hat * cos_theta - a_hat) * (coeff / lb);

    accelerations[angle.i] += f_i * inv_mass;
    accelerations[angle.k] += f_k * inv_mass;
    accelerations[angle.j] -= (f_i + f_k) * inv_mass;
  }
  return pe;
}

}  // namespace emdpa::md
