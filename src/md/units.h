// Unit conventions for the MD library.
//
// All simulations run in reduced Lennard-Jones units: the LJ well depth
// epsilon, the LJ diameter sigma and the atomic mass m are the units of
// energy, length and mass.  Temperature is in units of epsilon/k_B, time in
// units of sigma*sqrt(m/epsilon).  This is the standard convention for LJ
// benchmark fluids and matches the paper's generic "MD kernel" (the paper
// never fixes a chemical species).
//
// For the argon example we provide the conversion constants: for argon
// sigma = 3.405 Å, epsilon/k_B = 119.8 K, m = 39.948 u, which makes the
// reduced time unit 2.156 ps.
#pragma once

namespace emdpa::md {

/// Conversions from reduced LJ units to physical argon units, for examples
/// that want human-readable output.
struct ArgonUnits {
  static constexpr double sigma_angstrom = 3.405;
  static constexpr double epsilon_over_kB_kelvin = 119.8;
  static constexpr double mass_amu = 39.948;
  static constexpr double time_unit_ps = 2.156;

  static constexpr double temperature_to_kelvin(double t_reduced) {
    return t_reduced * epsilon_over_kB_kelvin;
  }
  static constexpr double length_to_angstrom(double r_reduced) {
    return r_reduced * sigma_angstrom;
  }
  static constexpr double time_to_ps(double t_reduced) {
    return t_reduced * time_unit_ps;
  }
};

}  // namespace emdpa::md
