#include "md/pairlist_cost.h"

#include "core/error.h"
#include "md/integrator.h"
#include "md/parallel_neighbor.h"

namespace emdpa::md {

namespace {

/// ForceKernel decorator that accumulates the wrapped kernel's PairStats
/// across evaluations (the integrator consumes the ForceResult, so the
/// stats would otherwise be lost).
class CountingKernel final : public ForceKernel {
 public:
  explicit CountingKernel(ForceKernel& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name(); }

  ForceResult compute(const std::vector<Vec3d>& positions,
                      const PeriodicBox& box, const LjParams& lj,
                      double mass) override {
    ForceResult result = inner_.compute(positions, box, lj, mass);
    stats_ += result.stats;
    ++evaluations_;
    return result;
  }

  const PairStats& stats() const { return stats_; }
  std::uint64_t evaluations() const { return evaluations_; }

 private:
  ForceKernel& inner_;
  PairStats stats_{};
  std::uint64_t evaluations_ = 0;
};

}  // namespace

PairlistStepWork measure_pairlist_step_work(const WorkloadSpec& workload,
                                            const LjParams& lj, double skin,
                                            double dt, int steps) {
  EMDPA_REQUIRE(steps > 0, "measurement horizon must be positive");
  EMDPA_REQUIRE(skin > 0, "pairlist skin must be positive");

  Workload w = make_lattice_workload(workload);

  NeighborListKernel::Options options;
  options.skin = skin;  // serial build: the counts are thread-independent
  NeighborListKernel kernel(options);
  CountingKernel counting(kernel);

  VelocityVerlet integrator(dt);
  integrator.prime(w.system, w.box, lj, counting);

  // Sample the list after every evaluation: entries change on each rebuild,
  // and build_distance_tests() describes only the most recent build.
  double entries_sum = static_cast<double>(kernel.list().directed_entries());
  double build_tests_sum =
      static_cast<double>(kernel.list().build_distance_tests());
  std::uint64_t builds_seen = kernel.rebuilds();

  for (int s = 0; s < steps; ++s) {
    integrator.step(w.system, w.box, lj, counting);
    entries_sum += static_cast<double>(kernel.list().directed_entries());
    if (kernel.rebuilds() > builds_seen) {
      builds_seen = kernel.rebuilds();
      build_tests_sum +=
          static_cast<double>(kernel.list().build_distance_tests());
    }
  }

  const double evaluations = static_cast<double>(counting.evaluations());
  const double n = static_cast<double>(w.system.size());

  PairlistStepWork work;
  work.n_atoms = w.system.size();
  work.skin = skin;
  work.steps_measured = evaluations;
  work.candidates_directed = n * (n - 1.0);
  work.interacting_directed =
      2.0 * static_cast<double>(counting.stats().interacting) / evaluations;
  work.list_entries_directed = entries_sum / evaluations;
  work.build_tests_directed =
      build_tests_sum / static_cast<double>(builds_seen);
  work.rebuild_period_steps = evaluations / static_cast<double>(builds_seen);
  return work;
}

}  // namespace emdpa::md
