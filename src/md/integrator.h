// Velocity-Verlet integrator — the paper's integration scheme (section 3.5).
//
// One step, matching the structure of the paper's Figure 4 pseudo-code:
//   1. advance velocities          (half kick with current accelerations)
//   3/4. move atoms / update positions  (drift, wrap into the box)
//   2. calculate forces            (the offloadable N^2 step)
//   1'. advance velocities         (second half kick with new accelerations)
//   5. calculate new kinetic and total energies
#pragma once

#include "md/force_kernel.h"
#include "md/particle_system.h"

namespace emdpa::md {

template <typename Real>
struct StepEnergiesT {
  Real kinetic{};
  Real potential{};
  Real total() const { return kinetic + potential; }
};

using StepEnergies = StepEnergiesT<double>;

template <typename Real>
class VelocityVerletT {
 public:
  explicit VelocityVerletT(Real dt);

  Real dt() const { return dt_; }

  /// Advance the system one step using `kernel` for the force evaluation.
  /// The system's accelerations must be current for its positions (call
  /// prime() once before the first step).
  StepEnergiesT<Real> step(ParticleSystemT<Real>& system,
                           const PeriodicBoxT<Real>& box,
                           const LjParamsT<Real>& lj,
                           ForceKernelT<Real>& kernel) const;

  /// Compute initial accelerations (and return initial energies) so that the
  /// first step's leading half-kick uses forces consistent with the initial
  /// positions.
  StepEnergiesT<Real> prime(ParticleSystemT<Real>& system,
                            const PeriodicBoxT<Real>& box,
                            const LjParamsT<Real>& lj,
                            ForceKernelT<Real>& kernel) const;

 private:
  Real dt_;
};

using VelocityVerlet = VelocityVerletT<double>;
using VelocityVerletF = VelocityVerletT<float>;

}  // namespace emdpa::md
