#include "md/verlet_list_kernel.h"

#include <cmath>

#include "core/error.h"

namespace emdpa::md {

template <typename Real>
VerletListKernelT<Real>::VerletListKernelT(Real skin) : skin_(skin) {
  EMDPA_REQUIRE(skin >= Real(0), "skin must be non-negative");
}

template <typename Real>
bool VerletListKernelT<Real>::needs_rebuild(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj) const {
  if (build_positions_.size() != positions.size()) return true;
  // The list only covers pairs within build-time cutoff + skin; reusing it
  // after the cutoff changed would silently drop (or spuriously keep)
  // interactions.
  if (lj.cutoff != build_cutoff_) return true;
  // Valid while no atom moved more than half the skin since the build: two
  // atoms approaching from opposite sides close at most `skin` total.
  const Real limit_sq = (skin_ / Real(2)) * (skin_ / Real(2));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto dr = box.min_image(positions[i] - build_positions_[i]);
    if (length_squared(dr) > limit_sq) return true;
  }
  return false;
}

template <typename Real>
void VerletListKernelT<Real>::rebuild(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj) {
  const std::size_t n = positions.size();
  const Real list_cutoff = lj.cutoff + skin_;
  list_cutoff_sq_ = list_cutoff * list_cutoff;
  build_cutoff_ = lj.cutoff;

  neighbours_.assign(n, {});
  build_positions_ = positions;
  ++rebuilds_;

  // Cell grid at list_cutoff granularity for an O(N) build; falls back to
  // all-pairs when the box is too small for 3 cells per axis.
  const double edge = static_cast<double>(box.edge());
  auto cells_ll = static_cast<long long>(edge / static_cast<double>(list_cutoff));
  if (cells_ll < 1) cells_ll = 1;
  const auto cells = static_cast<std::size_t>(cells_ll);

  auto add_if_close = [&](std::size_t i, std::size_t j) {
    const auto dr = box.min_image(positions[i] - positions[j]);
    if (length_squared(dr) < list_cutoff_sq_) {
      neighbours_[i].push_back(static_cast<std::uint32_t>(j));
      neighbours_[j].push_back(static_cast<std::uint32_t>(i));
    }
  };

  if (cells < 3) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) add_if_close(i, j);
    }
    return;
  }

  const double inv_cell = static_cast<double>(cells) / edge;
  const std::size_t n_cells = cells * cells * cells;
  std::vector<long long> head(n_cells, -1), next(n, -1);
  std::vector<emdpa::Vec3<Real>> wrapped(n);
  auto cell_of = [&](double coord) {
    auto c = static_cast<long long>(coord * inv_cell);
    if (c < 0) c = 0;
    if (c >= static_cast<long long>(cells)) c = static_cast<long long>(cells) - 1;
    return static_cast<std::size_t>(c);
  };
  auto cell_index = [&](const emdpa::Vec3<Real>& p) {
    return (cell_of(p.x) * cells + cell_of(p.y)) * cells + cell_of(p.z);
  };
  for (std::size_t i = 0; i < n; ++i) {
    wrapped[i] = box.wrap(positions[i]);
    const std::size_t c = cell_index(wrapped[i]);
    next[i] = head[c];
    head[c] = static_cast<long long>(i);
  }

  const auto c_ll = static_cast<long long>(cells);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cx = static_cast<long long>(cell_of(wrapped[i].x));
    const auto cy = static_cast<long long>(cell_of(wrapped[i].y));
    const auto cz = static_cast<long long>(cell_of(wrapped[i].z));
    for (long long dx = -1; dx <= 1; ++dx) {
      for (long long dy = -1; dy <= 1; ++dy) {
        for (long long dz = -1; dz <= 1; ++dz) {
          const std::size_t c =
              ((static_cast<std::size_t>((cx + dx + c_ll) % c_ll)) * cells +
               static_cast<std::size_t>((cy + dy + c_ll) % c_ll)) *
                  cells +
              static_cast<std::size_t>((cz + dz + c_ll) % c_ll);
          for (long long j = head[c]; j >= 0;
               j = next[static_cast<std::size_t>(j)]) {
            // Half the pairs (j < i) to add each unordered pair once.
            if (static_cast<std::size_t>(j) < i) {
              add_if_close(i, static_cast<std::size_t>(j));
            }
          }
        }
      }
    }
  }
}

template <typename Real>
ForceResultT<Real> VerletListKernelT<Real>::compute(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj, Real mass) {
  if (needs_rebuild(positions, box, lj)) rebuild(positions, box, lj);
  ++evaluations_;

  const std::size_t n = positions.size();
  ForceResultT<Real> result;
  result.accelerations.assign(n, {});
  const Real cutoff_sq = lj.cutoff_squared();
  const Real inv_mass = Real(1) / mass;

  for (std::size_t i = 0; i < n; ++i) {
    emdpa::Vec3<Real> force{};
    Real pe{};
    for (const std::uint32_t j : neighbours_[i]) {
      const auto dr = box.min_image(positions[i] - positions[j]);
      const Real r2 = length_squared(dr);
      ++result.stats.candidates;
      if (r2 < cutoff_sq) {
        ++result.stats.interacting;
        const Real f_over_r = lj.pair_force_over_r(r2);
        force += dr * f_over_r;
        pe += Real(0.5) * lj.pair_energy(r2);
        result.virial += Real(0.5) * f_over_r * r2;
      }
    }
    result.accelerations[i] = force * inv_mass;
    result.potential_energy += pe;
  }
  // Lists hold both directions of every pair; report unordered pairs.
  result.stats.candidates /= 2;
  result.stats.interacting /= 2;
  return result;
}

template class VerletListKernelT<double>;
template class VerletListKernelT<float>;

}  // namespace emdpa::md
