// The hot row loops of the two host LJ fast paths, templated on
// <Real, Acc, SimdType> so one definition serves every precision mode and
// every instruction set.  Each per-ISA translation unit
// (md/simd_rows_*.cpp) instantiates RowKernels for exactly one SimdType —
// the one it was compiled with -m flags for — and exports the resulting
// function pointers through the md/simd_kernels.h registry; nothing else
// may include this header with a vector SimdType it cannot execute.
//
// Bitwise ISA independence.  The kernels do NOT accumulate at the pack
// width: every row is processed in fixed 64-byte blocks
// (simd::block_lanes<Real>() lanes — 8 doubles / 16 floats), held as
// kBlock/kWidth sub-pack accumulators.  Lane l of a block accumulates the
// same j columns on every ISA (only the grouping into hardware registers
// differs), and reduce_block() sums the block lanes in lane order — so
// scalar, SSE2, AVX2 and AVX-512 produce BITWISE IDENTICAL forces, energies
// and virials, and the runtime dispatcher can switch ISAs without touching
// the physics.  The per-sub-pack early-out cannot break this: skipping an
// all-out-of-range batch adds exactly nothing, and the accumulators can
// never hold -0.0 (they start at +0.0, and +0.0 + x never yields -0.0 for
// the x these loops produce), so "skip" and "add zero" are the same bits.
// The per-ISA TUs are compiled with -ffp-contract=off, keeping the lane
// arithmetic (mul-then-add, no FMA contraction) identical across TUs even
// in a -march=native build.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "core/simd.h"
#include "core/vec3.h"
#include "md/lj_simd.h"
#include "md/lj_potential.h"

namespace emdpa::md::rows {

template <typename Real, typename Acc, simd::SimdType S>
struct RowKernels {
  using P = simd::Pack<Real, S>;
  static constexpr std::size_t kWidth = P::kWidth;
  static constexpr std::size_t kBlock = simd::block_lanes<Real>();
  static constexpr std::size_t kSub = kBlock / kWidth;
  static_assert(kBlock % kWidth == 0,
                "the 64-byte block must hold a whole number of packs");

  /// Per-row accumulators for one 64-byte block, one sub-pack per kWidth
  /// lanes.  The same logical lanes on every ISA.
  struct BlockAcc {
    P fx[kSub], fy[kSub], fz[kSub], pe[kSub], vir[kSub];
    BlockAcc() {
      for (std::size_t s = 0; s < kSub; ++s) {
        fx[s] = P::zero();
        fy[s] = P::zero();
        fz[s] = P::zero();
        pe[s] = P::zero();
        vir[s] = P::zero();
      }
    }
  };

  /// Sum a block's lanes in lane order (0..kBlock-1), widening each lane to
  /// Acc first — the ISA-independent, mixed-precision-correct reduction.
  static Acc reduce_block(const P* packs) {
    alignas(simd::kBlockBytes) Real lanes[kBlock];
    for (std::size_t s = 0; s < kSub; ++s) packs[s].store(lanes + s * kWidth);
    Acc total = Acc(0);
    for (std::size_t l = 0; l < kBlock; ++l) {
      total += static_cast<Acc>(lanes[l]);
    }
    return total;
  }

  static void finish_row(const BlockAcc& a, Acc inv_mass,
                         emdpa::Vec3<Acc>& accel, Acc& pe, Acc& vir) {
    accel = emdpa::Vec3<Acc>{reduce_block(a.fx), reduce_block(a.fy),
                             reduce_block(a.fz)} *
            inv_mass;
    pe = Acc(0.5) * reduce_block(a.pe);      // pair seen from both ends
    vir = Acc(0.5) * reduce_block(a.vir);
  }

  /// N^2 SoA row range: for each atom i in [i_begin, i_end), sweep all
  /// padded j columns one block at a time.  `padded` is a multiple of
  /// kBlock; rows write disjoint outputs, so ranges can run on any thread.
  static void soa_rows(const Real* xs, const Real* ys, const Real* zs,
                       std::size_t padded, Real edge, Real cutoff_sq,
                       const LjParamsT<Real>& lj, Acc inv_mass,
                       std::size_t i_begin, std::size_t i_end,
                       emdpa::Vec3<Acc>* accelerations, Acc* row_pe,
                       Acc* row_virial, std::uint64_t* row_hits) {
    const LjLaneKernel<Real, S> lanes(edge, cutoff_sq, lj);
    for (std::size_t i = i_begin; i < i_end; ++i) {
      const P xi = P::broadcast(xs[i]);
      const P yi = P::broadcast(ys[i]);
      const P zi = P::broadcast(zs[i]);
      BlockAcc a;
      std::uint64_t hits = 0;

      for (std::size_t j = 0; j < padded; j += kBlock) {
        // r2 > 0 in the lane mask excludes the self pair; padded columns
        // sit far outside the cutoff by construction.
        for (std::size_t s = 0; s < kSub; ++s) {
          const std::size_t js = j + s * kWidth;
          const unsigned bits = lanes.accumulate(
              xi - P::load(xs + js), yi - P::load(ys + js),
              zi - P::load(zs + js), a.fx[s], a.fy[s], a.fz[s], a.pe[s],
              a.vir[s]);
          hits += static_cast<std::uint64_t>(std::popcount(bits));
        }
      }

      finish_row(a, inv_mass, accelerations[i], row_pe[i], row_virial[i]);
      row_hits[i] = hits;
    }
  }

  /// Neighbour-list row range: walk each atom's padded CSR row one sub-pack
  /// at a time, gathering the j columns straight from the fixed-stride CSR
  /// entries with Pack::gather (hardware vgatherdpd/vgatherdps on AVX2+,
  /// lane loads below) — no staging lane buffers.  A gathered lane holds
  /// exactly the value a scalar load would, so the masked LJ step is bitwise
  /// identical to the N^2 kernel's.  Row extents are multiples of kBlock;
  /// padding entries are the atom itself, rejected by the r2 > 0 lane mask.
  static void list_rows(const Real* xs, const Real* ys, const Real* zs,
                        const std::uint32_t* row_begin,
                        const std::uint32_t* entries, Real edge,
                        Real cutoff_sq, const LjParamsT<Real>& lj,
                        Acc inv_mass, std::size_t i_begin, std::size_t i_end,
                        emdpa::Vec3<Acc>* accelerations, Acc* row_pe,
                        Acc* row_virial, std::uint64_t* row_hits) {
    const LjLaneKernel<Real, S> lanes(edge, cutoff_sq, lj);
    for (std::size_t i = i_begin; i < i_end; ++i) {
      const P xi = P::broadcast(xs[i]);
      const P yi = P::broadcast(ys[i]);
      const P zi = P::broadcast(zs[i]);
      BlockAcc a;
      std::uint64_t hits = 0;

      for (std::uint32_t k = row_begin[i]; k < row_begin[i + 1]; k += kBlock) {
        for (std::size_t s = 0; s < kSub; ++s) {
          const std::uint32_t* idx = entries + k + s * kWidth;
          const unsigned bits = lanes.accumulate(
              xi - P::gather(xs, idx), yi - P::gather(ys, idx),
              zi - P::gather(zs, idx), a.fx[s], a.fy[s], a.fz[s], a.pe[s],
              a.vir[s]);
          hits += static_cast<std::uint64_t>(std::popcount(bits));
        }
      }

      finish_row(a, inv_mass, accelerations[i], row_pe[i], row_virial[i]);
      row_hits[i] = hits;
    }
  }
};

}  // namespace emdpa::md::rows
