#include "md/precision.h"

#include "core/error.h"

namespace emdpa::md {

const char* to_string(PrecisionMode mode) {
  switch (mode) {
    case PrecisionMode::kDouble: return "dp";
    case PrecisionMode::kSingle: return "sp";
    case PrecisionMode::kMixed: return "mixed";
  }
  return "unknown";
}

PrecisionMode parse_precision(const std::string& text) {
  if (text == "dp" || text == "double") return PrecisionMode::kDouble;
  if (text == "sp" || text == "single") return PrecisionMode::kSingle;
  if (text == "mixed") return PrecisionMode::kMixed;
  throw RuntimeFailure("unknown precision '" + text +
                       "' (valid: dp, sp, mixed)");
}

}  // namespace emdpa::md
