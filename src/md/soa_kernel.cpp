#include "md/soa_kernel.h"

#include <string>

namespace emdpa::md {

template <typename Real, typename Acc>
SoaKernelT<Real, Acc>::SoaKernelT(Options options)
    : options_(options), isa_(simd_kernels::resolve_isa(options.isa)) {
  const simd_kernels::KernelRows& table = simd_kernels::rows(isa_);
  width_ = simd_kernels::width<Real>(table);
  rows_fn_ = simd_kernels::soa_rows<Real, Acc>(table);
}

template <typename Real, typename Acc>
std::string SoaKernelT<Real, Acc>::name() const {
  std::string name = std::string("soa-simd[") + simd_name() + ",w" +
                     std::to_string(simd_width()) + "," +
                     precision_tag<Real, Acc>() + "][" +
                     to_string(options_.strategy) + "]";
  if (options_.pool != nullptr) {
    name += "[threads=" + std::to_string(options_.pool->size()) + "]";
  }
  return name;
}

template <typename Real, typename Acc>
void SoaKernelT<Real, Acc>::ensure_capacity(std::size_t padded,
                                            std::size_t n) {
  if (!xs_ || xs_->size() < padded) {
    xs_.emplace(padded);
    ys_.emplace(padded);
    zs_.emplace(padded);
  }
  row_pe_.resize(n);
  row_virial_.resize(n);
  row_hits_.resize(n);
}

template <typename Real, typename Acc>
ForceResultT<Acc> SoaKernelT<Real, Acc>::compute(
    const std::vector<emdpa::Vec3<Acc>>& positions,
    const PeriodicBoxT<Acc>& box, const LjParamsT<Acc>& lj, Acc mass) {
  const std::size_t n = positions.size();
  ForceResultT<Acc> result;
  result.accelerations.assign(n, {});
  if (n == 0) return result;

  // Pad to whole accumulation blocks (not packs): the padded layout, and so
  // the accumulation order, is identical on every dispatched ISA.
  constexpr std::size_t kBlock = block_width();
  const std::size_t padded = (n + kBlock - 1) / kBlock * kBlock;
  ensure_capacity(padded, n);

  // The lane math runs in Real: narrow the box and LJ parameters once (a
  // no-op in dp) so sp and mixed share one code path bit for bit.
  const PeriodicBoxT<Real> rbox(static_cast<Real>(box.edge()));
  const LjParamsT<Real> ljr = lj.template cast<Real>();

  // Pack into SoA lanes, narrowing then wrapping once so the fused
  // reflection in the inner loop is exact (the hoisted part of every
  // min-image strategy) on exactly the coordinates the lanes will see.
  Real* xs = xs_->data();
  Real* ys = ys_->data();
  Real* zs = zs_->data();
  for (std::size_t i = 0; i < n; ++i) {
    const emdpa::Vec3<Real> p = rbox.wrap(
        emdpa::Vec3<Real>{static_cast<Real>(positions[i].x),
                          static_cast<Real>(positions[i].y),
                          static_cast<Real>(positions[i].z)});
    xs[i] = p.x;
    ys[i] = p.y;
    zs[i] = p.z;
  }
  // Padding columns: far enough out that one reflection still leaves them
  // beyond the cutoff, so their lanes never pass the range mask.
  const Real sentinel = Real(4) * (rbox.edge() + ljr.cutoff);
  for (std::size_t j = n; j < xs_->size(); ++j) {
    xs[j] = ys[j] = zs[j] = sentinel;
  }

  const Acc inv_mass = Acc(1) / mass;
  auto rows = [&](std::size_t row_begin, std::size_t row_end) {
    rows_fn_(xs, ys, zs, padded, rbox.edge(), ljr.cutoff_squared(), ljr,
             inv_mass, row_begin, row_end, result.accelerations.data(),
             row_pe_.data(), row_virial_.data(), row_hits_.data());
  };
  if (options_.pool != nullptr) {
    options_.pool->parallel_for(0, n, options_.grain, rows);
  } else {
    rows(0, n);
  }

  // Ordered reduction over the per-row partials: totals are independent of
  // thread count and chunking, bit-identical run to run.
  Acc pe{}, virial{};
  std::uint64_t interacting = 0;
  for (std::size_t i = 0; i < n; ++i) {
    pe += row_pe_[i];
    virial += row_virial_[i];
    interacting += row_hits_[i];
  }
  result.potential_energy = pe;
  result.virial = virial;
  // The row sweep visits every pair from both ends; report unordered pairs.
  result.stats.candidates =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1) / 2;
  result.stats.interacting = interacting / 2;
  return result;
}

template class SoaKernelT<double>;
template class SoaKernelT<float>;
template class SoaKernelT<float, double>;

}  // namespace emdpa::md
