#include "md/soa_kernel.h"

#include <bit>
#include <string>

#include "md/lj_simd.h"

namespace emdpa::md {

namespace {

/// One batch-SIMD row range: for each atom i in [i_begin, i_end), sweep all
/// padded j columns kWidth at a time.  Pure function of its inputs; rows
/// write disjoint outputs, so ranges can run on any thread.
template <typename Real>
void compute_rows(const Real* xs, const Real* ys, const Real* zs,
                  std::size_t padded, Real edge, Real cutoff_sq,
                  const LjParamsT<Real>& lj, Real inv_mass,
                  std::size_t i_begin, std::size_t i_end,
                  emdpa::Vec3<Real>* accelerations, Real* row_pe,
                  Real* row_virial, std::uint64_t* row_hits) {
  using P = simd::NativePack<Real>;
  const LjLaneKernel<Real> lanes(edge, cutoff_sq, lj);

  for (std::size_t i = i_begin; i < i_end; ++i) {
    const P xi = P::broadcast(xs[i]);
    const P yi = P::broadcast(ys[i]);
    const P zi = P::broadcast(zs[i]);
    P fx = P::zero(), fy = P::zero(), fz = P::zero();
    P pe = P::zero(), vir = P::zero();
    std::uint64_t hits = 0;

    for (std::size_t j = 0; j < padded; j += P::kWidth) {
      // r2 > 0 in the lane mask excludes the self pair; padded columns sit
      // far outside the cutoff by construction.
      const unsigned bits =
          lanes.accumulate(xi - P::load(xs + j), yi - P::load(ys + j),
                           zi - P::load(zs + j), fx, fy, fz, pe, vir);
      hits += static_cast<std::uint64_t>(std::popcount(bits));
    }

    accelerations[i] = emdpa::Vec3<Real>{reduce_add(fx), reduce_add(fy),
                                         reduce_add(fz)} *
                       inv_mass;
    row_pe[i] = Real(0.5) * reduce_add(pe);      // pair seen from both ends
    row_virial[i] = Real(0.5) * reduce_add(vir);
    row_hits[i] = hits;
  }
}

}  // namespace

template <typename Real>
std::string SoaKernelT<Real>::name() const {
  std::string name = std::string("soa-simd[") + simd_name() + ",w" +
                     std::to_string(simd_width()) + "][" +
                     to_string(options_.strategy) + "]";
  if (options_.pool != nullptr) {
    name += "[threads=" + std::to_string(options_.pool->size()) + "]";
  }
  return name;
}

template <typename Real>
void SoaKernelT<Real>::ensure_capacity(std::size_t padded, std::size_t n) {
  if (!xs_ || xs_->size() < padded) {
    xs_.emplace(padded);
    ys_.emplace(padded);
    zs_.emplace(padded);
  }
  row_pe_.resize(n);
  row_virial_.resize(n);
  row_hits_.resize(n);
}

template <typename Real>
ForceResultT<Real> SoaKernelT<Real>::compute(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj, Real mass) {
  const std::size_t n = positions.size();
  ForceResultT<Real> result;
  result.accelerations.assign(n, {});
  if (n == 0) return result;

  constexpr std::size_t kWidth = simd_width();
  const std::size_t padded = (n + kWidth - 1) / kWidth * kWidth;
  ensure_capacity(padded, n);

  // Pack into SoA lanes, wrapping once so the fused reflection in the inner
  // loop is exact (the hoisted part of every min-image strategy).
  Real* xs = xs_->data();
  Real* ys = ys_->data();
  Real* zs = zs_->data();
  for (std::size_t i = 0; i < n; ++i) {
    const emdpa::Vec3<Real> p = box.wrap(positions[i]);
    xs[i] = p.x;
    ys[i] = p.y;
    zs[i] = p.z;
  }
  // Padding columns: far enough out that one reflection still leaves them
  // beyond the cutoff, so their lanes never pass the range mask.
  const Real sentinel = Real(4) * (box.edge() + lj.cutoff);
  for (std::size_t j = n; j < xs_->size(); ++j) {
    xs[j] = ys[j] = zs[j] = sentinel;
  }

  const Real inv_mass = Real(1) / mass;
  auto rows = [&](std::size_t row_begin, std::size_t row_end) {
    compute_rows<Real>(xs, ys, zs, padded, box.edge(), lj.cutoff_squared(),
                       lj, inv_mass, row_begin, row_end,
                       result.accelerations.data(), row_pe_.data(),
                       row_virial_.data(), row_hits_.data());
  };
  if (options_.pool != nullptr) {
    options_.pool->parallel_for(0, n, options_.grain, rows);
  } else {
    rows(0, n);
  }

  // Ordered reduction over the per-row partials: totals are independent of
  // thread count and chunking, bit-identical run to run.
  Real pe{}, virial{};
  std::uint64_t interacting = 0;
  for (std::size_t i = 0; i < n; ++i) {
    pe += row_pe_[i];
    virial += row_virial_[i];
    interacting += row_hits_[i];
  }
  result.potential_energy = pe;
  result.virial = virial;
  // The row sweep visits every pair from both ends; report unordered pairs.
  result.stats.candidates =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1) / 2;
  result.stats.interacting = interacting / 2;
  return result;
}

template class SoaKernelT<double>;
template class SoaKernelT<float>;

}  // namespace emdpa::md
