#include "md/soa_kernel.h"

#include <bit>
#include <string>

namespace emdpa::md {

namespace {

/// One batch-SIMD row range: for each atom i in [i_begin, i_end), sweep all
/// padded j columns kWidth at a time.  Pure function of its inputs; rows
/// write disjoint outputs, so ranges can run on any thread.
template <typename Real>
void compute_rows(const Real* xs, const Real* ys, const Real* zs,
                  std::size_t padded, Real edge, Real cutoff_sq,
                  const LjParamsT<Real>& lj, Real inv_mass,
                  std::size_t i_begin, std::size_t i_end,
                  emdpa::Vec3<Real>* accelerations, Real* row_pe,
                  Real* row_virial, std::uint64_t* row_hits) {
  using P = simd::NativePack<Real>;

  const P v_edge = P::broadcast(edge);
  const P v_half = P::broadcast(edge / Real(2));
  const P v_cut = P::broadcast(cutoff_sq);
  const P v_zero = P::zero();
  const P v_one = P::broadcast(Real(1));
  const P v_two = P::broadcast(Real(2));
  const P v_sigma2 = P::broadcast(lj.sigma * lj.sigma);
  const P v_eps24 = P::broadcast(Real(24) * lj.epsilon);
  const P v_eps4 = P::broadcast(Real(4) * lj.epsilon);
  const P v_shift =
      P::broadcast(lj.shifted ? lj.energy_shift() : Real(0));

  for (std::size_t i = i_begin; i < i_end; ++i) {
    const P xi = P::broadcast(xs[i]);
    const P yi = P::broadcast(ys[i]);
    const P zi = P::broadcast(zs[i]);
    P fx = P::zero(), fy = P::zero(), fz = P::zero();
    P pe = P::zero(), vir = P::zero();
    std::uint64_t hits = 0;

    for (std::size_t j = 0; j < padded; j += P::kWidth) {
      P dx = xi - P::load(xs + j);
      P dy = yi - P::load(ys + j);
      P dz = zi - P::load(zs + j);

      // Fused single-reflection minimum image: subtract +-edge where the raw
      // separation exceeds half the box.  Exact for wrapped positions
      // (|dr| < edge), where it coincides with every MinImageStrategy.
      dx = dx - select(cmp_gt(abs(dx), v_half), copysign(v_edge, dx), v_zero);
      dy = dy - select(cmp_gt(abs(dy), v_half), copysign(v_edge, dy), v_zero);
      dz = dz - select(cmp_gt(abs(dz), v_half), copysign(v_edge, dz), v_zero);

      const P r2 = dx * dx + dy * dy + dz * dz;
      // r2 > 0 excludes the self pair; padded columns sit far outside the
      // cutoff by construction.
      const auto in_range =
          P::mask_and(cmp_lt(r2, v_cut), cmp_gt(r2, v_zero));
      const unsigned bits = P::mask_bits(in_range);
      if (bits == 0) continue;  // the common case: whole batch out of range
      hits += static_cast<std::uint64_t>(std::popcount(bits));

      // LJ force and energy on the interacting lanes; rejected lanes may
      // carry inf (from 1/r2 at the self pair) and are discarded by the
      // bitwise blend before touching an accumulator.
      const P inv_r2 = v_one / r2;
      const P s2 = v_sigma2 * inv_r2;
      const P s6 = s2 * s2 * s2;
      const P f_over_r = select(
          in_range, v_eps24 * inv_r2 * s6 * (v_two * s6 - v_one), v_zero);
      const P energy =
          select(in_range, v_eps4 * s6 * (s6 - v_one) - v_shift, v_zero);

      fx = fx + dx * f_over_r;
      fy = fy + dy * f_over_r;
      fz = fz + dz * f_over_r;
      pe = pe + energy;
      vir = vir + f_over_r * r2;
    }

    accelerations[i] = emdpa::Vec3<Real>{reduce_add(fx), reduce_add(fy),
                                         reduce_add(fz)} *
                       inv_mass;
    row_pe[i] = Real(0.5) * reduce_add(pe);      // pair seen from both ends
    row_virial[i] = Real(0.5) * reduce_add(vir);
    row_hits[i] = hits;
  }
}

}  // namespace

template <typename Real>
std::string SoaKernelT<Real>::name() const {
  std::string name = std::string("soa-simd[") + simd_name() + ",w" +
                     std::to_string(simd_width()) + "][" +
                     to_string(options_.strategy) + "]";
  if (options_.pool != nullptr) {
    name += "[threads=" + std::to_string(options_.pool->size()) + "]";
  }
  return name;
}

template <typename Real>
void SoaKernelT<Real>::ensure_capacity(std::size_t padded, std::size_t n) {
  if (!xs_ || xs_->size() < padded) {
    xs_.emplace(padded);
    ys_.emplace(padded);
    zs_.emplace(padded);
  }
  row_pe_.resize(n);
  row_virial_.resize(n);
  row_hits_.resize(n);
}

template <typename Real>
ForceResultT<Real> SoaKernelT<Real>::compute(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj, Real mass) {
  const std::size_t n = positions.size();
  ForceResultT<Real> result;
  result.accelerations.assign(n, {});
  if (n == 0) return result;

  constexpr std::size_t kWidth = simd_width();
  const std::size_t padded = (n + kWidth - 1) / kWidth * kWidth;
  ensure_capacity(padded, n);

  // Pack into SoA lanes, wrapping once so the fused reflection in the inner
  // loop is exact (the hoisted part of every min-image strategy).
  Real* xs = xs_->data();
  Real* ys = ys_->data();
  Real* zs = zs_->data();
  for (std::size_t i = 0; i < n; ++i) {
    const emdpa::Vec3<Real> p = box.wrap(positions[i]);
    xs[i] = p.x;
    ys[i] = p.y;
    zs[i] = p.z;
  }
  // Padding columns: far enough out that one reflection still leaves them
  // beyond the cutoff, so their lanes never pass the range mask.
  const Real sentinel = Real(4) * (box.edge() + lj.cutoff);
  for (std::size_t j = n; j < xs_->size(); ++j) {
    xs[j] = ys[j] = zs[j] = sentinel;
  }

  const Real inv_mass = Real(1) / mass;
  auto rows = [&](std::size_t row_begin, std::size_t row_end) {
    compute_rows<Real>(xs, ys, zs, padded, box.edge(), lj.cutoff_squared(),
                       lj, inv_mass, row_begin, row_end,
                       result.accelerations.data(), row_pe_.data(),
                       row_virial_.data(), row_hits_.data());
  };
  if (options_.pool != nullptr) {
    options_.pool->parallel_for(0, n, options_.grain, rows);
  } else {
    rows(0, n);
  }

  // Ordered reduction over the per-row partials: totals are independent of
  // thread count and chunking, bit-identical run to run.
  Real pe{}, virial{};
  std::uint64_t interacting = 0;
  for (std::size_t i = 0; i < n; ++i) {
    pe += row_pe_[i];
    virial += row_virial_[i];
    interacting += row_hits_[i];
  }
  result.potential_energy = pe;
  result.virial = virial;
  result.stats.candidates =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1);
  result.stats.interacting = interacting;
  return result;
}

template class SoaKernelT<double>;
template class SoaKernelT<float>;

}  // namespace emdpa::md
