// Time-travel trajectory store: a bounded ring of delta-compressed,
// CRC-checked simulation snapshots that any stored step can be restored from
// bit-exactly.
//
// The store is a directory of text frames written at a configurable step
// stride from Simulation::snapshot() — a PURE observer (no neighbour-list
// invalidation; the v4 `listref` checkpoint section carries what a restore
// needs instead), so a store-enabled run stays bitwise identical to a
// store-disabled one.  Every K-th snapshot is a KEYFRAME: a complete v4
// checkpoint file, loadable by load_checkpoint on its own.  Snapshots
// between keyframes are DELTA frames: the byte-level XOR of the snapshot's
// fixed word serialisation against the previous snapshot's, run-length
// encoded (core/delta_codec.h) — a few steps of drift touch mostly low
// mantissa bytes, so deltas are a small fraction of a keyframe.  Every
// frame, and the store index, ends in the same CRC-32 footer as the
// checkpoint format; a single flipped bit anywhere fails restoration loudly.
//
//   <dir>/frame_000000000120.key      full checkpoint text (chain head)
//   <dir>/frame_000000000130.delta    XOR vs the step-120 snapshot
//   <dir>/frame_000000000140.delta    XOR vs the step-130 snapshot
//   ...
//   <dir>/index                       one line per live frame + crc footer
//
// The index file is rewritten atomically (temp + rename) on every append,
// so reopening a store — or seeking — never scans frame payloads: the
// chain structure (which keyframe precedes which step) is O(1) to consult
// once the index is loaded.
//
// Ring eviction: when a max_bytes budget is set and exceeded, the OLDEST
// whole chain (keyframe plus its dependent deltas) is deleted — never a
// frame another live frame depends on, and never any part of the newest
// chain, so the most recent snapshots always survive.
//
// Restoring step S loads S's chain keyframe, then applies the delta frames
// up to S in order.  Any frame whose shape would change (atom count, rng /
// listref presence, recorded config) forces a keyframe at append time, so
// every chain has one fixed word layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "md/checkpoint.h"

namespace emdpa::md {

struct TrajectoryStoreOptions {
  /// Directory the frames and index live in; created if absent.
  std::string directory;
  /// Every K-th snapshot is a full keyframe; the K-1 between are deltas.
  int keyframe_interval = 8;
  /// Disk budget in bytes across all frames; 0 = unbounded.  When exceeded,
  /// whole oldest chains are evicted (the newest chain is never touched).
  std::uint64_t max_bytes = 0;
};

struct TrajectoryStoreStats {
  std::uint64_t snapshots = 0;       ///< appends since open
  std::uint64_t keyframes = 0;       ///< ... of which were keyframes
  std::uint64_t deltas = 0;          ///< ... of which were delta frames
  std::uint64_t bytes = 0;           ///< current on-disk frame bytes
  std::uint64_t evicted_frames = 0;  ///< frames deleted by ring eviction
};

class TrajectoryStore {
 public:
  /// Open (or create) the store at options.directory.  An existing valid
  /// index resumes the ring where it left off; a corrupt index throws.
  explicit TrajectoryStore(TrajectoryStoreOptions options);

  /// Append one snapshot.  `cp.step` must exceed the last stored step.
  /// Decides keyframe vs delta, writes the frame atomically, updates the
  /// index, then applies the ring budget.
  void append(const Checkpoint& cp);

  /// Steps currently restorable, ascending.
  std::vector<long> steps() const;

  bool has_step(long step) const;

  /// Largest stored step <= `step`, or -1 when none is.
  long nearest_at_or_before(long step) const;

  /// Restore the snapshot stored for exactly `step`: load its chain
  /// keyframe, apply the deltas up to `step`.  Throws RuntimeFailure on
  /// unknown steps and on any corruption (every frame is CRC-verified).
  Checkpoint load_step(long step) const;

  const TrajectoryStoreStats& stats() const { return stats_; }
  const std::string& directory() const { return options_.directory; }

 private:
  struct FrameRecord {
    long step = 0;
    bool keyframe = false;
    std::uint64_t bytes = 0;
  };

  std::string frame_path(const FrameRecord& frame) const;
  void write_file_atomic(const std::string& path, const std::string& content);
  void persist_index();
  void load_index();
  void evict_to_budget();
  /// Index into frames_ for `step`; throws when absent.
  std::size_t frame_index(long step) const;

  TrajectoryStoreOptions options_;
  std::vector<FrameRecord> frames_;  ///< live frames, ascending by step
  TrajectoryStoreStats stats_;
  /// Word serialisation of the newest stored snapshot — the base the next
  /// delta XORs against.  Rebuilt lazily from disk after a reopen.
  std::vector<std::uint8_t> last_words_;
  /// Shape fingerprint of the newest snapshot (atom count, optional-section
  /// presence, config strings); any change forces a keyframe.
  std::string last_shape_;
  int since_keyframe_ = 0;  ///< delta frames since the newest keyframe
};

}  // namespace emdpa::md
