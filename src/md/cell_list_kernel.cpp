#include "md/cell_list_kernel.h"

#include <cmath>

#include "core/error.h"

namespace emdpa::md {

namespace {

/// Map a wrapped coordinate to a cell index along one axis.
inline std::size_t cell_of(double coord, double inv_cell, std::size_t cells) {
  auto c = static_cast<long long>(coord * inv_cell);
  if (c < 0) c = 0;
  if (c >= static_cast<long long>(cells)) c = static_cast<long long>(cells) - 1;
  return static_cast<std::size_t>(c);
}

}  // namespace

template <typename Real>
ForceResultT<Real> CellListKernelT<Real>::compute(
    const std::vector<emdpa::Vec3<Real>>& positions,
    const PeriodicBoxT<Real>& box, const LjParamsT<Real>& lj, Real mass) {
  const std::size_t n = positions.size();
  ForceResultT<Real> result;
  result.accelerations.assign(n, {});

  // Cell grid: at least one cutoff per cell, at least 1 cell.  With fewer
  // than 3 cells per axis the 27-neighbour sweep would visit a cell twice,
  // so fall back to covering every cell exactly once via a full sweep guard.
  const double edge = static_cast<double>(box.edge());
  auto cells_ll = static_cast<long long>(edge / static_cast<double>(lj.cutoff));
  if (cells_ll < 1) cells_ll = 1;
  const auto cells = static_cast<std::size_t>(cells_ll);
  const bool degenerate = cells < 3;
  const double inv_cell = static_cast<double>(cells) / edge;

  // Linked list: head[cell] -> first atom, next[atom] -> next in same cell.
  const std::size_t n_cells = cells * cells * cells;
  std::vector<long long> head(n_cells, -1);
  std::vector<long long> next(n, -1);
  std::vector<emdpa::Vec3<Real>> wrapped(n);
  for (std::size_t i = 0; i < n; ++i) {
    wrapped[i] = box.wrap(positions[i]);
    const std::size_t cx = cell_of(wrapped[i].x, inv_cell, cells);
    const std::size_t cy = cell_of(wrapped[i].y, inv_cell, cells);
    const std::size_t cz = cell_of(wrapped[i].z, inv_cell, cells);
    const std::size_t c = (cx * cells + cy) * cells + cz;
    next[i] = head[c];
    head[c] = static_cast<long long>(i);
  }

  const Real cutoff_sq = lj.cutoff_squared();
  const Real inv_mass = Real(1) / mass;

  auto interact = [&](std::size_t i, std::size_t j, emdpa::Vec3<Real>& force,
                      Real& pe) {
    emdpa::Vec3<Real> dr = box.min_image(wrapped[i] - wrapped[j]);
    const Real r2 = length_squared(dr);
    ++result.stats.candidates;
    if (r2 < cutoff_sq) {
      ++result.stats.interacting;
      const Real f_over_r = lj.pair_force_over_r(r2);
      force += dr * f_over_r;
      pe += Real(0.5) * lj.pair_energy(r2);
      result.virial += Real(0.5) * f_over_r * r2;
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    emdpa::Vec3<Real> force{};
    Real pe{};

    if (degenerate) {
      // Too few cells for a distinct 27-neighbourhood: plain N^2 for atom i.
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) interact(i, j, force, pe);
      }
    } else {
      const long long cx =
          static_cast<long long>(cell_of(wrapped[i].x, inv_cell, cells));
      const long long cy =
          static_cast<long long>(cell_of(wrapped[i].y, inv_cell, cells));
      const long long cz =
          static_cast<long long>(cell_of(wrapped[i].z, inv_cell, cells));
      const auto c_ll = static_cast<long long>(cells);
      for (long long dx = -1; dx <= 1; ++dx) {
        for (long long dy = -1; dy <= 1; ++dy) {
          for (long long dz = -1; dz <= 1; ++dz) {
            const std::size_t nx = static_cast<std::size_t>((cx + dx + c_ll) % c_ll);
            const std::size_t ny = static_cast<std::size_t>((cy + dy + c_ll) % c_ll);
            const std::size_t nz = static_cast<std::size_t>((cz + dz + c_ll) % c_ll);
            const std::size_t c = (nx * cells + ny) * cells + nz;
            for (long long j = head[c]; j >= 0; j = next[static_cast<std::size_t>(j)]) {
              if (static_cast<std::size_t>(j) != i) {
                interact(i, static_cast<std::size_t>(j), force, pe);
              }
            }
          }
        }
      }
    }

    result.accelerations[i] = force * inv_mass;
    result.potential_energy += pe;
  }
  // The cell sweep visits every pair from both ends; report unordered pairs.
  result.stats.candidates /= 2;
  result.stats.interacting /= 2;
  return result;
}

template class CellListKernelT<double>;
template class CellListKernelT<float>;

}  // namespace emdpa::md
