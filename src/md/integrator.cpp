#include "md/integrator.h"

#include "core/error.h"
#include "md/observables.h"

namespace emdpa::md {

template <typename Real>
VelocityVerletT<Real>::VelocityVerletT(Real dt) : dt_(dt) {
  EMDPA_REQUIRE(dt > Real(0), "time step must be positive");
}

template <typename Real>
StepEnergiesT<Real> VelocityVerletT<Real>::prime(
    ParticleSystemT<Real>& system, const PeriodicBoxT<Real>& box,
    const LjParamsT<Real>& lj, ForceKernelT<Real>& kernel) const {
  auto forces = kernel.compute(system.positions(), box, lj, system.mass());
  system.accelerations() = std::move(forces.accelerations);
  return {kinetic_energy_of(system), forces.potential_energy};
}

template <typename Real>
StepEnergiesT<Real> VelocityVerletT<Real>::step(
    ParticleSystemT<Real>& system, const PeriodicBoxT<Real>& box,
    const LjParamsT<Real>& lj, ForceKernelT<Real>& kernel) const {
  const std::size_t n = system.size();
  const Real half_dt = Real(0.5) * dt_;

  // 1. advance velocities (half kick).
  for (std::size_t i = 0; i < n; ++i) {
    system.velocities()[i] += system.accelerations()[i] * half_dt;
  }

  // 3/4. move atoms and update (wrap) positions.
  for (std::size_t i = 0; i < n; ++i) {
    system.positions()[i] =
        box.wrap(system.positions()[i] + system.velocities()[i] * dt_);
  }

  // 2. calculate forces on each of the N atoms.
  auto forces = kernel.compute(system.positions(), box, lj, system.mass());
  system.accelerations() = std::move(forces.accelerations);

  // 1'. advance velocities (second half kick with the new accelerations).
  for (std::size_t i = 0; i < n; ++i) {
    system.velocities()[i] += system.accelerations()[i] * half_dt;
  }

  // 5. calculate new kinetic and total energies.
  return {kinetic_energy_of(system), forces.potential_energy};
}

template class VelocityVerletT<double>;
template class VelocityVerletT<float>;

}  // namespace emdpa::md
