#include "md/minimize.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace emdpa::md {

namespace {

double max_force_component(const std::vector<Vec3d>& accelerations,
                           double mass) {
  double max_f = 0.0;
  for (const auto& a : accelerations) {
    max_f = std::max({max_f, std::fabs(a.x * mass), std::fabs(a.y * mass),
                      std::fabs(a.z * mass)});
  }
  return max_f;
}

}  // namespace

MinimizeResult minimize_energy(ParticleSystem& system, const PeriodicBox& box,
                               const LjParams& lj, ForceKernel& kernel,
                               const MinimizeOptions& options) {
  EMDPA_REQUIRE(options.max_iterations > 0, "need at least one iteration");
  EMDPA_REQUIRE(options.force_tolerance > 0, "tolerance must be positive");
  EMDPA_REQUIRE(options.initial_step > 0, "step must be positive");

  const double mass = system.mass();
  auto forces = kernel.compute(system.positions(), box, lj, mass);

  MinimizeResult result;
  result.initial_energy = forces.potential_energy;
  result.final_energy = forces.potential_energy;
  result.max_force = max_force_component(forces.accelerations, mass);

  double step = options.initial_step;
  std::vector<Vec3d> backup;

  for (int it = 0; it < options.max_iterations; ++it) {
    if (result.max_force < options.force_tolerance) {
      result.converged = true;
      break;
    }
    ++result.iterations;

    backup = system.positions();
    for (std::size_t i = 0; i < system.size(); ++i) {
      Vec3d move = forces.accelerations[i] * (mass * step);
      // Displacement cap keeps a steep overlap from catapulting an atom.
      const double mag = length(move);
      if (mag > options.max_displacement) {
        move *= options.max_displacement / mag;
      }
      system.positions()[i] = box.wrap(system.positions()[i] + move);
    }

    auto trial = kernel.compute(system.positions(), box, lj, mass);
    if (trial.potential_energy <= result.final_energy) {
      // Downhill: accept, grow the step.
      forces = std::move(trial);
      result.final_energy = forces.potential_energy;
      result.max_force = max_force_component(forces.accelerations, mass);
      step *= 1.1;
    } else {
      // Uphill: roll back and shrink the step.
      system.positions() = backup;
      step *= 0.5;
      if (step < 1e-12) {
        break;  // step underflow: as converged as this landscape allows
      }
    }
  }

  return result;
}

}  // namespace emdpa::md
