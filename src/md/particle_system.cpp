#include "md/particle_system.h"

#include "core/error.h"

namespace emdpa::md {

template <typename Real>
void ParticleSystemT<Real>::set_mass(Real m) {
  EMDPA_REQUIRE(m > Real(0), "particle mass must be positive");
  mass_ = m;
}

template class ParticleSystemT<double>;
template class ParticleSystemT<float>;

}  // namespace emdpa::md
