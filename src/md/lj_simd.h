// Shared SIMD lane math for the host LJ force kernels.
//
// Both host fast paths — the N^2 SoA batch kernel and the neighbour-list
// traversal kernel — evaluate the same per-lane physics: fused
// single-reflection minimum image on wrapped coordinates, a combined
// (r2 < cutoff^2) && (r2 > 0) lane mask, and blended LJ force / energy /
// virial accumulation.  Keeping the lane math in one place makes "the list
// path computes the same physics as the N^2 path" true by construction
// rather than by parallel maintenance.
//
// The SimdType parameter selects the Pack the lanes run on; the per-ISA row
// translation units (md/simd_rows_*.cpp) each instantiate exactly one S, so
// no TU emits vector code it was not compiled for.
//
// The r2 > 0 term excludes the self pair (and any exactly coincident pair;
// see the divergence note in soa_kernel.h).  Rejected lanes may carry
// inf/NaN from the 1/r2 at the self pair; select() is a blend, so they
// never reach an accumulator.
#pragma once

#include "core/simd.h"
#include "md/lj_potential.h"

namespace emdpa::md {

/// Broadcast constants plus the fused min-image + LJ accumulation step for
/// one batch of Pack<Real, S>::kWidth j-lanes against a fixed atom i.
template <typename Real, simd::SimdType S = simd::fastest_simd_type()>
struct LjLaneKernel {
  using P = simd::Pack<Real, S>;

  P v_edge, v_half, v_cut, v_zero, v_one, v_two;
  P v_sigma2, v_eps24, v_eps4, v_shift;

  LjLaneKernel(Real edge, Real cutoff_sq, const LjParamsT<Real>& lj)
      : v_edge(P::broadcast(edge)),
        v_half(P::broadcast(edge / Real(2))),
        v_cut(P::broadcast(cutoff_sq)),
        v_zero(P::zero()),
        v_one(P::broadcast(Real(1))),
        v_two(P::broadcast(Real(2))),
        v_sigma2(P::broadcast(lj.sigma * lj.sigma)),
        v_eps24(P::broadcast(Real(24) * lj.epsilon)),
        v_eps4(P::broadcast(Real(4) * lj.epsilon)),
        v_shift(P::broadcast(lj.shifted ? lj.energy_shift() : Real(0))) {}

  /// Accumulate one batch of raw separations (dx, dy, dz) into the row's
  /// force/PE/virial lanes.  Returns the in-range lane mask bits (one bit
  /// per lane) so callers can early-out and count interactions.  The fused
  /// single-reflection minimum image is exact for wrapped positions
  /// (|dr| < edge per axis), where it coincides with every MinImageStrategy.
  /// The reflection test is >=, not >: at |d| exactly half the edge both
  /// images are equidistant and std::round (the scalar kRound reference)
  /// rounds half away from zero, i.e. reflects — small perfect lattices
  /// (e.g. 4x4x4 with cutoff > edge/2) really do hit this, and a strict >
  /// would flip the force direction of those pairs against the reference.
  inline unsigned accumulate(P dx, P dy, P dz, P& fx, P& fy, P& fz, P& pe,
                             P& vir) const {
    dx = dx - select(cmp_ge(abs(dx), v_half), copysign(v_edge, dx), v_zero);
    dy = dy - select(cmp_ge(abs(dy), v_half), copysign(v_edge, dy), v_zero);
    dz = dz - select(cmp_ge(abs(dz), v_half), copysign(v_edge, dz), v_zero);

    const P r2 = dx * dx + dy * dy + dz * dz;
    const auto in_range = P::mask_and(cmp_lt(r2, v_cut), cmp_gt(r2, v_zero));
    const unsigned bits = P::mask_bits(in_range);
    if (bits == 0) return 0;  // the common case: whole batch out of range

    const P inv_r2 = v_one / r2;
    const P s2 = v_sigma2 * inv_r2;
    const P s6 = s2 * s2 * s2;
    const P f_over_r = select(
        in_range, v_eps24 * inv_r2 * s6 * (v_two * s6 - v_one), v_zero);
    const P energy =
        select(in_range, v_eps4 * s6 * (s6 - v_one) - v_shift, v_zero);

    fx = fx + dx * f_over_r;
    fy = fy + dy * f_over_r;
    fz = fz + dz * f_over_r;
    pe = pe + energy;
    vir = vir + f_over_r * r2;
    return bits;
  }
};

}  // namespace emdpa::md
