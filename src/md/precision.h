// Arithmetic precision of the host force kernels (--precision dp|sp|mixed).
//
// The SoA N^2 and neighbour-list kernels are templated on TWO real types:
// `Real`, the type coordinates are packed in and lane math runs in, and
// `Acc`, the type per-row lane totals are reduced into and the kernel's
// public interface speaks:
//
//   dp     <double, double>  the default; bit-compatible with the seed.
//   sp     <float,  float>   the paper's device precision, end to end; runs
//                            behind the double-facing ForceKernel interface
//                            through the narrowing adapters below.
//   mixed  <float,  double>  FP32 lane math (full SIMD width on the hot
//                            loop) with each row's lanes widened to FP64
//                            before the cross-row reduction, so the global
//                            sums do not accumulate float rounding.  The
//                            kernel is natively double-facing: no adapter.
#pragma once

#include <string>
#include <type_traits>

namespace emdpa::md {

enum class PrecisionMode { kDouble, kSingle, kMixed };

const char* to_string(PrecisionMode mode);

/// Parse "dp" / "sp" / "mixed" (the --precision spellings); throws
/// RuntimeFailure listing the valid values on anything else.
PrecisionMode parse_precision(const std::string& text);

/// The <Real, Acc> pair a mode instantiates, as a kernel-name tag.
template <typename Real, typename Acc>
constexpr const char* precision_tag() {
  if constexpr (std::is_same_v<Real, double>) {
    return "fp64";
  } else if constexpr (std::is_same_v<Acc, float>) {
    return "fp32";
  } else {
    return "fp32x64";
  }
}

}  // namespace emdpa::md
