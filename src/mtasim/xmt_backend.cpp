#include "mtasim/xmt_backend.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/thread_pool.h"
#include "md/observables.h"
#include "md/reference_kernel.h"

namespace emdpa::mta {

namespace {
// Same original C code as the MTA-2 port (see mta_backend.cpp).
constexpr double kOpsPerCandidate = 3 + 243 + 1 + 4;
constexpr double kOpsPerInteraction = 30;
constexpr double kIntegrationOpsPerAtom = 34;
}  // namespace

double naive_remote_fraction(int p) {
  EMDPA_REQUIRE(p > 0, "processor count must be positive");
  return static_cast<double>(p - 1) / static_cast<double>(p);
}

ModelTime xmt_parallel_time(const XmtConfig& config, double instructions,
                            double remote_fraction) {
  EMDPA_REQUIRE(instructions >= 0, "negative instruction count");
  EMDPA_REQUIRE(remote_fraction >= 0.0 && remote_fraction <= 1.0,
                "remote fraction must be in [0, 1]");
  const double p = static_cast<double>(config.n_processors);

  // Bottleneck 1: the issue pipelines — one instruction per cycle per
  // saturated processor.
  const double issue_cycles = instructions / p;

  // Bottleneck 2: the network — aggregate remote-reference capacity grows
  // with the torus bisection, ~P^(2/3), not with P.
  const double remote_refs =
      instructions * config.refs_per_instruction * remote_fraction;
  const double network_capacity =
      config.remote_refs_per_cycle * std::pow(p, 2.0 / 3.0);
  const double network_cycles = remote_refs / network_capacity;

  const double cycles = std::max(issue_cycles, network_cycles);
  return ClockDomain(config.clock_hz).to_time(CycleCount(cycles));
}

XmtBackend::XmtBackend(const XmtConfig& config) : config_(config) {
  EMDPA_REQUIRE(config.n_processors >= 1 && config.n_processors <= 8192,
                "XMT systems scale to 8192 processors");
}

std::string XmtBackend::name() const {
  return "xmt[" + std::to_string(config_.n_processors) + "p]";
}

md::RunResult XmtBackend::run(const md::RunConfig& run_config) {
  md::Workload workload = md::make_lattice_workload(run_config.workload);
  md::ParticleSystem& system = workload.system;
  const md::PeriodicBox& box = workload.box;
  const std::size_t n = system.size();
  const double half_dt = 0.5 * run_config.dt;
  const double remote = naive_remote_fraction(config_.n_processors);

  md::RunResult result;
  result.backend_name = name();
  ModelTime total;

  // The modelled streams execute for real: atom rows run concurrently on the
  // host pool, with results bit-identical to the serial kernel.
  md::ReferenceKernelT<double> kernel(md::MinImageStrategy::kRound,
                                      &ThreadPool::global());

  auto evaluate = [&]() -> std::pair<double, ModelTime> {
    auto forces = kernel.compute(system.positions(), box, run_config.lj,
                                 system.mass());
    // PairStats are unordered pairs; the modelled loop visits each pair from
    // both ends, so the instruction charge prices the directed count.
    const double instructions =
        2.0 * (kOpsPerCandidate * static_cast<double>(forces.stats.candidates) +
               kOpsPerInteraction *
                   static_cast<double>(forces.stats.interacting));
    const ModelTime t = xmt_parallel_time(config_, instructions, remote);
    system.accelerations() = std::move(forces.accelerations);
    result.ops.add("xmt.pair_candidates", forces.stats.candidates);
    return {forces.potential_energy, t};
  };

  // Prime (untimed).
  {
    auto [pe, ignored] = evaluate();
    (void)ignored;
    result.energies.push_back({md::kinetic_energy_of(system), pe});
  }

  for (int step = 0; step < run_config.steps; ++step) {
    ModelTime step_time;
    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    for (std::size_t i = 0; i < n; ++i) {
      system.positions()[i] = box.wrap(system.positions()[i] +
                                       system.velocities()[i] * run_config.dt);
    }
    step_time += xmt_parallel_time(
        config_, static_cast<double>(n) * kIntegrationOpsPerAtom, remote);

    auto [pe, force_time] = evaluate();
    step_time += force_time;

    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    result.energies.push_back({md::kinetic_energy_of(system), pe});
    result.step_times.push_back(step_time);
    total += step_time;
  }

  result.device_time = total;
  result.breakdown["compute"] = total;
  result.final_state = std::move(system);
  return result;
}

}  // namespace emdpa::mta
