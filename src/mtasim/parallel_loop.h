// MTA auto-parallelising compiler model.
//
// On the MTA-2, parallelism is expressed *implicitly*: the compiler
// parallelises ordinary loops unless data/control dependences stop it.  The
// paper's key porting step (section 5.3) is exactly a negotiation with this
// compiler: the N^2 force loop was NOT parallelised automatically "because
// it found a dependency on the reduction operation"; moving the reduction
// inside the loop body and adding a no-dependence pragma made it fully
// parallel.
//
// We model the decision procedure over a small loop-description IR: a loop
// is parallelisable iff it carries no cross-iteration dependence, where an
// unrestructured scalar reduction counts as one; the pragma asserts the
// remaining (reduction) dependence away once the update is self-contained
// in the body.
#pragma once

#include <string>

namespace emdpa::mta {

/// What the programmer wrote, as the compiler sees it.
struct LoopDescription {
  std::string name;
  std::uint64_t trip_count = 0;

  /// The body updates a scalar accumulator visible outside the loop
  /// (sum += ...), i.e. a reduction.
  bool has_scalar_reduction = false;

  /// The reduction update was restructured to live entirely inside the loop
  /// body (e.g. through a full/empty-bit synchronised accumulator), so each
  /// iteration is self-contained.
  bool reduction_inside_body = false;

  /// The body writes through a subscript the compiler cannot analyse
  /// (potential cross-iteration aliasing).
  bool has_unanalyzable_write = false;

  /// `#pragma mta assert no dependence` on the loop.
  bool pragma_no_dependence = false;
};

struct ParallelizationDecision {
  bool parallel = false;
  std::string reason;
};

class MtaCompiler {
 public:
  /// Decide whether the loop runs multithreaded.
  static ParallelizationDecision analyze(const LoopDescription& loop);
};

}  // namespace emdpa::mta
