#include "mtasim/parallel_loop.h"

namespace emdpa::mta {

ParallelizationDecision MtaCompiler::analyze(const LoopDescription& loop) {
  // An unanalysable write is a hard dependence unless asserted away.
  if (loop.has_unanalyzable_write && !loop.pragma_no_dependence) {
    return {false, "possible cross-iteration aliasing on '" + loop.name +
                       "' (no pragma)"};
  }

  if (loop.has_scalar_reduction) {
    // A reduction whose update straddles the loop body is a cross-iteration
    // dependence the compiler will not break on its own.
    if (!loop.reduction_inside_body) {
      return {false, "dependency on the reduction operation in '" + loop.name +
                         "'"};
    }
    // Restructured reduction: still needs the programmer's assertion that
    // the synchronised update carries no ordering requirement.
    if (!loop.pragma_no_dependence) {
      return {false, "reduction in '" + loop.name +
                         "' restructured but not asserted dependence-free"};
    }
  }

  return {true, "no loop-carried dependence in '" + loop.name + "'"};
}

}  // namespace emdpa::mta
