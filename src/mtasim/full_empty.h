// Full/empty-bit synchronised memory, the MTA's signature primitive.
//
// Every MTA memory word carries a full/empty tag; synchronised loads and
// stores wait for the tag, giving free fine-grained producer/consumer and
// atomic-update patterns (Bokhari & Sauer's MTA-2 sequence alignment codes
// lean on this heavily, as the paper's related-work section notes).  The
// fully-multithreaded MD kernel uses an FE accumulator for the potential
// energy reduction it moved inside the loop body.
//
// The simulator is sequential, so "waiting" that could never be satisfied
// is a deadlock — reported as a contract violation.
#pragma once

#include "core/error.h"

namespace emdpa::mta {

template <typename T>
class FullEmptyCell {
 public:
  /// Cells start empty (as after `purge`).
  FullEmptyCell() = default;

  /// Initialise full with a value.
  explicit FullEmptyCell(const T& value) : value_(value), full_(true) {}

  bool is_full() const { return full_; }

  /// writeef: wait until empty, write, set full.
  void write_ef(const T& value) {
    if (full_) {
      throw ContractViolation(
          "write_ef on a full cell: would block forever in a serial context");
    }
    value_ = value;
    full_ = true;
  }

  /// readfe: wait until full, read, set empty.
  T read_fe() {
    if (!full_) {
      throw ContractViolation(
          "read_fe on an empty cell: would block forever in a serial context");
    }
    full_ = false;
    return value_;
  }

  /// readff: wait until full, read, leave full.
  const T& read_ff() const {
    if (!full_) {
      throw ContractViolation(
          "read_ff on an empty cell: would block forever in a serial context");
    }
    return value_;
  }

  /// Atomic fetch-and-add built from readfe/writeef — the MTA reduction
  /// idiom ("move the reduction inside the loop body").
  void fetch_add(const T& delta) {
    const T current = read_fe();
    write_ef(current + delta);
  }

  /// purge: force empty regardless of state.
  void purge() { full_ = false; }

 private:
  T value_{};
  bool full_ = false;
};

}  // namespace emdpa::mta
