// Cray MTA-2 stream machine timing model.
//
// The MTA-2 hides memory latency with massive multithreading instead of
// caches: each 200 MHz (effective) processor holds 128 hardware streams and
// switches streams every cycle.  A processor saturated with runnable
// streams issues one instruction per cycle regardless of memory access
// pattern — there is no penalty for irregular access, the property that
// makes MD's unpredictable cutoff pattern "an optimal mapping" (section
// 5.3).  A *serial* section is the pathological case: one stream has at
// most one instruction in flight, so each instruction costs a full pipeline
// round trip (~21 cycles).
//
// charge_parallel / charge_serial convert counted instructions into model
// time under those two regimes; the saturation ramp in between follows
// issue_rate = min(1, threads / pipeline_depth) per processor.
#pragma once

#include <cstdint>

#include "core/op_counter.h"
#include "core/time_model.h"

namespace emdpa::mta {

struct MtaConfig {
  /// Effective clock.  The paper notes the MTA-2 is "about 11x slower" in
  /// clock rate than the 2.2 GHz Opteron -> 200 MHz.
  double clock_hz = 200.0e6;
  int streams_per_processor = 128;
  int n_processors = 1;  ///< the study's single-processor comparison
  /// Instruction pipeline depth: the number of concurrent streams needed to
  /// keep one processor saturated (21 on the MTA/Tera lineage).
  double pipeline_depth = 21.0;
  /// Extra cycles for a full/empty-bit synchronised memory operation.
  double fe_op_cycles = 8.0;
};

class StreamMachine {
 public:
  explicit StreamMachine(const MtaConfig& config = {});

  const MtaConfig& config() const { return config_; }

  /// Charge a parallel region of `instructions` total work executed by
  /// `threads` concurrent streams (loop iterations the compiler spread over
  /// the machine).  Returns the region's model time.
  ModelTime charge_parallel(double instructions, std::uint64_t threads);

  /// Charge a serial region: one stream, one instruction in flight.
  ModelTime charge_serial(double instructions);

  /// Charge `count` full/empty synchronised memory operations (they ride on
  /// the issuing stream; hot contention is not modelled — the kernels use
  /// one FE accumulator per iteration, which the MTA retries cheaply).
  ModelTime charge_fe_ops(double count);

  ModelTime elapsed() const { return elapsed_; }
  const OpCounter& ops() const { return ops_; }
  void reset();

 private:
  MtaConfig config_;
  ModelTime elapsed_;
  OpCounter ops_;
};

}  // namespace emdpa::mta
