#include "mtasim/mta_pairlist.h"

namespace emdpa::mta {

namespace {

// Same code shape the MTA/XMT backends charge for the on-the-fly kernel.
constexpr double kN2OpsPerCandidate = 3 + 243 + 1 + 4;
constexpr double kN2OpsPerInteraction = 30;

constexpr double kPairlistOpsPerEntry = 27;   // see mta_pairlist.h
constexpr double kBuildOpsPerTest = 31;
constexpr double kBinOpsPerAtom = 12;

double n2_instructions(const md::PairlistStepWork& work) {
  return kN2OpsPerCandidate * work.candidates_directed +
         kN2OpsPerInteraction * work.interacting_directed;
}

double pairlist_instructions(const md::PairlistStepWork& work) {
  return kPairlistOpsPerEntry * work.list_entries_directed +
         kN2OpsPerInteraction * work.interacting_directed +
         (kBuildOpsPerTest * work.build_tests_directed +
          kBinOpsPerAtom * static_cast<double>(work.n_atoms)) /
             work.rebuild_period_steps;
}

ModelTime mta_time(const MtaConfig& config, double instructions,
                   std::uint64_t threads) {
  StreamMachine machine(config);
  return machine.charge_parallel(instructions, threads);
}

}  // namespace

ModelTime mta_n2_step_time(const MtaConfig& config,
                           const md::PairlistStepWork& work) {
  return mta_time(config, n2_instructions(work), work.n_atoms);
}

ModelTime mta_pairlist_step_time(const MtaConfig& config,
                                 const md::PairlistStepWork& work) {
  // One stream per atom row, as in the N^2 loop; the gather itself costs
  // nothing extra on the flat network.
  return mta_time(config, pairlist_instructions(work), work.n_atoms);
}

ModelTime xmt_n2_step_time(const XmtConfig& config,
                           const md::PairlistStepWork& work) {
  return xmt_parallel_time(config, n2_instructions(work),
                           naive_remote_fraction(config.n_processors));
}

ModelTime xmt_pairlist_step_time(const XmtConfig& config,
                                 const md::PairlistStepWork& work) {
  // The pairlist loop is shorter but reference-denser: the remote-traffic
  // bottleneck sees kPairlistRefDensityFactor more loads per instruction.
  XmtConfig denser = config;
  denser.refs_per_instruction *= kPairlistRefDensityFactor;
  return xmt_parallel_time(denser, pairlist_instructions(work),
                           naive_remote_fraction(config.n_processors));
}

}  // namespace emdpa::mta
