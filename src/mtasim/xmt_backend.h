// Cray XMT projection model (the paper's "future plans").
//
// The paper closes by anticipating "significant performance gains from the
// upcoming XMT technology" while warning that the XMT "will not have the
// MTA-2's nearly uniform memory access latency, so data placement and
// access locality will be an important consideration".  This backend models
// exactly that trade:
//
//  * Threadstorm processors at a higher clock (500 MHz vs the MTA-2's
//    effective 200 MHz), systems up to 8192 processors (vs 256);
//  * commodity-network memory: a fraction of references is remote, and
//    remote references consume extra issue opportunities that grow with
//    the machine size (the Seastar torus sustains far fewer remote
//    references per processor per cycle than the MTA-2's flat network).
//
// The MD kernel's scattered position reads make its remote fraction roughly
// (P-1)/P with naive round-robin placement — the worst case the paper's
// locality warning is about.
#pragma once

#include "md/backend.h"
#include "mtasim/stream_machine.h"

namespace emdpa::mta {

struct XmtConfig {
  double clock_hz = 500.0e6;      ///< Threadstorm
  int streams_per_processor = 128;
  int n_processors = 1;
  double pipeline_depth = 21.0;

  /// Sustainable remote memory references per *network unit* per cycle.
  /// On the MTA-2's flat network every reference can be remote; on the
  /// XMT's 3-D torus the aggregate remote capacity grows only with the
  /// bisection, ~P^(2/3) network units for P processors.
  double remote_refs_per_cycle = 0.5;

  /// Memory references per executed instruction in this kernel (loads of
  /// neighbour positions dominate).
  double refs_per_instruction = 0.35;
};

/// Fraction of references that leave the local memory under naive
/// round-robin data placement on `p` processors.
double naive_remote_fraction(int p);

/// Time for `instructions` of saturated parallel work on the XMT model:
/// the issue pipeline and the remote-reference budget are both potential
/// bottlenecks; the slower one governs.
ModelTime xmt_parallel_time(const XmtConfig& config, double instructions,
                            double remote_fraction);

/// MdBackend: the MD kernel on a projected XMT, fully multithreaded (the
/// MTA-2 port carries over unchanged — same ISA family and compiler).
class XmtBackend final : public md::MdBackend {
 public:
  explicit XmtBackend(const XmtConfig& config = {});

  std::string name() const override;
  std::string precision() const override { return "double"; }
  md::RunResult run(const md::RunConfig& run_config) override;

 private:
  XmtConfig config_;
};

}  // namespace emdpa::mta
