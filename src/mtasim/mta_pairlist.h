// Analytic MTA-2 / XMT price of the section-3.4 pairlist trade-off.
//
// The MTA-2 is the architecture where the pairlist pays off purely as an
// instruction reduction: a saturated processor issues one instruction per
// cycle regardless of access pattern, so the gather that punishes cache
// machines, SPEs and GPUs is free here ("no penalty for irregular access",
// section 5.3).  The modelled speedup is therefore simply the ratio of
// instructions retired, minus the amortised build.
//
// The projected XMT is the interesting contrast: its commodity network makes
// remote references a second potential bottleneck, and the pairlist loop is
// *more* reference-dense per instruction than the N^2 loop (one list load
// plus one gathered position per 27 instructions vs long stretches of
// arithmetic in the 27-image search) — so on large XMT configurations the
// network can claw back part of the instruction win, exactly the locality
// warning the paper closes with.
//
// Instruction counts (per directed event) mirror the backends':
//  * N^2 candidate: 251 (the 27-image search), interaction: 30.
//  * pairlist entry: 27 (round minimum image suffices inside cutoff+skin:
//    dr 3, image 12, r^2 5, compare 1, list index + addressing 6).
//  * build: 31 per cell-grid test + 12/atom binning, amortised over
//    rebuild_period_steps; the build loops parallelise like the force loop.
#pragma once

#include "core/time_model.h"
#include "md/pairlist_cost.h"
#include "mtasim/stream_machine.h"
#include "mtasim/xmt_backend.h"

namespace emdpa::mta {

/// One fully-multithreaded force evaluation with the on-the-fly N^2 loop.
ModelTime mta_n2_step_time(const MtaConfig& config,
                           const md::PairlistStepWork& work);

/// The same evaluation through a Verlet pairlist, build cost amortised.
ModelTime mta_pairlist_step_time(const MtaConfig& config,
                                 const md::PairlistStepWork& work);

/// XMT projections of the same two loops under naive round-robin placement.
ModelTime xmt_n2_step_time(const XmtConfig& config,
                           const md::PairlistStepWork& work);
ModelTime xmt_pairlist_step_time(const XmtConfig& config,
                                 const md::PairlistStepWork& work);

/// Memory references per instruction of the pairlist loop relative to the
/// XmtConfig's (N^2) refs_per_instruction — the gather's reference density.
constexpr double kPairlistRefDensityFactor = 1.6;

}  // namespace emdpa::mta
