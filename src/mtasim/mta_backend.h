// MdBackend implementation for the Cray MTA-2 (section 5.3).
//
// Double precision (the only precision the MTA port uses in the paper).
// Two build flavours reproduce Fig 8:
//
//  - kPartiallyMultithreaded: the code as first compiled.  The MTA compiler
//    refuses to parallelise the N^2 force loop ("it found a dependency on
//    the reduction operation"), so step 2 runs on a single stream at one
//    instruction per pipeline round-trip; the other loops parallelise
//    automatically.
//  - kFullyMultithreaded: the reduction moved inside the loop body (a
//    full/empty-bit accumulator) plus the no-dependence pragma; every loop
//    runs saturated.
#pragma once

#include "md/backend.h"
#include "mtasim/parallel_loop.h"
#include "mtasim/stream_machine.h"

namespace emdpa::mta {

enum class ThreadingMode {
  kPartiallyMultithreaded,
  kFullyMultithreaded,
};

const char* to_string(ThreadingMode m);

class MtaBackend final : public md::MdBackend {
 public:
  explicit MtaBackend(ThreadingMode mode = ThreadingMode::kFullyMultithreaded,
                      const MtaConfig& config = {});

  std::string name() const override;
  std::string precision() const override { return "double"; }
  md::RunResult run(const md::RunConfig& run_config) override;

  /// The force-loop description as the compiler sees it under `mode` — also
  /// used directly by tests of the compiler model.
  static LoopDescription force_loop_description(ThreadingMode mode,
                                                std::uint64_t n_atoms);

 private:
  ThreadingMode mode_;
  MtaConfig config_;
};

}  // namespace emdpa::mta
