#include "mtasim/mta_backend.h"

#include "core/error.h"
#include "core/thread_pool.h"
#include "md/observables.h"
#include "md/reference_kernel.h"
#include "mtasim/full_empty.h"

namespace emdpa::mta {

namespace {

// Instruction profile of the original double-precision C code, which the
// MTA port compiles unchanged (only the reduction/pragma differ between the
// two flavours).  Same code shape as the Opteron reference: 27-image
// minimum-image search per candidate pair.  The arithmetic below is
// evaluated with the equivalent single-reflection form (identical results);
// the counts price the code as written.
constexpr double kOpsPerCandidate = 3 + 243 + 1 + 4;
constexpr double kOpsPerInteraction = 30;  // LJ force/energy incl. divide
constexpr double kIntegrationOpsPerAtom = 34;

}  // namespace

const char* to_string(ThreadingMode m) {
  switch (m) {
    case ThreadingMode::kPartiallyMultithreaded: return "partially-multithreaded";
    case ThreadingMode::kFullyMultithreaded: return "fully-multithreaded";
  }
  return "unknown";
}

MtaBackend::MtaBackend(ThreadingMode mode, const MtaConfig& config)
    : mode_(mode), config_(config) {}

std::string MtaBackend::name() const {
  return std::string("mta2[") + to_string(mode_) + "]";
}

LoopDescription MtaBackend::force_loop_description(ThreadingMode mode,
                                                   std::uint64_t n_atoms) {
  LoopDescription loop;
  loop.name = "md-step2-force-loop";
  loop.trip_count = n_atoms;
  loop.has_scalar_reduction = true;  // the potential-energy sum
  loop.reduction_inside_body = (mode == ThreadingMode::kFullyMultithreaded);
  loop.pragma_no_dependence = (mode == ThreadingMode::kFullyMultithreaded);
  return loop;
}

md::RunResult MtaBackend::run(const md::RunConfig& run_config) {
  md::Workload workload = md::make_lattice_workload(run_config.workload);
  md::ParticleSystem& system = workload.system;
  const md::PeriodicBox& box = workload.box;
  const std::size_t n = system.size();
  const double half_dt = 0.5 * run_config.dt;

  StreamMachine machine(config_);
  md::RunResult result;
  result.backend_name = name();

  const LoopDescription force_loop =
      force_loop_description(mode_, static_cast<std::uint64_t>(n));
  const ParallelizationDecision decision = MtaCompiler::analyze(force_loop);
  result.ops.add(decision.parallel ? "mta.force_loop_parallel"
                                   : "mta.force_loop_serial");

  ModelTime t_force, t_other;

  // One force evaluation: real physics + instruction charging per the
  // compiler's parallelisation decision.  Returns total PE.
  auto evaluate = [&]() -> double {
    // When the compiler parallelises the loop, the modelled streams run for
    // real: atom rows execute concurrently on the host pool.  The per-row
    // accumulation + ordered reduction inside ReferenceKernelT keeps the
    // result bit-identical to the serial kernel, which the cross-backend
    // bitwise tests rely on.
    md::ReferenceKernelT<double> kernel(
        md::MinImageStrategy::kRound,
        decision.parallel ? &ThreadPool::global() : nullptr);
    auto forces = kernel.compute(system.positions(), box, run_config.lj,
                                 system.mass());

    // PairStats are unordered pairs; the modelled MTA loop ("for each atom,
    // all j != i") really executes each pair from both ends, so the
    // instruction charge prices the directed visit count.
    const double instructions =
        2.0 * (kOpsPerCandidate * static_cast<double>(forces.stats.candidates) +
               kOpsPerInteraction *
                   static_cast<double>(forces.stats.interacting));

    if (decision.parallel) {
      // Fully multithreaded: iterations spread across the streams; the PE
      // reduction is a synchronised FE accumulator updated once per
      // iteration ("the reduction operation inside the loop body").
      FullEmptyCell<double> pe_accumulator(0.0);
      for (std::size_t i = 0; i < n; ++i) {
        // Each stream's per-atom PE share lands in the accumulator.
        pe_accumulator.fetch_add(0.0);  // value folded below; op priced here
      }
      t_force += machine.charge_parallel(instructions, n);
      t_force += machine.charge_fe_ops(static_cast<double>(n));
      EMDPA_ENSURE(pe_accumulator.is_full(), "PE accumulator left empty");
    } else {
      t_force += machine.charge_serial(instructions);
    }

    system.accelerations() = std::move(forces.accelerations);
    result.ops.add("mta.pair_candidates", forces.stats.candidates);
    result.ops.add("mta.pair_interactions", forces.stats.interacting);
    return forces.potential_energy;
  };

  // Prime (untimed).
  {
    const double pe = evaluate();
    machine.reset();
    t_force = t_other = ModelTime::zero();
    result.energies.push_back({md::kinetic_energy_of(system), pe});
  }

  ModelTime total;
  for (int step = 0; step < run_config.steps; ++step) {
    const ModelTime before = machine.elapsed();

    // Integration loops: parallelised automatically in both flavours.
    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    for (std::size_t i = 0; i < n; ++i) {
      system.positions()[i] =
          box.wrap(system.positions()[i] + system.velocities()[i] * run_config.dt);
    }
    t_other += machine.charge_parallel(
        static_cast<double>(n) * kIntegrationOpsPerAtom, n);

    const double pe = evaluate();

    for (std::size_t i = 0; i < n; ++i) {
      system.velocities()[i] += system.accelerations()[i] * half_dt;
    }
    result.energies.push_back({md::kinetic_energy_of(system), pe});

    result.step_times.push_back(machine.elapsed() - before);
    total = machine.elapsed();
  }

  result.device_time = total;
  result.breakdown["force_loop"] = t_force;
  result.breakdown["other_loops"] = t_other;
  result.ops.merge(machine.ops());
  result.final_state = std::move(system);
  return result;
}

}  // namespace emdpa::mta
