#include "mtasim/stream_machine.h"

#include <algorithm>

#include "core/error.h"
#include "core/fault_injection.h"

namespace emdpa::mta {

StreamMachine::StreamMachine(const MtaConfig& config) : config_(config) {
  EMDPA_REQUIRE(config.clock_hz > 0, "clock must be positive");
  EMDPA_REQUIRE(config.streams_per_processor > 0, "need at least one stream");
  EMDPA_REQUIRE(config.n_processors > 0, "need at least one processor");
  EMDPA_REQUIRE(config.pipeline_depth >= 1.0, "pipeline depth must be >= 1");
}

ModelTime StreamMachine::charge_parallel(double instructions,
                                         std::uint64_t threads) {
  EMDPA_REQUIRE(instructions >= 0, "negative instruction count");
  if (instructions == 0 || threads == 0) return ModelTime::zero();

  // Streams actually holding work, capped by the hardware.
  const double hw_streams = static_cast<double>(config_.streams_per_processor) *
                            static_cast<double>(config_.n_processors);
  const double active = std::min(static_cast<double>(threads), hw_streams);

  // Per-processor issue rate ramps linearly until pipeline_depth streams are
  // resident, then saturates at 1 instruction/cycle.
  const double streams_per_proc = active / static_cast<double>(config_.n_processors);
  const double issue_per_proc =
      std::min(1.0, streams_per_proc / config_.pipeline_depth);
  const double total_issue = issue_per_proc * static_cast<double>(config_.n_processors);

  const double cycles = instructions / total_issue;
  ModelTime t = ClockDomain(config_.clock_hz).to_time(CycleCount(cycles));

  // Fault site "mtasim.stream": an injected failure models one stream
  // trapping mid-region.  The runtime retires its share of the iterations on
  // a single fresh stream — serial pipeline cost — after the parallel
  // region drains.  Recovery is built in; nothing propagates to the caller.
  if (fault::injected("mtasim.stream")) {
    const double share = instructions / static_cast<double>(threads);
    const double retry_cycles = share * config_.pipeline_depth;
    t += ClockDomain(config_.clock_hz).to_time(CycleCount(retry_cycles));
    ops_.add("mta.stream_reissues", 1);
    ops_.add("mta.reissued_instructions", static_cast<std::uint64_t>(share));
  }

  elapsed_ += t;
  ops_.add("mta.parallel_instructions", static_cast<std::uint64_t>(instructions));
  return t;
}

ModelTime StreamMachine::charge_serial(double instructions) {
  EMDPA_REQUIRE(instructions >= 0, "negative instruction count");
  const double cycles = instructions * config_.pipeline_depth;
  const ModelTime t = ClockDomain(config_.clock_hz).to_time(CycleCount(cycles));
  elapsed_ += t;
  ops_.add("mta.serial_instructions", static_cast<std::uint64_t>(instructions));
  return t;
}

ModelTime StreamMachine::charge_fe_ops(double count) {
  const ModelTime t = ClockDomain(config_.clock_hz)
                          .to_time(CycleCount(count * config_.fe_op_cycles));
  elapsed_ += t;
  ops_.add("mta.fe_operations", static_cast<std::uint64_t>(count));
  return t;
}

void StreamMachine::reset() {
  elapsed_ = ModelTime::zero();
  ops_.clear();
}

}  // namespace emdpa::mta
