// Backend factory: every architecture model behind one string-keyed
// constructor, for the CLI driver and any embedding that selects devices at
// runtime.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "md/backend.h"

namespace emdpa::driver {

struct BackendInfo {
  std::string key;          ///< factory name, e.g. "cell-8spe"
  std::string description;  ///< one-line human description
};

/// All registered backend keys with descriptions, in display order.
const std::vector<BackendInfo>& available_backends();

/// Construct a backend by key.  Throws ContractViolation for unknown keys
/// (the message lists the valid ones).
std::unique_ptr<md::MdBackend> make_backend(const std::string& key);

}  // namespace emdpa::driver
