// Result rendering for the CLI driver.
#pragma once

#include <string>

#include "md/backend.h"
#include "md/job_scheduler.h"

namespace emdpa::driver {

/// Human-readable single-run report: timing, breakdown, energy ledger.
std::string render_run_report(const md::RunResult& result,
                              const md::RunConfig& config);

/// CSV single-run report (one header + one row + breakdown rows).
std::string render_run_csv(const md::RunResult& result,
                           const md::RunConfig& config);

/// Human-readable batch report: one row per job (status, steps, slices,
/// saves, wall time, final energy, error) plus a summary line.
std::string render_batch_report(const md::BatchResult& batch);

/// CSV batch report: header + one row per job.
std::string render_batch_csv(const md::BatchResult& batch);

}  // namespace emdpa::driver
