// Result rendering for the CLI driver.
#pragma once

#include <string>

#include "md/backend.h"

namespace emdpa::driver {

/// Human-readable single-run report: timing, breakdown, energy ledger.
std::string render_run_report(const md::RunResult& result,
                              const md::RunConfig& config);

/// CSV single-run report (one header + one row + breakdown rows).
std::string render_run_csv(const md::RunResult& result,
                           const md::RunConfig& config);

}  // namespace emdpa::driver
