#include "driver/backend_factory.h"

#include <functional>
#include <map>

#include "cellsim/cell_dp.h"
#include "cellsim/cell_md_app.h"
#include "core/error.h"
#include "cpu/opteron_backend.h"
#include "gpusim/gpu_backend.h"
#include "mtasim/mta_backend.h"
#include "mtasim/xmt_backend.h"

namespace emdpa::driver {

namespace {

using Factory = std::function<std::unique_ptr<md::MdBackend>()>;

struct Entry {
  BackendInfo info;
  Factory make;
};

const std::vector<Entry>& registry() {
  static const std::vector<Entry> entries = [] {
    std::vector<Entry> list;

    list.push_back({{"host", "plain double-precision host reference (no timing model)"},
                    [] { return std::make_unique<md::HostReferenceBackend>(); }});
    list.push_back({{"host-parallel",
                     "real parallel SIMD host kernels, N^2 or neighbour-list (--kernel)"},
                    [] { return std::make_unique<md::HostParallelBackend>(); }});
    list.push_back({{"opteron", "2.2 GHz Opteron reference model (Table 1 baseline)"},
                    [] { return std::make_unique<opteron::OpteronBackend>(); }});

    for (int spes : {1, 2, 4, 8}) {
      list.push_back(
          {{"cell-" + std::to_string(spes) + "spe",
            "Cell BE, " + std::to_string(spes) + " SPE(s), persistent threads"},
           [spes] {
             cell::CellRunOptions options;
             options.n_spes = spes;
             return std::make_unique<cell::CellBackend>(options);
           }});
    }
    list.push_back({{"cell-8spe-respawn",
                     "Cell BE, 8 SPEs, thread respawn every step (Fig 6)"},
                    [] {
                      cell::CellRunOptions options;
                      options.launch_mode = cell::LaunchMode::kRespawnEveryStep;
                      return std::make_unique<cell::CellBackend>(options);
                    }});
    list.push_back({{"cell-8spe-tiled",
                     "Cell BE, 8 SPEs, double-buffered tile streaming"},
                    [] {
                      cell::CellRunOptions options;
                      options.data_layout = cell::SpeDataLayout::kTiledStreaming;
                      return std::make_unique<cell::CellBackend>(options);
                    }});
    list.push_back({{"cell-ppe", "Cell BE, PPE only (unported baseline)"},
                    [] {
                      cell::CellRunOptions options;
                      options.n_spes = 0;
                      return std::make_unique<cell::CellBackend>(options);
                    }});
    list.push_back({{"cell-8spe-dp", "Cell BE, 8 SPEs, double precision"},
                    [] { return std::make_unique<cell::CellDpBackend>(8); }});

    list.push_back({{"gpu", "NVIDIA 7900GTX model (PE readback in w)"},
                    [] { return std::make_unique<gpu::GpuBackend>(); }});
    list.push_back({{"gpu-reduction",
                     "7900GTX model with the rejected multi-pass PE reduction"},
                    [] {
                      gpu::GpuRunOptions options;
                      options.pe_strategy = gpu::PeStrategy::kGpuReduction;
                      return std::make_unique<gpu::GpuBackend>(options);
                    }});

    list.push_back({{"mta2", "Cray MTA-2, fully multithreaded"},
                    [] { return std::make_unique<mta::MtaBackend>(); }});
    list.push_back({{"mta2-partial",
                     "Cray MTA-2, force loop left serial (Fig 8 baseline)"},
                    [] {
                      return std::make_unique<mta::MtaBackend>(
                          mta::ThreadingMode::kPartiallyMultithreaded);
                    }});
    list.push_back({{"xmt", "Cray XMT projection, 1 processor"},
                    [] { return std::make_unique<mta::XmtBackend>(); }});

    return list;
  }();
  return entries;
}

}  // namespace

const std::vector<BackendInfo>& available_backends() {
  static const std::vector<BackendInfo> infos = [] {
    std::vector<BackendInfo> list;
    for (const auto& entry : registry()) list.push_back(entry.info);
    return list;
  }();
  return infos;
}

std::unique_ptr<md::MdBackend> make_backend(const std::string& key) {
  for (const auto& entry : registry()) {
    if (entry.info.key == key) return entry.make();
  }
  std::string known;
  for (const auto& entry : registry()) {
    if (!known.empty()) known += ", ";
    known += entry.info.key;
  }
  throw ContractViolation("unknown backend '" + key + "' (known: " + known + ")");
}

}  // namespace emdpa::driver
