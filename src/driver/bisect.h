// `emdpa bisect` — differential divergence localisation between two run
// configurations.
//
// Two sides (A and B) share a workload and step count but may differ in any
// arithmetic-determining knob: force kernel, precision mode, SIMD ISA,
// thread count, or an injected fault.  Both sides are run to completion
// once, each recording a time-travel trajectory store (md/trajectory_store.h)
// at the snapshot stride.  Then:
//
//  1. ENDPOINT CHECK — the final snapshots are compared bitwise on
//     positions + velocities (accelerations are derived state, f(positions),
//     so they are excluded from the divergence definition).  Equal means
//     "no divergence" and the search ends.
//  2. BOUNDARY BISECTION — binary search over the recorded snapshot
//     boundaries for the adjacent pair (S_lo, S_hi) with states equal at
//     S_lo and diverged at S_hi.  Each probe restores one stored snapshot
//     per side; at most ceil(log2(steps/stride)) probes.
//  3. WINDOW WALK — both sides are resumed from their S_lo snapshots (the
//     v4 listref section reseeds the exact neighbour list, so the replay
//     continues bit-identically) and stepped through the window, comparing
//     after every step.  The first differing step, the first diverging atom
//     and its absolute / ulp deltas are the result.  One replay per side.
//
// Total replays per side: ceil(log2(steps/stride)) + 1 — the bound the
// bisect self-test asserts.
//
// Per-side fault specs are armed only while that side executes (recording
// AND window walk), so a fault pair like "dp clean vs dp with
// md.step_perturb:137" localises the perturbed step exactly.  Sides should
// only arm STEP-INDEXED sites (md.step_perturb): hit-counter sites fire at
// different points in a replayed window than in the original run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "md/backend.h"

namespace emdpa::driver {

/// One side of the differential pair.
struct BisectSide {
  /// Full run configuration: workload, steps, kernel/precision/ISA, and the
  /// store knobs (store_every = snapshot stride; store_dir is set by
  /// run_bisect under BisectOptions::store_dir).  `watch`/`watch_stream`
  /// stream observables while the side records.
  md::RunConfig config;
  /// EMDPA_FAULTS-style spec armed only while this side executes ("" = none).
  std::string faults;
  /// Host threads for this side's pool (0 = the shared global pool).
  std::size_t threads = 0;
  std::string label = "a";
};

struct BisectOptions {
  BisectSide a;
  BisectSide b;
  /// Directory the two per-side stores live under (<dir>/a, <dir>/b).
  std::string store_dir;
};

struct BisectReport {
  bool diverged = false;
  /// First step whose post-step positions/velocities differ (>= 1), or -1.
  long first_divergence_step = -1;
  /// Lowest-index atom differing at that step.
  std::size_t atom = 0;
  /// Component of that atom with the largest |delta| ("pos.x" ... "vel.z").
  std::string component;
  double value_a = 0.0;
  double value_b = 0.0;
  double abs_delta = 0.0;
  std::uint64_t ulp_delta = 0;
  /// Largest |delta| / ulp distance over ALL atoms at the divergence step.
  double max_abs_delta = 0.0;
  std::uint64_t max_ulp_delta = 0;

  /// Snapshot-boundary window the walk searched: equal at window_lo,
  /// diverged at window_hi.
  long window_lo = 0;
  long window_hi = 0;
  /// Snapshot restorations per side: bisection probes + the window walk.
  int replays_per_side = 0;
  /// The bound those replays must respect: ceil(log2(steps/stride)) + 1.
  int replay_bound = 0;
  int probes = 0;
  long steps = 0;
  int snapshot_stride = 0;
  std::uint64_t snapshots_per_side = 0;
  std::uint64_t store_bytes_a = 0;
  std::uint64_t store_bytes_b = 0;
  std::string label_a;
  std::string label_b;
  std::string summary_a;  ///< "kernel=... precision=... simd=..." facts
  std::string summary_b;
};

/// ulp distance between two doubles: |rank(a) - rank(b)| under the monotone
/// mapping of IEEE-754 bit patterns to ordered integers.  0 iff bitwise
/// equal (so -0.0 vs +0.0 is 1 ulp apart, and NaNs compare by pattern).
std::uint64_t ulp_distance(double a, double b);

/// Run the full record → endpoint check → bisection → window walk pipeline.
/// Throws RuntimeFailure on configuration errors (mismatched workloads,
/// missing store directory, zero steps).
BisectReport run_bisect(const BisectOptions& options);

/// Human-readable, grep-stable report ("bisect: first divergence at step N"
/// / "bisect: no divergence").
std::string render_bisect_report(const BisectReport& report);

}  // namespace emdpa::driver
