#include "driver/bisect.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/error.h"
#include "core/fault_injection.h"
#include "core/thread_pool.h"
#include "md/simulation.h"
#include "md/trajectory_store.h"
#include "md/watch.h"

namespace emdpa::driver {

namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

bool bits_equal(double a, double b) { return bits_of(a) == bits_of(b); }

bool vec_bits_equal(const emdpa::Vec3d& a, const emdpa::Vec3d& b) {
  return bits_equal(a.x, b.x) && bits_equal(a.y, b.y) && bits_equal(a.z, b.z);
}

/// Divergence is defined on positions + velocities only: accelerations are
/// derived state (recomputed from positions at the next prime), so including
/// them would double-report every positional difference.
bool states_equal(const md::ParticleSystem& a, const md::ParticleSystem& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!vec_bits_equal(a.positions()[i], b.positions()[i])) return false;
    if (!vec_bits_equal(a.velocities()[i], b.velocities()[i])) return false;
  }
  return true;
}

/// Site names mentioned in an EMDPA_FAULTS-style spec (the part of each
/// ';'-separated entry before its ':' or '%' trigger).
std::vector<std::string> spec_sites(const std::string& spec) {
  std::vector<std::string> sites;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    const std::size_t trigger = entry.find_first_of(":%");
    if (trigger != std::string::npos) entry.resize(trigger);
    while (!entry.empty() && entry.front() == ' ') entry.erase(entry.begin());
    while (!entry.empty() && entry.back() == ' ') entry.pop_back();
    if (!entry.empty()) sites.push_back(entry);
    begin = end + 1;
  }
  return sites;
}

/// Arms one side's fault spec for exactly the scope of that side's
/// execution.  Disarms the spec's own sites on exit (not Registry::reset,
/// which would clobber sites armed from $EMDPA_FAULTS) — the two sides run
/// strictly sequentially, so their specs never overlap.
class ScopedSideFaults {
 public:
  explicit ScopedSideFaults(const std::string& spec)
      : sites_(spec_sites(spec)) {
    if (!spec.empty()) fault::Registry::instance().arm_from_spec(spec);
  }
  ~ScopedSideFaults() {
    for (const std::string& site : sites_) {
      fault::Registry::instance().disarm(site);
    }
  }
  ScopedSideFaults(const ScopedSideFaults&) = delete;
  ScopedSideFaults& operator=(const ScopedSideFaults&) = delete;

 private:
  std::vector<std::string> sites_;
};

/// Per-side thread pool: a dedicated pool when the side pins a thread
/// count, the shared global pool otherwise.  (Results are bitwise identical
/// at any thread count; the knob exists so bisect can DEMONSTRATE that.)
struct SidePool {
  explicit SidePool(std::size_t threads) {
    if (threads > 0) owned = std::make_unique<emdpa::ThreadPool>(threads);
  }
  emdpa::ThreadPool* get() {
    return owned ? owned.get() : &emdpa::ThreadPool::global();
  }
  std::unique_ptr<emdpa::ThreadPool> owned;
};

std::string side_summary(const md::Simulation& sim, const BisectSide& side) {
  std::ostringstream out;
  out << "kernel=" << md::to_string(sim.kernel())
      << " precision=" << md::to_string(sim.precision()) << " simd="
      << (sim.simd_isa() ? simd::to_string(*sim.simd_isa()) : "none")
      << " threads="
      << (side.threads > 0 ? side.threads
                           : emdpa::ThreadPool::global().size());
  if (!side.faults.empty()) out << " faults=" << side.faults;
  return out.str();
}

/// Run one side start to finish, appending snapshots at the stride (plus
/// step 0 and the final step) and streaming watch lines if configured.
/// Returns the resolved-facts summary string.
std::string record_side(const BisectSide& side, emdpa::ThreadPool* pool,
                        md::TrajectoryStore& store) {
  ScopedSideFaults faults(side.faults);
  md::Simulation sim(md::simulation_options_from(side.config, pool));
  store.append(sim.snapshot());

  std::optional<md::WatchEmitter> watch;
  if (!side.config.watch.empty() && side.config.watch_stream != nullptr) {
    watch.emplace(side.config.watch, side.config.watch_every, sim.system(),
                  sim.box());
    watch->emit(*side.config.watch_stream, 0, sim.last_energies(),
                sim.system(), side.label.c_str());
  }

  const long final_step = side.config.steps;
  const int stride = side.config.store_every;
  for (long s = 1; s <= final_step; ++s) {
    const md::StepEnergies energies = sim.step();
    if (((stride > 0 && s % stride == 0) || s == final_step) &&
        !store.has_step(s)) {
      store.append(sim.snapshot());
    }
    if (watch && (watch->due(s) || s == final_step)) {
      watch->emit(*side.config.watch_stream, s, energies, sim.system(),
                  side.label.c_str());
    }
  }
  return side_summary(sim, side);
}

struct StepState {
  std::vector<emdpa::Vec3d> positions;
  std::vector<emdpa::Vec3d> velocities;
};

/// Resume one side from its stored snapshot at `from` and step it to `to`,
/// recording positions/velocities after every step.  The side's faults are
/// armed for the whole walk, and md.step_perturb keys on the absolute step
/// number, so the replayed window re-fires the identical fault.
std::vector<StepState> walk_window(const BisectSide& side,
                                   emdpa::ThreadPool* pool,
                                   const md::TrajectoryStore& store, long from,
                                   long to) {
  ScopedSideFaults faults(side.faults);
  md::Simulation sim = md::Simulation::resume(
      store.load_step(from), md::simulation_options_from(side.config, pool));
  std::vector<StepState> states;
  states.reserve(static_cast<std::size_t>(to - from));
  for (long s = from + 1; s <= to; ++s) {
    sim.step();
    states.push_back({sim.system().positions(), sim.system().velocities()});
  }
  return states;
}

int ceil_log2(long n) {
  int k = 0;
  while ((1L << k) < n) ++k;
  return k;
}

std::string format_g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* const kComponentNames[6] = {"pos.x", "pos.y", "pos.z",
                                        "vel.x", "vel.y", "vel.z"};

double component(const StepState& state, std::size_t atom, int c) {
  const emdpa::Vec3d& v =
      c < 3 ? state.positions[atom] : state.velocities[atom];
  switch (c % 3) {
    case 0: return v.x;
    case 1: return v.y;
    default: return v.z;
  }
}

}  // namespace

std::uint64_t ulp_distance(double a, double b) {
  // Map the IEEE-754 bit pattern to an order-preserving unsigned rank:
  // negatives (sign bit set) flip entirely, non-negatives get the sign bit
  // set, so rank order matches numeric order and adjacent representable
  // doubles have adjacent ranks (-0.0 and +0.0 end up 1 apart).
  const auto rank = [](double v) {
    const std::uint64_t bits = bits_of(v);
    return (bits >> 63) != 0 ? ~bits : bits | 0x8000000000000000ull;
  };
  const std::uint64_t ra = rank(a);
  const std::uint64_t rb = rank(b);
  return ra > rb ? ra - rb : rb - ra;
}

BisectReport run_bisect(const BisectOptions& options) {
  if (options.store_dir.empty()) {
    throw RuntimeFailure(
        "bisect: --store-dir is required (the two sides record trajectory "
        "stores under it)");
  }
  if (options.a.config.steps < 1) {
    throw RuntimeFailure("bisect: steps must be >= 1");
  }
  if (options.a.config.steps != options.b.config.steps) {
    throw RuntimeFailure("bisect: sides must run the same number of steps");
  }
  if (options.a.config.store_every != options.b.config.store_every) {
    throw RuntimeFailure("bisect: sides must share one snapshot stride");
  }

  BisectReport report;
  report.steps = options.a.config.steps;
  report.snapshot_stride = options.a.config.store_every;
  report.label_a = options.a.label;
  report.label_b = options.b.label;

  SidePool pool_a(options.a.threads);
  SidePool pool_b(options.b.threads);

  // --- Record both sides, strictly sequentially (the fault registry is a
  // process singleton, so the two specs must never be armed at once).
  md::TrajectoryStoreOptions store_options_a;
  store_options_a.directory = options.store_dir + "/" + options.a.label;
  store_options_a.keyframe_interval = options.a.config.store_keyframe_every;
  store_options_a.max_bytes = options.a.config.store_max_bytes;
  md::TrajectoryStore store_a(store_options_a);
  report.summary_a = record_side(options.a, pool_a.get(), store_a);

  md::TrajectoryStoreOptions store_options_b;
  store_options_b.directory = options.store_dir + "/" + options.b.label;
  store_options_b.keyframe_interval = options.b.config.store_keyframe_every;
  store_options_b.max_bytes = options.b.config.store_max_bytes;
  md::TrajectoryStore store_b(store_options_b);
  report.summary_b = record_side(options.b, pool_b.get(), store_b);

  report.snapshots_per_side = store_a.stats().snapshots;
  report.store_bytes_a = store_a.stats().bytes;
  report.store_bytes_b = store_b.stats().bytes;

  // Snapshot boundaries both sides can restore (ring eviction with a tight
  // budget may have dropped early chains on either side).
  const std::vector<long> steps_a = store_a.steps();
  std::vector<long> boundaries;
  for (long s : steps_a) {
    if (store_b.has_step(s)) boundaries.push_back(s);
  }
  if (boundaries.size() < 2) {
    throw RuntimeFailure(
        "bisect: fewer than two common snapshots survive; raise "
        "--store-max-bytes or lower --snapshot-every");
  }

  // --- Endpoint check.
  const long final_step = boundaries.back();
  if (states_equal(store_a.load_step(final_step).system,
                   store_b.load_step(final_step).system)) {
    report.diverged = false;
    report.replay_bound =
        ceil_log2(static_cast<long>(boundaries.size()) - 1) + 1;
    report.replays_per_side = 1;  // the endpoint restoration itself
    return report;
  }

  if (!states_equal(store_a.load_step(boundaries.front()).system,
                    store_b.load_step(boundaries.front()).system)) {
    if (boundaries.front() == 0) {
      throw RuntimeFailure(
          "bisect: sides differ at step 0 — they are not the same workload "
          "(bisect localises arithmetic divergence, not different inputs)");
    }
    throw RuntimeFailure(
        "bisect: sides already diverged at the earliest surviving snapshot "
        "(step " +
        std::to_string(boundaries.front()) +
        "); raise --store-max-bytes so earlier frames survive eviction");
  }

  // --- Boundary bisection: invariant equal-at-lo, diverged-at-hi.  Each
  // probe restores one stored snapshot per side.
  std::size_t lo = 0;
  std::size_t hi = boundaries.size() - 1;
  report.replay_bound = ceil_log2(static_cast<long>(hi - lo)) + 1;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++report.probes;
    if (states_equal(store_a.load_step(boundaries[mid]).system,
                     store_b.load_step(boundaries[mid]).system)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  report.window_lo = boundaries[lo];
  report.window_hi = boundaries[hi];

  // --- Window walk: replay each side once across the window, compare per
  // step.  Side A completes before side B starts (fault scoping again).
  const std::vector<StepState> states_a = walk_window(
      options.a, pool_a.get(), store_a, report.window_lo, report.window_hi);
  const std::vector<StepState> states_b = walk_window(
      options.b, pool_b.get(), store_b, report.window_lo, report.window_hi);
  report.replays_per_side = report.probes + 1;

  report.diverged = true;
  for (std::size_t k = 0; k < states_a.size(); ++k) {
    const StepState& sa = states_a[k];
    const StepState& sb = states_b[k];
    std::size_t first_atom = sa.positions.size();
    int first_component = -1;
    for (std::size_t i = 0; i < sa.positions.size(); ++i) {
      std::uint64_t best_ulp = 0;
      for (int c = 0; c < 6; ++c) {
        const double va = component(sa, i, c);
        const double vb = component(sb, i, c);
        if (bits_equal(va, vb)) continue;
        if (i < first_atom) {
          first_atom = i;
          first_component = c;
          best_ulp = ulp_distance(va, vb);
        } else if (i == first_atom) {
          const std::uint64_t u = ulp_distance(va, vb);
          if (u > best_ulp) {
            best_ulp = u;
            first_component = c;
          }
        }
        const double delta = std::fabs(va - vb);
        if (delta > report.max_abs_delta) report.max_abs_delta = delta;
        const std::uint64_t u = ulp_distance(va, vb);
        if (u > report.max_ulp_delta) report.max_ulp_delta = u;
      }
    }
    if (first_component >= 0) {
      report.first_divergence_step = report.window_lo + static_cast<long>(k) + 1;
      report.atom = first_atom;
      report.component = kComponentNames[first_component];
      report.value_a = component(sa, first_atom, first_component);
      report.value_b = component(sb, first_atom, first_component);
      report.abs_delta = std::fabs(report.value_a - report.value_b);
      report.ulp_delta = ulp_distance(report.value_a, report.value_b);
      return report;
    }
  }
  // The stores said the states diverge at window_hi but the replays agree —
  // the replay did not reproduce the recorded run, which breaks the bitwise
  // resume guarantee the whole search rests on.
  throw RuntimeFailure(
      "bisect: window replay reached step " + std::to_string(report.window_hi) +
      " without reproducing the recorded divergence (non-replayable fault "
      "spec, e.g. a hit-counter site, or a resume-correctness bug)");
}

std::string render_bisect_report(const BisectReport& report) {
  std::ostringstream out;
  out << "bisect: side " << report.label_a << ": " << report.summary_a << '\n';
  out << "bisect: side " << report.label_b << ": " << report.summary_b << '\n';
  out << "bisect: recorded steps=" << report.steps
      << " stride=" << report.snapshot_stride
      << " snapshots=" << report.snapshots_per_side
      << " store_bytes_" << report.label_a << "=" << report.store_bytes_a
      << " store_bytes_" << report.label_b << "=" << report.store_bytes_b
      << '\n';
  if (!report.diverged) {
    out << "bisect: no divergence (final positions and velocities bitwise "
           "identical after "
        << report.steps << " steps)\n";
    return out.str();
  }
  out << "bisect: window [" << report.window_lo << ", " << report.window_hi
      << "] after " << report.probes << " probe"
      << (report.probes == 1 ? "" : "s") << '\n';
  out << "bisect: first divergence at step " << report.first_divergence_step
      << '\n';
  out << "bisect: atom " << report.atom << ' ' << report.component << ' '
      << report.label_a << '=' << format_g17(report.value_a) << ' '
      << report.label_b << '=' << format_g17(report.value_b)
      << " abs=" << format_g17(report.abs_delta) << " ulp=" << report.ulp_delta
      << '\n';
  out << "bisect: max deltas at that step: abs="
      << format_g17(report.max_abs_delta) << " ulp=" << report.max_ulp_delta
      << '\n';
  out << "bisect: replays per side " << report.replays_per_side << " (bound "
      << report.replay_bound << ")\n";
  return out.str();
}

}  // namespace emdpa::driver
