// Command-line parsing for the emdpa CLI — kept in the driver library so
// the parsing logic is unit-testable away from main().
//
// Grammar:
//   emdpa list
//   emdpa run --backend <key> [--atoms N] [--steps K] [--density D]
//             [--temperature T] [--dt DT] [--cutoff C] [--seed S]
//             [--threads N] [--kernel n2|list|auto] [--shards N|auto]
//             [--simd scalar|sse2|avx2|avx512] [--precision dp|sp|mixed]
//             [--csv]
//   emdpa compare [--atoms N] [--steps K] ... (runs every backend)
//   emdpa batch --manifest FILE --checkpoint-dir DIR [--slice N]
//               [--max-in-flight N] [--max-retries N] [--job-deadline S]
//               [--job-slice-budget N] [--journal PATH] [--threads N]
//               [--csv]
//   emdpa bisect --store-dir DIR [--snapshot-every N] [shared opts]
//                [--a-kernel M] [--a-precision M] [--a-simd I]
//                [--a-threads N] [--a-faults SPEC] [--b-...]
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "md/backend.h"
#include "md/precision.h"

namespace emdpa::driver {

enum class CliCommand { kList, kRun, kCompare, kBatch, kBisect, kHelp };

/// Per-side knob overrides for `emdpa bisect` (--a-* / --b-* flags).  Unset
/// members inherit the shared flags, so a pair differing in exactly one knob
/// needs exactly one override.
struct CliBisectSide {
  std::optional<md::HostKernel> kernel;
  std::optional<md::PrecisionMode> precision;
  std::optional<simd::SimdType> simd_isa;
  std::size_t threads = 0;  ///< 0 = inherit --threads
  std::string faults;       ///< EMDPA_FAULTS-style spec armed only for this side
};

struct CliOptions {
  CliCommand command = CliCommand::kHelp;
  std::string backend;        ///< for kRun
  md::RunConfig run_config;   ///< populated from the flags
  bool csv = false;           ///< machine-readable output
  /// Host execution threads (0 = EMDPA_THREADS / hardware default).  Only
  /// affects backends that really execute in parallel (host-parallel, the
  /// Cell SPE workers, the MTA streams).
  std::size_t threads = 0;

  // kBatch: cooperative ensemble scheduling (md/job_scheduler.h).
  std::string manifest_path;     ///< --manifest (required)
  std::string checkpoint_dir;    ///< --checkpoint-dir (required)
  int slice_steps = 100;         ///< --slice: steps per time slice
  std::size_t max_in_flight = 4; ///< --max-in-flight: resident job cap
  int max_retries = 0;           ///< --max-retries: batch-wide retry budget
  double job_deadline = 0.0;     ///< --job-deadline: per-job wall budget (s)
  std::uint64_t job_slice_budget = 0;  ///< --job-slice-budget: slice cap
  std::string journal_path;      ///< --journal (default DIR/batch.wal)

  // kBisect: the two sides' overrides; everything else (workload, steps,
  // store/watch knobs) comes from the shared flags in run_config.
  CliBisectSide bisect_a;
  CliBisectSide bisect_b;
};

/// Parse argv (excluding argv[0]).  Throws RuntimeFailure with a
/// user-actionable message on bad input.
CliOptions parse_cli(const std::vector<std::string>& args);

/// The --help text.
std::string cli_usage();

}  // namespace emdpa::driver
