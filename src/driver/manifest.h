// Batch manifest parsing for `emdpa batch` — one job per line, each a full
// per-job run configuration for the cooperative scheduler
// (md/job_scheduler.h).
//
// Grammar (text, line-oriented):
//
//   # comment (blank lines ignored)
//   <name> [key=value ...]
//
// `name` is the unique job identifier (also its checkpoint file stem, so
// [A-Za-z0-9._-] only).  Keys, all optional, defaulting like the `run`
// flags of the same name:
//
//   priority=N      scheduling priority (higher first; default 0)
//   atoms=N         steps=K  density=D  temperature=T  dt=DT  cutoff=C
//   seed=S          kernel=n2|list|auto
//   precision=dp|sp|mixed    simd=scalar|sse2|avx2|avx512
//   degrade=0|1     fall back to the reference kernel on failure
//   drift_tol=X     arm the health watchdog with this drift tolerance
//
// Errors carry the manifest line number; duplicate names are rejected here
// (and again by the scheduler, for callers that build specs directly).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "md/job_scheduler.h"

namespace emdpa::driver {

/// Parse a manifest stream.  Throws RuntimeFailure with `source` and the
/// line number on malformed input.
std::vector<md::JobSpec> parse_manifest(std::istream& in,
                                        const std::string& source = "manifest");

/// Read and parse a manifest file; throws RuntimeFailure if unreadable.
std::vector<md::JobSpec> load_manifest(const std::string& path);

}  // namespace emdpa::driver
