#include "driver/cli_options.h"

#include <charconv>

#include "core/error.h"
#include "core/simd_dispatch.h"
#include "driver/backend_factory.h"
#include "md/precision.h"
#include "md/watch.h"

namespace emdpa::driver {

namespace {

double parse_number(const std::string& flag, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw RuntimeFailure("flag " + flag + " needs a number, got '" + value + "'");
  }
}

long parse_integer(const std::string& flag, const std::string& value) {
  const double v = parse_number(flag, value);
  const long as_long = static_cast<long>(v);
  if (static_cast<double>(as_long) != v) {
    throw RuntimeFailure("flag " + flag + " needs an integer, got '" + value + "'");
  }
  return as_long;
}

md::HostKernel parse_host_kernel(const std::string& flag,
                                 const std::string& mode) {
  if (mode == "n2") return md::HostKernel::kN2;
  if (mode == "list") return md::HostKernel::kList;
  if (mode == "auto") return md::HostKernel::kAuto;
  throw RuntimeFailure("flag " + flag + " needs n2, list or auto, got '" +
                       mode + "'");
}

}  // namespace

std::string cli_usage() {
  std::string usage =
      "emdpa — MD on modelled emerging architectures (IPPS 2007 reproduction)\n"
      "\n"
      "Usage:\n"
      "  emdpa list                         list available backends\n"
      "  emdpa run --backend <key> [opts]   run one backend\n"
      "  emdpa compare [opts]               run every backend on one workload\n"
      "  emdpa batch --manifest FILE --checkpoint-dir DIR [opts]\n"
      "                                     run a job manifest cooperatively\n"
      "  emdpa bisect --store-dir DIR [opts] [--a-* --b-* overrides]\n"
      "                                     localise the first diverging step\n"
      "                                     between two run configurations\n"
      "\n"
      "Options (with defaults):\n"
      "  --atoms N          atom count (256)\n"
      "  --steps K          velocity-Verlet steps (10)\n"
      "  --density D        reduced number density (0.8442)\n"
      "  --temperature T    initial reduced temperature (1.44)\n"
      "  --dt DT            time step (0.005)\n"
      "  --cutoff C         LJ cutoff (2.5)\n"
      "  --seed S           workload seed\n"
      "  --threads N        host execution threads (default: EMDPA_THREADS or all cores)\n"
      "  --kernel MODE      host force kernel: n2, list, or auto (crossover on\n"
      "                     atom count); honoured by host-parallel in both run\n"
      "                     and compare mode — device models ignore it\n"
      "  --shards N|auto    spatially sharded neighbour-list build with N\n"
      "                     shards (auto = one per thread); requires the list\n"
      "                     path (--kernel list or auto), forces/trajectories\n"
      "                     stay bitwise identical to the flat build at any\n"
      "                     shard count; the realised count may be lower when\n"
      "                     slabs would be thinner than the list cutoff\n"
      "  --simd ISA         force the host kernels' instruction set: scalar,\n"
      "                     sse2, avx2 or avx512 (default: EMDPA_SIMD env var,\n"
      "                     else the fastest this CPU supports); errors out if\n"
      "                     the choice is not compiled in or not supported here\n"
      "  --precision MODE   host kernel numerics: dp (double, default), sp\n"
      "                     (float end to end) or mixed (float lanes, double\n"
      "                     accumulation); device models keep their paper-\n"
      "                     mandated precisions\n"
      "  --csv              machine-readable output\n"
      "\n"
      "Resilience (host-parallel backend):\n"
      "  --checkpoint PATH      checkpoint file; written atomically (temp file +\n"
      "                         CRC-32 footer + rename), previous generation kept\n"
      "                         at PATH.prev; also the emergency-checkpoint\n"
      "                         destination on a numerical failure (exit code 3)\n"
      "  --checkpoint-every N   save every N steps (requires --checkpoint);\n"
      "                         a transient write failure retries next interval\n"
      "  --resume PATH          resume from a checkpoint (falls back to\n"
      "                         PATH.prev on corruption); --steps is the TOTAL\n"
      "                         step target, not an increment\n"
      "  --resume-force         resume even when the checkpoint records a\n"
      "                         different kernel/precision/ISA than this run\n"
      "                         (default: mismatch aborts — the arithmetic\n"
      "                         would change and break bitwise resume)\n"
      "  --degrade              on a neighbour-list failure, fall back to the\n"
      "                         reference kernel instead of aborting\n"
      "  --drift-tol X          arm the numerical-health watchdog: relative\n"
      "                         energy drift beyond X aborts with exit code 3\n"
      "  (fault injection is armed via the EMDPA_FAULTS environment variable;\n"
      "   see src/core/fault_injection.h for the site list and spec grammar)\n"
      "  SIGINT/SIGTERM drain cooperatively: the current step (or batch time\n"
      "  slice) finishes, an emergency checkpoint is written, exit code 4.\n"
      "\n"
      "Time travel & bisection (host-parallel backend; `run` and `bisect`):\n"
      "  --store-dir DIR        trajectory store: delta-compressed CRC-checked\n"
      "                         snapshot ring any stored step restores from\n"
      "                         bit-exactly; snapshots are pure observers, the\n"
      "                         run stays bitwise identical with the store on\n"
      "  --snapshot-every N     snapshot stride (step 0 and the final step are\n"
      "                         always stored; default endpoints only)\n"
      "  --keyframe-every K     every K-th snapshot is a full keyframe, the\n"
      "                         rest XOR deltas against the previous one (8)\n"
      "  --store-max-bytes B    disk budget; oldest whole keyframe chains are\n"
      "                         evicted beyond it (default unbounded)\n"
      "  --watch LIST           stream observables as 'watch step=N k=v' lines\n"
      "                         (energy, ke, pe, max_disp; comma-separated)\n"
      "  --watch-every N        watch emission stride (1)\n"
      "  bisect runs the shared workload twice — side a and side b — then\n"
      "  binary-searches the stored snapshots and replays one window to report\n"
      "  the first step, atom and component where the two trajectories'\n"
      "  positions/velocities differ (abs and ulp deltas), in at most\n"
      "  ceil(log2(steps/stride)) + 1 replays per side.  Each side inherits\n"
      "  the shared flags unless overridden:\n"
      "  --a-kernel M / --b-kernel M          n2, list or auto\n"
      "  --a-precision M / --b-precision M    dp, sp or mixed\n"
      "  --a-simd I / --b-simd I              scalar, sse2, avx2, avx512\n"
      "  --a-threads N / --b-threads N        per-side thread count\n"
      "  --a-faults S / --b-faults S          EMDPA_FAULTS-style spec armed\n"
      "                                       only while that side executes\n"
      "                                       (use the step-indexed site\n"
      "                                       md.step_perturb:STEP)\n"
      "  exit code 0 whether or not a divergence exists; the report line\n"
      "  'bisect: first divergence at step N' / 'bisect: no divergence' is\n"
      "  grep-stable\n"
      "\n"
      "Batch mode (supervised ensemble over one shared thread pool):\n"
      "  --manifest FILE        job manifest: one '<name> key=value ...' line\n"
      "                         per job (keys: priority, atoms, steps, density,\n"
      "                         temperature, dt, cutoff, seed, kernel, shards,\n"
      "                         precision, simd, degrade, drift_tol, plus\n"
      "                         per-job supervision overrides max_retries,\n"
      "                         deadline, slice_budget); duplicate job names\n"
      "                         and duplicate keys on one line are rejected\n"
      "  --checkpoint-dir DIR   per-job suspend checkpoints (<name>.ckpt) and\n"
      "                         completion markers (<name>.done); reusing the\n"
      "                         directory resumes the batch recorded in it\n"
      "  --slice N              steps per time slice, also the checkpoint\n"
      "                         cadence (100)\n"
      "  --max-in-flight N      jobs resident in memory at once (4)\n"
      "  --max-retries N        per-job transient-failure budget (0): a failed\n"
      "                         slice costs one retry, re-queued after a\n"
      "                         deterministic decorrelated-jitter backoff; a\n"
      "                         job that exhausts the budget is QUARANTINED\n"
      "                         (set aside with its attempt history) instead\n"
      "                         of aborting the batch; 0 keeps the one-strike\n"
      "                         verdict: first failure fails the job\n"
      "  --job-deadline S       per-job wall-clock budget in seconds (0 = no\n"
      "                         limit); exceeding it quarantines immediately\n"
      "                         without spending retry budget\n"
      "  --job-slice-budget N   per-job cap on total time slices, metered\n"
      "                         cumulatively across reruns via the journal\n"
      "  --journal PATH         write-ahead journal recording every job state\n"
      "                         transition (default DIR/batch.wal); kill the\n"
      "                         batch at any instant and re-running the same\n"
      "                         command replays it — retry counters,\n"
      "                         quarantine verdicts and queue position all\n"
      "                         survive, and no completed work repeats\n"
      "  exit codes: 0 all jobs completed; 3 at least one job failed or was\n"
      "  quarantined (isolated, the rest ran to completion); 4 interrupted by\n"
      "  SIGINT/SIGTERM after a drain — rerun the same command to resume\n"
      "\n"
      "Backends:\n";
  for (const auto& info : available_backends()) {
    usage += "  " + info.key;
    usage.append(info.key.size() < 18 ? 18 - info.key.size() : 1, ' ');
    usage += info.description + "\n";
  }
  return usage;
}

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions options;
  if (args.empty()) return options;  // kHelp

  std::size_t i = 0;
  const std::string& command = args[i++];
  if (command == "list") {
    options.command = CliCommand::kList;
  } else if (command == "run") {
    options.command = CliCommand::kRun;
  } else if (command == "compare") {
    options.command = CliCommand::kCompare;
  } else if (command == "batch") {
    options.command = CliCommand::kBatch;
  } else if (command == "bisect") {
    options.command = CliCommand::kBisect;
  } else if (command == "help" || command == "--help" || command == "-h") {
    options.command = CliCommand::kHelp;
    return options;
  } else {
    throw RuntimeFailure("unknown command '" + command + "' (try 'help')");
  }

  auto need_value = [&](const std::string& flag) -> const std::string& {
    if (i >= args.size()) throw RuntimeFailure("flag " + flag + " needs a value");
    return args[i++];
  };

  while (i < args.size()) {
    const std::string& flag = args[i++];
    if (flag == "--backend") {
      options.backend = need_value(flag);
    } else if (flag == "--atoms") {
      const long n = parse_integer(flag, need_value(flag));
      if (n <= 0) throw RuntimeFailure("--atoms must be positive");
      options.run_config.workload.n_atoms = static_cast<std::size_t>(n);
    } else if (flag == "--steps") {
      const long k = parse_integer(flag, need_value(flag));
      if (k <= 0) throw RuntimeFailure("--steps must be positive");
      options.run_config.steps = static_cast<int>(k);
    } else if (flag == "--density") {
      options.run_config.workload.density = parse_number(flag, need_value(flag));
    } else if (flag == "--temperature") {
      options.run_config.workload.temperature =
          parse_number(flag, need_value(flag));
    } else if (flag == "--dt") {
      options.run_config.dt = parse_number(flag, need_value(flag));
    } else if (flag == "--cutoff") {
      options.run_config.lj.cutoff = parse_number(flag, need_value(flag));
    } else if (flag == "--seed") {
      options.run_config.workload.seed =
          static_cast<std::uint64_t>(parse_integer(flag, need_value(flag)));
    } else if (flag == "--threads") {
      const long t = parse_integer(flag, need_value(flag));
      if (t <= 0) throw RuntimeFailure("--threads must be positive");
      options.threads = static_cast<std::size_t>(t);
    } else if (flag == "--kernel") {
      options.run_config.host_kernel = parse_host_kernel(flag, need_value(flag));
    } else if (flag == "--shards") {
      const std::string& value = need_value(flag);
      if (value == "auto") {
        options.run_config.shards = -1;
      } else {
        const long n = parse_integer(flag, value);
        if (n <= 0) {
          throw RuntimeFailure("--shards needs a positive count or 'auto'");
        }
        options.run_config.shards = static_cast<int>(n);
      }
    } else if (flag == "--simd") {
      options.run_config.simd_isa = simd::parse_simd_type(need_value(flag));
    } else if (flag == "--precision") {
      options.run_config.precision = md::parse_precision(need_value(flag));
    } else if (flag == "--checkpoint") {
      options.run_config.checkpoint_path = need_value(flag);
    } else if (flag == "--checkpoint-every") {
      const long n = parse_integer(flag, need_value(flag));
      if (n <= 0) throw RuntimeFailure("--checkpoint-every must be positive");
      options.run_config.checkpoint_every = static_cast<int>(n);
    } else if (flag == "--resume") {
      options.run_config.resume_path = need_value(flag);
    } else if (flag == "--resume-force") {
      options.run_config.resume_force = true;
    } else if (flag == "--manifest") {
      options.manifest_path = need_value(flag);
    } else if (flag == "--checkpoint-dir") {
      options.checkpoint_dir = need_value(flag);
    } else if (flag == "--slice") {
      const long n = parse_integer(flag, need_value(flag));
      if (n <= 0) throw RuntimeFailure("--slice must be positive");
      options.slice_steps = static_cast<int>(n);
    } else if (flag == "--max-in-flight") {
      const long n = parse_integer(flag, need_value(flag));
      if (n <= 0) throw RuntimeFailure("--max-in-flight must be positive");
      options.max_in_flight = static_cast<std::size_t>(n);
    } else if (flag == "--max-retries") {
      const long n = parse_integer(flag, need_value(flag));
      if (n < 0) throw RuntimeFailure("--max-retries must be non-negative");
      options.max_retries = static_cast<int>(n);
    } else if (flag == "--job-deadline") {
      const double seconds = parse_number(flag, need_value(flag));
      if (seconds <= 0) throw RuntimeFailure("--job-deadline must be positive");
      options.job_deadline = seconds;
    } else if (flag == "--job-slice-budget") {
      const long n = parse_integer(flag, need_value(flag));
      if (n <= 0) throw RuntimeFailure("--job-slice-budget must be positive");
      options.job_slice_budget = static_cast<std::uint64_t>(n);
    } else if (flag == "--journal") {
      options.journal_path = need_value(flag);
    } else if (flag == "--store-dir") {
      options.run_config.store_dir = need_value(flag);
    } else if (flag == "--snapshot-every") {
      const long n = parse_integer(flag, need_value(flag));
      if (n <= 0) throw RuntimeFailure("--snapshot-every must be positive");
      options.run_config.store_every = static_cast<int>(n);
    } else if (flag == "--keyframe-every") {
      const long n = parse_integer(flag, need_value(flag));
      if (n <= 0) throw RuntimeFailure("--keyframe-every must be positive");
      options.run_config.store_keyframe_every = static_cast<int>(n);
    } else if (flag == "--store-max-bytes") {
      const long n = parse_integer(flag, need_value(flag));
      if (n <= 0) throw RuntimeFailure("--store-max-bytes must be positive");
      options.run_config.store_max_bytes = static_cast<std::uint64_t>(n);
    } else if (flag == "--watch") {
      options.run_config.watch = need_value(flag);
      md::WatchEmitter::parse_spec(options.run_config.watch);  // validate now
    } else if (flag == "--watch-every") {
      const long n = parse_integer(flag, need_value(flag));
      if (n <= 0) throw RuntimeFailure("--watch-every must be positive");
      options.run_config.watch_every = static_cast<int>(n);
    } else if (flag == "--a-kernel") {
      options.bisect_a.kernel = parse_host_kernel(flag, need_value(flag));
    } else if (flag == "--b-kernel") {
      options.bisect_b.kernel = parse_host_kernel(flag, need_value(flag));
    } else if (flag == "--a-precision") {
      options.bisect_a.precision = md::parse_precision(need_value(flag));
    } else if (flag == "--b-precision") {
      options.bisect_b.precision = md::parse_precision(need_value(flag));
    } else if (flag == "--a-simd") {
      options.bisect_a.simd_isa = simd::parse_simd_type(need_value(flag));
    } else if (flag == "--b-simd") {
      options.bisect_b.simd_isa = simd::parse_simd_type(need_value(flag));
    } else if (flag == "--a-threads") {
      const long t = parse_integer(flag, need_value(flag));
      if (t <= 0) throw RuntimeFailure("--a-threads must be positive");
      options.bisect_a.threads = static_cast<std::size_t>(t);
    } else if (flag == "--b-threads") {
      const long t = parse_integer(flag, need_value(flag));
      if (t <= 0) throw RuntimeFailure("--b-threads must be positive");
      options.bisect_b.threads = static_cast<std::size_t>(t);
    } else if (flag == "--a-faults") {
      options.bisect_a.faults = need_value(flag);
    } else if (flag == "--b-faults") {
      options.bisect_b.faults = need_value(flag);
    } else if (flag == "--degrade") {
      options.run_config.degrade = true;
    } else if (flag == "--drift-tol") {
      const double tol = parse_number(flag, need_value(flag));
      if (tol <= 0) throw RuntimeFailure("--drift-tol must be positive");
      options.run_config.drift_tolerance = tol;
    } else if (flag == "--csv") {
      options.csv = true;
    } else {
      throw RuntimeFailure("unknown flag '" + flag + "' (try 'help')");
    }
  }

  if (options.command == CliCommand::kRun && options.backend.empty()) {
    throw RuntimeFailure("'run' needs --backend <key>; see 'emdpa list'");
  }
  if (options.run_config.checkpoint_every > 0 &&
      options.run_config.checkpoint_path.empty()) {
    throw RuntimeFailure("--checkpoint-every needs --checkpoint <path>");
  }
  if (options.run_config.resume_force &&
      options.run_config.resume_path.empty() &&
      options.command != CliCommand::kBatch) {
    throw RuntimeFailure("--resume-force needs --resume <path>");
  }
  if (options.command == CliCommand::kBatch) {
    if (options.manifest_path.empty()) {
      throw RuntimeFailure("'batch' needs --manifest <file>");
    }
    if (options.checkpoint_dir.empty()) {
      throw RuntimeFailure(
          "'batch' needs --checkpoint-dir <dir> (suspend state lives there)");
    }
  } else if (options.max_retries != 0 || options.job_deadline != 0.0 ||
             options.job_slice_budget != 0 || !options.journal_path.empty()) {
    throw RuntimeFailure(
        "--max-retries/--job-deadline/--job-slice-budget/--journal only "
        "apply to the 'batch' command");
  }
  if (options.run_config.store_every > 0 &&
      options.run_config.store_dir.empty()) {
    throw RuntimeFailure("--snapshot-every needs --store-dir <dir>");
  }
  if (options.run_config.shards != 0 &&
      options.run_config.host_kernel == md::HostKernel::kN2) {
    throw RuntimeFailure(
        "--shards applies to the neighbour-list path; it cannot combine "
        "with --kernel n2");
  }
  const auto side_configured = [](const CliBisectSide& side) {
    return side.kernel || side.precision || side.simd_isa ||
           side.threads > 0 || !side.faults.empty();
  };
  if (options.command == CliCommand::kBisect) {
    if (options.run_config.store_dir.empty()) {
      throw RuntimeFailure(
          "'bisect' needs --store-dir <dir> (both sides record their "
          "snapshot stores under it)");
    }
  } else if (side_configured(options.bisect_a) ||
             side_configured(options.bisect_b)) {
    throw RuntimeFailure(
        "--a-*/--b-* side overrides only apply to the 'bisect' command");
  }
  return options;
}

}  // namespace emdpa::driver
