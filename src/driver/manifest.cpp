#include "driver/manifest.h"

#include <fstream>
#include <sstream>

#include "core/error.h"
#include "core/fault_injection.h"
#include "core/simd_dispatch.h"
#include "md/precision.h"

namespace emdpa::driver {

namespace {

[[noreturn]] void fail_at(const std::string& source, int line,
                          const std::string& message) {
  throw RuntimeFailure(source + ":" + std::to_string(line) + ": " + message);
}

double number_value(const std::string& source, int line,
                    const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    fail_at(source, line, "key " + key + " needs a number, got '" + value + "'");
  }
}

long integer_value(const std::string& source, int line, const std::string& key,
                   const std::string& value) {
  const double v = number_value(source, line, key, value);
  const long as_long = static_cast<long>(v);
  if (static_cast<double>(as_long) != v) {
    fail_at(source, line,
            "key " + key + " needs an integer, got '" + value + "'");
  }
  return as_long;
}

void apply_key(md::JobSpec& job, const std::string& source, int line,
               const std::string& key, const std::string& value) {
  md::RunConfig& config = job.config;
  if (key == "priority") {
    job.priority = static_cast<int>(integer_value(source, line, key, value));
  } else if (key == "atoms") {
    const long n = integer_value(source, line, key, value);
    if (n <= 0) fail_at(source, line, "atoms must be positive");
    config.workload.n_atoms = static_cast<std::size_t>(n);
  } else if (key == "steps") {
    const long k = integer_value(source, line, key, value);
    if (k <= 0) fail_at(source, line, "steps must be positive");
    config.steps = static_cast<int>(k);
  } else if (key == "density") {
    config.workload.density = number_value(source, line, key, value);
  } else if (key == "temperature") {
    config.workload.temperature = number_value(source, line, key, value);
  } else if (key == "dt") {
    config.dt = number_value(source, line, key, value);
  } else if (key == "cutoff") {
    config.lj.cutoff = number_value(source, line, key, value);
  } else if (key == "seed") {
    config.workload.seed =
        static_cast<std::uint64_t>(integer_value(source, line, key, value));
  } else if (key == "kernel") {
    if (value == "n2") config.host_kernel = md::HostKernel::kN2;
    else if (value == "list") config.host_kernel = md::HostKernel::kList;
    else if (value == "auto") config.host_kernel = md::HostKernel::kAuto;
    else fail_at(source, line, "kernel needs n2, list or auto, got '" + value + "'");
  } else if (key == "shards") {
    if (value == "auto") {
      config.shards = -1;
    } else {
      const long n = integer_value(source, line, key, value);
      if (n <= 0) fail_at(source, line, "shards needs a positive count or 'auto'");
      config.shards = static_cast<int>(n);
    }
  } else if (key == "precision") {
    try {
      config.precision = md::parse_precision(value);
    } catch (const RuntimeFailure& e) {
      fail_at(source, line, e.what());
    }
  } else if (key == "simd") {
    try {
      config.simd_isa = simd::parse_simd_type(value);
    } catch (const RuntimeFailure& e) {
      fail_at(source, line, e.what());
    }
  } else if (key == "degrade") {
    if (value == "1") config.degrade = true;
    else if (value == "0") config.degrade = false;
    else fail_at(source, line, "degrade needs 0 or 1, got '" + value + "'");
  } else if (key == "drift_tol") {
    const double tol = number_value(source, line, key, value);
    if (tol <= 0) fail_at(source, line, "drift_tol must be positive");
    config.drift_tolerance = tol;
  } else if (key == "max_retries") {
    const long n = integer_value(source, line, key, value);
    if (n < 0) fail_at(source, line, "max_retries must be non-negative");
    job.max_retries = static_cast<int>(n);
  } else if (key == "deadline") {
    const double seconds = number_value(source, line, key, value);
    if (seconds < 0) fail_at(source, line, "deadline must be non-negative");
    job.deadline_seconds = seconds;
  } else if (key == "slice_budget") {
    const long n = integer_value(source, line, key, value);
    if (n < 0) fail_at(source, line, "slice_budget must be non-negative");
    job.slice_budget = static_cast<std::uint64_t>(n);
  } else {
    fail_at(source, line, "unknown key '" + key + "'");
  }
}

}  // namespace

std::vector<md::JobSpec> parse_manifest(std::istream& in,
                                        const std::string& source) {
  // Injection site md.manifest_parse: the manifest is unreadable (device
  // error, permissions race).  The proven recovery is a clean typed failure
  // before any job is admitted — never a half-parsed batch.
  if (fault::injected("md.manifest_parse")) {
    throw RuntimeFailure("manifest: injected read failure on '" + source +
                         "'");
  }
  std::vector<md::JobSpec> jobs;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string name;
    if (!(tokens >> name) || name.front() == '#') continue;

    md::JobSpec job;
    job.name = name;
    for (const md::JobSpec& existing : jobs) {
      if (existing.name == name) {
        fail_at(source, line_number, "duplicate job name '" + name + "'");
      }
    }

    std::vector<std::string> seen_keys;
    std::string pair;
    while (tokens >> pair) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= pair.size()) {
        fail_at(source, line_number,
                "expected key=value, got '" + pair + "'");
      }
      const std::string key = pair.substr(0, eq);
      // Reject duplicate keys on one job line: silently honouring the last
      // occurrence turns an editing mistake into a different simulation.
      for (const std::string& seen : seen_keys) {
        if (seen == key) {
          fail_at(source, line_number, "duplicate key '" + key +
                                           "' for job '" + name + "'");
        }
      }
      seen_keys.push_back(key);
      apply_key(job, source, line_number, key, pair.substr(eq + 1));
    }
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) {
    throw RuntimeFailure(source + ": manifest defines no jobs (" +
                         std::to_string(line_number) +
                         " line(s) of comments/whitespace)");
  }
  return jobs;
}

std::vector<md::JobSpec> load_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw RuntimeFailure("cannot open manifest '" + path + "'");
  }
  return parse_manifest(in, path);
}

}  // namespace emdpa::driver
