#include "driver/report.h"

#include <sstream>

#include "core/csv.h"
#include "core/string_util.h"
#include "core/table.h"

namespace emdpa::driver {

namespace {

/// One-character-ish status marks keep the batch table narrow; the full
/// word still appears in the CSV.
std::string batch_flags(const md::JobResult& job) {
  std::string flags;
  if (job.resumed) flags += "r";
  if (job.degraded) flags += "d";
  return flags.empty() ? "-" : flags;
}

}  // namespace

std::string render_run_report(const md::RunResult& result,
                              const md::RunConfig& config) {
  std::ostringstream os;
  os << "backend:       " << result.backend_name << "\n"
     << "workload:      " << config.workload.n_atoms << " atoms, "
     << config.steps << " steps, rho* " << format_auto(config.workload.density)
     << ", T0* " << format_auto(config.workload.temperature) << "\n"
     << "model time:    " << format_auto(result.device_time.to_seconds())
     << " s\n";

  if (!result.breakdown.empty()) {
    os << "breakdown:\n";
    for (const auto& [key, time] : result.breakdown) {
      os << "  " << pad_right(key, 16) << format_auto(time.to_seconds())
         << " s\n";
    }
  }

  // Dimensionless execution facts (thread count, SIMD width, ...) and their
  // textual companions (dispatched ISA, precision): no unit, unlike the time
  // breakdown above.
  if (!result.metadata.empty() || !result.labels.empty()) {
    os << "execution:\n";
    for (const auto& [key, value] : result.labels) {
      os << "  " << pad_right(key, 22) << value << "\n";
    }
    for (const auto& [key, value] : result.metadata) {
      // 22 fits the longest resilience key ("resume_used_fallback") plus a
      // separating space.
      os << "  " << pad_right(key, 22) << format_auto(value) << "\n";
    }
  }

  os << "energies (KE / PE / total):\n";
  const auto print_row = [&](const char* label, const md::StepEnergies& e) {
    os << "  " << pad_right(label, 8) << format_fixed(e.kinetic, 4) << " / "
       << format_fixed(e.potential, 4) << " / " << format_fixed(e.total(), 4)
       << "\n";
  };
  if (!result.energies.empty()) {
    print_row("initial", result.energies.front());
    print_row("final", result.energies.back());
  }
  return os.str();
}

std::string render_run_csv(const md::RunResult& result,
                           const md::RunConfig& config) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"backend", "atoms", "steps", "model_seconds", "initial_total_e",
                 "final_total_e", "metadata_value"});
  csv.write_row({result.backend_name, std::to_string(config.workload.n_atoms),
                 std::to_string(config.steps),
                 format_auto(result.device_time.to_seconds()),
                 result.energies.empty()
                     ? ""
                     : format_fixed(result.energies.front().total(), 6),
                 result.energies.empty()
                     ? ""
                     : format_fixed(result.energies.back().total(), 6),
                 ""});
  for (const auto& [key, time] : result.breakdown) {
    csv.write_row({"breakdown:" + key, "", "", format_auto(time.to_seconds()),
                   "", "", ""});
  }
  // Metadata rows carry their value in the dedicated trailing column —
  // never in model_seconds, so a thread count can't be misread as a time.
  // Textual labels (simd_isa, precision) share the same row shape.
  for (const auto& [key, value] : result.labels) {
    csv.write_row({"metadata:" + key, "", "", "", "", "", value});
  }
  for (const auto& [key, value] : result.metadata) {
    csv.write_row({"metadata:" + key, "", "", "", "", "", format_auto(value)});
  }
  return os.str();
}

std::string render_batch_report(const md::BatchResult& batch) {
  Table table({"job", "prio", "status", "steps", "slices", "saves", "att",
               "flags", "wall (s)", "final total E", "error"});
  for (const auto& job : batch.jobs) {
    std::string error = job.error;
    if (error.size() > 48) {
      error.resize(45);
      error += "...";
    }
    table.add_row({job.name, std::to_string(job.priority),
                   md::to_string(job.status),
                   std::to_string(job.steps_done) + "/" +
                       std::to_string(job.steps_target),
                   std::to_string(job.slices), std::to_string(job.checkpoint_saves),
                   std::to_string(job.attempts),
                   batch_flags(job), format_auto(job.wall_seconds),
                   job.status == md::JobStatus::kPending
                       ? "-"
                       : format_fixed(job.final_energies.total(), 4),
                   error});
  }

  std::ostringstream os;
  os << table.to_string();
  os << "summary: " << batch.jobs.size() << " jobs, "
     << batch.count(md::JobStatus::kCompleted) << " completed, "
     << batch.count(md::JobStatus::kFailed) << " failed, "
     << batch.count(md::JobStatus::kQuarantined) << " quarantined, "
     << batch.count(md::JobStatus::kInterrupted) << " interrupted"
     << (batch.interrupted ? " (batch drained on signal; rerun to resume)"
                           : "")
     << "\n";
  return os.str();
}

std::string render_batch_csv(const md::BatchResult& batch) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"job", "priority", "status", "steps_done", "steps_target",
                 "slices", "checkpoint_saves", "attempts", "resumed",
                 "degraded", "wall_seconds", "final_kinetic",
                 "final_potential", "final_total_e", "error"});
  for (const auto& job : batch.jobs) {
    csv.write_row({job.name, std::to_string(job.priority),
                   md::to_string(job.status), std::to_string(job.steps_done),
                   std::to_string(job.steps_target),
                   std::to_string(job.slices),
                   std::to_string(job.checkpoint_saves),
                   std::to_string(job.attempts),
                   job.resumed ? "1" : "0", job.degraded ? "1" : "0",
                   format_auto(job.wall_seconds),
                   format_fixed(job.final_energies.kinetic, 6),
                   format_fixed(job.final_energies.potential, 6),
                   format_fixed(job.final_energies.total(), 6), job.error});
  }
  return os.str();
}

}  // namespace emdpa::driver
