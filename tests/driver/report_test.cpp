#include <gtest/gtest.h>

#include "driver/backend_factory.h"
#include "driver/report.h"

namespace emdpa::driver {
namespace {

md::RunResult sample_result(md::RunConfig* config) {
  config->workload.n_atoms = 64;
  config->steps = 2;
  return make_backend("opteron")->run(*config);
}

TEST(Report, HumanReportContainsKeyFacts) {
  md::RunConfig config;
  const auto result = sample_result(&config);
  const std::string report = render_run_report(result, config);
  EXPECT_NE(report.find("opteron-2.2ghz"), std::string::npos);
  EXPECT_NE(report.find("64 atoms"), std::string::npos);
  EXPECT_NE(report.find("model time"), std::string::npos);
  EXPECT_NE(report.find("compute"), std::string::npos);   // breakdown
  EXPECT_NE(report.find("initial"), std::string::npos);   // energy ledger
  EXPECT_NE(report.find("final"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndDataRow) {
  md::RunConfig config;
  const auto result = sample_result(&config);
  const std::string csv = render_run_csv(result, config);
  EXPECT_NE(csv.find("backend,atoms,steps,model_seconds"), std::string::npos);
  EXPECT_NE(csv.find("opteron-2.2ghz,64,2,"), std::string::npos);
  EXPECT_NE(csv.find("breakdown:compute"), std::string::npos);
}

TEST(Report, CsvRowCountMatchesBreakdownAndMetadata) {
  md::RunConfig config;
  const auto result = sample_result(&config);
  const std::string csv = render_run_csv(result, config);
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines),
            2 + result.breakdown.size() + result.labels.size() +
                result.metadata.size());
}

md::RunResult parallel_result(md::RunConfig* config) {
  config->workload.n_atoms = 64;
  config->steps = 2;
  return make_backend("host-parallel")->run(*config);
}

TEST(Report, MetadataRendersWithoutTimeUnit) {
  // Thread counts and SIMD widths are dimensionless; they must appear in the
  // execution section, never in the breakdown with an " s" suffix.
  md::RunConfig config;
  const auto result = parallel_result(&config);
  ASSERT_GT(result.metadata.count("threads"), 0u);
  const std::string report = render_run_report(result, config);
  EXPECT_NE(report.find("execution:"), std::string::npos);
  EXPECT_NE(report.find("threads"), std::string::npos);
  const auto pos = report.find("threads");
  const auto line_end = report.find('\n', pos);
  EXPECT_EQ(report.substr(pos, line_end - pos).find(" s"), std::string::npos);
}

TEST(Report, MetadataCsvRowsUseDedicatedColumn) {
  md::RunConfig config;
  const auto result = parallel_result(&config);
  const std::string csv = render_run_csv(result, config);
  EXPECT_NE(csv.find("metadata_value"), std::string::npos);
  EXPECT_NE(csv.find("metadata:threads,,,,,,"), std::string::npos);
  EXPECT_NE(csv.find("metadata:simd_width,,,,,,"), std::string::npos);
  // Textual labels ride the same metadata row shape.
  EXPECT_NE(csv.find("metadata:simd_isa,,,,,,"), std::string::npos);
  EXPECT_NE(csv.find("metadata:precision,,,,,,dp"), std::string::npos);
}

md::BatchResult sample_batch() {
  md::BatchResult batch;
  md::JobResult ok;
  ok.name = "replica-a";
  ok.priority = 2;
  ok.status = md::JobStatus::kCompleted;
  ok.steps_done = ok.steps_target = 500;
  ok.slices = 5;
  ok.checkpoint_saves = 5;
  ok.resumed = true;
  ok.wall_seconds = 1.25;
  ok.final_energies = {100.0, -286.5};
  md::JobResult bad;
  bad.name = "replica-b";
  bad.status = md::JobStatus::kFailed;
  bad.steps_done = 120;
  bad.steps_target = 500;
  bad.slices = 2;
  bad.attempts = 1;  // an immediate failure still consumed one attempt
  bad.error = "watchdog: energy drift";
  batch.jobs = {ok, bad};
  return batch;
}

TEST(Report, BatchReportListsEveryJobAndASummary) {
  const std::string report = render_batch_report(sample_batch());
  EXPECT_NE(report.find("replica-a"), std::string::npos);
  EXPECT_NE(report.find("replica-b"), std::string::npos);
  EXPECT_NE(report.find("completed"), std::string::npos);
  EXPECT_NE(report.find("failed"), std::string::npos);
  EXPECT_NE(report.find("500/500"), std::string::npos);
  EXPECT_NE(report.find("120/500"), std::string::npos);
  EXPECT_NE(report.find("watchdog: energy drift"), std::string::npos);
  EXPECT_NE(
      report.find("2 jobs, 1 completed, 1 failed, 0 quarantined, 0 interrupted"),
      std::string::npos);
}

TEST(Report, BatchCsvHasOneRowPerJob) {
  const std::string csv = render_batch_csv(sample_batch());
  EXPECT_NE(csv.find("job,priority,status,steps_done"), std::string::npos);
  EXPECT_NE(csv.find(",attempts,resumed,"), std::string::npos);
  // Columns: job,priority,status,steps_done,steps_target,slices,
  //          checkpoint_saves,attempts,resumed,degraded,...
  EXPECT_NE(csv.find("replica-a,2,completed,500,500,5,5,0,1,0,"),
            std::string::npos);
  EXPECT_NE(csv.find("replica-b,0,failed,120,500,2,0,1,0,0,"),
            std::string::npos);
  EXPECT_NE(csv.find("watchdog: energy drift"), std::string::npos);
}

TEST(Report, QuarantinedJobsRenderWithAttempts) {
  md::BatchResult batch = sample_batch();
  batch.jobs[1].status = md::JobStatus::kQuarantined;
  batch.jobs[1].attempts = 3;
  batch.jobs[1].error = "numerical failure: energy drift";

  const std::string report = render_batch_report(batch);
  EXPECT_NE(report.find("quarantined"), std::string::npos);
  EXPECT_NE(report.find("2 jobs, 1 completed, 0 failed, 1 quarantined"),
            std::string::npos);

  const std::string csv = render_batch_csv(batch);
  EXPECT_NE(csv.find("replica-b,0,quarantined,120,500,2,0,3,0,0,"),
            std::string::npos);
}

TEST(Report, BatchReportFlagsInterruption) {
  md::BatchResult batch = sample_batch();
  batch.jobs[1].status = md::JobStatus::kInterrupted;
  batch.jobs[1].error.clear();
  batch.interrupted = true;
  const std::string report = render_batch_report(batch);
  EXPECT_NE(report.find("interrupted"), std::string::npos);
  EXPECT_NE(report.find("rerun to resume"), std::string::npos);
}

TEST(Report, LabelsRenderInExecutionSection) {
  md::RunConfig config;
  const auto result = parallel_result(&config);
  ASSERT_GT(result.labels.count("simd_isa"), 0u);
  ASSERT_GT(result.labels.count("precision"), 0u);
  const std::string report = render_run_report(result, config);
  const auto execution = report.find("execution:");
  ASSERT_NE(execution, std::string::npos);
  EXPECT_GT(report.find("simd_isa"), execution);
  EXPECT_GT(report.find("precision"), execution);
}

}  // namespace
}  // namespace emdpa::driver
