#include <gtest/gtest.h>

#include "core/error.h"
#include "driver/cli_options.h"

namespace emdpa::driver {
namespace {

TEST(CliOptions, NoArgsIsHelp) {
  EXPECT_EQ(parse_cli({}).command, CliCommand::kHelp);
  EXPECT_EQ(parse_cli({"help"}).command, CliCommand::kHelp);
  EXPECT_EQ(parse_cli({"--help"}).command, CliCommand::kHelp);
}

TEST(CliOptions, ListCommand) {
  EXPECT_EQ(parse_cli({"list"}).command, CliCommand::kList);
}

TEST(CliOptions, RunRequiresBackend) {
  EXPECT_THROW(parse_cli({"run"}), RuntimeFailure);
  const auto options = parse_cli({"run", "--backend", "gpu"});
  EXPECT_EQ(options.command, CliCommand::kRun);
  EXPECT_EQ(options.backend, "gpu");
}

TEST(CliOptions, DefaultsMatchRunConfig) {
  const auto options = parse_cli({"run", "--backend", "host"});
  const md::RunConfig defaults;
  EXPECT_EQ(options.run_config.workload.n_atoms, defaults.workload.n_atoms);
  EXPECT_EQ(options.run_config.steps, defaults.steps);
  EXPECT_FALSE(options.csv);
}

TEST(CliOptions, AllFlagsParsed) {
  const auto options = parse_cli(
      {"run", "--backend", "opteron", "--atoms", "2048", "--steps", "10",
       "--density", "0.9", "--temperature", "1.2", "--dt", "0.002",
       "--cutoff", "3.0", "--seed", "99", "--csv"});
  EXPECT_EQ(options.run_config.workload.n_atoms, 2048u);
  EXPECT_EQ(options.run_config.steps, 10);
  EXPECT_DOUBLE_EQ(options.run_config.workload.density, 0.9);
  EXPECT_DOUBLE_EQ(options.run_config.workload.temperature, 1.2);
  EXPECT_DOUBLE_EQ(options.run_config.dt, 0.002);
  EXPECT_DOUBLE_EQ(options.run_config.lj.cutoff, 3.0);
  EXPECT_EQ(options.run_config.workload.seed, 99u);
  EXPECT_TRUE(options.csv);
}

TEST(CliOptions, CompareCommandTakesWorkloadFlags) {
  const auto options = parse_cli({"compare", "--atoms", "512"});
  EXPECT_EQ(options.command, CliCommand::kCompare);
  EXPECT_EQ(options.run_config.workload.n_atoms, 512u);
}

TEST(CliOptions, KernelFlagSelectsHostKernel) {
  EXPECT_EQ(parse_cli({"run", "--backend", "host-parallel"})
                .run_config.host_kernel,
            md::HostKernel::kAuto);
  EXPECT_EQ(parse_cli({"run", "--backend", "host-parallel", "--kernel", "n2"})
                .run_config.host_kernel,
            md::HostKernel::kN2);
  EXPECT_EQ(parse_cli({"run", "--backend", "host-parallel", "--kernel", "list"})
                .run_config.host_kernel,
            md::HostKernel::kList);
  EXPECT_EQ(parse_cli({"run", "--backend", "host-parallel", "--kernel", "auto"})
                .run_config.host_kernel,
            md::HostKernel::kAuto);
}

TEST(CliOptions, KernelFlagRejectsUnknownMode) {
  EXPECT_THROW(
      parse_cli({"run", "--backend", "host-parallel", "--kernel", "verlet"}),
      RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "host-parallel", "--kernel"}),
               RuntimeFailure);
}

TEST(CliOptions, RejectsBadInput) {
  EXPECT_THROW(parse_cli({"frobnicate"}), RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend"}), RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "gpu", "--atoms", "many"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "gpu", "--atoms", "0"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "gpu", "--atoms", "2.5"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "gpu", "--steps", "-3"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "gpu", "--wat"}), RuntimeFailure);
}

TEST(CliOptions, UsageMentionsEveryBackend) {
  const std::string usage = cli_usage();
  EXPECT_NE(usage.find("cell-8spe"), std::string::npos);
  EXPECT_NE(usage.find("mta2"), std::string::npos);
  EXPECT_NE(usage.find("--atoms"), std::string::npos);
  EXPECT_NE(usage.find("--kernel"), std::string::npos);
}

TEST(CliOptions, ResilienceFlagsPopulateRunConfig) {
  const CliOptions options = parse_cli(
      {"run", "--backend", "host-parallel", "--checkpoint", "run.ckpt",
       "--checkpoint-every", "50", "--resume", "old.ckpt", "--degrade",
       "--drift-tol", "0.01"});
  EXPECT_EQ(options.run_config.checkpoint_path, "run.ckpt");
  EXPECT_EQ(options.run_config.checkpoint_every, 50);
  EXPECT_EQ(options.run_config.resume_path, "old.ckpt");
  EXPECT_TRUE(options.run_config.degrade);
  EXPECT_EQ(options.run_config.drift_tolerance, 0.01);
}

TEST(CliOptions, ResilienceDefaultsAreOff) {
  const CliOptions options = parse_cli({"run", "--backend", "host-parallel"});
  EXPECT_TRUE(options.run_config.checkpoint_path.empty());
  EXPECT_EQ(options.run_config.checkpoint_every, 0);
  EXPECT_TRUE(options.run_config.resume_path.empty());
  EXPECT_FALSE(options.run_config.degrade);
  EXPECT_EQ(options.run_config.drift_tolerance, 0.0);
}

TEST(CliOptions, ResilienceFlagsRejectBadInput) {
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--checkpoint-every", "0",
                          "--checkpoint", "c"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--drift-tol", "-1"}),
               RuntimeFailure);
  // Periodic saves need somewhere to go.
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--checkpoint-every", "5"}),
               RuntimeFailure);
}

TEST(CliOptions, SimdAndPrecisionFlagsPopulateRunConfig) {
  const CliOptions defaults = parse_cli({"run", "--backend", "host-parallel"});
  EXPECT_FALSE(defaults.run_config.simd_isa.has_value());
  EXPECT_EQ(defaults.run_config.precision, md::PrecisionMode::kDouble);

  const CliOptions options =
      parse_cli({"run", "--backend", "host-parallel", "--simd", "sse2",
                 "--precision", "mixed"});
  ASSERT_TRUE(options.run_config.simd_isa.has_value());
  EXPECT_EQ(*options.run_config.simd_isa, simd::SimdType::kSse2);
  EXPECT_EQ(options.run_config.precision, md::PrecisionMode::kMixed);
}

TEST(CliOptions, SimdAndPrecisionFlagsRejectBadInput) {
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--simd", "altivec"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--simd"}), RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--precision", "fp16"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--precision"}),
               RuntimeFailure);
}

TEST(CliOptions, UsageDocumentsSimdAndPrecision) {
  const std::string usage = cli_usage();
  EXPECT_NE(usage.find("--simd"), std::string::npos);
  EXPECT_NE(usage.find("--precision"), std::string::npos);
  EXPECT_NE(usage.find("EMDPA_SIMD"), std::string::npos);
}

TEST(CliOptions, UsageDocumentsResilience) {
  const std::string usage = cli_usage();
  EXPECT_NE(usage.find("--checkpoint-every"), std::string::npos);
  EXPECT_NE(usage.find("--resume"), std::string::npos);
  EXPECT_NE(usage.find("--degrade"), std::string::npos);
  EXPECT_NE(usage.find("--drift-tol"), std::string::npos);
  EXPECT_NE(usage.find("EMDPA_FAULTS"), std::string::npos);
}

TEST(CliOptions, ResumeForceFlag) {
  const CliOptions options = parse_cli(
      {"run", "--backend", "host-parallel", "--resume", "x.ckpt",
       "--resume-force"});
  EXPECT_TRUE(options.run_config.resume_force);
  // Forcing without a resume source is meaningless in run mode.
  EXPECT_THROW(
      parse_cli({"run", "--backend", "host-parallel", "--resume-force"}),
      RuntimeFailure);
}

TEST(CliOptions, BatchCommandParsesItsFlags) {
  const CliOptions options = parse_cli(
      {"batch", "--manifest", "jobs.txt", "--checkpoint-dir", "ck",
       "--slice", "50", "--max-in-flight", "2", "--threads", "4", "--csv"});
  EXPECT_EQ(options.command, CliCommand::kBatch);
  EXPECT_EQ(options.manifest_path, "jobs.txt");
  EXPECT_EQ(options.checkpoint_dir, "ck");
  EXPECT_EQ(options.slice_steps, 50);
  EXPECT_EQ(options.max_in_flight, 2u);
  EXPECT_EQ(options.threads, 4u);
  EXPECT_TRUE(options.csv);
}

TEST(CliOptions, BatchDefaultsAndValidation) {
  const CliOptions options = parse_cli(
      {"batch", "--manifest", "jobs.txt", "--checkpoint-dir", "ck"});
  EXPECT_EQ(options.slice_steps, 100);
  EXPECT_EQ(options.max_in_flight, 4u);

  EXPECT_THROW(parse_cli({"batch", "--checkpoint-dir", "ck"}), RuntimeFailure);
  EXPECT_THROW(parse_cli({"batch", "--manifest", "jobs.txt"}), RuntimeFailure);
  EXPECT_THROW(parse_cli({"batch", "--manifest", "jobs.txt",
                          "--checkpoint-dir", "ck", "--slice", "0"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"batch", "--manifest", "jobs.txt",
                          "--checkpoint-dir", "ck", "--max-in-flight", "-1"}),
               RuntimeFailure);
}

TEST(CliOptions, UsageDocumentsBatchMode) {
  const std::string usage = cli_usage();
  EXPECT_NE(usage.find("emdpa batch"), std::string::npos);
  EXPECT_NE(usage.find("--manifest"), std::string::npos);
  EXPECT_NE(usage.find("--checkpoint-dir"), std::string::npos);
  EXPECT_NE(usage.find("--max-in-flight"), std::string::npos);
  EXPECT_NE(usage.find("--resume-force"), std::string::npos);
}

}  // namespace
}  // namespace emdpa::driver
