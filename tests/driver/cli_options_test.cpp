#include <gtest/gtest.h>

#include "core/error.h"
#include "driver/cli_options.h"

namespace emdpa::driver {
namespace {

TEST(CliOptions, NoArgsIsHelp) {
  EXPECT_EQ(parse_cli({}).command, CliCommand::kHelp);
  EXPECT_EQ(parse_cli({"help"}).command, CliCommand::kHelp);
  EXPECT_EQ(parse_cli({"--help"}).command, CliCommand::kHelp);
}

TEST(CliOptions, ListCommand) {
  EXPECT_EQ(parse_cli({"list"}).command, CliCommand::kList);
}

TEST(CliOptions, RunRequiresBackend) {
  EXPECT_THROW(parse_cli({"run"}), RuntimeFailure);
  const auto options = parse_cli({"run", "--backend", "gpu"});
  EXPECT_EQ(options.command, CliCommand::kRun);
  EXPECT_EQ(options.backend, "gpu");
}

TEST(CliOptions, DefaultsMatchRunConfig) {
  const auto options = parse_cli({"run", "--backend", "host"});
  const md::RunConfig defaults;
  EXPECT_EQ(options.run_config.workload.n_atoms, defaults.workload.n_atoms);
  EXPECT_EQ(options.run_config.steps, defaults.steps);
  EXPECT_FALSE(options.csv);
}

TEST(CliOptions, AllFlagsParsed) {
  const auto options = parse_cli(
      {"run", "--backend", "opteron", "--atoms", "2048", "--steps", "10",
       "--density", "0.9", "--temperature", "1.2", "--dt", "0.002",
       "--cutoff", "3.0", "--seed", "99", "--csv"});
  EXPECT_EQ(options.run_config.workload.n_atoms, 2048u);
  EXPECT_EQ(options.run_config.steps, 10);
  EXPECT_DOUBLE_EQ(options.run_config.workload.density, 0.9);
  EXPECT_DOUBLE_EQ(options.run_config.workload.temperature, 1.2);
  EXPECT_DOUBLE_EQ(options.run_config.dt, 0.002);
  EXPECT_DOUBLE_EQ(options.run_config.lj.cutoff, 3.0);
  EXPECT_EQ(options.run_config.workload.seed, 99u);
  EXPECT_TRUE(options.csv);
}

TEST(CliOptions, CompareCommandTakesWorkloadFlags) {
  const auto options = parse_cli({"compare", "--atoms", "512"});
  EXPECT_EQ(options.command, CliCommand::kCompare);
  EXPECT_EQ(options.run_config.workload.n_atoms, 512u);
}

TEST(CliOptions, KernelFlagSelectsHostKernel) {
  EXPECT_EQ(parse_cli({"run", "--backend", "host-parallel"})
                .run_config.host_kernel,
            md::HostKernel::kAuto);
  EXPECT_EQ(parse_cli({"run", "--backend", "host-parallel", "--kernel", "n2"})
                .run_config.host_kernel,
            md::HostKernel::kN2);
  EXPECT_EQ(parse_cli({"run", "--backend", "host-parallel", "--kernel", "list"})
                .run_config.host_kernel,
            md::HostKernel::kList);
  EXPECT_EQ(parse_cli({"run", "--backend", "host-parallel", "--kernel", "auto"})
                .run_config.host_kernel,
            md::HostKernel::kAuto);
}

TEST(CliOptions, KernelFlagRejectsUnknownMode) {
  EXPECT_THROW(
      parse_cli({"run", "--backend", "host-parallel", "--kernel", "verlet"}),
      RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "host-parallel", "--kernel"}),
               RuntimeFailure);
}

TEST(CliOptions, RejectsBadInput) {
  EXPECT_THROW(parse_cli({"frobnicate"}), RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend"}), RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "gpu", "--atoms", "many"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "gpu", "--atoms", "0"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "gpu", "--atoms", "2.5"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "gpu", "--steps", "-3"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "gpu", "--wat"}), RuntimeFailure);
}

TEST(CliOptions, UsageMentionsEveryBackend) {
  const std::string usage = cli_usage();
  EXPECT_NE(usage.find("cell-8spe"), std::string::npos);
  EXPECT_NE(usage.find("mta2"), std::string::npos);
  EXPECT_NE(usage.find("--atoms"), std::string::npos);
  EXPECT_NE(usage.find("--kernel"), std::string::npos);
}

TEST(CliOptions, ResilienceFlagsPopulateRunConfig) {
  const CliOptions options = parse_cli(
      {"run", "--backend", "host-parallel", "--checkpoint", "run.ckpt",
       "--checkpoint-every", "50", "--resume", "old.ckpt", "--degrade",
       "--drift-tol", "0.01"});
  EXPECT_EQ(options.run_config.checkpoint_path, "run.ckpt");
  EXPECT_EQ(options.run_config.checkpoint_every, 50);
  EXPECT_EQ(options.run_config.resume_path, "old.ckpt");
  EXPECT_TRUE(options.run_config.degrade);
  EXPECT_EQ(options.run_config.drift_tolerance, 0.01);
}

TEST(CliOptions, ResilienceDefaultsAreOff) {
  const CliOptions options = parse_cli({"run", "--backend", "host-parallel"});
  EXPECT_TRUE(options.run_config.checkpoint_path.empty());
  EXPECT_EQ(options.run_config.checkpoint_every, 0);
  EXPECT_TRUE(options.run_config.resume_path.empty());
  EXPECT_FALSE(options.run_config.degrade);
  EXPECT_EQ(options.run_config.drift_tolerance, 0.0);
}

TEST(CliOptions, ResilienceFlagsRejectBadInput) {
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--checkpoint-every", "0",
                          "--checkpoint", "c"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--drift-tol", "-1"}),
               RuntimeFailure);
  // Periodic saves need somewhere to go.
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--checkpoint-every", "5"}),
               RuntimeFailure);
}

TEST(CliOptions, SimdAndPrecisionFlagsPopulateRunConfig) {
  const CliOptions defaults = parse_cli({"run", "--backend", "host-parallel"});
  EXPECT_FALSE(defaults.run_config.simd_isa.has_value());
  EXPECT_EQ(defaults.run_config.precision, md::PrecisionMode::kDouble);

  const CliOptions options =
      parse_cli({"run", "--backend", "host-parallel", "--simd", "sse2",
                 "--precision", "mixed"});
  ASSERT_TRUE(options.run_config.simd_isa.has_value());
  EXPECT_EQ(*options.run_config.simd_isa, simd::SimdType::kSse2);
  EXPECT_EQ(options.run_config.precision, md::PrecisionMode::kMixed);
}

TEST(CliOptions, SimdAndPrecisionFlagsRejectBadInput) {
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--simd", "altivec"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--simd"}), RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--precision", "fp16"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--precision"}),
               RuntimeFailure);
}

TEST(CliOptions, UsageDocumentsSimdAndPrecision) {
  const std::string usage = cli_usage();
  EXPECT_NE(usage.find("--simd"), std::string::npos);
  EXPECT_NE(usage.find("--precision"), std::string::npos);
  EXPECT_NE(usage.find("EMDPA_SIMD"), std::string::npos);
}

TEST(CliOptions, UsageDocumentsResilience) {
  const std::string usage = cli_usage();
  EXPECT_NE(usage.find("--checkpoint-every"), std::string::npos);
  EXPECT_NE(usage.find("--resume"), std::string::npos);
  EXPECT_NE(usage.find("--degrade"), std::string::npos);
  EXPECT_NE(usage.find("--drift-tol"), std::string::npos);
  EXPECT_NE(usage.find("EMDPA_FAULTS"), std::string::npos);
}

TEST(CliOptions, ResumeForceFlag) {
  const CliOptions options = parse_cli(
      {"run", "--backend", "host-parallel", "--resume", "x.ckpt",
       "--resume-force"});
  EXPECT_TRUE(options.run_config.resume_force);
  // Forcing without a resume source is meaningless in run mode.
  EXPECT_THROW(
      parse_cli({"run", "--backend", "host-parallel", "--resume-force"}),
      RuntimeFailure);
}

TEST(CliOptions, BatchCommandParsesItsFlags) {
  const CliOptions options = parse_cli(
      {"batch", "--manifest", "jobs.txt", "--checkpoint-dir", "ck",
       "--slice", "50", "--max-in-flight", "2", "--threads", "4", "--csv"});
  EXPECT_EQ(options.command, CliCommand::kBatch);
  EXPECT_EQ(options.manifest_path, "jobs.txt");
  EXPECT_EQ(options.checkpoint_dir, "ck");
  EXPECT_EQ(options.slice_steps, 50);
  EXPECT_EQ(options.max_in_flight, 2u);
  EXPECT_EQ(options.threads, 4u);
  EXPECT_TRUE(options.csv);
}

TEST(CliOptions, BatchDefaultsAndValidation) {
  const CliOptions options = parse_cli(
      {"batch", "--manifest", "jobs.txt", "--checkpoint-dir", "ck"});
  EXPECT_EQ(options.slice_steps, 100);
  EXPECT_EQ(options.max_in_flight, 4u);

  EXPECT_THROW(parse_cli({"batch", "--checkpoint-dir", "ck"}), RuntimeFailure);
  EXPECT_THROW(parse_cli({"batch", "--manifest", "jobs.txt"}), RuntimeFailure);
  EXPECT_THROW(parse_cli({"batch", "--manifest", "jobs.txt",
                          "--checkpoint-dir", "ck", "--slice", "0"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"batch", "--manifest", "jobs.txt",
                          "--checkpoint-dir", "ck", "--max-in-flight", "-1"}),
               RuntimeFailure);
}

TEST(CliOptions, StoreAndWatchFlagsPopulateRunConfig) {
  const CliOptions options = parse_cli(
      {"run", "--backend", "host-parallel", "--store-dir", "traj",
       "--snapshot-every", "10", "--keyframe-every", "4", "--store-max-bytes",
       "1000000", "--watch", "energy,max_disp", "--watch-every", "5"});
  EXPECT_EQ(options.run_config.store_dir, "traj");
  EXPECT_EQ(options.run_config.store_every, 10);
  EXPECT_EQ(options.run_config.store_keyframe_every, 4);
  EXPECT_EQ(options.run_config.store_max_bytes, 1000000u);
  EXPECT_EQ(options.run_config.watch, "energy,max_disp");
  EXPECT_EQ(options.run_config.watch_every, 5);
}

TEST(CliOptions, StoreAndWatchFlagsRejectBadInput) {
  // A snapshot stride without a store directory has nowhere to write.
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--snapshot-every", "10"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--store-dir", "d",
                          "--snapshot-every", "0"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--store-dir", "d",
                          "--keyframe-every", "-2"}),
               RuntimeFailure);
  // Unknown observables fail at parse time, not steps into the run.
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--watch", "entropy"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--watch-every", "0",
                          "--watch", "energy"}),
               RuntimeFailure);
}

TEST(CliOptions, BisectCommandParsesSideOverrides) {
  const CliOptions options = parse_cli(
      {"bisect", "--store-dir", "traj", "--atoms", "64", "--steps", "48",
       "--snapshot-every", "8", "--a-kernel", "n2", "--b-kernel", "list",
       "--a-precision", "dp", "--b-precision", "sp", "--a-simd", "sse2",
       "--b-simd", "avx2", "--a-threads", "1", "--b-threads", "3",
       "--b-faults", "md.step_perturb:17"});
  EXPECT_EQ(options.command, CliCommand::kBisect);
  EXPECT_EQ(options.run_config.store_dir, "traj");
  EXPECT_EQ(options.run_config.store_every, 8);
  ASSERT_TRUE(options.bisect_a.kernel.has_value());
  EXPECT_EQ(*options.bisect_a.kernel, md::HostKernel::kN2);
  ASSERT_TRUE(options.bisect_b.kernel.has_value());
  EXPECT_EQ(*options.bisect_b.kernel, md::HostKernel::kList);
  ASSERT_TRUE(options.bisect_a.precision.has_value());
  EXPECT_EQ(*options.bisect_a.precision, md::PrecisionMode::kDouble);
  ASSERT_TRUE(options.bisect_b.precision.has_value());
  EXPECT_EQ(*options.bisect_b.precision, md::PrecisionMode::kSingle);
  ASSERT_TRUE(options.bisect_a.simd_isa.has_value());
  EXPECT_EQ(*options.bisect_a.simd_isa, simd::SimdType::kSse2);
  EXPECT_EQ(options.bisect_a.threads, 1u);
  EXPECT_EQ(options.bisect_b.threads, 3u);
  EXPECT_TRUE(options.bisect_a.faults.empty());
  EXPECT_EQ(options.bisect_b.faults, "md.step_perturb:17");
}

TEST(CliOptions, BisectValidation) {
  // bisect without a store directory has nowhere to record the two sides.
  EXPECT_THROW(parse_cli({"bisect", "--atoms", "64"}), RuntimeFailure);
  // Side overrides outside bisect are a usage error, not silently ignored.
  EXPECT_THROW(
      parse_cli({"run", "--backend", "x", "--a-precision", "sp"}),
      RuntimeFailure);
  EXPECT_THROW(parse_cli({"compare", "--b-faults", "md.step_perturb:1"}),
               RuntimeFailure);
  // Side flags validate their values like the shared ones do.
  EXPECT_THROW(parse_cli({"bisect", "--store-dir", "d", "--a-kernel", "wat"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"bisect", "--store-dir", "d", "--b-threads", "0"}),
               RuntimeFailure);
}

TEST(CliOptions, UsageDocumentsStoreWatchAndBisect) {
  const std::string usage = cli_usage();
  EXPECT_NE(usage.find("emdpa bisect"), std::string::npos);
  EXPECT_NE(usage.find("--store-dir"), std::string::npos);
  EXPECT_NE(usage.find("--snapshot-every"), std::string::npos);
  EXPECT_NE(usage.find("--keyframe-every"), std::string::npos);
  EXPECT_NE(usage.find("--store-max-bytes"), std::string::npos);
  EXPECT_NE(usage.find("--watch"), std::string::npos);
  EXPECT_NE(usage.find("md.step_perturb"), std::string::npos);
  EXPECT_NE(usage.find("--a-precision"), std::string::npos);
}

TEST(CliOptions, UsageDocumentsBatchMode) {
  const std::string usage = cli_usage();
  EXPECT_NE(usage.find("emdpa batch"), std::string::npos);
  EXPECT_NE(usage.find("--manifest"), std::string::npos);
  EXPECT_NE(usage.find("--checkpoint-dir"), std::string::npos);
  EXPECT_NE(usage.find("--max-in-flight"), std::string::npos);
  EXPECT_NE(usage.find("--resume-force"), std::string::npos);
}

TEST(CliOptions, SupervisionFlagsPopulateBatchOptions) {
  const CliOptions defaults = parse_cli(
      {"batch", "--manifest", "jobs.txt", "--checkpoint-dir", "ck"});
  EXPECT_EQ(defaults.max_retries, 0);  // pre-supervision behaviour by default
  EXPECT_EQ(defaults.job_deadline, 0.0);
  EXPECT_EQ(defaults.job_slice_budget, 0u);
  EXPECT_TRUE(defaults.journal_path.empty());

  const CliOptions options = parse_cli(
      {"batch", "--manifest", "jobs.txt", "--checkpoint-dir", "ck",
       "--max-retries", "3", "--job-deadline", "2.5", "--job-slice-budget",
       "40", "--journal", "batch.wal"});
  EXPECT_EQ(options.max_retries, 3);
  EXPECT_DOUBLE_EQ(options.job_deadline, 2.5);
  EXPECT_EQ(options.job_slice_budget, 40u);
  EXPECT_EQ(options.journal_path, "batch.wal");
}

TEST(CliOptions, SupervisionFlagsRejectBadInput) {
  EXPECT_THROW(parse_cli({"batch", "--manifest", "j", "--checkpoint-dir", "c",
                          "--max-retries", "-1"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"batch", "--manifest", "j", "--checkpoint-dir", "c",
                          "--job-deadline", "0"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"batch", "--manifest", "j", "--checkpoint-dir", "c",
                          "--job-slice-budget", "0"}),
               RuntimeFailure);
}

TEST(CliOptions, SupervisionFlagsAreBatchOnly) {
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--max-retries", "2"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"run", "--backend", "x", "--job-deadline", "1"}),
               RuntimeFailure);
  EXPECT_THROW(parse_cli({"compare", "--journal", "batch.wal"}),
               RuntimeFailure);
}

TEST(CliOptions, UsageDocumentsSupervision) {
  const std::string usage = cli_usage();
  EXPECT_NE(usage.find("--max-retries"), std::string::npos);
  EXPECT_NE(usage.find("--job-deadline"), std::string::npos);
  EXPECT_NE(usage.find("--job-slice-budget"), std::string::npos);
  EXPECT_NE(usage.find("--journal"), std::string::npos);
  EXPECT_NE(usage.find("quarantined"), std::string::npos);
}

}  // namespace
}  // namespace emdpa::driver
