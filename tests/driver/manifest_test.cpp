// Manifest parsing: the `emdpa batch` job-list grammar.
#include <gtest/gtest.h>

#include <sstream>

#include "core/error.h"
#include "core/fault_injection.h"
#include "driver/manifest.h"
#include "md/precision.h"

namespace emdpa::driver {
namespace {

std::vector<md::JobSpec> parse(const std::string& text) {
  std::istringstream in(text);
  return parse_manifest(in, "test");
}

TEST(ManifestTest, ParsesJobsWithDefaults) {
  const auto jobs = parse("alpha\nbeta steps=50\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "alpha");
  EXPECT_EQ(jobs[0].priority, 0);
  EXPECT_EQ(jobs[0].config.steps, 10);  // RunConfig default
  EXPECT_EQ(jobs[1].name, "beta");
  EXPECT_EQ(jobs[1].config.steps, 50);
}

TEST(ManifestTest, ParsesEveryKey) {
  const auto jobs = parse(
      "full priority=3 atoms=512 steps=200 density=0.9 temperature=1.2 "
      "dt=0.004 cutoff=3.0 seed=42 kernel=list precision=mixed "
      "degrade=1 drift_tol=0.05\n");
  ASSERT_EQ(jobs.size(), 1u);
  const md::JobSpec& job = jobs[0];
  EXPECT_EQ(job.priority, 3);
  EXPECT_EQ(job.config.workload.n_atoms, 512u);
  EXPECT_EQ(job.config.steps, 200);
  EXPECT_DOUBLE_EQ(job.config.workload.density, 0.9);
  EXPECT_DOUBLE_EQ(job.config.workload.temperature, 1.2);
  EXPECT_DOUBLE_EQ(job.config.dt, 0.004);
  EXPECT_DOUBLE_EQ(job.config.lj.cutoff, 3.0);
  EXPECT_EQ(job.config.workload.seed, 42u);
  EXPECT_EQ(job.config.host_kernel, md::HostKernel::kList);
  EXPECT_EQ(job.config.precision, md::PrecisionMode::kMixed);
  EXPECT_TRUE(job.config.degrade);
  EXPECT_DOUBLE_EQ(job.config.drift_tolerance, 0.05);
}

TEST(ManifestTest, SkipsCommentsAndBlankLines) {
  const auto jobs = parse("# a comment\n\n  \njob1\n# another\njob2\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "job1");
  EXPECT_EQ(jobs[1].name, "job2");
}

TEST(ManifestTest, ErrorsCarryLineNumbers) {
  try {
    parse("ok\nbad atoms=-4\n");
    FAIL() << "expected RuntimeFailure";
  } catch (const RuntimeFailure& e) {
    EXPECT_NE(std::string(e.what()).find("test:2"), std::string::npos)
        << e.what();
  }
}

TEST(ManifestTest, RejectsMalformedInput) {
  EXPECT_THROW(parse("job steps\n"), RuntimeFailure);          // no '='
  EXPECT_THROW(parse("job steps=\n"), RuntimeFailure);         // empty value
  EXPECT_THROW(parse("job =5\n"), RuntimeFailure);             // empty key
  EXPECT_THROW(parse("job steps=ten\n"), RuntimeFailure);      // not a number
  EXPECT_THROW(parse("job steps=2.5\n"), RuntimeFailure);      // not integral
  EXPECT_THROW(parse("job frobnicate=1\n"), RuntimeFailure);   // unknown key
  EXPECT_THROW(parse("job kernel=cuda\n"), RuntimeFailure);    // bad enum
  EXPECT_THROW(parse("job degrade=yes\n"), RuntimeFailure);    // bad bool
  EXPECT_THROW(parse("job drift_tol=0\n"), RuntimeFailure);    // must be > 0
  EXPECT_THROW(parse("dup\ndup\n"), RuntimeFailure);           // duplicate
  EXPECT_THROW(parse("# only comments\n"), RuntimeFailure);    // no jobs
  EXPECT_THROW(parse(""), RuntimeFailure);                     // empty
}

TEST(ManifestTest, LoadManifestRejectsMissingFile) {
  EXPECT_THROW(load_manifest("/nonexistent/manifest.txt"), RuntimeFailure);
}

TEST(ManifestTest, ParsesSupervisionKeys) {
  const auto jobs =
      parse("guarded max_retries=2 deadline=1.5 slice_budget=7\nplain\n");
  ASSERT_EQ(jobs.size(), 2u);
  ASSERT_TRUE(jobs[0].max_retries.has_value());
  EXPECT_EQ(*jobs[0].max_retries, 2);
  ASSERT_TRUE(jobs[0].deadline_seconds.has_value());
  EXPECT_DOUBLE_EQ(*jobs[0].deadline_seconds, 1.5);
  ASSERT_TRUE(jobs[0].slice_budget.has_value());
  EXPECT_EQ(*jobs[0].slice_budget, 7u);
  // Absent keys stay absent so the batch-wide defaults apply.
  EXPECT_FALSE(jobs[1].max_retries.has_value());
  EXPECT_FALSE(jobs[1].deadline_seconds.has_value());
  EXPECT_FALSE(jobs[1].slice_budget.has_value());
}

TEST(ManifestTest, RejectsBadSupervisionValues) {
  EXPECT_THROW(parse("job max_retries=-1\n"), RuntimeFailure);
  EXPECT_THROW(parse("job max_retries=two\n"), RuntimeFailure);
  EXPECT_THROW(parse("job deadline=-0.5\n"), RuntimeFailure);
  EXPECT_THROW(parse("job slice_budget=-3\n"), RuntimeFailure);
}

TEST(ManifestTest, RejectsDuplicateKeysWithLineNumbers) {
  try {
    parse("ok\njob steps=10 steps=20\n");
    FAIL() << "expected RuntimeFailure";
  } catch (const RuntimeFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test:2"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate key 'steps'"), std::string::npos) << what;
  }
  EXPECT_THROW(parse("job priority=1 priority=1\n"), RuntimeFailure);
}

TEST(ManifestTest, InjectedReadFailureAbortsBeforeAdmittingJobs) {
  fault::Registry::instance().reset();
  {
    fault::Plan plan;
    fault::ScopedFault fault("md.manifest_parse", plan);
    EXPECT_THROW(parse("ok\n"), RuntimeFailure);
  }
  fault::Registry::instance().reset();
  EXPECT_EQ(parse("ok\n").size(), 1u);  // clean retry once the fault clears
}

TEST(ManifestTest, WhitespaceOnlyManifestSaysWhatItSaw) {
  try {
    parse("# comment\n\n   \n\t\n");
    FAIL() << "expected RuntimeFailure";
  } catch (const RuntimeFailure& e) {
    // The message distinguishes "file full of comments/blanks" from a
    // genuinely truncated manifest — it reports the line count it scanned.
    EXPECT_NE(std::string(e.what()).find("defines no jobs"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace emdpa::driver
