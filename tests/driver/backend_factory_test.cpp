#include <gtest/gtest.h>

#include <set>

#include "core/error.h"
#include "driver/backend_factory.h"

namespace emdpa::driver {
namespace {

TEST(BackendFactory, ListsAtLeastTheCoreBackends) {
  std::set<std::string> keys;
  for (const auto& info : available_backends()) keys.insert(info.key);
  for (const char* expected :
       {"host", "opteron", "cell-1spe", "cell-8spe", "cell-ppe", "gpu",
        "mta2", "mta2-partial", "xmt"}) {
    EXPECT_TRUE(keys.count(expected)) << expected;
  }
}

TEST(BackendFactory, KeysAreUniqueAndDescribed) {
  std::set<std::string> keys;
  for (const auto& info : available_backends()) {
    EXPECT_TRUE(keys.insert(info.key).second) << "duplicate " << info.key;
    EXPECT_FALSE(info.description.empty()) << info.key;
  }
}

TEST(BackendFactory, EveryListedKeyConstructs) {
  for (const auto& info : available_backends()) {
    auto backend = make_backend(info.key);
    ASSERT_NE(backend, nullptr) << info.key;
    EXPECT_FALSE(backend->name().empty());
    EXPECT_TRUE(backend->precision() == "single" ||
                backend->precision() == "double");
  }
}

TEST(BackendFactory, UnknownKeyThrowsWithSuggestions) {
  try {
    make_backend("quantum-annealer");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quantum-annealer"), std::string::npos);
    EXPECT_NE(what.find("cell-8spe"), std::string::npos);  // lists known keys
  }
}

TEST(BackendFactory, EveryBackendRunsATinyWorkload) {
  md::RunConfig cfg;
  cfg.workload.n_atoms = 64;
  cfg.steps = 1;
  for (const auto& info : available_backends()) {
    auto backend = make_backend(info.key);
    const md::RunResult r = backend->run(cfg);
    EXPECT_EQ(r.energies.size(), 2u) << info.key;
    EXPECT_EQ(r.final_state.size(), 64u) << info.key;
  }
}

}  // namespace
}  // namespace emdpa::driver
