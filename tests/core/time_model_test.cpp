#include <gtest/gtest.h>

#include <sstream>

#include "core/error.h"
#include "core/time_model.h"

namespace emdpa {
namespace {

TEST(ModelTime, Constructors) {
  EXPECT_DOUBLE_EQ(ModelTime::seconds(2.0).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(ModelTime::milliseconds(1500.0).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(ModelTime::microseconds(250.0).to_seconds(), 250e-6);
  EXPECT_DOUBLE_EQ(ModelTime::zero().to_seconds(), 0.0);
}

TEST(ModelTime, MillisecondView) {
  EXPECT_DOUBLE_EQ(ModelTime::seconds(0.5).to_milliseconds(), 500.0);
}

TEST(ModelTime, Arithmetic) {
  const auto a = ModelTime::seconds(1.0);
  const auto b = ModelTime::seconds(2.5);
  EXPECT_DOUBLE_EQ((a + b).to_seconds(), 3.5);
  EXPECT_DOUBLE_EQ((b - a).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ((a * 4.0).to_seconds(), 4.0);
  EXPECT_DOUBLE_EQ((4.0 * a).to_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(b / a, 2.5);
}

TEST(ModelTime, Comparisons) {
  EXPECT_LT(ModelTime::seconds(1.0), ModelTime::seconds(2.0));
  EXPECT_EQ(ModelTime::seconds(1.0), ModelTime::milliseconds(1000.0));
}

TEST(ModelTime, DefaultIsZero) {
  ModelTime t;
  EXPECT_EQ(t, ModelTime::zero());
}

TEST(ModelTime, StreamOutput) {
  std::ostringstream os;
  os << ModelTime::seconds(2.0);
  EXPECT_EQ(os.str(), "2 s");
}

TEST(CycleCount, AccumulatesAndScales) {
  CycleCount c(100.0);
  c += CycleCount(50.0);
  EXPECT_DOUBLE_EQ(c.value(), 150.0);
  EXPECT_DOUBLE_EQ((c * 2.0).value(), 300.0);
  EXPECT_DOUBLE_EQ((2.0 * c).value(), 300.0);
}

TEST(ClockDomain, CyclesToTime) {
  const ClockDomain clock(1.0e9);  // 1 GHz
  EXPECT_DOUBLE_EQ(clock.to_time(CycleCount(1.0e9)).to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(clock.to_time(CycleCount(500.0)).to_seconds(), 500e-9);
}

TEST(ClockDomain, TimeToCycles) {
  const ClockDomain clock(2.2e9);
  EXPECT_DOUBLE_EQ(clock.to_cycles(ModelTime::seconds(1.0)).value(), 2.2e9);
}

TEST(ClockDomain, RoundTrip) {
  const ClockDomain clock(3.2e9);
  const CycleCount c(123456.0);
  EXPECT_NEAR(clock.to_cycles(clock.to_time(c)).value(), c.value(), 1e-6);
}

TEST(ClockDomain, RejectsNonPositiveFrequency) {
  EXPECT_THROW(ClockDomain(0.0), ContractViolation);
  EXPECT_THROW(ClockDomain(-1.0), ContractViolation);
}

}  // namespace
}  // namespace emdpa
