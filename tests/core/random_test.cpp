#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.h"
#include "core/random.h"

namespace emdpa {
namespace {

TEST(SplitMix64, KnownSequenceFromSeedZero) {
  // Reference values of SplitMix64 with seed 0 (widely published).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(sm.next(), 0x06C45D188009454Full);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(123);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(13), 13u);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(10);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[rng.uniform_index(8)];
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 each
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng(77);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianWithParameters) {
  Rng rng(55);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, PointInBoxStaysInside) {
  Rng rng(3);
  const Vec3d extent{2.0, 3.0, 4.0};
  for (int i = 0; i < 1000; ++i) {
    const Vec3d p = rng.point_in_box(extent);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 2.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 3.0);
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, 4.0);
  }
}

}  // namespace
}  // namespace emdpa
