#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "core/aligned_buffer.h"
#include "core/error.h"
#include "core/vec4.h"

namespace emdpa {
namespace {

TEST(AlignedBuffer, DataIs16ByteAligned) {
  for (std::size_t count : {1u, 3u, 17u, 1000u}) {
    AlignedBuffer<float> buf(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 16, 0u);
    EXPECT_EQ(buf.size(), count);
  }
}

TEST(AlignedBuffer, CustomAlignment) {
  AlignedBuffer<double, 64> buf(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
}

TEST(AlignedBuffer, ValueInitialised) {
  AlignedBuffer<Vec4f> buf(8);
  for (const auto& v : buf) EXPECT_EQ(v, Vec4f{});
}

TEST(AlignedBuffer, ElementAccess) {
  AlignedBuffer<int> buf(4);
  buf[2] = 42;
  const auto& cbuf = buf;
  EXPECT_EQ(cbuf[2], 42);
}

TEST(AlignedBuffer, RangeForWorks) {
  AlignedBuffer<int> buf(5);
  int k = 0;
  for (auto& v : buf) v = k++;
  EXPECT_EQ(buf[4], 4);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(3);
  a[0] = 7;
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 7);
  EXPECT_EQ(a.data(), nullptr);

  AlignedBuffer<int> c(1);
  c = std::move(b);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], 7);
}

TEST(AlignedBuffer, RejectsEmpty) {
  EXPECT_THROW(AlignedBuffer<int> buf(0), ContractViolation);
}

}  // namespace
}  // namespace emdpa
