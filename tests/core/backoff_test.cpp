// Deterministic decorrelated-jitter backoff: bounds, reproducibility per
// (seed, stream) pair, and the replay property the batch journal depends on.
#include <gtest/gtest.h>

#include <vector>

#include "core/backoff.h"
#include "core/error.h"

namespace emdpa {
namespace {

TEST(BackoffTest, FirstDelayIsExactlyTheBase) {
  Backoff backoff(BackoffPolicy{2.0, 32.0, 42});
  EXPECT_EQ(backoff.next(), 2.0);
  EXPECT_EQ(backoff.attempts(), 1u);
}

TEST(BackoffTest, EveryDelayStaysWithinBaseAndCap) {
  BackoffPolicy policy{1.5, 10.0, 7};
  Backoff backoff(policy);
  for (int i = 0; i < 200; ++i) {
    const double delay = backoff.next();
    EXPECT_GE(delay, policy.base);
    EXPECT_LE(delay, policy.cap);
  }
}

TEST(BackoffTest, SamePolicyAndStreamReplayIdentically) {
  const BackoffPolicy policy{1.0, 16.0, 0xDEADBEEF};
  Backoff a(policy, 5);
  Backoff b(policy, 5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.next(), b.next()) << "diverged at draw " << i;
  }
}

TEST(BackoffTest, DifferentStreamsDecorrelate) {
  const BackoffPolicy policy{1.0, 16.0, 0xDEADBEEF};
  Backoff a(policy, 1);
  Backoff b(policy, 2);
  a.next();  // both first delays are base by contract
  b.next();
  bool differed = false;
  for (int i = 0; i < 16 && !differed; ++i) {
    differed = a.next() != b.next();
  }
  EXPECT_TRUE(differed) << "independent streams produced identical jitter";
}

TEST(BackoffTest, ResetReplaysTheSameSequence) {
  Backoff backoff(BackoffPolicy{1.0, 16.0, 99}, 3);
  std::vector<double> first;
  for (int i = 0; i < 8; ++i) first.push_back(backoff.next());
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(backoff.next(), first[static_cast<std::size_t>(i)])
        << "reset did not restart the stream at draw " << i;
  }
}

TEST(BackoffTest, CapEqualToBasePinsEveryDelay) {
  Backoff backoff(BackoffPolicy{4.0, 4.0, 1});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(backoff.next(), 4.0);
}

TEST(BackoffTest, RejectsDegeneratePolicies) {
  EXPECT_THROW(Backoff(BackoffPolicy{0.0, 8.0, 0}), ContractViolation);
  EXPECT_THROW(Backoff(BackoffPolicy{-1.0, 8.0, 0}), ContractViolation);
  EXPECT_THROW(Backoff(BackoffPolicy{8.0, 2.0, 0}), ContractViolation);
}

}  // namespace
}  // namespace emdpa
