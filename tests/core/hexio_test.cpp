#include "core/hexio.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "core/error.h"
#include "core/random.h"

namespace emdpa::hexio {
namespace {

double round_trip(double value) {
  return parse_double(format_double(value), "test value");
}

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

TEST(Hexio, OrdinaryValuesRoundTripBitExact) {
  for (const double v : {0.1, -0.1, 1.0, -1.0, 3.141592653589793,
                         2.5e17, -7.25e-19, 1e300, -1e-300}) {
    EXPECT_EQ(bits_of(round_trip(v)), bits_of(v)) << v;
  }
}

TEST(Hexio, DenormalsRoundTripBitExact) {
  const double min_denormal = std::numeric_limits<double>::denorm_min();
  const double max_denormal =
      std::numeric_limits<double>::min() - min_denormal;
  for (const double v : {min_denormal, -min_denormal, max_denormal,
                         -max_denormal, 1234.0 * min_denormal}) {
    EXPECT_EQ(bits_of(round_trip(v)), bits_of(v)) << v;
  }
}

TEST(Hexio, SignOfZeroSurvives) {
  EXPECT_FALSE(std::signbit(round_trip(0.0)));
  EXPECT_TRUE(std::signbit(round_trip(-0.0)));
}

TEST(Hexio, ExtremesOfTheFiniteRangeRoundTrip) {
  const double max = std::numeric_limits<double>::max();
  const double min_normal = std::numeric_limits<double>::min();
  EXPECT_EQ(bits_of(round_trip(max)), bits_of(max));
  EXPECT_EQ(bits_of(round_trip(-max)), bits_of(-max));
  EXPECT_EQ(bits_of(round_trip(min_normal)), bits_of(min_normal));
}

TEST(Hexio, RandomBitPatternsRoundTripBitExact) {
  // Any finite double, not just friendly ones: draw raw 64-bit patterns and
  // keep the finite ones.
  Rng rng(20070326);
  int tested = 0;
  while (tested < 2000) {
    const std::uint64_t bits = rng.next_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    if (!std::isfinite(v)) continue;
    ++tested;
    EXPECT_EQ(bits_of(round_trip(v)), bits) << "bits " << bits;
  }
}

TEST(Hexio, ParseRejectsNonFinite) {
  EXPECT_THROW(parse_double("inf", "x"), RuntimeFailure);
  EXPECT_THROW(parse_double("-inf", "x"), RuntimeFailure);
  EXPECT_THROW(parse_double("nan", "x"), RuntimeFailure);
  EXPECT_THROW(parse_double("1e999", "x"), RuntimeFailure);  // overflows to inf
}

TEST(Hexio, ParseRejectsMalformedTokens) {
  EXPECT_THROW(parse_double("", "x"), RuntimeFailure);
  EXPECT_THROW(parse_double("0x1.8p+z", "x"), RuntimeFailure);
  EXPECT_THROW(parse_double("1.5q", "x"), RuntimeFailure);
  EXPECT_THROW(parse_double("not-a-number", "x"), RuntimeFailure);
}

TEST(Hexio, ParseErrorNamesTheField) {
  try {
    parse_double("wat", "box edge");
    FAIL() << "expected RuntimeFailure";
  } catch (const RuntimeFailure& e) {
    EXPECT_NE(std::string(e.what()).find("box edge"), std::string::npos);
  }
}

TEST(Hexio, AcceptsPlainDecimalTokens) {
  EXPECT_DOUBLE_EQ(parse_double("2.5", "x"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-17", "x"), -17.0);
}

TEST(Hexio, U64RoundTripsFixedWidth) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xdeadbeef},
        std::numeric_limits<std::uint64_t>::max()}) {
    const std::string token = format_u64(v);
    EXPECT_EQ(token.size(), 16u);
    EXPECT_EQ(parse_u64(token, "x"), v);
  }
}

TEST(Hexio, U64ParseRejectsMalformedTokens) {
  EXPECT_THROW(parse_u64("", "x"), RuntimeFailure);
  EXPECT_THROW(parse_u64("xyz", "x"), RuntimeFailure);
  EXPECT_THROW(parse_u64("123 ", "x"), RuntimeFailure);
}

}  // namespace
}  // namespace emdpa::hexio
