#include <gtest/gtest.h>

#include "core/error.h"

namespace emdpa {
namespace {

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(EMDPA_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Error, RequireThrowsContractViolation) {
  EXPECT_THROW(EMDPA_REQUIRE(false, "nope"), ContractViolation);
}

TEST(Error, MessageIncludesExpressionAndContext) {
  try {
    EMDPA_REQUIRE(2 > 3, "two is not bigger");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not bigger"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Error, ContractViolationIsLogicError) {
  EXPECT_THROW(
      { throw ContractViolation("x"); }, std::logic_error);
}

TEST(Error, RuntimeFailureIsRuntimeError) {
  EXPECT_THROW(
      { throw RuntimeFailure("x"); }, std::runtime_error);
}

TEST(Error, EnsureBehavesLikeRequire) {
  EXPECT_THROW(EMDPA_ENSURE(false, "invariant"), ContractViolation);
}

TEST(Error, SideEffectsEvaluatedExactlyOnce) {
  int calls = 0;
  auto check = [&] {
    ++calls;
    return true;
  };
  EMDPA_REQUIRE(check(), "once");
  EXPECT_EQ(calls, 1);
}

TEST(ErrorContext, FormatsOnlyPopulatedFields) {
  ErrorContext ctx;
  EXPECT_TRUE(ctx.empty());
  ctx.step = 412;
  EXPECT_EQ(ctx.to_string(), "step 412");
  ctx.kernel = "neighbor-list";
  ctx.backend = "host-parallel";
  EXPECT_EQ(ctx.to_string(),
            "step 412, kernel neighbor-list, backend host-parallel");
}

TEST(ErrorContext, RuntimeFailureCarriesContext) {
  ErrorContext ctx;
  ctx.step = 7;
  ctx.kernel = "soa-n2";
  try {
    throw RuntimeFailure("boom", ctx);
  } catch (const std::exception& e) {
    // Retrieved through the base std::exception, the way main() catches it.
    const ErrorContext* found = error_context(e);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->step, 7);
    EXPECT_EQ(found->kernel, "soa-n2");
    EXPECT_EQ(std::string(e.what()), "boom");
  }
}

TEST(ErrorContext, EmptyContextReadsAsAbsent) {
  try {
    throw RuntimeFailure("plain");
  } catch (const std::exception& e) {
    EXPECT_EQ(error_context(e), nullptr);
  }
}

TEST(ErrorContext, ForeignExceptionsHaveNoContext) {
  const std::runtime_error plain("not ours");
  EXPECT_EQ(error_context(plain), nullptr);
}

TEST(ErrorContext, LayersAnnotateDuringUnwind) {
  // The idiom used across the tree: each layer fills in only what it knows,
  // then rethrows the ORIGINAL exception object.
  try {
    try {
      try {
        throw RuntimeFailure("kernel blew up");
      } catch (RuntimeFailure& e) {
        e.context().step = 99;  // the simulation loop knows the step
        throw;
      }
    } catch (RuntimeFailure& e) {
      e.context().backend = "host-parallel";  // the backend adds its name
      throw;
    }
  } catch (const RuntimeFailure& e) {
    const ErrorContext* ctx = error_context(e);
    ASSERT_NE(ctx, nullptr);
    EXPECT_EQ(ctx->step, 99);
    EXPECT_EQ(ctx->backend, "host-parallel");
  }
}

TEST(ErrorContext, NumericalFailureIsARuntimeFailure) {
  ErrorContext ctx;
  ctx.step = 10;
  try {
    throw NumericalFailure("energy drift", ctx);
  } catch (const RuntimeFailure& e) {
    EXPECT_NE(error_context(e), nullptr);
  }
  EXPECT_THROW({ throw NumericalFailure("x"); }, std::runtime_error);
}

}  // namespace
}  // namespace emdpa
