#include <gtest/gtest.h>

#include "core/error.h"

namespace emdpa {
namespace {

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(EMDPA_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Error, RequireThrowsContractViolation) {
  EXPECT_THROW(EMDPA_REQUIRE(false, "nope"), ContractViolation);
}

TEST(Error, MessageIncludesExpressionAndContext) {
  try {
    EMDPA_REQUIRE(2 > 3, "two is not bigger");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not bigger"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Error, ContractViolationIsLogicError) {
  EXPECT_THROW(
      { throw ContractViolation("x"); }, std::logic_error);
}

TEST(Error, RuntimeFailureIsRuntimeError) {
  EXPECT_THROW(
      { throw RuntimeFailure("x"); }, std::runtime_error);
}

TEST(Error, EnsureBehavesLikeRequire) {
  EXPECT_THROW(EMDPA_ENSURE(false, "invariant"), ContractViolation);
}

TEST(Error, SideEffectsEvaluatedExactlyOnce) {
  int calls = 0;
  auto check = [&] {
    ++calls;
    return true;
  };
  EMDPA_REQUIRE(check(), "once");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace emdpa
