// The SIGINT/SIGTERM latch: handlers only record the signal, the simulation
// loops poll it cooperatively.  raise() delivers synchronously, so the latch
// is observable immediately after.
#include <gtest/gtest.h>

#include <csignal>

#include "core/interrupt.h"

namespace emdpa {
namespace {

class InterruptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    arm_interrupt_handlers();
    clear_interrupt();
  }
  void TearDown() override { clear_interrupt(); }
};

TEST_F(InterruptTest, StartsClear) {
  EXPECT_FALSE(interrupt_requested());
  EXPECT_EQ(interrupt_signal(), 0);
}

TEST_F(InterruptTest, SigintLatches) {
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(interrupt_requested());
  EXPECT_EQ(interrupt_signal(), SIGINT);
}

TEST_F(InterruptTest, SigtermLatches) {
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(interrupt_requested());
  EXPECT_EQ(interrupt_signal(), SIGTERM);
}

TEST_F(InterruptTest, ClearResetsTheLatch) {
  ASSERT_EQ(std::raise(SIGTERM), 0);
  ASSERT_TRUE(interrupt_requested());
  clear_interrupt();
  EXPECT_FALSE(interrupt_requested());
  EXPECT_EQ(interrupt_signal(), 0);
}

TEST_F(InterruptTest, ArmingIsIdempotent) {
  arm_interrupt_handlers();
  arm_interrupt_handlers();
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_EQ(interrupt_signal(), SIGINT);
}

TEST_F(InterruptTest, SignalNames) {
  EXPECT_STREQ(interrupt_signal_name(SIGINT), "SIGINT");
  EXPECT_STREQ(interrupt_signal_name(SIGTERM), "SIGTERM");
}

}  // namespace
}  // namespace emdpa
